"""Execute the code blocks of the Markdown docs so they cannot go stale.

``make docs`` runs this checker over ``README.md`` and every ``docs/*.md``
file.  For each file, fenced ```` ```python ```` blocks are executed top to
bottom in one shared namespace (so a later block may use names a former one
defined, the way a reader follows the page); blocks written as interactive
sessions (``>>>``) run through :mod:`doctest` in that same namespace, so
their printed output is verified too.  Any other fence language (``bash``,
``text``, ...) is skipped, as is a python fence whose info string carries
``no-run`` (for illustrative fragments that need external state).

Exit status 0 means every block of every file ran clean; on failure the
file, block number and traceback are printed and the exit status is 1 --
which is what lets the Makefile (and CI) gate on documentation health.
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Opening fence with its info string, body, closing fence.
_FENCE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.DOTALL | re.MULTILINE)


def code_blocks(text: str):
    """Yield ``(info, code)`` for every fenced block of a Markdown text."""
    for match in _FENCE.finditer(text):
        yield match.group(1).strip(), match.group(2)


def runnable_python_blocks(text: str):
    """Yield ``(index, code)`` for the python blocks the checker executes.

    ``index`` counts *all* fenced blocks (so error messages point at the
    n-th fence of the file); non-python and ``no-run`` blocks are skipped.
    """
    for index, (info, code) in enumerate(code_blocks(text), start=1):
        words = info.split()
        if not words or words[0] not in ("python", "py", "pycon"):
            continue
        if "no-run" in words[1:]:
            continue
        yield index, code


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_file(path: Path, verbose: bool = False) -> list:
    """Run every runnable python block of one file; return error strings."""
    errors = []
    namespace = {"__name__": f"docs[{path.name}]"}
    for index, code in runnable_python_blocks(path.read_text(encoding="utf-8")):
        label = f"{_display_path(path)} block {index}"
        try:
            if ">>>" in code:
                _run_doctest_block(code, namespace, label)
            else:
                exec(compile(code, label, "exec"), namespace)
        except Exception:
            errors.append(f"{label} failed:\n{traceback.format_exc()}")
        else:
            if verbose:
                print(f"  ok: {label}")
    return errors


def _run_doctest_block(code: str, namespace: dict, label: str) -> None:
    """Run one ``>>>`` session block, verifying its printed output."""
    parser = doctest.DocTestParser()
    test = parser.get_doctest(code, namespace, label, label, 0)
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS
                                   | doctest.NORMALIZE_WHITESPACE)
    runner.run(test, out=lambda s: None)
    if runner.failures:
        raise AssertionError(
            f"{runner.failures} doctest failure(s) in {label} "
            "(rerun with python -m doctest for details)"
        )


def default_documents() -> list:
    """README.md plus every Markdown file under docs/, sorted."""
    documents = [REPO_ROOT / "README.md"]
    docs_dir = REPO_ROOT / "docs"
    if docs_dir.is_dir():
        documents.extend(sorted(docs_dir.glob("*.md")))
    return [d for d in documents if d.exists()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", type=Path,
                        help="Markdown files to check "
                             "(default: README.md and docs/*.md)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every block that ran clean")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    documents = [p.resolve() for p in args.paths] or default_documents()
    failures = []
    for path in documents:
        blocks = list(runnable_python_blocks(path.read_text(encoding="utf-8")))
        print(f"checking {_display_path(path)} "
              f"({len(blocks)} python block(s))")
        failures.extend(check_file(path, verbose=args.verbose))

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        print(f"doc check FAILED: {len(failures)} block(s)", file=sys.stderr)
        return 1
    print("doc check passed: every code block ran clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
