"""Validate the checked-in ``BENCH_*.json`` benchmark reports.

``make test-all`` runs this checker over every ``BENCH_*.json`` at the
repository root.  Six layers of checks keep the perf trajectory honest:

1. **hygiene** -- the file parses, is non-empty, and contains no ``NaN`` /
   ``Infinity`` / ``null`` measurement anywhere (an absent or non-finite
   number means the benchmark silently failed mid-run);
2. **shape** -- the per-file required top-level sections are present, so a
   regenerated report cannot quietly drop the section an acceptance test
   reads;
3. **floors** -- the numeric floors the test suite asserts against these
   files (e.g. the eval-plan multiplication saving or the arena tracker
   speedup) hold in the checked-in numbers too, so a regeneration that
   regressed below an alarm floor fails here instead of at the next slow
   test run;
4. **scenarios** -- every solve-level report must carry the registry's
   per-scenario matrix (>= 4 named scenarios), each entry with the
   declared workload knobs, every identity verdict ``true`` (bit-for-bit
   contracts hold on every shape), and -- where the entry records both --
   the converged/solution count equal to the classically known root count;
5. **start savings** -- the start-strategy report must show the diagonal
   start never exceeding the Bezout bound, realising a *strict* path
   saving on at least one scenario (the triangular family), and the warm
   family serving beating the cold per-query floor by at least 2x;
6. **robustness** -- the shard report must carry the supervised runtime's
   fault matrix: every fault mode recovered (bit-for-bit identity or an
   explicitly recorded degradation), persistent workers beating the
   fresh-pool dispatch tax, and the persistent row beating single-process
   wall-clock wherever the recording hardware has parallel capacity
   (``cpus >= 2``; on a single schedulable CPU the dispatch win is the
   gate, since no pool can beat one process without a second core).

Exit status 0 means every report passed; failures are printed per file and
the exit status is 1, which is what lets the Makefile (and CI) gate on
benchmark health.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required top-level sections per report (shape layer).
REQUIRED_KEYS = {
    "BENCH_batch_tracking.json": ("d", "dd", "qd", "scenarios"),
    "BENCH_escalation.json": ("rows", "saving_factor", "paths_total",
                              "paths_converged", "recovered_by_escalation",
                              "scenarios"),
    "BENCH_eval_plan.json": ("evaluation", "op_counts", "tracker",
                             "qd_tracker_wall_speedup", "arena",
                             "scenarios"),
    "BENCH_qd_arith.json": ("per_op", "small_batch", "tracker",
                            "baseline_qd_paths_per_s_wall",
                            "wall_speedup_vs_baseline_at_batch_64"),
    "BENCH_shard.json": ("rows", "ladder", "all_identical", "paths_total",
                         "scenarios", "robustness"),
    "BENCH_start.json": ("scenarios", "family_serving"),
}

#: Numeric floors the acceptance tests assert (floor layer): dotted path
#: into the report -> minimum value the checked-in number must reach.
FLOORS = {
    "BENCH_eval_plan.json": {
        "op_counts.multiplication_saving_factor": 1.5,
        "qd_tracker_wall_speedup": 1.15,
        "arena.qd_tracker_wall_speedup_vs_plans": 1.15,
    },
    "BENCH_qd_arith.json": {
        "wall_speedup_vs_baseline_at_batch_64": 1.15,
    },
    "BENCH_escalation.json": {
        "arithmetic_saving_factor": 1.1,
        "warm_vs_cold.warm_restart_saving_factor": 1.0,
    },
    "BENCH_start.json": {
        "family_serving.warm_vs_cold_speedup": 2.0,
    },
}

#: Exact-value requirements (e.g. the shard crash drill must reproduce the
#: single-process solver bit for bit).
EXACT = {
    "BENCH_shard.json": {"all_identical": True},
    "BENCH_start.json": {"family_serving.identical": True},
}

#: Scenario layer: minimum number of named scenarios each solve-level
#: report must record.
MIN_SCENARIOS = 4

#: Knobs every scenario entry must declare, whatever the bench.
SCENARIO_COMMON_KEYS = ("family", "dimension", "bezout_number",
                        "known_root_count")

#: Per-file measurement keys each scenario entry must additionally carry.
SCENARIO_REQUIRED_KEYS = {
    "BENCH_batch_tracking.json": ("rows", "paths_total", "converged",
                                  "paths_per_second_win"),
    "BENCH_escalation.json": ("paths_total", "paths_converged",
                              "recovered_by_escalation"),
    "BENCH_eval_plan.json": ("multiplication_saving_factor",
                             "plan_walk_identical", "arena_identical"),
    "BENCH_shard.json": ("solutions", "sharded_solutions", "identical"),
    "BENCH_start.json": ("total_degree_paths", "total_degree_wall_s",
                         "diagonal_paths", "diagonal_wall_s", "solutions",
                         "path_saving_factor", "identical"),
}

#: Identity verdicts: wherever a scenario entry records one of these keys
#: it must be ``true`` -- the bit-for-bit contracts hold on every shape.
SCENARIO_TRUE_KEYS = ("identical", "plan_walk_identical", "arena_identical")

#: Per-scenario numeric floors.
SCENARIO_FLOORS = {
    "BENCH_eval_plan.json": {"multiplication_saving_factor": 1.0},
    "BENCH_batch_tracking.json": {"paths_per_second_win": 1.5},
    "BENCH_start.json": {"path_saving_factor": 1.0},
}

#: The key that must equal the scenario's classically known root count
#: (divergent-path families like noon make this a real check: the Bezout
#: number would be wrong).
SCENARIO_ROOT_COUNT_KEYS = {
    "BENCH_batch_tracking.json": "converged",
    "BENCH_escalation.json": "paths_converged",
    "BENCH_shard.json": "solutions",
    "BENCH_start.json": "solutions",
}


def _walk(value, path=""):
    """Yield ``(path, leaf)`` for every leaf of a parsed JSON value."""
    if isinstance(value, dict):
        for key, item in value.items():
            yield from _walk(item, f"{path}.{key}" if path else str(key))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _walk(item, f"{path}[{index}]")
    else:
        yield path, value


def _lookup(report, dotted: str):
    """Resolve a dotted path; returns ``(found, value)``."""
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def check_scenarios(name: str, report) -> list:
    """Run the scenario layer over one solve-level report."""
    errors = []
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict):
        return [f"{name}: 'scenarios' is not an object"]
    if len(scenarios) < MIN_SCENARIOS:
        errors.append(f"{name}: only {len(scenarios)} scenario(s) recorded, "
                      f"need >= {MIN_SCENARIOS}")
    required = SCENARIO_COMMON_KEYS + SCENARIO_REQUIRED_KEYS.get(name, ())
    floors = SCENARIO_FLOORS.get(name, {})
    root_key = SCENARIO_ROOT_COUNT_KEYS.get(name)
    for scenario_name, entry in scenarios.items():
        where = f"{name}: scenarios.{scenario_name}"
        if not isinstance(entry, dict):
            errors.append(f"{where} is not an object")
            continue
        for key in required:
            if key not in entry:
                errors.append(f"{where}.{key} missing")
        for key in SCENARIO_TRUE_KEYS:
            if key in entry and entry[key] is not True:
                errors.append(f"{where}.{key} = {entry[key]!r}, the "
                              "bit-for-bit contract is broken")
        for key, floor in floors.items():
            value = entry.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if value < floor:
                    errors.append(f"{where}.{key} = {value:.4g} below the "
                                  f"asserted floor {floor}")
        if root_key is not None and root_key in entry \
                and "known_root_count" in entry:
            if entry[root_key] != entry["known_root_count"]:
                errors.append(
                    f"{where}.{root_key} = {entry[root_key]!r}, expected "
                    f"the known root count {entry['known_root_count']!r}")
    return errors


def check_start_savings(name: str, report) -> list:
    """The start-savings layer over the start-strategy report: the
    diagonal start must never exceed the Bezout bound and must realise a
    strict saving somewhere (otherwise the strategy layer buys nothing)."""
    errors = []
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict):
        return []  # the scenario layer already reported this
    strict = False
    for scenario_name, entry in scenarios.items():
        if not isinstance(entry, dict):
            continue
        paths = entry.get("diagonal_paths")
        bezout = entry.get("bezout_number")
        if not isinstance(paths, int) or not isinstance(bezout, int):
            continue  # missing keys are the scenario layer's finding
        if paths > bezout:
            errors.append(
                f"{name}: scenarios.{scenario_name}.diagonal_paths = "
                f"{paths} exceeds the Bezout bound {bezout}")
        if paths < bezout:
            strict = True
    if scenarios and not strict:
        errors.append(
            f"{name}: no scenario shows diagonal_paths < bezout_number -- "
            "the diagonal start realises no strict path saving")
    return errors


#: The fault modes the robustness section must drill (kept in sync with
#: ``repro.service.sharded.FAULT_MODES`` -- the checker is deliberately
#: standalone, so the list is spelled out).
ROBUSTNESS_MODES = ("kill", "hang", "slow", "corrupt-checkpoint",
                    "store-io-error")

#: Floor on the persistent-vs-fresh-pool dispatch speedup: persistent
#: workers must at least recoup the fork + system-pickle + tracker
#: construction tax they exist to amortise.
ROBUSTNESS_DISPATCH_FLOOR = 1.1


def check_robustness(name: str, report) -> list:
    """The robustness layer over the shard report's fault matrix."""
    errors = []
    section = report.get("robustness")
    if not isinstance(section, dict):
        return [f"{name}: 'robustness' is not an object"]

    modes = section.get("modes")
    if not isinstance(modes, dict):
        errors.append(f"{name}: robustness.modes is not an object")
    else:
        for mode in ROBUSTNESS_MODES:
            entry = modes.get(mode)
            where = f"{name}: robustness.modes.{mode}"
            if not isinstance(entry, dict):
                errors.append(f"{where} missing")
                continue
            if entry.get("recovered") is not True:
                errors.append(f"{where}.recovered = "
                              f"{entry.get('recovered')!r}; the drill did "
                              "not end in recovery")
            if entry.get("identical") is not True \
                    and not entry.get("degradations"):
                errors.append(
                    f"{where}: neither bit-for-bit identical nor an "
                    "explicitly recorded degradation -- a silent wrong "
                    "answer")

    dispatch = section.get("dispatch")
    if not isinstance(dispatch, dict):
        errors.append(f"{name}: robustness.dispatch missing")
    else:
        speedup = dispatch.get("persistent_speedup_vs_fresh")
        if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
            errors.append(f"{name}: robustness.dispatch."
                          "persistent_speedup_vs_fresh is not a number")
        elif speedup < ROBUSTNESS_DISPATCH_FLOOR:
            errors.append(
                f"{name}: robustness.dispatch.persistent_speedup_vs_fresh "
                f"= {speedup:.4g} below the floor "
                f"{ROBUSTNESS_DISPATCH_FLOOR} -- persistent workers do "
                "not recoup the fresh-pool dispatch tax")

    row = section.get("persistent")
    if not isinstance(row, dict):
        errors.append(f"{name}: robustness.persistent row missing")
    else:
        for key in ("scenario", "workers", "single_wall_s",
                    "persistent_wall_s", "speedup_vs_single",
                    "beats_single", "identical"):
            if key not in row:
                errors.append(f"{name}: robustness.persistent.{key} missing")
        if isinstance(row.get("workers"), int) and row["workers"] < 2:
            errors.append(f"{name}: robustness.persistent.workers = "
                          f"{row['workers']}, need >= 2")
        if row.get("identical") is not True:
            errors.append(f"{name}: robustness.persistent.identical = "
                          f"{row.get('identical')!r}, the bit-for-bit "
                          "contract is broken")
        cpus = section.get("cpus")
        if row.get("beats_single") is not True and \
                not (isinstance(cpus, int) and cpus <= 1):
            errors.append(
                f"{name}: robustness.persistent.beats_single = "
                f"{row.get('beats_single')!r} with cpus = {cpus!r} -- on "
                "parallel hardware the persistent pool must beat "
                "single-process wall-clock")
    return errors


def check_report(path: Path) -> list:
    """Run all five layers over one report; return error strings."""
    name = path.name
    errors = []
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{name}: unreadable or invalid JSON ({exc})"]
    if not report:
        return [f"{name}: empty report"]

    for leaf_path, leaf in _walk(report):
        if leaf is None:
            errors.append(f"{name}: {leaf_path} is null (absent measurement)")
        elif isinstance(leaf, float) and not math.isfinite(leaf):
            errors.append(f"{name}: {leaf_path} is {leaf!r} "
                          "(non-finite measurement)")

    for key in REQUIRED_KEYS.get(name, ()):
        if key not in report:
            errors.append(f"{name}: required section {key!r} missing")

    for dotted, floor in FLOORS.get(name, {}).items():
        found, value = _lookup(report, dotted)
        if not found:
            errors.append(f"{name}: asserted floor key {dotted!r} missing")
        elif not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            errors.append(f"{name}: {dotted} is {value!r}, not a finite "
                          "number")
        elif value < floor:
            errors.append(f"{name}: {dotted} = {value:.4g} below the "
                          f"asserted floor {floor}")

    for dotted, expected in EXACT.get(name, {}).items():
        found, value = _lookup(report, dotted)
        if not found:
            errors.append(f"{name}: required key {dotted!r} missing")
        elif value != expected:
            errors.append(f"{name}: {dotted} = {value!r}, expected "
                          f"{expected!r}")

    if name in SCENARIO_REQUIRED_KEYS and "scenarios" in report:
        errors.extend(check_scenarios(name, report))
    if name == "BENCH_start.json":
        errors.extend(check_start_savings(name, report))
    if name == "BENCH_shard.json" and "robustness" in report:
        errors.extend(check_robustness(name, report))
    return errors


def default_reports() -> list:
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", type=Path,
                        help="benchmark reports to check "
                             "(default: BENCH_*.json at the repo root)")
    args = parser.parse_args(argv)

    reports = [p.resolve() for p in args.paths] or default_reports()
    if not reports:
        print("bench check FAILED: no BENCH_*.json reports found",
              file=sys.stderr)
        return 1
    failures = []
    for path in reports:
        print(f"checking {path.name}")
        failures.extend(check_report(path))

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        print(f"bench check FAILED: {len(failures)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"bench check passed: {len(reports)} report(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
