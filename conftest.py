"""Pytest bootstrap for the repository.

Makes the test and benchmark suites runnable straight from a source checkout,
even when the package has not been installed (useful in offline environments
where ``pip install -e .`` needs ``--no-build-isolation``): if ``repro`` is
not importable, the ``src`` layout directory is prepended to ``sys.path``.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))


def pytest_configure(config):
    # Registered here as well as in pytest.ini so the marker exists even when
    # the suite is run with an explicit -c pointing elsewhere.
    config.addinivalue_line(
        "markers", "slow: long-running tests excluded from the default (tier-1) run"
    )
    config.addinivalue_line(
        "markers",
        "scenario_matrix: full cross-scenario differential matrix "
        "(slow; select with -m scenario_matrix)"
    )
    config.addinivalue_line(
        "markers",
        "chaos: full fault-injection matrix, every mode x store backend "
        "(slow; select with -m chaos / make chaos)"
    )
