"""Pytest bootstrap for the repository.

Makes the test and benchmark suites runnable straight from a source checkout,
even when the package has not been installed (useful in offline environments
where ``pip install -e .`` needs ``--no-build-isolation``): if ``repro`` is
not importable, the ``src`` layout directory is prepended to ``sys.path``.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))
