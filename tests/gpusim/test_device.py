"""Tests for the device descriptions."""

from __future__ import annotations

import pytest

from repro.gpusim import TESLA_C2050, XEON_X5690, DeviceSpec, HostSpec


class TestTeslaC2050:
    def test_paper_figures(self):
        """Section 4: 14 multiprocessors, 32 cores each, 448 cores total,
        processor clock 1147 MHz."""
        assert TESLA_C2050.multiprocessors == 14
        assert TESLA_C2050.cores_per_multiprocessor == 32
        assert TESLA_C2050.total_cores == 448
        assert TESLA_C2050.clock_hz == pytest.approx(1147e6)

    def test_memory_capacities(self):
        """Constant memory 65,536 bytes and shared memory 49,152 bytes are the
        limits the paper's sections 3.1 and 3.2 reason with."""
        assert TESLA_C2050.constant_memory_bytes == 65536
        assert TESLA_C2050.shared_memory_per_block_bytes == 49152
        assert TESLA_C2050.warp_size == 32
        assert TESLA_C2050.shared_memory_banks == 32

    def test_derived_quantities(self):
        assert TESLA_C2050.peak_threads_in_flight == 14 * 48 * 32
        assert "Tesla C2050" in str(TESLA_C2050)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            TESLA_C2050.warp_size = 64


class TestXeonHost:
    def test_paper_clock(self):
        """Section 4: Intel Xeon X5690 at 3.47 GHz."""
        assert XEON_X5690.clock_hz == pytest.approx(3.47e9)
        assert "X5690" in str(XEON_X5690)

    def test_clock_ratio_motivates_double_digit_speedup(self):
        """The paper: 'the clock speed of the GPU is a third of the clock
        speed of the CPU, we hope to achieve a double digit speedup'."""
        ratio = XEON_X5690.clock_hz / TESLA_C2050.clock_hz
        assert 2.5 < ratio < 3.5


class TestCustomSpecs:
    def test_custom_device(self):
        small = DeviceSpec(name="toy", multiprocessors=2, cores_per_multiprocessor=8,
                           clock_hz=1e9)
        assert small.total_cores == 16
        assert small.warp_size == 32  # default

    def test_custom_host(self):
        host = HostSpec(name="laptop", clock_hz=2.0e9, cores=4)
        assert host.cores == 4
