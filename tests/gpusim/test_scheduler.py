"""Tests for occupancy computation and block scheduling."""

from __future__ import annotations

import pytest

from repro.errors import LaunchConfigurationError
from repro.gpusim import (
    TESLA_C2050,
    DeviceSpec,
    LaunchConfig,
    compute_occupancy,
    schedule_blocks,
)


class TestOccupancy:
    def test_small_blocks_hit_the_block_limit(self):
        occ = compute_occupancy(TESLA_C2050, LaunchConfig(grid_dim=32, block_dim=32))
        assert occ.blocks_per_multiprocessor == 8          # hardware block limit
        assert occ.warps_per_block == 1
        assert occ.resident_warps == 8
        assert occ.limited_by == "block limit"
        assert 0 < occ.occupancy <= 1

    def test_large_blocks_hit_the_warp_limit(self):
        occ = compute_occupancy(TESLA_C2050, LaunchConfig(grid_dim=4, block_dim=1024))
        assert occ.warps_per_block == 32
        assert occ.blocks_per_multiprocessor == 1
        assert occ.limited_by == "warp slots"

    def test_shared_memory_limits_residency(self):
        occ = compute_occupancy(TESLA_C2050, LaunchConfig(grid_dim=14, block_dim=32),
                                shared_bytes_per_block=20000)
        assert occ.blocks_per_multiprocessor == 2
        assert occ.limited_by == "shared memory"

    def test_impossible_request(self):
        with pytest.raises(LaunchConfigurationError):
            compute_occupancy(TESLA_C2050, LaunchConfig(grid_dim=1, block_dim=32),
                              shared_bytes_per_block=100000)

    def test_block_too_large(self):
        with pytest.raises(LaunchConfigurationError):
            compute_occupancy(TESLA_C2050, LaunchConfig(grid_dim=1, block_dim=2048))

    def test_invalid_dimensions(self):
        with pytest.raises(LaunchConfigurationError):
            LaunchConfig(grid_dim=0, block_dim=32).validate(TESLA_C2050)
        with pytest.raises(LaunchConfigurationError):
            LaunchConfig(grid_dim=1, block_dim=0).validate(TESLA_C2050)


class TestSchedule:
    def test_round_robin_assignment(self):
        schedule = schedule_blocks(TESLA_C2050, LaunchConfig(grid_dim=28, block_dim=32))
        assert schedule.busy_multiprocessors == 14
        assert all(len(blocks) == 2 for blocks in schedule.assignments.values())
        assert schedule.blocks_on(0) == [0, 14]
        assert schedule.waves == 1  # 8 resident blocks per SM absorb 2 each

    def test_paper_worst_case_waves(self):
        """Section 3.1's example: 28 blocks on 14 multiprocessors with one
        block resident at a time behave like two sequential launches."""
        one_block_at_a_time = DeviceSpec(
            name="pessimistic C2050", multiprocessors=14, cores_per_multiprocessor=32,
            clock_hz=1147e6, max_blocks_per_multiprocessor=1,
            max_resident_warps_per_multiprocessor=1)
        schedule = schedule_blocks(one_block_at_a_time, LaunchConfig(grid_dim=28, block_dim=32))
        assert schedule.waves == 2

    def test_waves_grow_with_grid(self):
        device = TESLA_C2050
        small = schedule_blocks(device, LaunchConfig(grid_dim=14 * 8, block_dim=32))
        large = schedule_blocks(device, LaunchConfig(grid_dim=14 * 8 * 3, block_dim=32))
        assert small.waves == 1
        assert large.waves == 3

    def test_single_block(self):
        schedule = schedule_blocks(TESLA_C2050, LaunchConfig(grid_dim=1, block_dim=32))
        assert schedule.busy_multiprocessors == 1
        assert schedule.waves == 1
        assert schedule.blocks_on(13) == []

    def test_monomial_counts_of_the_paper_occupy_all_multiprocessors(self):
        """The paper: 'we need at least about 1,000 monomials to occupy well
        all the 14 multiprocessors' -- 1,024 monomials in 32-thread blocks
        give 32 blocks, more than two per multiprocessor."""
        schedule = schedule_blocks(TESLA_C2050, LaunchConfig(grid_dim=1024 // 32, block_dim=32))
        assert schedule.busy_multiprocessors == 14
        per_sm = [len(blocks) for blocks in schedule.assignments.values()]
        assert min(per_sm) >= 2
