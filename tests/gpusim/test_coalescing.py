"""Tests for the coalescing / bank-conflict analysis."""

from __future__ import annotations

import pytest

from repro.gpusim import (
    CoalescingReport,
    MemoryAccess,
    analyze_warp_accesses,
    bank_conflicts_for_indices,
    transactions_for_addresses,
)
from repro.gpusim.coalescing import WarpMemoryEvent


def make_access(space, kind, array, index, element_bytes, tag):
    return MemoryAccess(space=space, kind=kind, array=array, index=index,
                        element_bytes=element_bytes, tag=tag)


class TestTransactionCounting:
    def test_fully_coalesced_complex_doubles(self):
        """32 consecutive complex doubles = 512 bytes = 4 segments of 128."""
        addresses = [i * 16 for i in range(32)]
        assert transactions_for_addresses(addresses, element_bytes=16) == 4

    def test_fully_scattered(self):
        """Each thread in its own 128-byte segment: 32 transactions."""
        addresses = [i * 1024 for i in range(32)]
        assert transactions_for_addresses(addresses, element_bytes=16) == 32

    def test_broadcast_single_address(self):
        addresses = [0] * 32
        assert transactions_for_addresses(addresses, element_bytes=16) == 1

    def test_straddling_element(self):
        # One 16-byte element starting 8 bytes before a segment boundary.
        assert transactions_for_addresses([120], element_bytes=16) == 2

    def test_empty(self):
        assert transactions_for_addresses([], element_bytes=16) == 0

    def test_double_double_elements_cost_twice_the_segments(self):
        doubles = transactions_for_addresses([i * 16 for i in range(32)], 16)
        dd = transactions_for_addresses([i * 32 for i in range(32)], 32)
        assert dd == 2 * doubles


class TestBankConflicts:
    def test_consecutive_words_are_conflict_free(self):
        assert bank_conflicts_for_indices(list(range(32)), element_bytes=4) == 0

    def test_same_word_broadcast_is_conflict_free(self):
        assert bank_conflicts_for_indices([5] * 32, element_bytes=4) == 0

    def test_stride_two_words_conflict(self):
        # Stride 2 in 4-byte words: 2 distinct words per bank -> 1 extra pass.
        conflicts = bank_conflicts_for_indices([2 * i for i in range(32)], element_bytes=4)
        assert conflicts == 1

    def test_stride_32_is_worst_case(self):
        conflicts = bank_conflicts_for_indices([32 * i for i in range(32)], element_bytes=4)
        assert conflicts == 31

    def test_consecutive_complex_doubles_are_conflict_free(self):
        """16-byte elements are served 8 threads per pass; consecutive
        elements then hit 32 distinct banks -> no conflicts."""
        assert bank_conflicts_for_indices(list(range(32)), element_bytes=16) == 0

    def test_strided_complex_doubles_conflict(self):
        # Stride of 10 elements of 16 bytes = 40 words: within each group of
        # 8 threads the accesses collide pairwise.
        conflicts = bank_conflicts_for_indices([10 * i for i in range(32)], element_bytes=16)
        assert conflicts > 0

    def test_empty(self):
        assert bank_conflicts_for_indices([], element_bytes=4) == 0


class TestWarpAnalysis:
    def test_coalesced_warp_read(self):
        accesses = {t: [make_access("global", "read", "X", t, 16, "load")]
                    for t in range(32)}
        report = analyze_warp_accesses(accesses)
        assert report.global_transactions == 4
        assert report.global_read_transactions == 4
        assert report.global_write_transactions == 0
        assert report.warp_memory_instructions == 1
        assert report.shared_bank_conflicts == 0

    def test_scattered_warp_write(self):
        accesses = {t: [make_access("global", "write", "M", 100 * t, 16, "store")]
                    for t in range(32)}
        report = analyze_warp_accesses(accesses)
        assert report.global_write_transactions == 32
        assert report.coalescing_efficiency() < 0.2

    def test_multiple_warps_are_analyzed_separately(self):
        accesses = {}
        for t in range(64):
            accesses[t] = [make_access("global", "read", "X", t, 16, "load")]
        report = analyze_warp_accesses(accesses, warp_size=32)
        # Two warps, each reading 32 consecutive complex doubles.
        assert report.global_transactions == 8
        assert len(report.events) == 2

    def test_loop_iterations_align_by_occurrence(self):
        # Each thread reads the same array twice under one tag; the two
        # occurrences must be treated as two warp instructions.
        accesses = {t: [make_access("global", "read", "X", t, 16, "sum"),
                        make_access("global", "read", "X", t + 32, 16, "sum")]
                    for t in range(32)}
        report = analyze_warp_accesses(accesses)
        assert len(report.events) == 2
        assert report.global_transactions == 8

    def test_constant_memory_broadcast_vs_divergent(self):
        broadcast = {t: [make_access("constant", "read", "P", 7, 1, "pos")]
                     for t in range(32)}
        divergent = {t: [make_access("constant", "read", "P", t, 1, "pos")]
                     for t in range(32)}
        assert analyze_warp_accesses(broadcast).events[0].transactions == 1
        assert analyze_warp_accesses(divergent).events[0].transactions == 32

    def test_shared_memory_conflicts_reported(self):
        accesses = {t: [make_access("shared", "read", "L", 32 * t, 4, "work")]
                    for t in range(32)}
        report = analyze_warp_accesses(accesses)
        assert report.shared_bank_conflicts == 31

    def test_empty_input(self):
        report = analyze_warp_accesses({})
        assert report.events == []
        assert report.global_transactions == 0
        assert report.coalescing_efficiency() == 1.0

    def test_merge(self):
        a = CoalescingReport(events=[WarpMemoryEvent("t", "global", "read", "X", 32, 4, 0)])
        b = CoalescingReport(events=[WarpMemoryEvent("t", "global", "write", "Y", 32, 8, 0)])
        merged = a.merge(b)
        assert merged.global_transactions == 12
        assert merged.global_read_transactions == 4
