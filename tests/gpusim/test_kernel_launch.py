"""Tests for the kernel abstraction and the grid launcher.

Uses small hand-written kernels (vector scale, phased reduction, divergent
work) to exercise the execution model independently of the paper's kernels.
"""

from __future__ import annotations

import pytest

from repro.errors import KernelExecutionError, LaunchConfigurationError
from repro.gpusim import (
    ConstantMemory,
    GlobalMemory,
    Kernel,
    LaunchConfig,
    SharedMemory,
    TESLA_C2050,
    launch_kernel,
)


class ScaleKernel(Kernel):
    """out[i] = 2 * x[i]: one coalesced read and write per thread."""

    name = "scale"

    def __init__(self, length):
        self.length = length

    def run_thread(self, ctx):
        i = ctx.global_thread_id
        if i >= self.length:
            return
        x = ctx.global_read("x", i, tag="load")
        ctx.count_mul()
        ctx.global_write("out", i, 2.0 * x, tag="store")


class PhasedKernel(Kernel):
    """Phase 1 stores per-thread values in shared memory; phase 2 lets every
    thread read its neighbour's value -- only correct with a barrier."""

    name = "phased"

    def configure_shared(self, shared: SharedMemory, config: LaunchConfig) -> None:
        shared.allocate("buffer", config.block_dim, 8, fill=0.0)

    def phases(self):
        return [("write", self.write_phase), ("read", self.read_phase)]

    def write_phase(self, ctx):
        ctx.shared_write("buffer", ctx.threadIdx, float(ctx.threadIdx), tag="fill")

    def read_phase(self, ctx):
        neighbour = (ctx.threadIdx + 1) % ctx.blockDim
        value = ctx.shared_read("buffer", neighbour, tag="neighbour")
        ctx.global_write("out", ctx.global_thread_id, value, tag="store")


class DivergentKernel(Kernel):
    """Odd threads do ten multiplications, even threads one."""

    name = "divergent"

    def run_thread(self, ctx):
        work = 10 if ctx.threadIdx % 2 else 1
        ctx.count_mul(work)
        ctx.count_add()
        ctx.count_op(2)


class FailingKernel(Kernel):
    name = "failing"

    def run_thread(self, ctx):
        if ctx.global_thread_id == 3:
            raise ValueError("boom")


class ConstReaderKernel(Kernel):
    name = "const_reader"

    def run_thread(self, ctx):
        value = ctx.const_read("table", ctx.threadIdx % 4, tag="lookup")
        ctx.global_write("out", ctx.global_thread_id, value, tag="store")


@pytest.fixture
def gmem():
    g = GlobalMemory()
    g.store_array("x", [float(i) for i in range(64)], 8)
    g.allocate("out", 64, 8, fill=0.0)
    return g


class TestFunctionalExecution:
    def test_scale_kernel_results(self, gmem):
        stats = launch_kernel(ScaleKernel(64), LaunchConfig(grid_dim=2, block_dim=32), gmem)
        assert gmem.snapshot("out") == [2.0 * i for i in range(64)]
        assert stats.total_threads == 64
        assert stats.total_multiplications == 64
        assert stats.kernel_name == "scale"

    def test_idle_tail_threads(self, gmem):
        # Launch more threads than elements: the extras return immediately.
        stats = launch_kernel(ScaleKernel(40), LaunchConfig(grid_dim=2, block_dim=32), gmem)
        assert stats.total_multiplications == 40
        assert gmem.snapshot("out")[40:] == [0.0] * 24

    def test_phase_barrier_semantics(self, gmem):
        stats = launch_kernel(PhasedKernel(), LaunchConfig(grid_dim=1, block_dim=32), gmem)
        # Thread t sees the value written by thread t+1 in the earlier phase.
        assert gmem.snapshot("out")[:32] == [(t + 1) % 32 for t in range(32)]
        assert stats.barriers == 1

    def test_constant_memory_input(self, gmem):
        const = ConstantMemory()
        const.store_array("table", [10, 20, 30, 40], 4)
        launch_kernel(ConstReaderKernel(), LaunchConfig(grid_dim=1, block_dim=8), gmem,
                      constant_memory=const)
        assert gmem.snapshot("out")[:8] == [10, 20, 30, 40, 10, 20, 30, 40]

    def test_kernel_error_is_wrapped_with_coordinates(self, gmem):
        with pytest.raises(KernelExecutionError, match="block 0, thread 3"):
            launch_kernel(FailingKernel(), LaunchConfig(grid_dim=1, block_dim=8), gmem)

    def test_invalid_launch_config(self, gmem):
        with pytest.raises(LaunchConfigurationError):
            launch_kernel(ScaleKernel(1), LaunchConfig(grid_dim=1, block_dim=4096), gmem)

    def test_default_kernel_has_single_phase(self):
        assert len(ScaleKernel(1).phases()) == 1
        assert str(ScaleKernel(1)) == "scale"


class TestStatistics:
    def test_warp_stats_and_divergence(self, gmem):
        stats = launch_kernel(DivergentKernel(), LaunchConfig(grid_dim=2, block_dim=32), gmem)
        assert stats.num_warps == 2
        assert stats.divergent_warps == 2
        for w in stats.warp_stats:
            assert w.max_multiplications == 10
            assert w.min_multiplications == 1
            assert w.diverged
        # Warp-serial counts use the per-warp maximum.
        assert stats.warp_serial_multiplications == 20
        assert stats.warp_serial_additions == 2
        assert stats.warp_serial_other_ops == 4

    def test_uniform_kernel_does_not_diverge(self, gmem):
        stats = launch_kernel(ScaleKernel(64), LaunchConfig(grid_dim=2, block_dim=32), gmem)
        assert stats.divergent_warps == 0

    def test_coalescing_collected(self, gmem):
        stats = launch_kernel(ScaleKernel(64), LaunchConfig(grid_dim=2, block_dim=32), gmem)
        # 8-byte reads: 32 per warp = 256 bytes = 2 transactions; same for
        # writes; 2 warps in total.
        assert stats.coalescing.global_read_transactions == 4
        assert stats.coalescing.global_write_transactions == 4
        assert stats.global_transactions == 8

    def test_memory_trace_can_be_dropped(self, gmem):
        stats = launch_kernel(ScaleKernel(64), LaunchConfig(grid_dim=2, block_dim=32), gmem,
                              collect_memory_trace=False)
        assert all(t.accesses == [] for t in stats.thread_traces)
        # The aggregated coalescing report is still available.
        assert stats.global_transactions == 8

    def test_summary_keys(self, gmem):
        stats = launch_kernel(ScaleKernel(64), LaunchConfig(grid_dim=2, block_dim=32), gmem)
        summary = stats.summary()
        for key in ("kernel", "blocks", "threads", "warps", "waves", "occupancy",
                    "multiplications", "global_transactions", "divergent_warps"):
            assert key in summary

    def test_per_multiprocessor_accounting(self, gmem):
        stats = launch_kernel(ScaleKernel(64), LaunchConfig(grid_dim=2, block_dim=32), gmem)
        per_sm = stats.warps_per_multiprocessor()
        assert sum(per_sm.values()) == 2
        # Each warp's busiest thread does one multiplication and the two
        # blocks land on different multiprocessors, so the critical path is 1.
        assert stats.critical_path_multiplications() == 1

    def test_critical_path_grows_when_blocks_share_a_multiprocessor(self, gmem):
        stats = launch_kernel(DivergentKernel(), LaunchConfig(grid_dim=15, block_dim=32), gmem)
        # 15 blocks on 14 multiprocessors: one multiprocessor executes two
        # warps whose busiest threads do 10 multiplications each.
        assert stats.critical_path_multiplications() == 20
