"""Tests for the GPU and CPU cost models."""

from __future__ import annotations

import pytest

from repro.gpusim import (
    CPUCostModel,
    GPUCostModel,
    GlobalMemory,
    Kernel,
    LaunchConfig,
    TESLA_C2050,
    launch_kernel,
)
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.polynomials.speelpenning import OperationCount


class WorkKernel(Kernel):
    """Every thread does a fixed number of multiplications and one read."""

    name = "work"

    def __init__(self, mults):
        self.mults = mults

    def run_thread(self, ctx):
        ctx.global_read("x", ctx.global_thread_id, tag="load")
        ctx.count_mul(self.mults)


def run_work(blocks=14, mults=100):
    gmem = GlobalMemory()
    gmem.store_array("x", [1.0] * (blocks * 32), 16)
    return launch_kernel(WorkKernel(mults), LaunchConfig(grid_dim=blocks, block_dim=32), gmem)


class TestGPUCostModel:
    def test_breakdown_components_are_positive(self):
        stats = run_work()
        breakdown = GPUCostModel().kernel_time(stats)
        assert breakdown.launch_overhead > 0
        assert breakdown.arithmetic > 0
        assert breakdown.memory_throughput > 0
        assert breakdown.memory_latency > 0
        assert breakdown.bank_conflicts == 0
        assert breakdown.total == pytest.approx(
            breakdown.launch_overhead + breakdown.arithmetic + breakdown.memory_throughput
            + breakdown.memory_latency + breakdown.bank_conflicts)
        assert set(breakdown.as_dict()) >= {"kernel", "total_s", "arithmetic_s"}

    def test_launch_overhead_dominates_small_launches(self):
        stats = run_work(blocks=1, mults=1)
        breakdown = GPUCostModel().kernel_time(stats)
        assert breakdown.launch_overhead > 0.5 * breakdown.total

    def test_arithmetic_scales_with_work_per_thread(self):
        cheap = GPUCostModel().kernel_time(run_work(mults=10)).arithmetic
        costly = GPUCostModel().kernel_time(run_work(mults=1000)).arithmetic
        assert costly == pytest.approx(100 * cheap, rel=1e-6)

    def test_arithmetic_flat_while_multiprocessors_fill(self):
        """Up to 14 blocks the per-SM critical path does not grow."""
        model = GPUCostModel()
        one = model.kernel_time(run_work(blocks=1)).arithmetic
        fourteen = model.kernel_time(run_work(blocks=14)).arithmetic
        twenty_eight = model.kernel_time(run_work(blocks=28)).arithmetic
        assert fourteen == pytest.approx(one)
        assert twenty_eight == pytest.approx(2 * one)

    def test_extended_precision_scales_arithmetic(self):
        stats = run_work()
        model = GPUCostModel()
        d = model.kernel_time(stats, DOUBLE).arithmetic
        dd = model.kernel_time(stats, DOUBLE_DOUBLE).arithmetic
        qd = model.kernel_time(stats, QUAD_DOUBLE).arithmetic
        assert dd == pytest.approx(8 * d)
        assert qd == pytest.approx(40 * d)

    def test_evaluation_time_sums_kernels(self):
        stats = run_work()
        model = GPUCostModel()
        single = model.kernel_time(stats).total
        assert model.evaluation_time([stats, stats]) == pytest.approx(2 * single)

    def test_custom_constants(self):
        stats = run_work()
        slow_launch = GPUCostModel(kernel_launch_overhead_s=1.0)
        assert slow_launch.kernel_time(stats).launch_overhead == 1.0


class TestCPUCostModel:
    def test_time_formula(self):
        model = CPUCostModel()
        ops = OperationCount(multiplications=1000, additions=500)
        expected = (1000 * model.cycles_per_complex_multiplication
                    + 500 * model.cycles_per_complex_addition) / model.host.clock_hz
        assert model.evaluation_time(ops) == pytest.approx(expected)

    def test_double_double_costs_factor_eight(self):
        """The paper's observation from [40]: the double-double overhead
        factor is around 8."""
        model = CPUCostModel()
        ops = OperationCount(multiplications=1000, additions=200)
        ratio = model.evaluation_time(ops, DOUBLE_DOUBLE) / model.evaluation_time(ops, DOUBLE)
        assert ratio == pytest.approx(8.0)

    def test_multicore_time_divides_by_cores(self):
        model = CPUCostModel()
        ops = OperationCount(multiplications=10000)
        sequential = model.evaluation_time(ops)
        parallel = model.multicore_time(ops, cores=4, efficiency=1.0)
        assert parallel == pytest.approx(sequential / 4)

    def test_multicore_defaults_to_host_cores(self):
        model = CPUCostModel()
        ops = OperationCount(multiplications=6000)
        assert model.multicore_time(ops) < model.evaluation_time(ops)

    def test_zero_ops(self):
        assert CPUCostModel().evaluation_time(OperationCount()) == 0.0


class TestSpeedupShape:
    def test_gpu_beats_cpu_at_paper_scale_work(self):
        """A 1024-monomial-like amount of work should show a double-digit
        advantage for the device, as the paper's clock-ratio argument hopes."""
        stats = run_work(blocks=32, mults=41)
        gpu = GPUCostModel().evaluation_time([stats, stats, stats])
        cpu = CPUCostModel().evaluation_time(OperationCount(multiplications=1024 * 55,
                                                            additions=1024 * 10))
        assert cpu / gpu > 5.0
