"""Golden regression tests for the GPU cost model.

The cost model is the calibrated analytic heart of every predicted table in
the repository: silent drift in its constants or formulas would corrupt all
paper comparisons without failing a functional test.  These tests pin the
model's full output -- per-kernel breakdowns, evaluation times, and the
batched-launch pricing -- for three canonical launches to values serialized
in ``golden_costmodel.json``.

On intentional model changes regenerate the file with

    REGEN_COSTMODEL_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/gpusim/test_costmodel_golden.py -q

and commit the diff together with the reasoning behind the new constants.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core import GPUEvaluator
from repro.gpusim import GPUCostModel
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.polynomials.generators import random_point, random_regular_system

GOLDEN_PATH = Path(__file__).with_name("golden_costmodel.json")
REGEN = bool(os.environ.get("REGEN_COSTMODEL_GOLDEN"))

#: The four canonical launches: (name, (n, m, k, d), seed, context).
CANONICAL = [
    ("small_double", (4, 4, 2, 3), 101, DOUBLE),
    ("small_double_double", (4, 4, 2, 3), 101, DOUBLE_DOUBLE),
    ("small_quad_double", (4, 4, 2, 3), 101, QUAD_DOUBLE),
    ("wide_double", (8, 8, 3, 2), 202, DOUBLE),
]


def compute_entry(shape, seed, context) -> dict:
    n, m, k, d = shape
    system = random_regular_system(n, m, k, d, seed=seed)
    evaluator = GPUEvaluator(system, context=context, collect_memory_trace=False)
    evaluation = evaluator.evaluate(random_point(n, seed=seed + 1))
    model = GPUCostModel()

    kernels = {}
    for stats in evaluation.launch_stats:
        kernels[stats.kernel_name] = model.kernel_time(stats, context).as_dict()
    return {
        "shape": {"n": n, "m": m, "k": k, "d": d, "seed": seed},
        "context": context.name,
        "kernels": kernels,
        "evaluation_time_s": model.evaluation_time(evaluation.launch_stats, context),
        "batched_evaluation_time_s_32": model.batched_evaluation_time(
            evaluation.launch_stats, 32, context),
        "batched_evaluation_time_s_1": model.batched_evaluation_time(
            evaluation.launch_stats, 1, context),
    }


def compute_all() -> dict:
    return {name: compute_entry(shape, seed, context)
            for name, shape, seed, context in CANONICAL}


def _assert_close(path: str, expected, actual, rel: float = 1e-9) -> None:
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: structure changed"
        assert set(expected) == set(actual), (
            f"{path}: keys drifted: {sorted(set(expected) ^ set(actual))}")
        for key in expected:
            _assert_close(f"{path}.{key}", expected[key], actual[key], rel)
        return
    if isinstance(expected, float):
        scale = max(abs(expected), 1e-300)
        assert abs(actual - expected) <= rel * scale, (
            f"GPU cost model drift at {path}: expected {expected!r}, got "
            f"{actual!r}.  If this change is intentional, regenerate the "
            f"golden file (see module docstring) and justify the new "
            f"calibration in the commit."
        )
        return
    assert expected == actual, f"{path}: {expected!r} != {actual!r}"


@pytest.fixture(scope="module")
def golden() -> dict:
    if REGEN or not GOLDEN_PATH.exists():
        data = compute_all()
        GOLDEN_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                               encoding="utf-8")
        return data
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestCostModelGolden:
    def test_golden_file_exists(self, golden):
        assert GOLDEN_PATH.exists()
        assert set(golden) == {name for name, *_ in CANONICAL}

    @pytest.mark.parametrize("name,shape,seed,context", CANONICAL,
                             ids=[c[0] for c in CANONICAL])
    def test_launch_costs_match_golden(self, golden, name, shape, seed, context):
        actual = compute_entry(shape, seed, context)
        _assert_close(name, golden[name], actual)

    def test_batched_pricing_amortises_only_launch_overhead(self, golden):
        for name, entry in golden.items():
            per_path_batched = entry["batched_evaluation_time_s_32"] / 32.0
            sequential = entry["evaluation_time_s"]
            # batching must win, and the win must be exactly the launch
            # overhead share (31/32 of it per kernel launch)
            assert per_path_batched < sequential
            launches = len(entry["kernels"])
            overhead = sum(k["launch_overhead_s"] for k in entry["kernels"].values())
            expected = sequential - overhead * (31.0 / 32.0)
            assert per_path_batched == pytest.approx(expected, rel=1e-12)

    def test_batch_size_one_is_the_sequential_cost(self, golden):
        for entry in golden.values():
            assert entry["batched_evaluation_time_s_1"] == pytest.approx(
                entry["evaluation_time_s"], rel=1e-12)
