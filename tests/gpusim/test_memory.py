"""Tests for the simulated memory spaces."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ConstantMemoryOverflow,
    MemoryAccessError,
    SharedMemoryOverflow,
)
from repro.gpusim import ConstantMemory, GlobalMemory, SharedMemory
from repro.gpusim.memory import MemoryAccess


class TestGlobalMemory:
    def test_allocate_read_write(self):
        g = GlobalMemory()
        g.allocate("X", 4, 16, fill=0j)
        g.write("X", 2, 1 + 2j)
        assert g.read("X", 2) == 1 + 2j
        assert g.read("X", 0) == 0j
        assert g.array_length("X") == 4
        assert g.element_bytes("X") == 16
        assert g.has_array("X") and not g.has_array("Y")
        assert g.array_names() == ("X",)

    def test_store_array(self):
        g = GlobalMemory()
        g.store_array("C", [1j, 2j, 3j], 16)
        assert g.snapshot("C") == [1j, 2j, 3j]

    def test_double_allocation_rejected(self):
        g = GlobalMemory()
        g.allocate("X", 1, 16)
        with pytest.raises(ConfigurationError):
            g.allocate("X", 1, 16)

    def test_bounds_checking(self):
        g = GlobalMemory()
        g.allocate("X", 3, 16)
        with pytest.raises(MemoryAccessError):
            g.read("X", 3)
        with pytest.raises(MemoryAccessError):
            g.write("X", -1, 0j)
        with pytest.raises(MemoryAccessError):
            g.read("Y", 0)
        with pytest.raises(MemoryAccessError):
            g.snapshot("Y")

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalMemory().allocate("X", -1, 8)

    def test_capacity_enforced(self):
        g = GlobalMemory(capacity_bytes=64)
        g.allocate("A", 2, 16)
        with pytest.raises(MemoryAccessError):
            g.allocate("B", 3, 16)
        assert g.bytes_allocated == 32
        assert g.capacity_bytes == 64

    def test_access_record(self):
        g = GlobalMemory()
        g.allocate("X", 4, 16)
        record = g.access_record("read", "X", 3, tag="load")
        assert isinstance(record, MemoryAccess)
        assert record.space == "global"
        assert record.byte_address == 48


class TestSharedMemory:
    def test_capacity_matches_fermi_default(self):
        s = SharedMemory()
        assert s.capacity_bytes == 49152
        assert s.banks == 32

    def test_overflow_raises_dedicated_error(self):
        s = SharedMemory(capacity_bytes=128)
        s.allocate("A", 4, 16)
        with pytest.raises(SharedMemoryOverflow):
            s.allocate("B", 5, 16)

    def test_paper_budget_fits(self):
        """Section 3.2: n = 70, k = 35, complex double double: 36,864 bytes
        of workspace plus 2,240 bytes of variables fit below 49,152."""
        s = SharedMemory()
        s.allocate("workspace", 32 * 36, 32)   # 32 threads x (k+1) cdd values
        s.allocate("variables", 70, 32)
        assert s.bytes_allocated == 36864 + 2240
        assert s.capacity_bytes - s.bytes_allocated > 10000

    def test_bank_mapping(self):
        s = SharedMemory()
        s.allocate("A", 64, 4)
        assert s.bank_of("A", 0) == 0
        assert s.bank_of("A", 1) == 1
        assert s.bank_of("A", 32) == 0
        s.allocate("B", 8, 16)  # starts right after A (256 bytes = bank 0)
        assert s.bank_of("B", 0) == 0
        assert s.bank_of("B", 1) == 4

    def test_read_write(self):
        s = SharedMemory()
        s.allocate("A", 2, 8, fill=0.0)
        s.write("A", 1, 3.5)
        assert s.read("A", 1) == 3.5


class TestConstantMemory:
    def test_capacity_is_64k(self):
        c = ConstantMemory()
        assert c.capacity_bytes == 65536

    def test_overflow_error(self):
        c = ConstantMemory(capacity_bytes=8)
        c.store_array("P", [1, 2, 3, 4], 1)
        with pytest.raises(ConstantMemoryOverflow):
            c.store_array("E", [1] * 5, 1)

    def test_freeze_makes_read_only(self):
        c = ConstantMemory()
        c.store_array("P", [1, 2, 3], 1)
        c.freeze()
        assert c.read("P", 1) == 2
        with pytest.raises(MemoryAccessError):
            c.write("P", 0, 9)
        with pytest.raises(MemoryAccessError):
            c.allocate("Q", 2, 1)

    def test_writes_allowed_before_freeze(self):
        c = ConstantMemory()
        c.allocate("P", 2, 1, fill=0)
        c.write("P", 0, 7)
        assert c.read("P", 0) == 7
