"""Tests for the sequential reference evaluators (naive and factored)."""

from __future__ import annotations

import pytest

from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import (
    evaluate_factored,
    evaluate_naive,
    power_table,
    random_point,
    random_regular_system,
    speelpenning_system,
)
from repro.polynomials.speelpenning import OperationCount


@pytest.fixture(scope="module")
def system():
    return random_regular_system(dimension=5, monomials_per_polynomial=4,
                                 variables_per_monomial=3, max_variable_degree=4, seed=11)


@pytest.fixture(scope="module")
def point():
    return random_point(5, seed=3)


class TestPowerTable:
    def test_contents(self):
        table = power_table([2.0, 3.0], max_degree=5)
        # table[i][j] == x_i ** j for j = 0 .. max_degree - 1
        assert table[0][:5] == [1.0, 2.0, 4.0, 8.0, 16.0]
        assert table[1][:5] == [1.0, 3.0, 9.0, 27.0, 81.0]

    def test_degree_one(self):
        table = power_table([2.0], max_degree=1)
        assert table[0][0] == 1.0

    def test_with_context(self):
        table = power_table(DOUBLE_DOUBLE.vector([2.0]), max_degree=4,
                            context=DOUBLE_DOUBLE)
        assert [v.to_complex() for v in table[0]] == [1, 2, 4, 8]


class TestAgreement:
    def test_values_and_jacobian_agree(self, system, point):
        naive = evaluate_naive(system, point)
        factored = evaluate_factored(system, point)
        for a, b in zip(naive.values, factored.values):
            assert a == pytest.approx(b, rel=1e-12)
        for row_a, row_b in zip(naive.jacobian, factored.jacobian):
            for a, b in zip(row_a, row_b):
                assert a == pytest.approx(b, rel=1e-12, abs=1e-12)

    def test_agreement_in_double_double(self, system, point):
        converted = DOUBLE_DOUBLE.vector(point)
        naive = evaluate_naive(system, converted, context=DOUBLE_DOUBLE)
        factored = evaluate_factored(system, converted, context=DOUBLE_DOUBLE)
        for a, b in zip(naive.values, factored.values):
            assert abs(a.to_complex() - b.to_complex()) < 1e-25

    def test_jacobian_matches_analytic_derivatives(self, system, point):
        factored = evaluate_factored(system, point)
        for i, poly in enumerate(system):
            for j in range(system.dimension):
                analytic = poly.derivative(j).evaluate(point)
                assert factored.jacobian[i][j] == pytest.approx(analytic, rel=1e-11, abs=1e-12)

    def test_speelpenning_system_known_values(self):
        s = speelpenning_system(5)
        point = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = evaluate_factored(s, point)
        assert result.values[0] == pytest.approx(120 - 1)
        assert result.jacobian[0][0] == pytest.approx(120 / 1)
        assert result.jacobian[0][4] == pytest.approx(120 / 5)


class TestOperationCounts:
    def test_factored_count_matches_formulas(self, system, point):
        result = evaluate_factored(system, point)
        shape = system.require_regular()
        n, m, k = shape.dimension, shape.monomials_per_polynomial, shape.variables_per_monomial
        d = shape.max_variable_degree
        nm = n * m
        expected_mults = (n * (d - 2)               # power table
                          + nm * (k - 1)            # common factors
                          + nm * (5 * k - 4))       # kernel-2 equivalent work
        assert result.operations.multiplications == expected_mults
        # One addition per monomial value plus one per monomial derivative.
        assert result.operations.additions == nm * (k + 1)

    def test_factored_cheaper_than_naive(self, system, point):
        fast = evaluate_factored(system, point).operations
        slow = evaluate_naive(system, point).operations
        assert fast.multiplications < slow.multiplications

    def test_result_tuple_helper(self, system, point):
        result = evaluate_naive(system, point)
        values, jacobian = result.as_tuple()
        assert values is result.values and jacobian is result.jacobian
        assert isinstance(result.operations, OperationCount)
