"""Tests for sparse polynomials."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.multiprec import DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial


def example_polynomial() -> Polynomial:
    # f = (2+i) x0^2 x1 + 3 x1 x2 - 1
    return Polynomial([
        (2 + 1j, Monomial((0, 1), (2, 1))),
        (3 + 0j, Monomial((1, 2), (1, 1))),
        (-1 + 0j, Monomial((), ())),
    ])


class TestConstruction:
    def test_basic_structure(self):
        p = example_polynomial()
        assert p.num_terms == 3
        assert p.total_degree == 3
        assert p.max_variable_degree == 2
        assert p.max_variables_per_monomial == 2
        assert p.variables() == (0, 1, 2)

    def test_zero_coefficients_dropped(self):
        p = Polynomial([(0j, Monomial((0,), (1,))), (1 + 0j, Monomial((1,), (1,)))])
        assert p.num_terms == 1

    def test_invalid_term(self):
        with pytest.raises(ConfigurationError):
            Polynomial([(1.0, "x0")])

    def test_from_support(self):
        p = Polynomial.from_support([1 + 0j, 2 + 0j], [(2, 0), (0, 1)])
        assert p.num_terms == 2
        assert p.support(2) == ((2, 0), (0, 1))
        assert p.coefficients() == (1 + 0j, 2 + 0j)

    def test_from_support_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Polynomial.from_support([1 + 0j], [(1, 0), (0, 1)])

    def test_zero_polynomial(self):
        z = Polynomial.zero()
        assert z.num_terms == 0
        assert z.evaluate([1.0]) == 0j
        assert str(z) == "0"

    def test_len_iter_str(self):
        p = example_polynomial()
        assert len(p) == 3
        assert len(list(p)) == 3
        assert "x0^2" in str(p)

    def test_equality_is_canonical(self):
        a = Polynomial([(1 + 0j, Monomial((0,), (1,))), (2 + 0j, Monomial((0,), (1,)))])
        b = Polynomial([(3 + 0j, Monomial((0,), (1,)))])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert example_polynomial() != Polynomial.zero()


class TestEvaluation:
    def test_evaluate_at_simple_point(self):
        p = example_polynomial()
        x = [1.0, 2.0, 3.0]
        expected = (2 + 1j) * 1 * 2 + 3 * 2 * 3 - 1
        assert p.evaluate(x) == expected

    def test_evaluate_with_context(self):
        p = example_polynomial()
        x = DOUBLE_DOUBLE.vector([1.0, 2.0, 3.0])
        value = p.evaluate(x, context=DOUBLE_DOUBLE)
        assert value.to_complex() == (2 + 1j) * 2 + 18 - 1

    def test_empty_polynomial_with_context(self):
        assert Polynomial.zero().evaluate([], context=DOUBLE_DOUBLE).to_complex() == 0j


class TestCalculus:
    def test_derivative(self):
        p = example_polynomial()
        dp0 = p.derivative(0)
        # d/dx0 = 2(2+i) x0 x1
        assert dp0.num_terms == 1
        coeff, mono = dp0.terms[0]
        assert coeff == 2 * (2 + 1j)
        assert mono == Monomial((0, 1), (1, 1))

    def test_derivative_of_constant_term_vanishes(self):
        p = Polynomial([(5 + 0j, Monomial((), ()))])
        assert p.derivative(0).num_terms == 0

    def test_gradient_length(self):
        p = example_polynomial()
        grad = p.gradient(3)
        assert len(grad) == 3
        assert grad[2].num_terms == 1

    def test_derivative_matches_difference_quotient(self):
        p = example_polynomial()
        x = [0.3 + 0.1j, -0.7 + 0.2j, 1.1 - 0.4j]
        h = 1e-7
        for i in range(3):
            xp = list(x)
            xp[i] = xp[i] + h
            numeric = (p.evaluate(xp) - p.evaluate(x)) / h
            analytic = p.derivative(i).evaluate(x)
            assert numeric == pytest.approx(analytic, rel=1e-5)


class TestAlgebra:
    def test_addition(self):
        p = example_polynomial()
        q = p + Polynomial([(1 + 0j, Monomial((), ()))])
        assert q.evaluate([1.0, 1.0, 1.0]) == p.evaluate([1.0, 1.0, 1.0]) + 1

    def test_scalar_multiplication(self):
        p = example_polynomial()
        assert (2 * p).evaluate([1.0, 2.0, 0.5]) == 2 * p.evaluate([1.0, 2.0, 0.5])
        assert (p * 2).evaluate([1.0, 2.0, 0.5]) == 2 * p.evaluate([1.0, 2.0, 0.5])

    def test_polynomial_product(self):
        a = Polynomial([(1 + 0j, Monomial((0,), (1,)))])
        b = Polynomial([(1 + 0j, Monomial((0,), (1,))), (1 + 0j, Monomial((), ()))])
        prod = a * b
        # x * (x + 1) = x^2 + x
        assert prod.evaluate([3.0]) == 12.0

    def test_negation_and_subtraction(self):
        p = example_polynomial()
        assert (p - p).evaluate([1.0, 2.0, 3.0]) == 0j
        assert (-p).evaluate([1.0, 2.0, 3.0]) == -p.evaluate([1.0, 2.0, 3.0])
