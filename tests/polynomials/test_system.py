"""Tests for polynomial systems and their Jacobians."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.multiprec import DOUBLE_DOUBLE
from repro.polynomials import (
    Monomial,
    Polynomial,
    PolynomialSystem,
    SystemShape,
    random_regular_system,
    speelpenning_system,
)


def small_regular_system():
    return random_regular_system(dimension=4, monomials_per_polynomial=3,
                                 variables_per_monomial=2, max_variable_degree=3, seed=0)


class TestConstruction:
    def test_dimensions(self):
        s = small_regular_system()
        assert s.dimension == 4
        assert s.num_polynomials == 4
        assert s.num_variables == 4
        assert s.is_square()
        assert len(s) == 4
        assert s.total_monomials == 12

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PolynomialSystem([])

    def test_variable_out_of_range_rejected(self):
        p = Polynomial([(1 + 0j, Monomial((5,), (1,)))])
        with pytest.raises(ConfigurationError):
            PolynomialSystem([p], dimension=3)

    def test_explicit_dimension(self):
        p = Polynomial([(1 + 0j, Monomial((0,), (1,)))])
        s = PolynomialSystem([p], dimension=3)
        assert s.dimension == 3
        assert not s.is_square()

    def test_indexing_and_iteration(self):
        s = small_regular_system()
        assert isinstance(s[0], Polynomial)
        assert len(list(s)) == 4

    def test_str(self):
        assert "f0:" in str(small_regular_system())


class TestSupportRepresentation:
    def test_coefficient_support_roundtrip(self):
        s = small_regular_system()
        rebuilt = PolynomialSystem.from_support(s.coefficients(), s.supports())
        point = [0.5 + 0.5j] * 4
        assert rebuilt.evaluate(point) == s.evaluate(point)

    def test_from_support_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            PolynomialSystem.from_support([[1 + 0j]], [])


class TestRegularity:
    def test_regular_system_shape(self):
        s = small_regular_system()
        shape = s.regularity()
        assert shape == SystemShape(dimension=4, monomials_per_polynomial=3,
                                    variables_per_monomial=2,
                                    max_variable_degree=shape.max_variable_degree)
        assert shape.max_variable_degree <= 3
        assert shape.total_monomials == 12
        assert shape.jacobian_entries == 16
        assert "n=4" in str(shape)

    def test_require_regular_passes(self):
        assert small_regular_system().require_regular() is not None

    def test_irregular_term_counts(self):
        p1 = Polynomial([(1 + 0j, Monomial((0,), (1,)))])
        p2 = Polynomial([(1 + 0j, Monomial((0,), (1,))), (1 + 0j, Monomial((1,), (1,)))])
        s = PolynomialSystem([p1, p2])
        assert s.regularity() is None
        with pytest.raises(ConfigurationError):
            s.require_regular()

    def test_irregular_variable_counts(self):
        p1 = Polynomial([(1 + 0j, Monomial((0,), (1,))), (1 + 0j, Monomial((1,), (2,)))])
        p2 = Polynomial([(1 + 0j, Monomial((0, 1), (1, 1))), (1 + 0j, Monomial((1,), (1,)))])
        s = PolynomialSystem([p1, p2])
        assert s.regularity() is None


class TestEvaluation:
    def test_evaluate_length_checks(self):
        s = small_regular_system()
        with pytest.raises(ConfigurationError):
            s.evaluate([1.0] * 3)
        with pytest.raises(ConfigurationError):
            s.evaluate_jacobian([1.0] * 5)

    def test_jacobian_shape(self):
        s = small_regular_system()
        jac = s.evaluate_jacobian([0.5 + 0.1j] * 4)
        assert len(jac) == 4 and all(len(row) == 4 for row in jac)

    def test_jacobian_polynomials_match_evaluation(self):
        s = small_regular_system()
        point = [0.3 - 0.2j, 1.1 + 0.4j, -0.5 + 0.9j, 0.8 + 0.1j]
        jp = s.jacobian_polynomials()
        jac = s.evaluate_jacobian(point)
        for i in range(4):
            for j in range(4):
                assert jp[i][j].evaluate(point) == pytest.approx(jac[i][j], rel=1e-12)

    def test_jacobian_matches_finite_differences(self):
        s = small_regular_system()
        point = [0.4 + 0.2j, -0.3 + 0.7j, 0.9 - 0.1j, 0.2 + 0.5j]
        values, jac = s.evaluate_with_jacobian(point)
        h = 1e-7
        for j in range(4):
            shifted = list(point)
            shifted[j] = shifted[j] + h
            shifted_values = s.evaluate(shifted)
            for i in range(4):
                numeric = (shifted_values[i] - values[i]) / h
                assert numeric == pytest.approx(jac[i][j], rel=1e-4, abs=1e-6)

    def test_evaluation_in_double_double_matches_double(self):
        s = small_regular_system()
        point = [0.4 + 0.2j, -0.3 + 0.7j, 0.9 - 0.1j, 0.2 + 0.5j]
        plain = s.evaluate(point)
        extended = s.evaluate(DOUBLE_DOUBLE.vector(point), context=DOUBLE_DOUBLE)
        for a, b in zip(plain, extended):
            assert a == pytest.approx(b.to_complex(), rel=1e-13)

    def test_speelpenning_system(self):
        s = speelpenning_system(4)
        assert s.dimension == 4
        values = s.evaluate([1.0, 1.0, 1.0, 1.0])
        assert values == [1 - (i + 1) for i in range(4)]
        jac = s.evaluate_jacobian([1.0, 2.0, 3.0, 4.0])
        # d(x0 x1 x2 x3)/dx0 at (1,2,3,4) is 24.
        assert jac[0][0] == 24.0
