"""Tests for the Speelpenning forward/backward differentiation sweep."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.multiprec import DOUBLE_DOUBLE
from repro.polynomials import (
    OperationCount,
    expected_gradient_multiplications,
    naive_gradient,
    speelpenning_gradient,
    speelpenning_value,
)

factor_lists = st.lists(
    st.builds(complex,
              st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
              st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)),
    min_size=0, max_size=12,
)


class TestOperationCount:
    def test_add_and_iadd(self):
        a = OperationCount(3, 2)
        b = OperationCount(1, 1)
        assert a.add(b) == OperationCount(4, 3)
        a += b
        assert a == OperationCount(4, 3)

    def test_expected_formula(self):
        assert expected_gradient_multiplications(0) == 0
        assert expected_gradient_multiplications(1) == 0
        assert expected_gradient_multiplications(2) == 0
        assert expected_gradient_multiplications(3) == 3
        assert expected_gradient_multiplications(9) == 21
        assert expected_gradient_multiplications(16) == 42

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            expected_gradient_multiplications(-1)


class TestSpeelpenningValue:
    def test_empty_product(self):
        value, count = speelpenning_value([])
        assert value == 1.0
        assert count.multiplications == 0

    def test_product_and_count(self):
        value, count = speelpenning_value([2.0, 3.0, 4.0])
        assert value == 24.0
        assert count.multiplications == 2


class TestSpeelpenningGradient:
    def test_k0(self):
        grad, count = speelpenning_gradient([])
        assert grad == []
        assert count.multiplications == 0

    def test_k1(self):
        grad, count = speelpenning_gradient([5.0])
        assert grad == [1.0]
        assert count.multiplications == 0

    def test_k2(self):
        grad, count = speelpenning_gradient([2.0, 7.0])
        assert grad == [7.0, 2.0]
        assert count.multiplications == 0

    def test_k3_classic(self):
        grad, count = speelpenning_gradient([2.0, 3.0, 5.0])
        assert grad == [15.0, 10.0, 6.0]
        assert count.multiplications == 3

    def test_k5_values(self):
        xs = [2.0, 3.0, 5.0, 7.0, 11.0]
        grad, count = speelpenning_gradient(xs)
        total = 2 * 3 * 5 * 7 * 11
        assert grad == [total / x for x in xs]
        assert count.multiplications == 3 * 5 - 6

    @given(factor_lists)
    def test_matches_naive_gradient(self, xs):
        grad, _ = speelpenning_gradient(xs)
        expected, _ = naive_gradient(xs)
        assert len(grad) == len(expected)
        for g, e in zip(grad, expected):
            assert g == pytest.approx(e, rel=1e-9, abs=1e-12)

    @given(st.integers(min_value=0, max_value=40))
    def test_multiplication_count_is_exactly_3k_minus_6(self, k):
        xs = [complex(1.0 + 0.01 * i, 0.02 * i) for i in range(k)]
        _, count = speelpenning_gradient(xs)
        assert count.multiplications == expected_gradient_multiplications(k)

    @given(st.integers(min_value=3, max_value=20))
    def test_cheaper_than_naive(self, k):
        xs = [1.0 + i for i in range(k)]
        _, fast = speelpenning_gradient(xs)
        _, slow = naive_gradient(xs)
        assert slow.multiplications == k * (k - 2)
        # 3k-6 <= k(k-2) with equality only at k = 3.
        if k == 3:
            assert fast.multiplications == slow.multiplications
        else:
            assert fast.multiplications < slow.multiplications

    def test_gradient_derivative_identity(self):
        """x_j * d/dx_j (prod x) == prod x for every j."""
        xs = [1.5 - 0.5j, 2.0 + 1.0j, -0.75 + 0.25j, 0.5 + 0.5j]
        product, _ = speelpenning_value(xs)
        grad, _ = speelpenning_gradient(xs)
        for x, g in zip(xs, grad):
            assert x * g == pytest.approx(product, rel=1e-12)

    def test_works_with_double_double_scalars(self):
        xs = DOUBLE_DOUBLE.vector([2.0, 3.0, 5.0, 7.0])
        grad, count = speelpenning_gradient(xs)
        assert count.multiplications == 6
        values = [g.to_complex() for g in grad]
        assert values == [105 + 0j, 70 + 0j, 42 + 0j, 30 + 0j]

    def test_zeros_are_handled(self):
        grad, _ = speelpenning_gradient([0.0, 2.0, 3.0])
        assert grad == [6.0, 0.0, 0.0]


class TestNaiveGradient:
    def test_k1(self):
        grad, count = naive_gradient([3.0])
        assert grad == [1.0]
        assert count.multiplications == 0

    def test_count_formula(self):
        _, count = naive_gradient([1.0] * 6)
        assert count.multiplications == 6 * 4
