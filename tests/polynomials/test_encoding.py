"""Tests for the constant-memory support encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConstantMemoryOverflow
from repro.polynomials import (
    PackedSupportEncoding,
    SupportEncoding,
    constant_memory_footprint,
    max_total_monomials_for_constant_memory,
    random_regular_system,
    table2_system,
)


@pytest.fixture(scope="module")
def system():
    return random_regular_system(dimension=6, monomials_per_polynomial=4,
                                 variables_per_monomial=3, max_variable_degree=5, seed=7)


class TestSupportEncoding:
    def test_lengths(self, system):
        enc = SupportEncoding.from_system(system)
        assert enc.total_monomials == 24
        assert enc.variables_per_monomial == 3
        assert len(enc.positions) == 24 * 3
        assert len(enc.exponents) == 24 * 3
        assert enc.positions.dtype == np.uint8
        assert enc.bytes_used == 2 * 24 * 3

    def test_roundtrip_against_system(self, system):
        enc = SupportEncoding.from_system(system)
        index = 0
        for poly in system:
            for _, mono in poly.terms:
                pos, exp = enc.decode_monomial(index)
                assert pos == mono.positions
                assert exp == mono.exponents
                index += 1

    def test_monomial_entry(self, system):
        enc = SupportEncoding.from_system(system)
        first = system[0].terms[0][1]
        p, e = enc.monomial_entry(0, 1)
        assert p == first.positions[1]
        assert e == first.exponents[1]

    def test_entry_bounds_checked(self, system):
        enc = SupportEncoding.from_system(system)
        with pytest.raises(IndexError):
            enc.monomial_entry(24, 0)
        with pytest.raises(IndexError):
            enc.monomial_entry(0, 3)

    def test_exponents_stored_minus_one(self, system):
        enc = SupportEncoding.from_system(system)
        # Raw storage is exponent - 1, so the minimum stored value is 0.
        assert int(enc.exponents.min()) >= 0
        first = system[0].terms[0][1]
        assert int(enc.exponents[0]) == first.exponents[0] - 1

    def test_fits_and_requires(self, system):
        enc = SupportEncoding.from_system(system)
        assert enc.fits_in(65536)
        enc.require_fits(65536)
        assert not enc.fits_in(10)
        with pytest.raises(ConstantMemoryOverflow):
            enc.require_fits(10)

    def test_paper_capacity_limit(self):
        """The paper: 2,048 monomials with k = 16 no longer fit in 64 KiB.

        2,048 monomials need exactly 65,536 bytes for the two support tables,
        i.e. the entire constant memory with no room left for anything else
        (kernel arguments and other constants also live there), while 1,536
        monomials leave ample headroom.
        """
        assert constant_memory_footprint(1536, 16) == 49152
        assert constant_memory_footprint(1536, 16) < 65536
        assert constant_memory_footprint(2048, 16) >= 65536

    def test_requires_regular_system(self):
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem
        irregular = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (1,)))]),
            Polynomial([(1 + 0j, Monomial((0,), (1,))), (1 + 0j, Monomial((1,), (1,)))]),
        ])
        with pytest.raises(ConfigurationError):
            SupportEncoding.from_system(irregular)


class TestPackedEncoding:
    def test_roundtrip(self, system):
        enc = PackedSupportEncoding.from_system(system)
        plain = SupportEncoding.from_system(system)
        for i in range(enc.total_monomials):
            assert enc.decode_monomial(i) == plain.decode_monomial(i)

    def test_sizes(self, system):
        enc = PackedSupportEncoding.from_system(system)
        assert enc.packed.dtype == np.uint16
        assert enc.bytes_used == 2 * 24 * 3
        assert enc.fits_in(65536)
        enc.require_fits(65536)
        with pytest.raises(ConstantMemoryOverflow):
            enc.require_fits(16)

    def test_entry_bounds(self, system):
        enc = PackedSupportEncoding.from_system(system)
        with pytest.raises(IndexError):
            enc.monomial_entry(-1, 0)
        with pytest.raises(IndexError):
            enc.monomial_entry(0, 99)

    def test_degree_limit(self):
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem
        big_degree = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (100,)))]),
        ])
        with pytest.raises(ConfigurationError):
            PackedSupportEncoding.from_system(big_degree)

    def test_table2_fits_both_ways(self):
        system = table2_system(704, seed=1)
        assert SupportEncoding.from_system(system).fits_in()
        assert PackedSupportEncoding.from_system(system).fits_in()


class TestFootprintHelpers:
    def test_paper_examples(self):
        # Dimension 30: 900 monomials, k = 15 -> <= 30,000 bytes.
        assert constant_memory_footprint(900, 15) == 900 * 2 * 15
        assert constant_memory_footprint(900, 15) <= 30000
        # Dimension 40: 1,600 monomials, k = 20 -> 64,000 bytes.
        assert constant_memory_footprint(1600, 20) == 64000

    def test_max_monomials(self):
        assert max_total_monomials_for_constant_memory(16) == 65536 // 32 == 2048
        assert max_total_monomials_for_constant_memory(9) >= 1536
