"""Tests for the sparse monomial representation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.polynomials import Monomial


def sparse_monomials(max_dim=8, max_degree=6):
    """Hypothesis strategy for random sparse monomials."""
    return st.builds(
        lambda positions, exponents: Monomial(
            tuple(sorted(positions)), tuple(exponents[:len(positions)] or ())
        ),
        st.lists(st.integers(0, max_dim - 1), unique=True, min_size=1, max_size=max_dim),
        st.lists(st.integers(1, max_degree), min_size=max_dim, max_size=max_dim),
    )


class TestConstruction:
    def test_basic(self):
        m = Monomial((0, 2, 5), (3, 7, 2))
        assert m.num_variables == 3
        assert m.total_degree == 12
        assert m.max_exponent == 7

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Monomial((0, 1), (1,))

    def test_zero_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            Monomial((0,), (0,))

    def test_negative_position_rejected(self):
        with pytest.raises(ConfigurationError):
            Monomial((-1,), (1,))

    def test_unsorted_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            Monomial((2, 1), (1, 1))

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            Monomial((1, 1), (1, 1))

    def test_constant_monomial(self):
        one = Monomial((), ())
        assert one.num_variables == 0
        assert one.total_degree == 0
        assert str(one) == "1"
        assert one.evaluate([1 + 2j, 5]) == 1.0

    def test_from_dense_exponents(self):
        m = Monomial.from_dense_exponents([0, 3, 0, 1])
        assert m.positions == (1, 3)
        assert m.exponents == (3, 1)

    def test_from_dict(self):
        m = Monomial.from_dict({5: 2, 1: 1, 3: 0})
        assert m.positions == (1, 5)
        assert m.exponents == (1, 2)

    def test_frozen(self):
        m = Monomial((0,), (1,))
        with pytest.raises(AttributeError):
            m.positions = (1,)

    def test_str(self):
        assert str(Monomial((0, 2), (1, 3))) == "x0*x2^3"


class TestStructure:
    def test_dense_exponents(self):
        m = Monomial((1, 3), (2, 5))
        assert m.dense_exponents(5) == (0, 2, 0, 5, 0)

    def test_dense_exponents_dimension_too_small(self):
        with pytest.raises(ConfigurationError):
            Monomial((4,), (1,)).dense_exponents(3)

    def test_exponent_of_and_contains(self):
        m = Monomial((1, 3), (2, 5))
        assert m.exponent_of(3) == 5
        assert m.exponent_of(0) == 0
        assert m.contains(1) and not m.contains(2)

    def test_iteration_and_len(self):
        m = Monomial((1, 3), (2, 5))
        assert list(m) == [(1, 2), (3, 5)]
        assert len(m) == 2

    @given(sparse_monomials())
    def test_dense_roundtrip(self, m):
        dense = m.dense_exponents(8)
        assert Monomial.from_dense_exponents(dense) == m


class TestCommonFactor:
    def test_paper_example(self):
        # x1^3 x2^7 x3^2 has common factor x1^2 x2^6 x3 (0-indexed here).
        m = Monomial((0, 1, 2), (3, 7, 2))
        cf = m.common_factor()
        assert cf.positions == (0, 1, 2)
        assert cf.exponents == (2, 6, 1)

    def test_exponent_one_variables_drop_out(self):
        m = Monomial((0, 1, 2), (1, 2, 1))
        cf = m.common_factor()
        assert cf.positions == (1,)
        assert cf.exponents == (1,)

    def test_all_linear_gives_constant_factor(self):
        m = Monomial((0, 1), (1, 1))
        assert m.common_factor() == Monomial((), ())

    @given(sparse_monomials())
    def test_factorisation_identity(self, m):
        """x^a == common_factor * speelpenning product."""
        point = [complex(1.1 + 0.1 * i, 0.3 - 0.05 * i) for i in range(8)]
        speelpenning = Monomial(m.positions, tuple([1] * m.num_variables))
        product = m.common_factor().evaluate(point) * speelpenning.evaluate(point)
        direct = m.evaluate(point)
        assert product == pytest.approx(direct, rel=1e-12)

    def test_speelpenning_positions(self):
        m = Monomial((2, 4), (3, 1))
        assert m.speelpenning_positions() == (2, 4)


class TestEvaluationAndDerivatives:
    def test_evaluate_simple(self):
        m = Monomial((0, 1), (2, 1))
        assert m.evaluate([2.0, 3.0]) == 12.0

    def test_evaluate_complex(self):
        m = Monomial((0,), (2,))
        assert m.evaluate([1j]) == -1 + 0j

    def test_derivative_present_variable(self):
        m = Monomial((0, 1), (2, 3))
        scale, dm = m.derivative(0)
        assert scale == 2
        assert dm == Monomial((0, 1), (1, 3))

    def test_derivative_exponent_one_removes_variable(self):
        m = Monomial((0, 1), (1, 3))
        scale, dm = m.derivative(0)
        assert scale == 1
        assert dm == Monomial((1,), (3,))

    def test_derivative_absent_variable(self):
        m = Monomial((0,), (2,))
        scale, dm = m.derivative(5)
        assert scale == 0
        assert dm == Monomial((), ())

    @given(sparse_monomials())
    def test_gradient_matches_finite_difference_free_identity(self, m):
        """d(x^a)/dx_i * x_i == a_i * x^a for every occurring variable."""
        point = [complex(0.9 + 0.07 * i, -0.2 + 0.03 * i) for i in range(8)]
        value = m.evaluate(point)
        grad = m.evaluate_gradient(point)
        for variable, derivative in grad.items():
            a_i = m.exponent_of(variable)
            assert derivative * point[variable] == pytest.approx(a_i * value, rel=1e-10)

    def test_multiply(self):
        a = Monomial((0, 1), (1, 2))
        b = Monomial((1, 3), (1, 4))
        assert a.multiply(b) == Monomial((0, 1, 3), (1, 3, 4))
