"""Tests for the random benchmark-system generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.polynomials import (
    TABLE1_MONOMIAL_COUNTS,
    TABLE2_MONOMIAL_COUNTS,
    TABLE_DIMENSION,
    random_monomial,
    random_point,
    random_regular_system,
    table1_system,
    table2_system,
)


class TestRandomMonomial:
    def test_shape_constraints(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            m = random_monomial(rng, dimension=10, variables_per_monomial=4,
                                max_variable_degree=5)
            assert m.num_variables == 4
            assert all(1 <= e <= 5 for e in m.exponents)
            assert all(0 <= p < 10 for p in m.positions)
            assert list(m.positions) == sorted(set(m.positions))

    def test_too_many_variables(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_monomial(rng, dimension=3, variables_per_monomial=4, max_variable_degree=2)

    def test_invalid_degree(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_monomial(rng, dimension=3, variables_per_monomial=2, max_variable_degree=0)


class TestRandomRegularSystem:
    def test_shape_matches_parameters(self):
        s = random_regular_system(dimension=6, monomials_per_polynomial=5,
                                  variables_per_monomial=3, max_variable_degree=4, seed=1)
        shape = s.require_regular()
        assert shape.dimension == 6
        assert shape.monomials_per_polynomial == 5
        assert shape.variables_per_monomial == 3
        assert shape.max_variable_degree <= 4

    def test_reproducible_with_seed(self):
        a = random_regular_system(4, 3, 2, 2, seed=42)
        b = random_regular_system(4, 3, 2, 2, seed=42)
        assert a.supports() == b.supports()
        assert a.coefficients() == b.coefficients()

    def test_different_seeds_differ(self):
        a = random_regular_system(4, 3, 2, 2, seed=1)
        b = random_regular_system(4, 3, 2, 2, seed=2)
        assert a.supports() != b.supports()

    def test_unit_modulus_coefficients(self):
        s = random_regular_system(4, 3, 2, 2, seed=3)
        for row in s.coefficients():
            for c in row:
                assert abs(c) == pytest.approx(1.0)

    def test_monomials_distinct_within_polynomial(self):
        s = random_regular_system(5, 6, 2, 2, seed=4)
        for poly in s:
            keys = {(m.positions, m.exponents) for _, m in poly.terms}
            assert len(keys) == poly.num_terms

    def test_impossible_support_space_raises(self):
        # Only 2 distinct monomials exist with k=1, d=1 in dimension 2, so
        # asking for 5 per polynomial must fail.
        with pytest.raises(ConfigurationError):
            random_regular_system(2, 5, 1, 1, seed=0)

    def test_invalid_monomial_count(self):
        with pytest.raises(ConfigurationError):
            random_regular_system(3, 0, 1, 1)


class TestRandomPoint:
    def test_length_and_modulus(self):
        p = random_point(7, seed=0)
        assert len(p) == 7
        assert all(abs(z) == pytest.approx(1.0) for z in p)

    def test_radius(self):
        p = random_point(3, seed=0, radius=2.5)
        assert all(abs(z) == pytest.approx(2.5) for z in p)

    def test_reproducible(self):
        assert random_point(4, seed=9) == random_point(4, seed=9)


class TestPaperConfigurations:
    def test_table_constants(self):
        assert TABLE_DIMENSION == 32
        assert TABLE1_MONOMIAL_COUNTS == (704, 1024, 1536)
        assert TABLE2_MONOMIAL_COUNTS == (704, 1024, 1536)

    @pytest.mark.parametrize("total", [704, 1024])
    def test_table1_shape(self, total):
        s = table1_system(total, seed=5)
        shape = s.require_regular()
        assert shape.dimension == 32
        assert shape.total_monomials == total
        assert shape.variables_per_monomial == 9
        assert shape.max_variable_degree <= 2

    def test_table2_shape(self):
        s = table2_system(704, seed=5)
        shape = s.require_regular()
        assert shape.dimension == 32
        assert shape.variables_per_monomial == 16
        assert shape.max_variable_degree <= 10

    def test_indivisible_total_rejected(self):
        with pytest.raises(ConfigurationError):
            table1_system(1000)
