"""Tests for the persistent worker pool and its supervisor policies.

Tier-1 scope: real forked workers on small systems (each solve is a few
hundred ms).  The drills here are the pool-specific ones -- persistence
across solves, work-stealing, spawn-failure retirement with in-process
fallback, and deadline cancellation; the full fault-mode matrix lives in
``test_chaos_matrix.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ShardFailedError
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.service import (
    BackoffPolicy,
    FaultInjection,
    WorkerPool,
    solve_system_sharded,
)
from repro.tracking import solve_system


def decoupled_quadratics(values=(2.0, 3.0)):
    polys = []
    for i, a in enumerate(values):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-a + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys)


def solution_key(report):
    """The bit-for-bit identity key of a report's distinct solutions."""
    return [(tuple(s.point), s.residual, s.multiplicity)
            for s in report.solutions]


def _never_spawns(pool):
    raise OSError("injected spawn failure")


#: Retirement drills must not sleep through respawn backoff.
_NO_BACKOFF = BackoffPolicy(base=0.0, cap=0.0, jitter=0.0)


class TestPersistentPool:
    def test_pool_survives_across_solves_bit_for_bit(self):
        """One pool, two solves: the second reuses the same workers (no
        respawns, no extra forks) and both match single-process exactly."""
        system = decoupled_quadratics()
        reference = solve_system(system)
        with WorkerPool(workers=2) as pool:
            first = solve_system_sharded(system, shards=2, pool=pool)
            assert pool.stats["spawns"] == 2
            second = solve_system_sharded(system, shards=2, pool=pool)
            assert pool.stats["spawns"] == 2  # nothing forked again
            assert pool.stats["respawns"] == 0
        assert solution_key(first) == solution_key(reference)
        assert solution_key(second) == solution_key(reference)

    def test_systems_ship_to_each_worker_at_most_once(self):
        system = decoupled_quadratics()
        with WorkerPool(workers=1) as pool:
            solve_system_sharded(system, shards=1, pool=pool)
            token = pool.register_systems(*pool.systems_for("sys-1"))
            assert token == "sys-1"  # same pair, same token
            slot = pool.slots[0]
            assert token in slot.tokens
            # A payload for a token the worker has seen is not re-shipped.
            shipped = pool.payload_for_slot(slot, {"token": token})
            assert "systems" not in shipped

    def test_idle_workers_steal_queued_shard_tasks(self):
        """More shards than workers: 4 shard tasks drain through 2
        workers, result still bit-for-bit."""
        system = decoupled_quadratics(values=(2.0, 3.0, 5.0))  # 8 paths
        reference = solve_system(system)
        with WorkerPool(workers=2) as pool:
            report = solve_system_sharded(system, shards=4, pool=pool)
        assert report.shards == 4
        assert solution_key(report) == solution_key(reference)


class TestPoolDegradation:
    def test_unspawnable_pool_falls_back_inprocess(self):
        """Every spawn attempt fails -> slots retire -> the shard tasks
        run inline on the coordinator, recorded as a degradation, and the
        solve still matches single-process bit-for-bit."""
        system = decoupled_quadratics()
        reference = solve_system(system)
        with WorkerPool(workers=2, spawn=_never_spawns,
                        respawn_backoff=_NO_BACKOFF,
                        max_spawn_attempts=2) as pool:
            report = solve_system_sharded(system, shards=2, pool=pool,
                                          backoff_seconds=0.0)
            assert pool.all_retired()
            assert pool.stats["spawn_failures"] >= 4  # 2 slots x 2 attempts
        assert report.inprocess_fallbacks == 2
        assert solution_key(report) == solution_key(reference)
        assert any("retired" in d for d in report.degradations)
        assert any("ran in-process" in d for d in report.degradations)

    def test_unspawnable_pool_without_fallback_raises(self):
        with WorkerPool(workers=1, spawn=_never_spawns,
                        respawn_backoff=_NO_BACKOFF,
                        max_spawn_attempts=2) as pool:
            with pytest.raises(ShardFailedError, match="spawn"):
                solve_system_sharded(decoupled_quadratics(), shards=2,
                                     pool=pool, backoff_seconds=0.0,
                                     allow_inprocess_fallback=False)


class TestDeadlines:
    def test_deadline_cancels_cooperatively_then_retry_succeeds(self):
        """A worker slowed past the deadline is cancelled between tracker
        rounds (not killed: zero pool kills) and the retried task, with
        the fault budget spent, finishes identically."""
        system = decoupled_quadratics()
        reference = solve_system(system)
        with WorkerPool(workers=2) as pool:
            report = solve_system_sharded(
                system, shards=2, pool=pool, backoff_seconds=0.0,
                timeout=0.2, cancel_grace=5.0,
                fault_injection=FaultInjection(
                    shard=0, level=0, kill_after_rounds=0, times=1,
                    mode="slow", delay_seconds=0.35))
            assert pool.stats["kills"] == 0  # cooperative, not SIGKILL
        assert report.deadline_cancels >= 1
        assert report.worker_retries >= 1
        assert solution_key(report) == solution_key(reference)
