"""Unit tests for the shared capped/jittered backoff policy.

All deterministic: delays are pure functions of (attempt, rng), and the
"fake clock" scheduling test drives ``not_before`` timestamps by hand --
the policy is never allowed to sleep anything itself.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.service import BackoffPolicy


class TestDelaySchedule:
    def test_unjittered_exponential_up_to_the_cap(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4, 5)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_zero_base_never_waits(self):
        policy = BackoffPolicy(base=0.0, cap=0.0, jitter=0.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(50, random.Random(7)) == 0.0

    def test_jitter_draws_stay_in_band_and_are_seeded(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=10.0, jitter=0.5)
        draws = [policy.delay(3, random.Random(seed)) for seed in range(50)]
        assert all(0.2 <= d <= 0.4 for d in draws)  # [(1-j)*d, d]
        assert len(set(draws)) > 1  # actually jittered
        assert policy.delay(3, random.Random(4)) == \
            policy.delay(3, random.Random(4))  # deterministic under a seed

    def test_without_rng_jitter_is_skipped(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=10.0, jitter=0.5)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_legacy_adapter_keeps_base_and_doubling_but_caps(self):
        policy = BackoffPolicy.from_legacy_seconds(0.05)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.1)
        assert policy.delay(20) == pytest.approx(0.8)  # 16x cap, not 2**19
        assert BackoffPolicy.from_legacy_seconds(0.0).delay(9) == 0.0


class TestFakeClockScheduling:
    """The coordinator pattern: delays become ``not_before`` timestamps
    compared against a clock the test owns -- no real sleeping anywhere."""

    def test_retry_schedule_against_a_fake_clock(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=4.0, jitter=0.0)
        now = 100.0
        fired = []
        not_before = now
        for attempt in (1, 2, 3, 4):
            not_before = now + policy.delay(attempt)
            # advance the fake clock straight to the deadline
            now = not_before
            fired.append(now)
        assert fired == [101.0, 103.0, 107.0, 111.0]

    def test_ready_check_is_a_pure_comparison(self):
        policy = BackoffPolicy(base=2.0, factor=2.0, cap=8.0, jitter=0.0)
        not_before = 50.0 + policy.delay(1)
        assert not 51.0 >= not_before  # too early: not dispatched
        assert 52.0 >= not_before      # due: dispatched


class TestValidation:
    def test_bad_parameters_are_refused(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=-0.1)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=1.0, cap=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter=1.0)

    def test_attempts_are_one_based(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay(0)
