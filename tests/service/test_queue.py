"""Tests for the bounded async job-queue front end of the solve service.

The queue's own behaviour (states, backpressure, error propagation) is
tested against stub solvers -- no process pools -- so these run in
milliseconds; one tier-1 integration test drives a real sharded solve
through the queue.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (JobCancelledError, JobNotFoundError, QueueFullError,
                          RateLimitedError, ServiceError, SolveTimeoutError)
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.service import SolveService


def tiny_system():
    return PolynomialSystem([Polynomial([
        (1 + 0j, Monomial((0,), (2,))),
        (-1 + 0j, Monomial((), ())),
    ])])


class TestLifecycle:
    def test_submit_poll_result_round_trip(self):
        outcome = object()
        with SolveService(solver=lambda system, **kw: outcome) as service:
            job = service.submit(tiny_system())
            assert job == "job-1"
            report = service.result(job, timeout=10)
            assert report is outcome
            status = service.poll(job)
            assert status.state == "done"
            assert status.finished
            assert status.report is outcome
            assert status.error is None

    def test_jobs_get_distinct_ids_and_keep_results(self):
        with SolveService(solver=lambda system, **kw: id(system)) as service:
            first = service.submit(tiny_system())
            second = service.submit(tiny_system())
            assert first != second
            service.result(second, timeout=10)
            # Late polls of the earlier job still see its terminal state.
            service.result(first, timeout=10)
            assert service.poll(first).state == "done"

    def test_defaults_merge_under_overrides(self):
        seen = {}

        def recorder(system, **kwargs):
            seen.update(kwargs)
            return "ok"

        with SolveService(solver=recorder, shards=4,
                          backoff_seconds=0.5) as service:
            job = service.submit(tiny_system(), shards=2)
            service.result(job, timeout=10)
        assert seen == {"shards": 2, "backoff_seconds": 0.5}

    def test_unknown_job_id(self):
        with SolveService(solver=lambda system, **kw: None) as service:
            with pytest.raises(JobNotFoundError):
                service.poll("job-999")
            with pytest.raises(JobNotFoundError):
                service.result("nope")

    def test_submit_after_shutdown_is_refused(self):
        service = SolveService(solver=lambda system, **kw: None)
        service.shutdown()
        with pytest.raises(ServiceError):
            service.submit(tiny_system())
        service.shutdown()  # idempotent


class TestFailures:
    def test_failed_solve_reraises_from_result(self):
        def exploding(system, **kw):
            raise ValueError("no convergence today")

        with SolveService(solver=exploding) as service:
            job = service.submit(tiny_system())
            with pytest.raises(ValueError, match="no convergence"):
                service.result(job, timeout=10)
            status = service.poll(job)
            assert status.state == "failed"
            assert isinstance(status.error, ValueError)
            assert status.report is None

    def test_one_failure_does_not_poison_the_worker(self):
        calls = []

        def flaky(system, **kw):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("first job dies")
            return "second job fine"

        with SolveService(solver=flaky) as service:
            bad = service.submit(tiny_system())
            good = service.submit(tiny_system())
            assert service.result(good, timeout=10) == "second job fine"
            assert service.poll(bad).state == "failed"

    def test_result_timeout(self):
        gate = threading.Event()

        def blocked(system, **kw):
            gate.wait(10)
            return "late"

        service = SolveService(solver=blocked)
        try:
            job = service.submit(tiny_system())
            with pytest.raises(TimeoutError):
                service.result(job, timeout=0.05)
        finally:
            gate.set()
            service.shutdown()

    def test_result_timeout_carries_the_job_state(self):
        """SolveTimeoutError is a TimeoutError that tells the caller what
        the job was doing when patience ran out -- 'still running' is
        distinguishable from 'lost'."""
        started = threading.Event()
        gate = threading.Event()

        def blocked(system, **kw):
            started.set()
            gate.wait(10)
            return "late"

        service = SolveService(solver=blocked)
        try:
            job = service.submit(tiny_system())
            assert started.wait(5)
            with pytest.raises(SolveTimeoutError) as excinfo:
                service.result(job, timeout=0.05)
            assert excinfo.value.job_id == job
            assert excinfo.value.state == "running"
            assert isinstance(excinfo.value, TimeoutError)
        finally:
            gate.set()
            service.shutdown()


class TestCancellation:
    def test_cancel_queued_job_before_it_runs(self):
        """A queued job can be declined: cancel() flips it to a terminal
        ``cancelled`` state, the drain thread skips it, and result()
        raises JobCancelledError immediately (no waiting)."""
        started = threading.Event()
        gate = threading.Event()

        def blocked(system, **kw):
            started.set()
            gate.wait(10)
            return "done"

        service = SolveService(capacity=4, workers=1, solver=blocked)
        try:
            running = service.submit(tiny_system())
            assert started.wait(5)  # the single worker is now occupied
            queued = service.submit(tiny_system())
            assert service.cancel(queued) is True
            status = service.poll(queued)
            assert status.state == "cancelled"
            assert status.finished
            with pytest.raises(JobCancelledError, match="cancelled"):
                service.result(queued, timeout=5)
            gate.set()
            assert service.result(running, timeout=10) == "done"
            # The cancelled job never reached the solver.
            assert service.poll(queued).state == "cancelled"
        finally:
            gate.set()
            service.shutdown()

    def test_cancel_running_job_is_refused(self):
        started = threading.Event()
        gate = threading.Event()

        def blocked(system, **kw):
            started.set()
            gate.wait(10)
            return "done"

        service = SolveService(solver=blocked)
        try:
            job = service.submit(tiny_system())
            assert started.wait(5)
            assert service.cancel(job) is False  # already running
            gate.set()
            assert service.result(job, timeout=10) == "done"
        finally:
            gate.set()
            service.shutdown()

    def test_cancel_terminal_job_is_refused_and_idempotent(self):
        with SolveService(solver=lambda system, **kw: "ok") as service:
            job = service.submit(tiny_system())
            service.result(job, timeout=10)
            assert service.cancel(job) is False
            assert service.cancel(job) is False  # still False, no raise
            assert service.poll(job).state == "done"

    def test_cancel_unknown_job_raises(self):
        with SolveService(solver=lambda system, **kw: "ok") as service:
            with pytest.raises(JobNotFoundError):
                service.cancel("job-999")


class TestBackpressure:
    def test_full_queue_raises_queue_full(self):
        started = threading.Event()
        gate = threading.Event()

        def blocked(system, **kw):
            started.set()
            gate.wait(10)
            return "done"

        service = SolveService(capacity=1, workers=1, solver=blocked)
        try:
            running = service.submit(tiny_system())
            assert started.wait(5)  # worker busy; queue now empty
            queued = service.submit(tiny_system())  # fills the queue
            with pytest.raises(QueueFullError):
                service.submit(tiny_system())
            # The rejected submission left no ghost job behind.
            with pytest.raises(JobNotFoundError):
                service.poll("job-3")
            gate.set()
            assert service.result(running, timeout=10) == "done"
            assert service.result(queued, timeout=10) == "done"
            # With the backlog drained, submits are accepted again.
            assert service.result(service.submit(tiny_system()),
                                  timeout=10) == "done"
        finally:
            gate.set()
            service.shutdown()

    def test_capacity_and_worker_validation(self):
        with pytest.raises(ServiceError):
            SolveService(capacity=0)
        with pytest.raises(ServiceError):
            SolveService(workers=0)


class FakeClock:
    """Hand-driven monotonic clock for deterministic bucket tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRateLimiting:
    def make_service(self, *, rate_limit, burst=None, capacity=64):
        clock = FakeClock()
        service = SolveService(capacity=capacity, rate_limit=rate_limit,
                               burst=burst, clock=clock,
                               solver=lambda system, **kw: "ok")
        return service, clock

    def test_burst_then_throttled(self):
        service, clock = self.make_service(rate_limit=1.0, burst=3)
        with service:
            for _ in range(3):
                service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError, match="'alice'"):
                service.submit(tiny_system(), client="alice")

    def test_rate_limited_is_not_queue_full(self):
        service, clock = self.make_service(rate_limit=1.0, burst=1)
        with service:
            service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError) as excinfo:
                service.submit(tiny_system(), client="alice")
            assert not isinstance(excinfo.value, QueueFullError)
            assert isinstance(excinfo.value, ServiceError)

    def test_throttled_submit_leaves_no_ghost_job_and_burns_no_id(self):
        service, clock = self.make_service(rate_limit=1.0, burst=1)
        with service:
            service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError):
                service.submit(tiny_system(), client="alice")
            with pytest.raises(JobNotFoundError):
                service.poll("job-2")
            clock.advance(1.0)
            # Job ids continue densely: the throttled attempt burned none.
            assert service.submit(tiny_system(), client="alice") == "job-2"

    def test_bucket_refills_at_the_configured_rate(self):
        service, clock = self.make_service(rate_limit=2.0, burst=2)
        with service:
            service.submit(tiny_system(), client="alice")
            service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError):
                service.submit(tiny_system(), client="alice")
            clock.advance(0.5)  # 2 tokens/s -> one token back
            service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError):
                service.submit(tiny_system(), client="alice")

    def test_clients_do_not_share_buckets(self):
        service, clock = self.make_service(rate_limit=1.0, burst=1)
        with service:
            service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError):
                service.submit(tiny_system(), client="alice")
            # Bob's bucket is untouched by Alice's throttling.
            service.submit(tiny_system(), client="bob")

    def test_refill_caps_at_burst(self):
        service, clock = self.make_service(rate_limit=1.0, burst=2)
        with service:
            clock.advance(100.0)  # a long idle must not bank 100 tokens
            service.submit(tiny_system(), client="alice")
            service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError):
                service.submit(tiny_system(), client="alice")

    def test_no_rate_limit_by_default(self):
        with SolveService(capacity=64,
                          solver=lambda system, **kw: "ok") as service:
            for _ in range(20):
                service.submit(tiny_system(), client="alice")

    def test_rate_limit_validation(self):
        with pytest.raises(ServiceError):
            SolveService(rate_limit=0.0)
        with pytest.raises(ServiceError):
            SolveService(rate_limit=-1.0)
        with pytest.raises(ServiceError):
            SolveService(rate_limit=1.0, burst=0)
        with pytest.raises(ServiceError):
            SolveService(burst=4)  # burst without a rate makes no sense

    def test_burst_defaults_to_rate_ceiling(self):
        service, clock = self.make_service(rate_limit=2.5)  # burst -> 3
        with service:
            for _ in range(3):
                service.submit(tiny_system(), client="alice")
            with pytest.raises(RateLimitedError):
                service.submit(tiny_system(), client="alice")


class TestFamilyRouting:
    """The family-scoped submit path: jobs naming a family share one
    :class:`~repro.tracking.parameter.ParameterFamily` around the
    service's solver -- first job cold, later jobs member-seeded."""

    @staticmethod
    def family_stub(calls):
        from repro.tracking import Solution, SolveReport

        def stub(system, **kwargs):
            calls.append(kwargs)
            return SolveReport(
                system=system, bezout_number=2, paths_tracked=2,
                paths_converged=2,
                solutions=[Solution(point=(1 + 0j,), residual=0.0),
                           Solution(point=(-1 + 0j,), residual=0.0)],
                start_strategy=(kwargs["start"].name if "start" in kwargs
                                else "total-degree"))
        return stub

    def test_family_jobs_share_a_member(self):
        calls = []
        with SolveService(solver=self.family_stub(calls)) as service:
            first = service.result(
                service.submit(tiny_system(), family="quad"), timeout=10)
            second = service.result(
                service.submit(tiny_system(), family="quad"), timeout=10)
        assert first.start_strategy == "total-degree"
        assert second.start_strategy == "generic-member"
        assert "start" not in calls[0]
        assert calls[1]["start"].member is first.system

    def test_distinct_families_do_not_share_members(self):
        calls = []
        with SolveService(solver=self.family_stub(calls)) as service:
            service.result(service.submit(tiny_system(), family="a"),
                           timeout=10)
            other = service.result(service.submit(tiny_system(), family="b"),
                                   timeout=10)
        assert other.start_strategy == "total-degree"
        assert service.family_stats("a") == \
            {"cold_solves": 1, "warm_serves": 0}

    def test_unnamed_jobs_bypass_families(self):
        calls = []
        with SolveService(solver=self.family_stub(calls)) as service:
            service.result(service.submit(tiny_system()), timeout=10)
            service.result(service.submit(tiny_system()), timeout=10)
        assert all("start" not in call for call in calls)

    def test_family_stats_survive_the_jobs(self):
        calls = []
        with SolveService(solver=self.family_stub(calls)) as service:
            for _ in range(3):
                service.result(service.submit(tiny_system(), family="quad"),
                               timeout=10)
            assert service.family_stats("quad") == \
                {"cold_solves": 1, "warm_serves": 2}
            with pytest.raises(JobNotFoundError):
                service.family_stats("never-submitted")

    def test_family_solves_merge_service_defaults(self):
        calls = []
        with SolveService(solver=self.family_stub(calls),
                          shards=3) as service:
            service.result(service.submit(tiny_system(), family="quad"),
                           timeout=10)
            service.result(service.submit(tiny_system(), family="quad",
                                          shards=1), timeout=10)
        assert calls[0]["shards"] == 3
        assert calls[1]["shards"] == 1


class TestIntegration:
    def test_real_sharded_solve_through_the_queue(self):
        """submit -> poll -> result against the actual process-pool solver."""
        from repro.tracking import solve_system

        system = tiny_system()
        reference = solve_system(system)
        with SolveService(capacity=2, shards=2) as service:
            job = service.submit(system)
            report = service.result(job, timeout=120)
        assert [tuple(s.point) for s in report.solutions] == \
            [tuple(s.point) for s in reference.solutions]
        assert report.shards == 2
        assert service.poll(job).state == "done"
