"""Tests for the pluggable checkpoint stores of the solve service."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.service import FileCheckpointStore, InMemoryCheckpointStore


def sample_state(shard=0):
    """A shard record shaped like the sharded coordinator's, with the
    floats that stress codecs: inf, NaN, signed zero, subnormals."""
    return {
        "shard": shard,
        "level": 1,
        "context": "dd",
        "pending": [3, 5],
        "checkpoints": {
            "3": {"t": 1.0, "residual": 3.5e-17,
                  "point": [[1 / 3, -0.0, 5e-324, 2.0 ** -1074]]},
            "5": {"t": 0.875, "residual": float("inf"),
                  "point": [[float("inf"), float("nan"), -0.0, 0.0]]},
        },
    }


def assert_state_round_trips(state, back):
    assert back is not state
    assert back["pending"] == [3, 5]
    three = back["checkpoints"]["3"]["point"][0]
    assert [v.hex() for v in map(float, three)] == \
        [v.hex() for v in map(float, state["checkpoints"]["3"]["point"][0])]
    five = back["checkpoints"]["5"]["point"][0]
    assert five[0] == float("inf")
    assert math.isnan(five[1])
    assert math.copysign(1.0, five[2]) == -1.0  # signed zero survives
    assert back["checkpoints"]["5"]["residual"] == float("inf")


class TestInMemoryStore:
    def test_round_trip(self):
        store = InMemoryCheckpointStore()
        state = sample_state()
        store.put("job", 0, state)
        assert_state_round_trips(state, store.get("job", 0))

    def test_get_returns_copies(self):
        store = InMemoryCheckpointStore()
        store.put("job", 0, sample_state())
        first = store.get("job", 0)
        first["pending"].append(99)
        assert store.get("job", 0)["pending"] == [3, 5]

    def test_missing_record_is_none(self):
        store = InMemoryCheckpointStore()
        assert store.get("job", 0) is None
        assert store.shards("job") == []

    def test_shards_listing_and_job_isolation(self):
        store = InMemoryCheckpointStore()
        store.put("a", 2, sample_state(2))
        store.put("a", 0, sample_state(0))
        store.put("b", 1, sample_state(1))
        assert store.shards("a") == [0, 2]
        assert store.shards("b") == [1]

    def test_delete_job(self):
        store = InMemoryCheckpointStore()
        store.put("a", 0, sample_state())
        store.put("b", 0, sample_state())
        store.delete_job("a")
        assert store.shards("a") == []
        assert store.shards("b") == [0]
        store.delete_job("missing")  # no-op, no raise

    def test_put_overwrites(self):
        store = InMemoryCheckpointStore()
        store.put("job", 0, {"level": 0})
        store.put("job", 0, {"level": 1})
        assert store.get("job", 0)["level"] == 1


@pytest.mark.parametrize("codec", ["json", "npz"])
class TestFileStore:
    def test_round_trip(self, tmp_path, codec):
        store = FileCheckpointStore(tmp_path, codec=codec)
        state = sample_state()
        store.put("job", 1, state)
        assert_state_round_trips(state, store.get("job", 1))

    def test_record_is_a_file_under_the_job_directory(self, tmp_path, codec):
        store = FileCheckpointStore(tmp_path, codec=codec)
        store.put("job", 1, sample_state())
        path = tmp_path / "job" / f"shard-1.{codec}"
        assert path.is_file()
        # No scratch files linger after the rename-into-place write.
        assert list(path.parent.glob("*.tmp")) == []

    def test_survives_a_fresh_store_instance(self, tmp_path, codec):
        """The on-disk record outlives the store object -- the coordinator
        restart scenario."""
        FileCheckpointStore(tmp_path, codec=codec).put("job", 0,
                                                       sample_state())
        reopened = FileCheckpointStore(tmp_path, codec=codec)
        assert_state_round_trips(sample_state(), reopened.get("job", 0))

    def test_shards_listing(self, tmp_path, codec):
        store = FileCheckpointStore(tmp_path, codec=codec)
        for shard in (3, 0, 11):
            store.put("job", shard, sample_state(shard))
        assert store.shards("job") == [0, 3, 11]
        assert store.shards("other") == []

    def test_delete_job_removes_the_directory(self, tmp_path, codec):
        store = FileCheckpointStore(tmp_path, codec=codec)
        store.put("job", 0, sample_state())
        store.delete_job("job")
        assert not (tmp_path / "job").exists()
        store.delete_job("job")  # idempotent

    def test_put_overwrites(self, tmp_path, codec):
        store = FileCheckpointStore(tmp_path, codec=codec)
        store.put("job", 0, {"level": 0})
        store.put("job", 0, {"level": 1})
        assert store.get("job", 0)["level"] == 1


@pytest.mark.parametrize("codec", ["json", "npz"])
class TestFileStoreCorruption:
    """Undecodable records surface as CheckpointCorruptError -- the typed
    signal the sharded coordinator turns into a cold restart of exactly
    one shard -- never a codec-specific exception or a silent None."""

    def test_truncated_record_raises_corrupt(self, tmp_path, codec):
        from repro.errors import CheckpointCorruptError
        store = FileCheckpointStore(tmp_path, codec=codec)
        store.put("job", 0, sample_state())
        path = store.record_path("job", 0)
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 3)])
        with pytest.raises(CheckpointCorruptError, match="corrupt"):
            store.get("job", 0)

    def test_garbage_record_raises_corrupt(self, tmp_path, codec):
        from repro.errors import CheckpointCorruptError
        store = FileCheckpointStore(tmp_path, codec=codec)
        store.put("job", 3, sample_state(3))
        store.record_path("job", 3).write_bytes(b"\x00not a record\xff")
        with pytest.raises(CheckpointCorruptError):
            store.get("job", 3)

    def test_record_path_names_the_shard_file(self, tmp_path, codec):
        store = FileCheckpointStore(tmp_path, codec=codec)
        store.put("job", 7, sample_state(7))
        path = store.record_path("job", 7)
        assert path == tmp_path / "job" / f"shard-7.{codec}"
        assert path.is_file()


class TestFileStoreValidation:
    def test_unknown_codec_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="codec"):
            FileCheckpointStore(tmp_path, codec="yaml")

    def test_path_traversing_job_id_is_rejected(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.put("../escape", 0, {})
        with pytest.raises(ConfigurationError):
            store.get("a/b", 0)
        with pytest.raises(ConfigurationError):
            store.put("", 0, {})
