"""Chaos drills: every fault mode ends in exact recovery or a recorded
degradation.

Tier-1 covers each failure-taxonomy row once through the in-memory store
on the 16-path escalation workload (hang, slow, corrupt checkpoint, store
I/O error) plus the poison-shard quarantine drill; the full matrix --
every mode crossed with every store backend (memory, file-json, file-npz)
-- is marked ``chaos`` (and ``slow``) and runs under ``make chaos``.

The contract asserted throughout: either the distinct solutions are
bit-for-bit identical to the single-process reference, or the report says
explicitly, in ``degradations`` and the dedicated counters, what was lost
and why.
"""

from __future__ import annotations

import pytest

from repro.bench.batch_tracking import cyclic_quadratic_system
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.service import (
    FaultInjection,
    FileCheckpointStore,
    InMemoryCheckpointStore,
    solve_system_sharded,
)
from repro.tracking import EscalationPolicy, TrackerOptions, solve_system


def decoupled_quadratics(values=(2.0, 3.0)):
    polys = []
    for i, a in enumerate(values):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-a + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys)


def solution_key(report):
    """The bit-for-bit identity key of a report's distinct solutions."""
    return [(tuple(s.point), s.residual, s.multiplicity)
            for s in report.solutions]


ESCALATION_OPTS = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
ESCALATION_POLICY = EscalationPolicy(ladder=(DOUBLE, DOUBLE_DOUBLE))

#: Canonical drill per mode: fault at the dd rung (level 1) so recovery
#: resumes (or cold-restarts) mid-ladder, the hardest case.
_DRILLS = {
    "kill": FaultInjection(shard=0, level=1, kill_after_rounds=0,
                           mode="kill"),
    "hang": FaultInjection(shard=0, level=1, kill_after_rounds=0,
                           mode="hang", delay_seconds=3.0),
    "slow": FaultInjection(shard=0, level=1, kill_after_rounds=0,
                           mode="slow", delay_seconds=0.05),
    "corrupt-checkpoint": FaultInjection(shard=0, level=1,
                                         kill_after_rounds=0,
                                         mode="corrupt-checkpoint"),
    "store-io-error": FaultInjection(shard=0, level=1, kill_after_rounds=0,
                                     mode="store-io-error"),
}


@pytest.fixture(scope="module")
def reference():
    """Single-process reference of the 16-path escalation workload."""
    return solve_system(cyclic_quadratic_system(4), options=ESCALATION_OPTS,
                        escalation=ESCALATION_POLICY)


def _drill(mode, store, **overrides):
    kwargs = dict(shards=2, options=ESCALATION_OPTS,
                  escalation=ESCALATION_POLICY, store=store,
                  backoff_seconds=0.0, heartbeat_timeout=0.3,
                  fault_injection=_DRILLS[mode])
    kwargs.update(overrides)
    return solve_system_sharded(cyclic_quadratic_system(4), **kwargs)


def _assert_recovered(report, reference, mode):
    """The chaos contract, per mode: exact or explicitly degraded."""
    if mode in ("corrupt-checkpoint", "store-io-error"):
        # The poisoned record forces a cold restart of only that shard:
        # every path still converges, and the report names what happened.
        assert report.cold_restarts_after_corruption >= 1
        assert any("checkpoint reload failed" in d
                   for d in report.degradations)
        assert any("cold restart" in d for d in report.degradations)
        assert report.paths_converged == reference.paths_converged == 16
        assert not report.failures
        assert len(report.solutions) == len(reference.solutions)
    else:
        # kill/hang recover warm from the store, slow needs no recovery:
        # all three must be bit-for-bit.
        assert solution_key(report) == solution_key(reference)
        assert not report.degradations


class TestTaxonomyRows:
    """Tier-1: one drill per failure-taxonomy row, in-memory store."""

    def test_hung_worker_is_killed_and_retried_bit_for_bit(self, reference):
        """No heartbeats for heartbeat_timeout -> SIGKILL -> warm resume;
        the 3 s dead sleep never runs to completion."""
        report = _drill("hang", InMemoryCheckpointStore())
        assert report.hangs_detected >= 1
        assert report.worker_retries >= 1
        assert report.resumed_after_crash >= 1
        _assert_recovered(report, reference, "hang")

    def test_slow_worker_is_waited_out_not_killed(self, reference):
        """Beats keep coming through the slowdown: the supervisor must
        not intervene at all, even with a tight heartbeat timeout."""
        report = _drill("slow", InMemoryCheckpointStore(),
                        heartbeat_timeout=0.2)
        assert report.hangs_detected == 0
        assert report.worker_retries == 0
        _assert_recovered(report, reference, "slow")

    def test_corrupt_checkpoint_cold_restarts_only_that_shard(
            self, reference):
        report = _drill("corrupt-checkpoint", InMemoryCheckpointStore())
        assert report.worker_retries >= 1
        _assert_recovered(report, reference, "corrupt-checkpoint")

    def test_store_read_error_cold_restarts_only_that_shard(
            self, reference):
        report = _drill("store-io-error", InMemoryCheckpointStore())
        assert report.worker_retries >= 1
        _assert_recovered(report, reference, "store-io-error")


class TestQuarantine:
    def test_poison_shard_is_quarantined_other_shard_exact(self):
        """A shard that kills 3 consecutive workers is isolated: its
        lanes come back as explicitly failed paths, and the surviving
        shard's solutions are *exactly* the reference's (a bit-for-bit
        subset, not merely close)."""
        system = decoupled_quadratics()
        reference = solve_system(system)
        report = solve_system_sharded(
            system, shards=2, max_retries=5, backoff_seconds=0.0,
            quarantine_after_kills=3,
            fault_injection=FaultInjection(shard=0, level=0,
                                           kill_after_rounds=0, times=3))
        assert report.quarantined_shards == [0]
        assert any("quarantined" in d for d in report.degradations)
        # The poisoned shard's 2 lanes fail with an explicit reason...
        assert len(report.failures) == 2
        assert all(f.failure_reason.startswith("quarantined")
                   for f in report.failures)
        # ...and the survivor's solutions are an exact subset.
        assert report.paths_converged == 2
        survivor = set(solution_key(report))
        assert survivor and survivor <= set(solution_key(reference))

    def test_quarantine_disabled_raises_instead(self):
        from repro.errors import ShardFailedError
        with pytest.raises(ShardFailedError, match="retries"):
            solve_system_sharded(
                decoupled_quadratics(), shards=2, max_retries=2,
                backoff_seconds=0.0, quarantine_after_kills=None,
                fault_injection=FaultInjection(shard=0, level=0,
                                               kill_after_rounds=0,
                                               times=3))


def _stores(tmp_path):
    return {
        "memory": InMemoryCheckpointStore(),
        "file-json": FileCheckpointStore(tmp_path / "json", codec="json"),
        "file-npz": FileCheckpointStore(tmp_path / "npz", codec="npz"),
    }


@pytest.mark.chaos
@pytest.mark.slow
@pytest.mark.parametrize("backend", ["memory", "file-json", "file-npz"])
@pytest.mark.parametrize("mode", sorted(_DRILLS))
class TestFullMatrix:
    """Every fault mode crossed with every store backend (``make chaos``)."""

    def test_mode_on_backend(self, mode, backend, tmp_path, reference):
        store = _stores(tmp_path)[backend]
        report = _drill(mode, store, job_id=f"chaos-{mode}-{backend}")
        _assert_recovered(report, reference, mode)
