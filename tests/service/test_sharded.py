"""Tests for the sharded, crash-tolerant solve coordinator.

The tier-1 tests exercise the real process-pool path at 2 workers on small
systems (a pool fork is ~0.1 s); the full crash-recovery drills on the
escalation workload are marked ``slow``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.batch_tracking import cyclic_quadratic_system
from repro.errors import ConfigurationError, ShardFailedError
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.service import (
    FaultInjection,
    FileCheckpointStore,
    InMemoryCheckpointStore,
    solve_system_sharded,
)
from repro.tracking import EscalationPolicy, TrackerOptions, solve_system


def decoupled_quadratics(values=(2.0, 3.0)):
    polys = []
    for i, a in enumerate(values):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-a + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys)


def solution_key(report):
    """The bit-for-bit identity key of a report's distinct solutions."""
    return [(tuple(s.point), s.residual, s.multiplicity)
            for s in report.solutions]


ESCALATION_OPTS = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
ESCALATION_POLICY = EscalationPolicy(ladder=(DOUBLE, DOUBLE_DOUBLE))


@pytest.fixture(scope="module")
def escalation_reference():
    """Single-process reference of the 16-path escalation workload."""
    return solve_system(cyclic_quadratic_system(4), options=ESCALATION_OPTS,
                        escalation=ESCALATION_POLICY)


class TestShardedSmoke:
    """Tier-1: the process-pool path at 2 workers, end to end."""

    def test_two_worker_solve_matches_single_process_bit_for_bit(self):
        system = decoupled_quadratics()
        reference = solve_system(system)
        report = solve_system_sharded(system, shards=2)
        assert solution_key(report) == solution_key(reference)
        assert report.shards == 2
        assert report.worker_retries == 0
        assert report.resumed_after_crash == 0
        assert report.paths_tracked == reference.paths_tracked
        assert report.paths_by_context == reference.paths_by_context
        assert report.converged_by_context == reference.converged_by_context

    def test_escalated_solve_matches_including_accounting(
            self, escalation_reference):
        report = solve_system_sharded(
            cyclic_quadratic_system(4), shards=2, options=ESCALATION_OPTS,
            escalation=ESCALATION_POLICY)
        assert solution_key(report) == solution_key(escalation_reference)
        assert report.paths_by_context == \
            escalation_reference.paths_by_context
        assert report.converged_by_context == \
            escalation_reference.converged_by_context
        assert report.resumed_by_context == \
            escalation_reference.resumed_by_context
        assert report.resume_t_by_context == \
            escalation_reference.resume_t_by_context
        assert report.recovered_by_escalation == \
            escalation_reference.recovered_by_escalation

    def test_more_shards_than_paths(self):
        system = decoupled_quadratics(values=(2.0,))  # 2 paths
        report = solve_system_sharded(system, shards=5)
        assert report.shards == 2  # empty shards are dropped
        assert solution_key(report) == solution_key(solve_system(system))

    def test_sharded_diagonal_start_matches_single_process(self):
        """``start=`` flows through the shard fan-out: a diagonal start
        tracks the reduced path count and lands on the same roots."""
        from repro.polynomials import triangular_sparse_system
        from repro.tracking import DiagonalStart

        system = triangular_sparse_system(3)
        reference = solve_system(system, start=DiagonalStart())
        report = solve_system_sharded(system, shards=2,
                                      start=DiagonalStart())
        assert report.start_strategy == "diagonal"
        assert report.paths_tracked == reference.paths_tracked == 4
        assert report.bezout_number == 12
        assert solution_key(report) == solution_key(reference)


class TestValidation:
    def test_backendless_rung_is_refused(self):
        orphan = dataclasses.replace(DOUBLE_DOUBLE, name="dd-no-backend")
        with pytest.raises(ConfigurationError, match="batch backend"):
            solve_system_sharded(
                decoupled_quadratics(),
                escalation=EscalationPolicy(ladder=(DOUBLE, orphan)))

    def test_unresolvable_context_name_is_refused(self):
        # Same name as a registered context but a different object: the
        # worker would silently resolve the wrong arithmetic.
        impostor = dataclasses.replace(DOUBLE_DOUBLE, mul_cost_factor=9.0)
        with pytest.raises(ConfigurationError, match="resolvable by name"):
            solve_system_sharded(decoupled_quadratics(), context=impostor)


class TestCrashRecovery:
    def test_retries_exhausted_raises_shard_failed(self):
        """A shard that keeps crashing must surface ShardFailedError, not
        hang or return a partial report."""
        with pytest.raises(ShardFailedError, match="retries"):
            solve_system_sharded(
                decoupled_quadratics(), shards=2, max_retries=0,
                backoff_seconds=0.0,
                fault_injection=FaultInjection(shard=0, level=0,
                                               kill_after_rounds=0))

    @pytest.mark.slow
    def test_killed_worker_resumes_from_persisted_checkpoints(
            self, escalation_reference):
        """The acceptance drill: 2 workers, one hard-killed mid-dd-rung;
        the reschedule resumes warm from the store and the distinct
        solutions stay bit-for-bit identical to single-process."""
        store = InMemoryCheckpointStore()
        report = solve_system_sharded(
            cyclic_quadratic_system(4), shards=2, options=ESCALATION_OPTS,
            escalation=ESCALATION_POLICY, store=store, backoff_seconds=0.0,
            fault_injection=FaultInjection(shard=0, level=1,
                                           kill_after_rounds=0))
        assert report.worker_retries >= 1
        assert report.resumed_after_crash >= 1
        assert solution_key(report) == solution_key(escalation_reference)
        assert report.paths_converged == 16
        assert not report.failures

    @pytest.mark.slow
    def test_crash_recovery_through_the_file_store(self, tmp_path,
                                                   escalation_reference):
        """Same drill, persisting through the on-disk JSON store; the
        records stay on disk with cleanup=False."""
        store = FileCheckpointStore(tmp_path)
        report = solve_system_sharded(
            cyclic_quadratic_system(4), shards=2, options=ESCALATION_OPTS,
            escalation=ESCALATION_POLICY, store=store, job_id="drill",
            cleanup=False, backoff_seconds=0.0,
            fault_injection=FaultInjection(shard=0, level=1,
                                           kill_after_rounds=0))
        assert report.worker_retries >= 1
        assert report.resumed_after_crash >= 1
        assert solution_key(report) == solution_key(escalation_reference)
        # The per-shard records survived the solve.
        assert store.shards("drill") == [0, 1]
        record = store.get("drill", 0)
        assert record["level"] == 1  # last persisted rung
        assert record["pending"] == []  # everything converged

    @pytest.mark.slow
    def test_repeated_crashes_within_the_retry_budget(self,
                                                      escalation_reference):
        """Two consecutive kills of the same shard-rung still recover."""
        report = solve_system_sharded(
            cyclic_quadratic_system(4), shards=2, options=ESCALATION_OPTS,
            escalation=ESCALATION_POLICY, max_retries=3, backoff_seconds=0.0,
            fault_injection=FaultInjection(shard=0, level=1,
                                           kill_after_rounds=0, times=2))
        assert report.worker_retries >= 2
        assert solution_key(report) == solution_key(escalation_reference)


class TestStoreLifecycle:
    def test_cleanup_removes_the_job_records(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        solve_system_sharded(decoupled_quadratics(), shards=2, store=store,
                             job_id="gone")
        assert store.shards("gone") == []
        assert not (tmp_path / "gone").exists()

    def test_cleanup_false_keeps_per_rung_state(self):
        store = InMemoryCheckpointStore()
        report = solve_system_sharded(decoupled_quadratics(), shards=2,
                                      store=store, job_id="kept",
                                      cleanup=False)
        assert store.shards("kept") == [0, 1]
        for shard in (0, 1):
            record = store.get("kept", shard)
            assert record["context"] == "d"
            assert set(record["checkpoints"]) == \
                {str(i) for i in record["lanes"]}
        assert report.shards == 2
