"""Sharded-vs-single differential over registry scenarios.

The existing sharded suite (``test_sharded.py``) proves bit-for-bit
identity on the cyclic escalation workload; this module points the same
contract at *non-cyclic* registry families -- the katsura convolution
system tier-1 (irregular shape, even path count split across shards) and
the rest of the tier-1 registry under ``-m scenario_matrix``.  Identity
means the full solution key: points, residuals and multiplicities,
compared exactly, plus the per-context path accounting.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import get_scenario, tier1_scenarios
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.service import solve_system_sharded
from repro.tracking import EscalationPolicy, TrackerOptions, solve_system

ESCALATION_OPTS = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
ESCALATION_POLICY = EscalationPolicy(ladder=(DOUBLE, DOUBLE_DOUBLE))


def solution_key(report):
    """The bit-for-bit identity key of a report's distinct solutions."""
    return [(tuple(s.point), s.residual, s.multiplicity)
            for s in report.solutions]


class TestShardedKatsuraScenario:
    """Tier-1: the sharded service on a non-cyclic registry scenario."""

    def test_katsura_matches_single_process_bit_for_bit(self):
        scenario = get_scenario("katsura-3")
        system = scenario.build_system()
        reference = solve_system(system, options=ESCALATION_OPTS,
                                 escalation=ESCALATION_POLICY)
        report = solve_system_sharded(system, shards=2,
                                      options=ESCALATION_OPTS,
                                      escalation=ESCALATION_POLICY)
        assert len(reference.solutions) == scenario.known_root_count
        assert solution_key(report) == solution_key(reference)
        assert report.paths_tracked == scenario.bezout_number
        assert report.paths_by_context == reference.paths_by_context
        assert report.converged_by_context == reference.converged_by_context
        assert report.worker_retries == 0


@pytest.mark.slow
@pytest.mark.scenario_matrix
class TestShardedScenarioMatrix:
    """Every tier-1 registry scenario through the sharded service."""

    @pytest.mark.parametrize("scenario", tier1_scenarios(),
                             ids=lambda s: s.name)
    def test_sharded_matches_single_process(self, scenario):
        system = scenario.build_system()
        reference = solve_system(system, options=ESCALATION_OPTS,
                                 escalation=ESCALATION_POLICY)
        report = solve_system_sharded(system, shards=2,
                                      options=ESCALATION_OPTS,
                                      escalation=ESCALATION_POLICY)
        assert len(reference.solutions) == scenario.known_root_count
        assert solution_key(report) == solution_key(reference)
