"""Smoke tests: every example script runs end to end on small inputs.

The examples are part of the deliverable, so they are executed (as
subprocesses, the way a user would run them) with arguments small enough to
finish in seconds, and their output is checked for the headline sections.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"


def run_example(name: str, *args: str) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    # Propagate the src layout to the subprocess: the conftest sys.path
    # bootstrap that makes `pytest` work from a plain checkout does not
    # reach child interpreters.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    completed = subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True, text=True, timeout=600, check=False, env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py", "--dimension", "6", "--monomials", "3",
                             "--variables-per-monomial", "2", "--max-degree", "3")
        assert "generate a regular benchmark system" in output
        assert "maximum relative difference GPU vs CPU" in output
        assert "predicted speedup" in output

    def test_speedup_study_scaled(self):
        output = run_example("speedup_study.py")
        assert "scaled-down sweep" in output
        assert "speedup (model)" in output

    def test_newton_path_tracking(self):
        output = run_example("newton_path_tracking.py", "--dimension", "2",
                             "--max-paths", "4")
        assert "paths tracked to t = 1" in output
        assert "double-double" in output
        assert "Newton's corrector driven by the simulated GPU evaluator" in output

    def test_double_double_precision(self):
        output = run_example("double_double_precision.py", "--dimension", "4",
                             "--monomials", "3")
        assert "loses all double digits" in output
        assert "quality up" in output

    def test_blackbox_solve(self):
        output = run_example("blackbox_solve.py", "--max-paths", "4")
        assert "isolated solutions" in output
        assert "residual" in output

    def test_batch_tracking(self):
        output = run_example("batch_tracking.py", "--dimension", "3",
                             "--context", "d", "--batch-sizes", "1", "8")
        assert "batched path tracking" in output
        assert "roots agree with the scalar tracker: yes" in output
        assert "paths/sec win at batch 8" in output

    def test_precision_escalation(self):
        output = run_example("precision_escalation.py", "--dimension", "3")
        assert "precision escalation" in output
        assert "recovered by escalation" in output
        assert "quality-up table" in output
        assert "escalation ladder starts at" in output
