"""Documentation health: the `make docs` gate, runnable under pytest.

The checker executes every fenced python block of README.md and docs/*.md
(see tools/check_docs.py), so a stale snippet fails tier-1, not just the
Makefile target.  The checker itself is also unit-tested on synthetic
Markdown so a regression in block extraction cannot silently skip all docs.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBlockExtraction:
    def test_python_blocks_found_and_others_skipped(self):
        checker = load_checker()
        text = (
            "intro\n"
            "```bash\nmake test\n```\n"
            "```python\nx = 1\n```\n"
            "```python no-run\nraise RuntimeError\n```\n"
            "```\nplain fence\n```\n"
            "```python\nassert x == 1\n```\n"
        )
        blocks = list(checker.runnable_python_blocks(text))
        assert [index for index, _ in blocks] == [2, 5]
        assert blocks[0][1].strip() == "x = 1"

    def test_check_file_shares_one_namespace_and_reports_errors(self, tmp_path):
        checker = load_checker()
        good = tmp_path / "good.md"
        good.write_text("```python\nvalue = 21\n```\n"
                        "```python\nassert value * 2 == 42\n```\n")
        assert checker.check_file(good) == []

        bad = tmp_path / "bad.md"
        bad.write_text("```python\nundefined_name\n```\n")
        errors = checker.check_file(bad)
        assert len(errors) == 1
        assert "block 1" in errors[0]

    def test_doctest_blocks_verify_output(self, tmp_path):
        checker = load_checker()
        page = tmp_path / "session.md"
        page.write_text("```python\n>>> 1 + 1\n2\n```\n")
        assert checker.check_file(page) == []
        page.write_text("```python\n>>> 1 + 1\n3\n```\n")
        assert len(checker.check_file(page)) == 1


class TestRepositoryDocs:
    def test_architecture_and_escalation_docs_exist(self):
        assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
        assert (REPO_ROOT / "docs" / "escalation.md").is_file()
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/escalation.md" in readme

    def test_all_doc_code_blocks_run_clean(self):
        """`make docs`'s first half, in-process: every README/docs python
        block executes without error (examples are covered by
        tests/test_examples.py)."""
        completed = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            capture_output=True, text=True, timeout=600, cwd=REPO_ROOT)
        assert completed.returncode == 0, \
            completed.stdout[-2000:] + completed.stderr[-2000:]
