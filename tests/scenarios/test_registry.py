"""Integrity of the scenario registry (:mod:`repro.bench.scenarios`).

The registry's declared knobs are *promises* the differential matrix and the
bench sweeps lean on: the built system must match its declared dimension,
Bezout number and regularity; the classically known root counts must be
consistent with the family's theory; and the tier-1 subset must keep
covering every family (a registry edit that drops a family from tier-1
silently un-tests it everywhere).
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import (
    FAMILIES,
    SCENARIOS,
    bench_scenarios,
    get_scenario,
    iter_scenarios,
    matrix_scenarios,
    scenario_names,
    tier1_scenarios,
)
from repro.errors import ConfigurationError
from repro.polynomials import (
    katsura_root_count,
    noon_root_count,
)
from repro.tracking.start_systems import (
    DiagonalStart,
    TotalDegreeStart,
    total_degree,
)


class TestRegistryShape:
    def test_names_are_unique_and_ordered_tier1_first(self):
        names = [s.name for s in SCENARIOS]
        assert len(names) == len(set(names))
        tier_flags = [s.tier1 for s in SCENARIOS]
        # Tier-1 members come first: once the flag drops it stays dropped.
        assert tier_flags == sorted(tier_flags, reverse=True)

    def test_tier1_covers_every_family(self):
        tier1_families = {s.family for s in tier1_scenarios()}
        assert tier1_families == set(FAMILIES)

    def test_matrix_extras_also_cover_every_family(self):
        assert {s.family for s in matrix_scenarios()} == set(FAMILIES)

    def test_bench_sweep_has_at_least_four_scenarios(self):
        swept = bench_scenarios()
        assert len(swept) >= 4
        assert len({s.family for s in swept}) >= 4

    def test_diversity_promises(self):
        """Tier-1 must keep a regular shape, irregular shapes, and a
        divergent-path family -- the coverage the differential matrix is
        built on."""
        tier1 = tier1_scenarios()
        assert any(s.regular for s in tier1)
        assert any(not s.regular for s in tier1)
        assert any(not s.all_paths_converge for s in tier1)

    def test_every_scenario_has_a_registered_family(self):
        for scenario in SCENARIOS:
            assert scenario.family in FAMILIES
            assert FAMILIES[scenario.family].description


class TestDeclaredKnobs:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_built_system_matches_declaration(self, scenario):
        system = scenario.build_system()
        assert system.dimension == scenario.dimension
        assert total_degree(system) == scenario.bezout_number
        assert (system.regularity() is not None) == scenario.regular

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_root_count_is_consistent(self, scenario):
        assert scenario.known_root_count is not None
        assert scenario.known_root_count <= scenario.bezout_number
        if scenario.all_paths_converge:
            assert scenario.known_root_count == scenario.bezout_number
        else:
            assert scenario.known_root_count < scenario.bezout_number

    def test_classical_counts_match_the_family_formulas(self):
        assert get_scenario("katsura-3").known_root_count == \
            katsura_root_count(3)
        assert get_scenario("noon-2").known_root_count == noon_root_count(2)
        assert get_scenario("cyclic-4").known_root_count == 2 ** 4

    def test_builds_are_fresh_and_reproducible(self):
        scenario = get_scenario("random-sparse-3")
        first = scenario.build_system()
        second = scenario.build_system()
        assert first is not second
        assert first.polynomials == second.polynomials

    def test_as_dict_is_json_safe(self):
        for scenario in SCENARIOS:
            payload = scenario.as_dict()
            assert payload["name"] == scenario.name
            assert None not in payload.values()

    def test_as_dict_declares_the_start_strategy(self):
        for scenario in SCENARIOS:
            payload = scenario.as_dict()
            assert payload["start_strategy"] == scenario.start_strategy
            assert payload["start_paths"] == scenario.start_paths


class TestStartStrategyDeclarations:
    """The registry's recommended starts are promises the bench sweep and
    the serving layer act on: the declared strategy must actually accept
    the built system and track exactly the declared number of paths."""

    def test_every_strategy_name_is_known(self):
        assert {s.start_strategy for s in SCENARIOS} <= \
            {"total-degree", "diagonal"}

    @pytest.mark.parametrize(
        "scenario",
        [s for s in SCENARIOS if s.start_strategy == "diagonal"],
        ids=lambda s: s.name)
    def test_diagonal_scenarios_track_declared_path_count(self, scenario):
        plan = DiagonalStart().prepare(scenario.build_system())
        assert plan.strategy == "diagonal"
        assert plan.path_count == scenario.start_paths

    @pytest.mark.parametrize(
        "scenario",
        [s for s in SCENARIOS
         if s.family in ("random-sparse", "irregular")],
        ids=lambda s: s.name)
    def test_diagonal_dominated_families_match_bezout(self, scenario):
        """Dense diagonal-dominated rows: the diagonal degrees ARE the
        total degrees, so the binomial start saves nothing on path count
        (it still buys cheap start solutions)."""
        plan = DiagonalStart().prepare(scenario.build_system())
        assert plan.path_count == scenario.bezout_number == \
            scenario.start_paths

    @pytest.mark.parametrize(
        "scenario",
        [s for s in SCENARIOS if s.family == "triangular"],
        ids=lambda s: s.name)
    def test_triangular_family_beats_bezout(self, scenario):
        """The triangular chain is where the diagonal start pays: its
        declared path count is the product of the diagonal degrees,
        strictly below the Bezout bound."""
        plan = DiagonalStart().prepare(scenario.build_system())
        assert plan.path_count == scenario.start_paths
        assert plan.path_count < scenario.bezout_number
        assert plan.path_count == scenario.known_root_count

    @pytest.mark.parametrize(
        "scenario",
        [s for s in SCENARIOS if s.start_strategy == "total-degree"],
        ids=lambda s: s.name)
    def test_total_degree_scenarios_declare_bezout_paths(self, scenario):
        plan = TotalDegreeStart().prepare(scenario.build_system())
        assert scenario.start_paths == scenario.bezout_number
        assert plan.path_count == scenario.bezout_number


class TestLookup:
    def test_get_scenario_round_trips(self):
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="cyclic-4"):
            get_scenario("cyclic-99")

    def test_iter_scenarios_family_filter(self):
        noon = list(iter_scenarios(family="noon"))
        assert noon
        assert all(s.family == "noon" for s in noon)

    def test_iter_scenarios_tier1_filter(self):
        assert all(s.tier1 for s in iter_scenarios(tier1_only=True))

    def test_iter_scenarios_unknown_family_raises(self):
        with pytest.raises(ConfigurationError, match="noon"):
            list(iter_scenarios(family="does-not-exist"))
