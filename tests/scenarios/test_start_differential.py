"""Start-strategy differential: every start finds the same variety.

A start system is an *accelerator*, never an answer-changer: whatever
strategy seeds the homotopy, the deduplicated solution set must be the
one total-degree continuation finds.  Tier-1 pins that on one sparse
scenario and the triangular showcase (where the diagonal start tracks
3x fewer paths); the full registry sweep runs under ``-m
scenario_matrix``.  The generic-member leg closes the parameter-homotopy
loop: a warm serve from a solved family member reproduces a cold solve
of the perturbed target.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import SCENARIOS, get_scenario
from repro.polynomials import katsura_system, perturb_coefficients
from repro.tracking import (
    DiagonalStart,
    ParameterFamily,
    TotalDegreeStart,
    TrackerOptions,
    solve_system,
)

#: Tolerance for matching two solves' deduplicated roots; the two runs
#: approach each root along different paths, so demand agreement well
#: above the endgame tolerance but far below root separation.
MATCH_TOLERANCE = 1e-6

OPTIONS = TrackerOptions(end_tolerance=1e-10, end_iterations=12)

DIAGONAL = [s for s in SCENARIOS if s.start_strategy == "diagonal"]


def solution_set(report, digits=8):
    roots = []
    for solution in report.solutions:
        point = solution.as_complex()
        roots.append(tuple((round(z.real, digits), round(z.imag, digits))
                           for z in point))
    return sorted(roots)


def assert_same_roots(left_report, right_report):
    left = solution_set(left_report)
    right = solution_set(right_report)
    assert len(left) == len(right)
    for a, b in zip(left, right):
        for (ar, ai), (br, bi) in zip(a, b):
            assert abs(ar - br) <= MATCH_TOLERANCE
            assert abs(ai - bi) <= MATCH_TOLERANCE


def assert_diagonal_matches_total_degree(scenario):
    system = scenario.build_system()
    total = solve_system(system, options=OPTIONS)
    diagonal = solve_system(system, options=OPTIONS, start=DiagonalStart())
    assert total.start_strategy == "total-degree"
    assert diagonal.start_strategy == "diagonal"
    assert diagonal.paths_tracked == scenario.start_paths
    assert len(diagonal.solutions) == scenario.known_root_count
    assert_same_roots(total, diagonal)


class TestDiagonalDifferentialTier1:
    def test_sparse_scenario_same_roots(self):
        assert_diagonal_matches_total_degree(get_scenario("random-sparse-3"))

    def test_triangular_scenario_same_roots_with_fewer_paths(self):
        scenario = get_scenario("triangular-3")
        assert scenario.start_paths < scenario.bezout_number
        assert_diagonal_matches_total_degree(scenario)


@pytest.mark.scenario_matrix
@pytest.mark.slow
@pytest.mark.parametrize("scenario", DIAGONAL, ids=lambda s: s.name)
class TestDiagonalDifferentialMatrix:
    """Every diagonal-recommended registry member, matrix extras included."""

    def test_same_roots(self, scenario):
        assert_diagonal_matches_total_degree(scenario)


class TestGenericMemberDifferential:
    def test_warm_family_serve_reproduces_a_cold_solve(self):
        base = katsura_system(3)
        target = perturb_coefficients(base, scale=1e-2, seed=23)
        family = ParameterFamily(name="katsura-3", options=OPTIONS)
        family.solve(base)
        warm = family.solve(target)
        cold = solve_system(target, options=OPTIONS)
        assert warm.start_strategy == "generic-member"
        assert cold.start_strategy == "total-degree"
        assert family.stats() == {"cold_solves": 1, "warm_serves": 1}
        # The member has 8 finite roots == its Bezout number, so the warm
        # serve tracks the same path count but from adjacent start points.
        assert len(warm.solutions) == len(cold.solutions)
        assert_same_roots(cold, warm)
