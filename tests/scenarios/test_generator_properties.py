"""Property tests for the scenario-family generators.

The registry's classical families carry *theory*, not just shapes:
katsura-n has exactly ``2**n`` isolated roots, noon-n exactly
``3**n - 2n``, and the *constructed* families (cyclic chain, random
sparse, irregular degree) keep the diagonal-leading-term invariant --
each polynomial ``i`` owns the unique top-total-degree monomial
``x_i^{d_i}`` -- which is what makes their Bezout number a product of
diagonal degrees and rules out solutions at infinity (the registry's
``all_paths_converge`` declarations).  Katsura, noon and the
Speelpenning product spread their top degree over several monomials, so
they are checked against their classical formulas instead.

When ``hypothesis`` is installed the invariants also run under its
adversarial generator; the seeded driver below always runs, so the suite
is deterministic without it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.polynomials import (
    cyclic_quadratic_system,
    evaluate_naive,
    irregular_degree_system,
    katsura_root_count,
    katsura_system,
    noon_root_count,
    noon_system,
    random_sparse_system,
    speelpenning_product_system,
)
from repro.tracking.start_systems import total_degree

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

_RNG = np.random.default_rng(20120521)  # the paper's conference year

#: (builder, dimension range) for the shared structural invariants.
FAMILY_BUILDERS = [
    ("cyclic", lambda n, seed: cyclic_quadratic_system(n), (2, 6)),
    ("katsura", lambda n, seed: katsura_system(n), (1, 5)),
    ("noon", lambda n, seed: noon_system(n), (2, 5)),
    ("speelpenning", lambda n, seed: speelpenning_product_system(n, seed=seed),
     (2, 5)),
    ("random-sparse", lambda n, seed: random_sparse_system(n, seed=seed),
     (2, 6)),
    ("irregular", lambda n, seed: irregular_degree_system(n, seed=seed),
     (2, 7)),
]

#: The subset constructed around a unique diagonal leading term.
DIAGONAL_BUILDERS = [f for f in FAMILY_BUILDERS
                     if f[0] in ("cyclic", "random-sparse", "irregular")]


def diagonal_degrees(system):
    """Per-row diagonal degree: the exponent of ``x_i`` in row ``i``'s
    unique top-degree monomial.  Asserts the invariant on the way."""
    degrees = []
    for i, poly in enumerate(system):
        top = poly.total_degree
        leaders = [m for _, m in poly.terms if m.total_degree == top]
        assert len(leaders) == 1, \
            f"row {i}: {len(leaders)} top-degree monomials, expected 1"
        leader = leaders[0]
        assert leader.positions == (i,), \
            f"row {i}: leading monomial touches {leader.positions}"
        degrees.append(leader.exponents[0])
    return degrees


class TestDiagonalLeadingTerm:
    """The invariant the constructed families use for exact Bezout
    accounting (and for the no-solutions-at-infinity promise)."""

    @pytest.mark.parametrize("family,builder,dims", DIAGONAL_BUILDERS,
                             ids=[f[0] for f in DIAGONAL_BUILDERS])
    def test_unique_diagonal_leader_and_bezout_product(self, family,
                                                       builder, dims):
        lo, hi = dims
        for n in range(lo, hi + 1):
            seed = int(_RNG.integers(1, 10_000))
            system = builder(n, seed)
            degrees = diagonal_degrees(system)
            product = 1
            for d in degrees:
                product *= d
            assert total_degree(system) == product

    @pytest.mark.parametrize("family,builder,dims", FAMILY_BUILDERS,
                             ids=[f[0] for f in FAMILY_BUILDERS])
    def test_square_and_nonempty(self, family, builder, dims):
        lo, _ = dims
        system = builder(lo, 3)
        assert len(system.polynomials) == system.dimension
        assert all(poly.terms for poly in system)

    @pytest.mark.parametrize("family,builder,dims", FAMILY_BUILDERS,
                             ids=[f[0] for f in FAMILY_BUILDERS])
    def test_bezout_is_product_of_row_degrees(self, family, builder, dims):
        lo, hi = dims
        for n in range(lo, hi + 1):
            system = builder(n, 5)
            product = 1
            for poly in system:
                product *= poly.total_degree
            assert total_degree(system) == product


class TestKatsura:
    def test_root_count_formula(self):
        for n in range(1, 8):
            assert katsura_root_count(n) == 2 ** n

    def test_dimension_and_bezout(self):
        for n in range(1, 5):
            system = katsura_system(n)
            assert system.dimension == n + 1
            # One linear row, n quadratic rows: Bezout 2^n = the root count
            # (Katsura systems have no solutions at infinity).
            assert total_degree(system) == katsura_root_count(n)

    def test_magnetisation_normalisation_row_present(self):
        # The linear row u_0 + 2 sum u_l = 1 pins the normalisation; at
        # the all-zero point it evaluates to the constant -1.
        system = katsura_system(3)
        zero = [0j] * system.dimension
        values = evaluate_naive(system, zero).values
        assert any(abs(v + 1) < 1e-15 for v in values)


class TestNoon:
    def test_root_count_formula(self):
        for n in range(2, 7):
            assert noon_root_count(n) == 3 ** n - 2 * n

    def test_divergent_path_budget(self):
        # Bezout 3^n minus the known count leaves exactly 2n divergent
        # paths -- the registry's all_paths_converge=False accounting.
        for n in range(2, 5):
            system = noon_system(n)
            assert system.dimension == n
            assert total_degree(system) - noon_root_count(n) == 2 * n

    def test_full_symmetry(self):
        # Noon's neural-network system is symmetric under any coordinate
        # permutation: row i is x_i * sum_{j != i} x_j^2 - a x_i + 1.
        system = noon_system(3)
        rng = np.random.default_rng(17)
        point = [complex(a, b) for a, b in zip(rng.normal(size=3),
                                               rng.normal(size=3))]
        values = evaluate_naive(system, point).values
        swapped = [point[1], point[0], point[2]]
        swapped_values = evaluate_naive(system, swapped).values
        assert swapped_values[0] == pytest.approx(values[1])
        assert swapped_values[1] == pytest.approx(values[0])
        assert swapped_values[2] == pytest.approx(values[2])


class TestCyclicChain:
    def test_shift_symmetry(self):
        # x_i^2 - x_{i+1 mod n} is invariant under the cyclic coordinate
        # shift: evaluating at the rotated point rotates the values.
        n = 5
        system = cyclic_quadratic_system(n)
        rng = np.random.default_rng(23)
        point = [complex(a, b) for a, b in zip(rng.normal(size=n),
                                               rng.normal(size=n))]
        values = evaluate_naive(system, point).values
        rotated = point[1:] + point[:1]
        rotated_values = evaluate_naive(system, rotated).values
        for i in range(n):
            assert rotated_values[i] == pytest.approx(values[(i + 1) % n])

    def test_all_ones_is_a_root(self):
        system = cyclic_quadratic_system(4)
        values = evaluate_naive(system, [1 + 0j] * 4).values
        assert all(v == 0 for v in values)


class TestSeededFamilies:
    def test_speelpenning_bezout_is_n_to_the_n(self):
        for n in range(2, 5):
            assert total_degree(speelpenning_product_system(n)) == n ** n

    def test_irregular_is_actually_irregular(self):
        for n in range(3, 7):
            assert irregular_degree_system(n).regularity() is None

    def test_same_seed_same_system(self):
        a = random_sparse_system(4, seed=99)
        b = random_sparse_system(4, seed=99)
        assert a.polynomials == b.polynomials

    def test_different_seeds_differ(self):
        a = random_sparse_system(4, seed=1)
        b = random_sparse_system(4, seed=2)
        assert a.polynomials != b.polynomials

    def test_sparse_extra_terms_stay_below_diagonal_degree(self):
        system = random_sparse_system(5, max_degree=4, extra_terms=3, seed=8)
        for poly in system:
            top = poly.total_degree
            leaders = [m for _, m in poly.terms if m.total_degree == top]
            assert len(leaders) == 1
            for _, monomial in poly.terms:
                if monomial is not leaders[0]:
                    assert monomial.total_degree < top


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=2, max_value=6),
           seed=st.integers(min_value=1, max_value=2 ** 20))
    def test_hypothesis_random_sparse_diagonal_invariant(n, seed):
        system = random_sparse_system(n, seed=seed)
        degrees = diagonal_degrees(system)
        product = 1
        for d in degrees:
            product *= d
        assert total_degree(system) == product

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=2, max_value=7),
           seed=st.integers(min_value=1, max_value=2 ** 20))
    def test_hypothesis_irregular_diagonal_invariant(n, seed):
        system = irregular_degree_system(n, seed=seed)
        diagonal_degrees(system)
        expected = 1
        for i in range(n):
            expected *= (i % 3) + 1
        assert total_degree(system) == expected

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=1, max_value=6))
    def test_hypothesis_katsura_bezout_matches_root_count(n):
        assert total_degree(katsura_system(n)) == katsura_root_count(n)
