"""The cross-workload differential matrix over the scenario registry.

Every tier-1 scenario (one per family: cyclic, katsura, noon,
speelpenning-product, random-sparse, irregular-degree) is pushed through
the engine identities the repository's perf work depends on:

* **plans vs walk, arenas on vs off** -- the compiled evaluation schedule
  and its arena executor must reproduce the naive walk *bit for bit* on a
  ``BatchHomotopy`` evaluation (values, t-derivative, full Jacobian), at
  double-double so the hi/lo plane arithmetic is exercised too;
* **batched vs scalar tracker** -- same solution sets on every family,
  including divergent-path systems (noon) where both engines must agree
  on *which* paths fail;
* **solve acceptance** -- :func:`repro.tracking.solve_system` finds
  exactly the classically known number of roots with endgame-tight
  residuals;
* **irregular fallback** -- irregular scenarios must run through the
  padded (unpacked) GPU layout and match the naive analytic evaluation,
  and the packed encoding must keep refusing to pad.

The full registry (matrix extras included) runs in
``test_matrix_full.py`` under ``-m scenario_matrix``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.eval_plan import _evaluations_identical, _lane_points
from repro.bench.scenarios import get_scenario, tier1_scenarios
from repro.core import CPUReferenceEvaluator, GPUEvaluator, SystemLayout
from repro.core.evalplan import use_eval_plans, use_plan_arenas
from repro.errors import ConfigurationError
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.multiprec.backend import backend_for_context
from repro.polynomials import evaluate_naive
from repro.tracking import (
    BatchTracker,
    Homotopy,
    PathTracker,
    TrackerOptions,
    solve_system,
    start_solutions,
    total_degree_start_system,
)
from repro.tracking.homotopy import BatchHomotopy


def scalar_results(system, context):
    """Track every total-degree path with the scalar tracker."""
    start = total_degree_start_system(system)
    homotopy = Homotopy(CPUReferenceEvaluator(start, context=context),
                        CPUReferenceEvaluator(system, context=context),
                        context=context)
    tracker = PathTracker(homotopy, context=context)
    return [tracker.track(s) for s in start_solutions(system)]


def batch_results(system, context):
    start = total_degree_start_system(system)
    tracker = BatchTracker(start, system, context=context)
    return tracker.track_many(list(start_solutions(system)))


def sorted_roots(results, context, digits=8):
    roots = []
    for r in results:
        if not r.success:
            continue
        point = [context.to_complex(x)
                 if not isinstance(x, (int, float, complex)) else complex(x)
                 for x in r.solution]
        roots.append(tuple((round(z.real, digits), round(z.imag, digits))
                           for z in point))
    return sorted(roots)


def assert_same_solution_sets(scalar, batched, context, tolerance=1e-8):
    assert sum(r.success for r in scalar) == sum(r.success for r in batched)
    left = sorted_roots(scalar, context)
    right = sorted_roots(batched, context)
    assert len(left) == len(right)
    for a, b in zip(left, right):
        for (ar, ai), (br, bi) in zip(a, b):
            assert abs(ar - br) <= tolerance
            assert abs(ai - bi) <= tolerance

TIER1 = tier1_scenarios()
IRREGULAR = [s for s in TIER1 if not s.regular]
SCENARIO_IDS = [s.name for s in TIER1]

#: The endgame tolerance the solve-acceptance leg certifies.
END_TOLERANCE = 1e-10


@pytest.mark.parametrize("scenario", TIER1, ids=SCENARIO_IDS)
class TestPlanIdentity:
    """Compiled plans and arenas reproduce the walk path bit for bit."""

    @staticmethod
    def evaluations(scenario, context=DOUBLE_DOUBLE, lanes=6, seed=29):
        target = scenario.build_system()
        start = total_degree_start_system(target)
        backend = backend_for_context(context)
        homotopy = BatchHomotopy(start, target, context=context,
                                 backend=backend)
        points = _lane_points(backend, target.dimension, lanes, seed=seed)
        t = np.random.default_rng(seed + 1).uniform(0.1, 0.9, size=lanes)
        with use_eval_plans(False):
            walk = homotopy.evaluate_batch(points, t)
        with use_eval_plans(True), use_plan_arenas(False):
            plan = homotopy.evaluate_batch(points, t)
        with use_eval_plans(True), use_plan_arenas(True):
            arena = homotopy.evaluate_batch(points, t)
        return target.dimension, walk, plan, arena

    def test_plan_matches_walk_bit_for_bit_dd(self, scenario):
        dimension, walk, plan, _ = self.evaluations(scenario)
        assert _evaluations_identical(walk, plan, dimension, DOUBLE_DOUBLE)

    def test_arena_matches_plan_bit_for_bit_dd(self, scenario):
        dimension, _, plan, arena = self.evaluations(scenario)
        assert _evaluations_identical(plan, arena, dimension, DOUBLE_DOUBLE)


@pytest.mark.parametrize("scenario", TIER1, ids=SCENARIO_IDS)
class TestBatchedVersusScalar:
    """The batched tracker agrees with the scalar tracker on every family."""

    def test_same_solution_sets(self, scenario):
        system = scenario.build_system()
        scalar = scalar_results(system, DOUBLE)
        batched = batch_results(system, DOUBLE)
        # Divergent-path families (noon): both engines must fail the same
        # number of paths, and the survivors must be the known roots.
        assert sum(r.success for r in batched) >= scenario.known_root_count
        assert_same_solution_sets(scalar, batched, DOUBLE)


@pytest.mark.parametrize("scenario", TIER1, ids=SCENARIO_IDS)
class TestSolveAcceptance:
    """solve_system lands on the classically known root count."""

    def test_root_count_and_residuals(self, scenario):
        report = solve_system(
            scenario.build_system(),
            options=TrackerOptions(end_tolerance=END_TOLERANCE,
                                   end_iterations=12))
        assert report.bezout_number == scenario.bezout_number
        assert report.paths_tracked == scenario.bezout_number
        assert len(report.solutions) == scenario.known_root_count
        assert all(s.residual <= END_TOLERANCE for s in report.solutions)
        if scenario.all_paths_converge:
            assert report.paths_converged == report.paths_tracked


class TestIrregularFallback:
    """Irregular scenarios pin the unpacked-layout (padded) GPU route."""

    def test_tier1_has_irregular_coverage(self):
        assert IRREGULAR  # the matrix promise: >= 1 irregular scenario

    @pytest.mark.parametrize("scenario", IRREGULAR,
                             ids=[s.name for s in IRREGULAR])
    def test_unpadded_evaluator_refuses_irregular(self, scenario):
        system = scenario.build_system()
        assert system.regularity() is None
        with pytest.raises(ConfigurationError, match="regular"):
            GPUEvaluator(system)

    @pytest.mark.parametrize("scenario", IRREGULAR,
                             ids=[s.name for s in IRREGULAR])
    def test_padded_evaluator_matches_naive(self, scenario):
        system = scenario.build_system()
        rng = np.random.default_rng(41)
        point = [complex(a, b)
                 for a, b in zip(rng.normal(size=system.dimension),
                                 rng.normal(size=system.dimension))]
        device = GPUEvaluator(system, padded=True).evaluate(point)
        naive = evaluate_naive(system, point)
        for got, want in zip(device.values, naive.values):
            assert got == pytest.approx(want, rel=1e-12, abs=1e-12)
        for got_row, want_row in zip(device.jacobian, naive.jacobian):
            for got, want in zip(got_row, want_row):
                assert got == pytest.approx(want, rel=1e-12, abs=1e-12)

    def test_packed_encoding_cannot_pad(self):
        system = get_scenario("irregular-3").build_system()
        with pytest.raises(ConfigurationError):
            SystemLayout(system, context=DOUBLE, encoding_format="packed",
                         padded=True)
