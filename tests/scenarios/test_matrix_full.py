"""The full differential matrix: every registry scenario, matrix extras
included.

Tier-1 runs one scenario per family (``test_differential_matrix.py``);
this module sweeps the *whole* registry -- the larger matrix sizes push
the same identities through deeper recursion in the plan compiler, more
lanes per batch, and bigger divergent-path fractions (noon-3 drops 6 of
27 paths).  Selected with ``-m scenario_matrix`` (or ``make
test-scenarios``); excluded from tier-1 via the ``slow`` marker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.eval_plan import _evaluations_identical, _lane_points
from repro.bench.scenarios import SCENARIOS
from repro.core.evalplan import use_eval_plans, use_plan_arenas
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.multiprec.backend import backend_for_context
from repro.tracking import TrackerOptions, solve_system
from repro.tracking.homotopy import BatchHomotopy
from repro.tracking.start_systems import total_degree_start_system

# Same-directory import: pytest's rootdir-less (no __init__.py) layout puts
# this directory on sys.path during collection.
from test_differential_matrix import (
    END_TOLERANCE,
    assert_same_solution_sets,
    batch_results,
    scalar_results,
)

pytestmark = [pytest.mark.slow, pytest.mark.scenario_matrix]

ALL_IDS = [s.name for s in SCENARIOS]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=ALL_IDS)
def test_plan_and_arena_identity_dd(scenario):
    target = scenario.build_system()
    start = total_degree_start_system(target)
    backend = backend_for_context(DOUBLE_DOUBLE)
    homotopy = BatchHomotopy(start, target, context=DOUBLE_DOUBLE,
                             backend=backend)
    points = _lane_points(backend, target.dimension, 8, seed=61)
    t = np.random.default_rng(62).uniform(0.1, 0.9, size=8)
    with use_eval_plans(False):
        walk = homotopy.evaluate_batch(points, t)
    with use_eval_plans(True), use_plan_arenas(False):
        plan = homotopy.evaluate_batch(points, t)
    with use_eval_plans(True), use_plan_arenas(True):
        arena = homotopy.evaluate_batch(points, t)
    assert _evaluations_identical(walk, plan, target.dimension, DOUBLE_DOUBLE)
    assert _evaluations_identical(plan, arena, target.dimension,
                                  DOUBLE_DOUBLE)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=ALL_IDS)
def test_batched_matches_scalar(scenario):
    system = scenario.build_system()
    scalar = scalar_results(system, DOUBLE)
    batched = batch_results(system, DOUBLE)
    assert sum(r.success for r in batched) >= scenario.known_root_count
    assert_same_solution_sets(scalar, batched, DOUBLE)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=ALL_IDS)
def test_solve_finds_every_known_root(scenario):
    report = solve_system(
        scenario.build_system(),
        options=TrackerOptions(end_tolerance=END_TOLERANCE,
                               end_iterations=12))
    assert report.bezout_number == scenario.bezout_number
    assert len(report.solutions) == scenario.known_root_count
    assert all(s.residual <= END_TOLERANCE for s in report.solutions)
