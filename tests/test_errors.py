"""Tests for the exception hierarchy and its use across the package."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ConstantMemoryOverflow,
    ConvergenceError,
    DeviceCapacityError,
    KernelExecutionError,
    LaunchConfigurationError,
    MemoryAccessError,
    PathTrackingError,
    ReproError,
    SharedMemoryOverflow,
    SingularMatrixError,
)


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc in (ConfigurationError, DeviceCapacityError, ConstantMemoryOverflow,
                    SharedMemoryOverflow, LaunchConfigurationError, KernelExecutionError,
                    MemoryAccessError, SingularMatrixError, PathTrackingError,
                    ConvergenceError):
            assert issubclass(exc, ReproError)
            assert issubclass(exc, Exception)

    def test_capacity_sub_hierarchy(self):
        assert issubclass(ConstantMemoryOverflow, DeviceCapacityError)
        assert issubclass(SharedMemoryOverflow, DeviceCapacityError)
        assert issubclass(LaunchConfigurationError, DeviceCapacityError)

    def test_execution_sub_hierarchy(self):
        assert issubclass(MemoryAccessError, KernelExecutionError)
        assert issubclass(ConvergenceError, PathTrackingError)

    def test_catching_the_base_class_catches_domain_errors(self):
        from repro.polynomials import Monomial

        with pytest.raises(ReproError):
            Monomial((0,), (0,))

    def test_capacity_errors_can_be_handled_uniformly(self):
        from repro.core import GPUEvaluator
        from repro.polynomials import random_regular_system

        too_big = random_regular_system(dimension=64, monomials_per_polynomial=40,
                                        variables_per_monomial=16, max_variable_degree=2,
                                        seed=0)
        with pytest.raises(DeviceCapacityError):
            GPUEvaluator(too_big)
