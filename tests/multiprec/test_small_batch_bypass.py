"""The dd add/sub small-batch bypass: tiny batches take the reference path.

Both paths are bit-for-bit identical, so the gate is purely a cost policy:
below :data:`~repro.multiprec.bufferpool.DD_ADDSUB_FUSED_MIN_ELEMENTS`
the fused add/sub kernels lose to the plain chains (no Dekker splits to
share, fixed scratch-stack cost) and the gate routes around them.  An
explicit :func:`~repro.multiprec.bufferpool.use_fused_kernels` scope
overrides the threshold, so the differential tests keep pinning exact
paths.
"""

from __future__ import annotations

import numpy as np

from repro.multiprec.bufferpool import (
    DD_ADDSUB_FUSED_MIN_ELEMENTS,
    dd_addsub_fused_threshold,
    fused_addsub_enabled,
    use_fused_kernels,
)
from repro.multiprec.ddarray import DDArray


class TestGate:
    def test_small_batches_bypass_fusion(self):
        assert not fused_addsub_enabled(1)
        assert not fused_addsub_enabled(DD_ADDSUB_FUSED_MIN_ELEMENTS - 1)
        assert fused_addsub_enabled(DD_ADDSUB_FUSED_MIN_ELEMENTS)
        assert fused_addsub_enabled(DD_ADDSUB_FUSED_MIN_ELEMENTS * 4)

    def test_forced_scope_overrides_threshold(self):
        with use_fused_kernels(True):
            assert fused_addsub_enabled(1)
        with use_fused_kernels(False):
            assert not fused_addsub_enabled(10**9)
        assert not fused_addsub_enabled(1)  # back to the size gate

    def test_threshold_override_scope(self):
        with dd_addsub_fused_threshold(4):
            assert fused_addsub_enabled(4)
            assert not fused_addsub_enabled(3)
        assert not fused_addsub_enabled(4)

    def test_both_paths_bit_for_bit_across_the_threshold(self):
        rng = np.random.default_rng(99)
        for size in (3, DD_ADDSUB_FUSED_MIN_ELEMENTS,
                     DD_ADDSUB_FUSED_MIN_ELEMENTS + 5):
            a = DDArray(rng.normal(size=size), rng.normal(size=size) * 1e-17)
            b = DDArray(rng.normal(size=size), rng.normal(size=size) * 1e-17)
            default_sum = a + b  # whichever path the size gate picks
            with use_fused_kernels(True):
                fused = a + b
            with use_fused_kernels(False):
                reference = a + b
            for result in (default_sum, fused):
                assert np.array_equal(result.hi, reference.hi)
                assert np.array_equal(result.lo, reference.lo)
            default_diff = a - b
            with use_fused_kernels(False):
                ref_diff = a - b
            assert np.array_equal(default_diff.hi, ref_diff.hi)
            assert np.array_equal(default_diff.lo, ref_diff.lo)
