"""Tests for the vectorised quad-double arrays.

The key invariant is bit-for-bit agreement with the scalar
:class:`~repro.multiprec.quad_double.QuadDouble` operations, since both use
identical operation sequences -- including the vectorised renormalisation,
whose masked-select form must reproduce the scalar branch nest exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DivisionByZeroError
from repro.multiprec import ComplexQD, ComplexQDArray, QDArray, QuadDouble, qd


def random_qd_scalars(seed, size=16):
    """Full-expansion quad doubles (all four components populated)."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(size):
        v = float(rng.normal())
        if v == 0.0:
            v = 0.5
        q = (QuadDouble(v) + QuadDouble(v * 1e-17) + QuadDouble(v * 1e-34)
             + QuadDouble(v * 1e-51))
        out.append(q)
    return out


def random_qd_arrays(seed, size=16):
    return QDArray.from_scalars(random_qd_scalars(seed, size))


def assert_bit_identical(array: QDArray, scalars) -> None:
    for got, expected in zip(array.to_scalars(), scalars):
        for g, e in zip(got.c, expected.c):
            assert g == e or (np.isnan(g) and np.isnan(e))


class TestConstruction:
    def test_shape_and_size(self):
        a = QDArray.zeros((3, 4))
        assert a.shape == (3, 4)
        assert a.size == 12
        assert len(a) == 3

    def test_from_float64_exact(self):
        values = np.array([0.1, -2.5, 3.0])
        a = QDArray.from_float64(values)
        assert np.all(a.c0 == values)
        for c in (a.c1, a.c2, a.c3):
            assert np.all(c == 0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            QDArray(np.zeros(3), np.zeros(4))

    def test_normalisation_on_construction(self):
        a = QDArray(np.array([1.0]), np.array([3.0]))
        assert a.c0[0] == 4.0 and a.c1[0] == 0.0

    def test_normalisation_matches_scalar_constructor(self):
        rng = np.random.default_rng(0)
        comps = [rng.normal(size=32) * 10.0 ** (-16 * i) for i in range(4)]
        a = QDArray(*comps)
        expected = [QuadDouble(*(float(c[i]) for c in comps)) for i in range(32)]
        assert_bit_identical(a, expected)

    def test_from_and_to_scalars(self):
        scalars = [qd("0.1"), qd("0.2"), qd(3)]
        a = QDArray.from_scalars(scalars)
        back = a.to_scalars()
        assert all(x == y for x, y in zip(scalars, back))

    def test_ones(self):
        a = QDArray.ones(5)
        assert np.all(a.c0 == 1.0) and np.all(a.c1 == 0.0)

    def test_copy_is_independent(self):
        a = QDArray.ones(3)
        b = a.copy()
        b[0] = qd(5)
        assert a[0] == qd(1)

    def test_repr(self):
        assert "QDArray" in repr(QDArray.zeros(2))


class TestIndexing:
    def test_scalar_getitem(self):
        a = QDArray.from_scalars([qd("0.1"), qd("0.2")])
        assert isinstance(a[0], QuadDouble)
        assert a[0] == qd("0.1")

    def test_slice_getitem(self):
        a = QDArray.from_scalars([qd(i) for i in range(5)])
        sub = a[1:3]
        assert isinstance(sub, QDArray)
        assert sub.shape == (2,)
        assert sub[0] == qd(1)

    def test_setitem_scalar(self):
        a = QDArray.zeros(3)
        a[1] = qd("0.25")
        assert a[1] == qd("0.25")

    def test_setitem_float(self):
        a = QDArray.zeros(3)
        a[2] = 1.5
        assert a[2] == qd(1.5)


class TestArithmeticMatchesScalars:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_elementwise_bit_for_bit(self, op):
        A = random_qd_scalars(1)
        B = random_qd_scalars(2)
        va, vb = QDArray.from_scalars(A), QDArray.from_scalars(B)
        if op == "add":
            c, expected = va + vb, [x + y for x, y in zip(A, B)]
        elif op == "sub":
            c, expected = va - vb, [x - y for x, y in zip(A, B)]
        elif op == "mul":
            c, expected = va * vb, [x * y for x, y in zip(A, B)]
        else:
            c, expected = va / vb, [x / y for x, y in zip(A, B)]
        assert_bit_identical(c, expected)

    def test_scalar_operands(self):
        A = random_qd_scalars(3)
        a = QDArray.from_scalars(A)
        assert_bit_identical(a + 1.0, [x + 1 for x in A])
        assert_bit_identical(1.0 + a, [x + 1 for x in A])
        assert_bit_identical(a * qd(2), [x * 2 for x in A])
        assert_bit_identical(2.0 - a, [QuadDouble(2.0) - x for x in A])
        assert_bit_identical(1.0 / (a + 10.0),
                             [QuadDouble(1.0) / (x + 10) for x in A])

    def test_negation(self):
        A = random_qd_scalars(4)
        assert_bit_identical(-QDArray.from_scalars(A), [-x for x in A])

    def test_power(self):
        A = random_qd_scalars(5, size=8)
        a = QDArray.from_scalars(A)
        assert_bit_identical(a ** 3, [x.power(3) for x in A])
        assert (a ** 0).to_scalars() == [qd(1)] * 8

    def test_power_rejects_negative_or_float(self):
        a = QDArray.ones(2)
        with pytest.raises(TypeError):
            a ** -1
        with pytest.raises(TypeError):
            a ** 0.5


class TestDivisionEdgeCases:
    def test_zero_denominator_raises_repro_error(self):
        with pytest.raises(DivisionByZeroError):
            QDArray(np.array([1.0, 2.0])) / QDArray(np.array([3.0, 0.0]))

    def test_scalar_rtruediv_zero_denominator(self):
        with pytest.raises(DivisionByZeroError):
            1.0 / QDArray(np.array([2.0, 0.0]))

    def test_complex_zero_denominator(self):
        num = ComplexQDArray.from_complex128(np.array([1 + 1j, 2.0]))
        den = ComplexQDArray.from_complex128(np.array([1.0, 0.0]))
        with pytest.raises(DivisionByZeroError):
            num / den

    def test_nan_denominator_poisons_only_its_lane(self):
        out = QDArray(np.array([1.0, 4.0])) / QDArray(np.array([np.nan, 2.0]))
        assert np.isnan(out.c0[0]) and out.c0[1] == 2.0


class TestMaskedOpsAndReductions:
    def test_where_selects_lanes(self):
        a = QDArray(np.array([1.0, 2.0, 3.0]))
        b = QDArray(np.array([-1.0, -2.0, -3.0]))
        out = QDArray.where(np.array([True, False, True]), a, b)
        assert out.c0.tolist() == [1.0, -2.0, 3.0]

    def test_masked_fill(self):
        a = QDArray(np.array([1.0, 2.0]))
        out = a.masked_fill(np.array([False, True]), QuadDouble(9.0))
        assert out.c0.tolist() == [1.0, 9.0]

    def test_sum_matches_sequential_scalar_sum(self):
        A = random_qd_scalars(6, size=20)
        total = QDArray.from_scalars(A).sum()
        expected = QuadDouble(0.0)
        for x in A:
            expected = expected + x
        assert total == expected

    def test_sum_along_axis(self):
        a = QDArray(np.arange(6, dtype=float).reshape(2, 3))
        s = a.sum(axis=0)
        assert isinstance(s, QDArray)
        assert s.to_float64().tolist() == [3.0, 5.0, 7.0]

    def test_compensated_sum_beats_float64(self):
        n = 1000
        c0 = np.full(n + 1, 1e-40)
        c0[0] = 1.0
        total = QDArray(c0).sum()
        assert float(total.to_fraction() - 1) == pytest.approx(n * 1e-40, rel=1e-12)
        assert np.sum(c0) == 1.0  # the float64 sum it beats

    def test_abs_and_max_abs(self):
        a = QDArray.from_scalars([qd(-3), qd(2)])
        assert a.abs().to_scalars() == [qd(3), qd(2)]
        assert a.max_abs() == 3.0

    def test_max_abs_axis(self):
        a = QDArray(np.array([[1.0, -5.0], [3.0, 2.0]]))
        assert a.max_abs() == 5.0
        assert a.max_abs(axis=0).tolist() == [3.0, 5.0]

    def test_allclose(self):
        a = random_qd_arrays(7)
        assert a.allclose(a + 1e-70)
        assert not a.allclose(a + 1.0)


class TestComplexQDArray:
    def test_construction_and_roundtrip(self):
        z = np.array([1 + 2j, -0.5j, 3.0])
        a = ComplexQDArray.from_complex128(z)
        assert np.all(a.to_complex128() == z)
        assert a.shape == (3,)
        assert len(a) == 3

    def test_scalar_roundtrip(self):
        scalars = [ComplexQD(1 + 1j), ComplexQD(2 - 3j)]
        a = ComplexQDArray.from_scalars(scalars)
        assert a.to_scalars() == scalars

    def test_getitem_and_setitem(self):
        a = ComplexQDArray.zeros(3)
        a[1] = ComplexQD(2 + 2j)
        assert isinstance(a[1], ComplexQD)
        assert a[1].to_complex() == 2 + 2j

    def test_arithmetic_bit_for_bit(self):
        A = random_qd_scalars(8, size=10)
        B = random_qd_scalars(9, size=10)
        za = ComplexQDArray(QDArray.from_scalars(A), QDArray.from_scalars(B))
        zb = ComplexQDArray(QDArray.from_scalars(B), QDArray.from_scalars(A))
        for got, scalar_op in [
            (za + zb, lambda x, y: x + y),
            (za - zb, lambda x, y: x - y),
            (za * zb, lambda x, y: x * y),
            (za / zb, lambda x, y: x / y),
        ]:
            expected = [scalar_op(ComplexQD(a, b), ComplexQD(b, a))
                        for a, b in zip(A, B)]
            for g, e in zip(got.to_scalars(), expected):
                assert g.real.c == e.real.c
                assert g.imag.c == e.imag.c

    def test_power_and_conjugate(self):
        z = np.array([1 + 1j, 2 - 1j])
        a = ComplexQDArray.from_complex128(z)
        assert np.allclose((a ** 3).to_complex128(), z ** 3)
        assert np.all(a.conjugate().to_complex128() == z.conjugate())
        with pytest.raises(TypeError):
            a ** -1

    def test_sum_and_abs(self):
        z = np.array([3 + 4j, 1 - 1j])
        a = ComplexQDArray.from_complex128(z)
        total = a.sum()
        assert isinstance(total, ComplexQD)
        assert total.to_complex() == z.sum()
        assert a.abs2().to_float64().tolist() == [25.0, 2.0]
        assert a.max_abs() == pytest.approx(5.0)

    def test_where_broadcasts_lane_mask_over_rows(self):
        matrix = ComplexQDArray.from_complex128(
            np.arange(6, dtype=complex).reshape(2, 3))
        zeros = ComplexQDArray.zeros((2, 3))
        out = ComplexQDArray.where(np.array([True, False, True]), matrix, zeros)
        expected = np.arange(6, dtype=complex).reshape(2, 3)
        expected[:, 1] = 0
        assert np.array_equal(out.to_complex128(), expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ComplexQDArray(QDArray.zeros(2), QDArray.zeros(3))

    def test_scalar_coercion_in_arithmetic(self):
        a = ComplexQDArray.from_complex128(np.array([1 + 1j, 2 + 2j]))
        shifted = a + (1 + 0j)
        assert np.allclose(shifted.to_complex128(), np.array([2 + 1j, 3 + 2j]))
        scaled = a * ComplexQD(2)
        assert np.allclose(scaled.to_complex128(), np.array([2 + 2j, 4 + 4j]))
