"""The ``iadd_mul`` weighted accumulate: bit-for-bit with ``acc + a * b``.

The compiled evaluation plans land every weighted contribution through
:meth:`~repro.multiprec.backend.ComplexBatchBackend.iadd_mul`; like the
other in-place kernels it must be indistinguishable from the out-of-place
expression -- same operand order inside the product, same addition -- on
every backend, for array and scalar weights alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.multiprec.backend import (
    COMPLEX128_BACKEND,
    COMPLEX_DD_BACKEND,
    COMPLEX_QD_BACKEND,
    ComplexBatchBackend,
)

BACKENDS = (COMPLEX128_BACKEND, COMPLEX_DD_BACKEND, COMPLEX_QD_BACKEND)


def random_batch(backend, lanes, seed):
    rng = np.random.default_rng(seed)
    return backend.from_points([[complex(a, b) for a, b in
                                 zip(rng.normal(size=1), rng.normal(size=1))]
                                for _ in range(lanes)])[0]


def planes(array, backend):
    if backend.name == "d":
        return [array.real, array.imag]
    if backend.name == "dd":
        return [array.real.hi, array.real.lo, array.imag.hi, array.imag.lo]
    return ([getattr(array.real, f"c{c}") for c in range(4)]
            + [getattr(array.imag, f"c{c}") for c in range(4)])


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestIaddMul:
    def test_array_times_weight_vector(self, backend):
        acc = random_batch(backend, 8, 1)
        a = random_batch(backend, 8, 2)
        weights = np.exp(1j * np.linspace(0, 3, 8))
        expected = backend.copy(acc) + a * weights
        result = backend.iadd_mul(acc, a, weights)
        for got, want in zip(planes(result, backend), planes(expected, backend)):
            assert np.array_equal(got, want)

    def test_scalar_times_array(self, backend):
        acc = random_batch(backend, 6, 3)
        b = random_batch(backend, 6, 4)
        scale = 2.5 - 0.75j
        expected = backend.copy(acc) + scale * b
        result = backend.iadd_mul(acc, scale, b)
        for got, want in zip(planes(result, backend), planes(expected, backend)):
            assert np.array_equal(got, want)

    def test_lands_in_place(self, backend):
        acc = random_batch(backend, 4, 5)
        a = random_batch(backend, 4, 6)
        result = backend.iadd_mul(acc, a, np.ones(4, dtype=np.complex128))
        assert result is acc


def test_base_class_fallback_matches_expression():
    class Minimal(ComplexBatchBackend):
        name = "minimal"

        def iadd(self, acc, value):
            return acc + value

    backend = Minimal()
    acc = np.array([1 + 1j, 2 + 0j])
    a = np.array([0.5 + 0j, -1 + 2j])
    b = np.array([2 + 0j, 1 + 1j])
    assert np.array_equal(backend.iadd_mul(acc, a, b), acc + a * b)
