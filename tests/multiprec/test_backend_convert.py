"""Tests for convert_batch: moving (n, B) lane arrays between arithmetics.

Widening conversions (d -> dd -> qd) must be exact plane embeddings -- the
property the warm-restarted escalation relies on: a checkpoint captured at a
cheap rung seeds the wider rung with bit-for-bit the same values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.multiprec.backend import (
    COMPLEX128_BACKEND,
    COMPLEX_DD_BACKEND,
    COMPLEX_QD_BACKEND,
    convert_batch,
)
from repro.multiprec.ddarray import ComplexDDArray, DDArray
from repro.multiprec.qdarray import ComplexQDArray, QDArray


def lanes_complex128(seed=3, shape=(3, 4)):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=shape) + 1j * rng.normal(size=shape)).astype(
        np.complex128)


def dd_with_low_planes(shape=(2, 3)):
    """A ComplexDDArray whose lo planes are non-trivial."""
    hi = np.linspace(1.0, 2.0, num=shape[0] * shape[1]).reshape(shape)
    lo = np.full(shape, 1e-20)
    return ComplexDDArray(DDArray(hi, lo), DDArray(-hi, -lo))


class TestWidening:
    def test_d_to_dd_is_exact(self):
        z = lanes_complex128()
        wide = convert_batch(z, COMPLEX128_BACKEND, COMPLEX_DD_BACKEND)
        assert isinstance(wide, ComplexDDArray)
        assert np.array_equal(wide.real.hi, z.real)
        assert np.array_equal(wide.imag.hi, z.imag)
        assert not wide.real.lo.any() and not wide.imag.lo.any()

    def test_d_to_qd_is_exact(self):
        z = lanes_complex128()
        wide = convert_batch(z, COMPLEX128_BACKEND, COMPLEX_QD_BACKEND)
        assert isinstance(wide, ComplexQDArray)
        assert np.array_equal(wide.real.c0, z.real)
        assert not (wide.real.c1.any() or wide.real.c2.any()
                    or wide.real.c3.any())

    def test_dd_to_qd_plane_widening_preserves_both_planes(self):
        dd = dd_with_low_planes()
        wide = convert_batch(dd, COMPLEX_DD_BACKEND, COMPLEX_QD_BACKEND)
        assert isinstance(wide, ComplexQDArray)
        assert np.array_equal(wide.real.c0, dd.real.hi)
        assert np.array_equal(wide.real.c1, dd.real.lo)
        assert np.array_equal(wide.imag.c0, dd.imag.hi)
        assert np.array_equal(wide.imag.c1, dd.imag.lo)
        assert not wide.real.c2.any() and not wide.real.c3.any()

    def test_dd_to_qd_matches_scalar_widening(self):
        """The batch widening is the vectorised QuadDouble.from_double_double."""
        from repro.multiprec.numeric import ComplexQD
        from repro.multiprec.quad_double import QuadDouble

        dd = dd_with_low_planes()
        wide = convert_batch(dd, COMPLEX_DD_BACKEND, COMPLEX_QD_BACKEND)
        for lane in range(dd.shape[1]):
            batch_scalars = COMPLEX_QD_BACKEND.lane_scalars(wide, lane)
            dd_scalars = COMPLEX_DD_BACKEND.lane_scalars(dd, lane)
            for got, src in zip(batch_scalars, dd_scalars):
                want = ComplexQD(QuadDouble.from_double_double(src.real),
                                 QuadDouble.from_double_double(src.imag))
                assert got == want


class TestIdentityAndNarrowing:
    def test_same_context_copies(self):
        z = lanes_complex128()
        out = convert_batch(z, COMPLEX128_BACKEND, COMPLEX128_BACKEND)
        assert np.array_equal(out, z)
        out[0, 0] = 0  # a copy, not a view
        assert z[0, 0] != 0

    def test_dd_to_d_rounds(self):
        dd = dd_with_low_planes()
        narrow = convert_batch(dd, COMPLEX_DD_BACKEND, COMPLEX128_BACKEND)
        assert narrow.dtype == np.complex128
        assert np.array_equal(narrow, dd.to_complex128())

    def test_qd_to_dd_keeps_leading_planes(self):
        qd = ComplexQDArray(QDArray(np.ones((2, 2)), np.full((2, 2), 1e-20)),
                            QDArray(np.zeros((2, 2))))
        narrow = convert_batch(qd, COMPLEX_QD_BACKEND, COMPLEX_DD_BACKEND)
        assert isinstance(narrow, ComplexDDArray)
        assert np.array_equal(narrow.real.hi, qd.real.c0)
        assert np.array_equal(narrow.real.lo, qd.real.c1)


class TestRoundTripThroughCheckpoints:
    def test_widen_then_narrow_is_identity_on_d_values(self):
        z = lanes_complex128(seed=11)
        qd = convert_batch(z, COMPLEX128_BACKEND, COMPLEX_QD_BACKEND)
        back = convert_batch(qd, COMPLEX_QD_BACKEND, COMPLEX128_BACKEND)
        assert np.array_equal(back, z)
