"""Tests for the error-free transformations.

The defining property of every EFT is *exactness*: the returned (result,
error) pair sums exactly (as rational numbers) to the exact result of the
operation on the inputs.  Hypothesis drives the checks over a wide range of
magnitudes.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multiprec.eft import (
    SPLITTER,
    quick_two_sum,
    split,
    two_diff,
    two_prod,
    two_sqr,
    two_sum,
)

finite_doubles = st.floats(allow_nan=False, allow_infinity=False,
                           min_value=-1e150, max_value=1e150)

# The error-free transformations (like the QD library they come from) assume
# that no intermediate underflows to subnormals or overflows; products of
# these values stay comfortably inside the normal range.
moderate_doubles = st.one_of(
    st.just(0.0),
    st.floats(allow_nan=False, allow_infinity=False, min_value=1e-100, max_value=1e100),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=-1e-100),
)


class TestTwoSum:
    @given(finite_doubles, finite_doubles)
    def test_exactness(self, a, b):
        s, e = two_sum(a, b)
        assert Fraction(s) + Fraction(e) == Fraction(a) + Fraction(b)

    @given(finite_doubles, finite_doubles)
    def test_result_is_rounded_sum(self, a, b):
        s, _ = two_sum(a, b)
        assert s == a + b

    def test_classic_cancellation_case(self):
        s, e = two_sum(1.0, 1e-20)
        assert s == 1.0
        assert e == 1e-20

    def test_zero_inputs(self):
        assert two_sum(0.0, 0.0) == (0.0, 0.0)

    @given(finite_doubles)
    def test_identity_with_zero(self, a):
        s, e = two_sum(a, 0.0)
        assert s == a and e == 0.0


class TestQuickTwoSum:
    @given(finite_doubles, finite_doubles)
    def test_exact_when_ordered(self, a, b):
        if abs(a) < abs(b):
            a, b = b, a
        s, e = quick_two_sum(a, b)
        assert Fraction(s) + Fraction(e) == Fraction(a) + Fraction(b)

    def test_matches_two_sum_on_ordered_inputs(self):
        a, b = 1.5, 2.0 ** -40
        assert quick_two_sum(a, b) == two_sum(a, b)


class TestTwoDiff:
    @given(finite_doubles, finite_doubles)
    def test_exactness(self, a, b):
        s, e = two_diff(a, b)
        assert Fraction(s) + Fraction(e) == Fraction(a) - Fraction(b)

    def test_catastrophic_cancellation(self):
        a = 1.0 + 2.0 ** -52
        s, e = two_diff(a, 1.0)
        assert Fraction(s) + Fraction(e) == Fraction(a) - 1


class TestSplit:
    @given(moderate_doubles)
    def test_split_reconstructs(self, a):
        hi, lo = split(a)
        assert hi + lo == a
        assert Fraction(hi) + Fraction(lo) == Fraction(a)

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=1e-100, max_value=1e100))
    def test_halves_have_short_significands(self, a):
        hi, lo = split(a)
        # 26-bit halves: multiplying two halves is exact in double precision.
        assert Fraction(hi) * Fraction(hi) == Fraction(hi * hi)
        assert Fraction(lo) * Fraction(lo) == Fraction(lo * lo)

    def test_splitter_value(self):
        assert SPLITTER == 2.0 ** 27 + 1.0

    def test_large_magnitude_does_not_overflow(self):
        a = 1e300
        hi, lo = split(a)
        assert math.isfinite(hi) and math.isfinite(lo)
        assert hi + lo == a

    def test_split_vectorised(self):
        values = np.array([1.0, -3.7, 1e10, 1e300, 0.0])
        hi, lo = split(values)
        assert np.all(hi + lo == values)


class TestTwoProd:
    @given(moderate_doubles, moderate_doubles)
    def test_exactness(self, a, b):
        p, e = two_prod(a, b)
        assert Fraction(p) + Fraction(e) == Fraction(a) * Fraction(b)

    @given(moderate_doubles, moderate_doubles)
    def test_result_is_rounded_product(self, a, b):
        p, _ = two_prod(a, b)
        assert p == a * b

    def test_known_inexact_product(self):
        p, e = two_prod(0.1, 0.1)
        assert Fraction(p) + Fraction(e) == Fraction(0.1) * Fraction(0.1)
        assert e != 0.0  # 0.1 * 0.1 is not exactly representable


class TestTwoSqr:
    @given(moderate_doubles)
    def test_matches_two_prod(self, a):
        p1, e1 = two_sqr(a)
        p2, e2 = two_prod(a, a)
        assert Fraction(p1) + Fraction(e1) == Fraction(p2) + Fraction(e2)

    @given(moderate_doubles)
    def test_exactness(self, a):
        p, e = two_sqr(a)
        assert Fraction(p) + Fraction(e) == Fraction(a) * Fraction(a)


class TestVectorised:
    def test_two_sum_elementwise_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=100) * 10.0 ** rng.integers(-10, 10, size=100)
        b = rng.normal(size=100) * 10.0 ** rng.integers(-10, 10, size=100)
        s, e = two_sum(a, b)
        for i in range(len(a)):
            ss, ee = two_sum(float(a[i]), float(b[i]))
            assert s[i] == ss and e[i] == ee

    def test_two_prod_elementwise_matches_scalar(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        p, e = two_prod(a, b)
        for i in range(len(a)):
            pp, ee = two_prod(float(a[i]), float(b[i]))
            assert p[i] == pp and e[i] == ee
