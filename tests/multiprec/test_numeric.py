"""Tests for the numeric-context abstraction."""

from __future__ import annotations

import pytest

from repro.multiprec import (
    CONTEXTS,
    DOUBLE,
    DOUBLE_DOUBLE,
    QUAD_DOUBLE,
    ComplexDD,
    DoubleDouble,
    QuadDouble,
    get_context,
)
from repro.multiprec.numeric import ComplexQD


class TestRegistry:
    def test_all_three_contexts_registered(self):
        assert set(CONTEXTS) == {"d", "dd", "qd"}

    def test_get_context(self):
        assert get_context("d") is DOUBLE
        assert get_context("dd") is DOUBLE_DOUBLE
        assert get_context("qd") is QUAD_DOUBLE

    def test_get_context_unknown(self):
        with pytest.raises(KeyError):
            get_context("octuple")

    def test_cost_factors_are_increasing(self):
        assert DOUBLE.mul_cost_factor < DOUBLE_DOUBLE.mul_cost_factor < QUAD_DOUBLE.mul_cost_factor

    def test_paper_cost_factor_for_double_double(self):
        # The paper reports a cost factor of around 8 for double double.
        assert DOUBLE_DOUBLE.mul_cost_factor == pytest.approx(8.0)

    def test_precisions_are_decreasing(self):
        assert DOUBLE.working_precision > DOUBLE_DOUBLE.working_precision > QUAD_DOUBLE.working_precision

    def test_storage_sizes(self):
        assert DOUBLE.bytes_per_real == 8
        assert DOUBLE_DOUBLE.bytes_per_real == 16
        assert QUAD_DOUBLE.bytes_per_real == 32


class TestRoundTrips:
    @pytest.mark.parametrize("context", [DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE],
                             ids=["d", "dd", "qd"])
    def test_from_to_complex_roundtrip(self, context):
        z = 0.75 - 1.25j
        scalar = context.from_complex(z)
        assert context.to_complex(scalar) == z

    def test_scalar_types(self):
        assert isinstance(DOUBLE.from_complex(1j), complex)
        assert isinstance(DOUBLE_DOUBLE.from_complex(1j), ComplexDD)
        assert isinstance(QUAD_DOUBLE.from_complex(1j), ComplexQD)

    @pytest.mark.parametrize("context", [DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE],
                             ids=["d", "dd", "qd"])
    def test_identities(self, context):
        zero = context.zero()
        one = context.one()
        assert context.to_complex(zero) == 0j
        assert context.to_complex(one) == 1 + 0j
        x = context.from_complex(2 - 3j)
        assert context.to_complex(x + zero) == 2 - 3j
        assert context.to_complex(x * one) == 2 - 3j

    @pytest.mark.parametrize("context", [DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE],
                             ids=["d", "dd", "qd"])
    def test_vector_helpers(self, context):
        values = [1 + 1j, 2, -3j]
        converted = context.vector(values)
        assert context.to_complex_vector(converted) == [1 + 1j, 2 + 0j, -3j]

    @pytest.mark.parametrize("context", [DOUBLE_DOUBLE, QUAD_DOUBLE], ids=["dd", "qd"])
    def test_extended_arithmetic_is_really_extended(self, context):
        tiny = 2.0 ** -70
        one_plus = context.from_complex(complex(1.0)) + context.from_complex(complex(tiny))
        difference = one_plus - context.one()
        assert abs(context.to_complex(difference) - tiny) < tiny * 1e-6
