"""Tests for the vectorised double-double arrays.

The key invariant is bit-for-bit agreement with the scalar
:class:`~repro.multiprec.double_double.DoubleDouble` operations, since both
use identical operation sequences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multiprec import ComplexDD, ComplexDDArray, DDArray, DoubleDouble, dd


def random_dd_arrays(seed, size=16):
    rng = np.random.default_rng(seed)
    hi = rng.normal(size=size)
    lo = rng.normal(size=size) * 1e-18
    return DDArray(hi, lo)


class TestConstruction:
    def test_shape_and_size(self):
        a = DDArray.zeros((3, 4))
        assert a.shape == (3, 4)
        assert a.size == 12
        assert len(a) == 3

    def test_from_float64_exact(self):
        values = np.array([0.1, -2.5, 3.0])
        a = DDArray.from_float64(values)
        assert np.all(a.hi == values)
        assert np.all(a.lo == 0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            DDArray(np.zeros(3), np.zeros(4))

    def test_normalisation_on_construction(self):
        a = DDArray(np.array([1.0]), np.array([3.0]))
        assert a.hi[0] == 4.0 and a.lo[0] == 0.0

    def test_from_and_to_scalars(self):
        scalars = [dd("0.1"), dd("0.2"), dd(3)]
        a = DDArray.from_scalars(scalars)
        back = a.to_scalars()
        assert all(x == y for x, y in zip(scalars, back))

    def test_ones(self):
        a = DDArray.ones(5)
        assert np.all(a.hi == 1.0) and np.all(a.lo == 0.0)

    def test_copy_is_independent(self):
        a = DDArray.ones(3)
        b = a.copy()
        b[0] = dd(5)
        assert a[0] == dd(1)

    def test_repr(self):
        assert "DDArray" in repr(DDArray.zeros(2))


class TestIndexing:
    def test_scalar_getitem(self):
        a = DDArray.from_scalars([dd("0.1"), dd("0.2")])
        assert isinstance(a[0], DoubleDouble)
        assert a[0] == dd("0.1")

    def test_slice_getitem(self):
        a = DDArray.from_scalars([dd(i) for i in range(5)])
        sub = a[1:3]
        assert isinstance(sub, DDArray)
        assert sub.shape == (2,)
        assert sub[0] == dd(1)

    def test_setitem_scalar(self):
        a = DDArray.zeros(3)
        a[1] = dd("0.25")
        assert a[1] == dd("0.25")

    def test_setitem_float(self):
        a = DDArray.zeros(3)
        a[2] = 1.5
        assert a[2] == dd(1.5)


class TestArithmeticMatchesScalars:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_elementwise_bit_for_bit(self, op):
        a = random_dd_arrays(1)
        b = random_dd_arrays(2)
        if op == "add":
            c = a + b
            expected = [x + y for x, y in zip(a.to_scalars(), b.to_scalars())]
        elif op == "sub":
            c = a - b
            expected = [x - y for x, y in zip(a.to_scalars(), b.to_scalars())]
        elif op == "mul":
            c = a * b
            expected = [x * y for x, y in zip(a.to_scalars(), b.to_scalars())]
        else:
            c = a / b
            expected = [x / y for x, y in zip(a.to_scalars(), b.to_scalars())]
        got = c.to_scalars()
        assert all(g == e for g, e in zip(got, expected))

    def test_scalar_operands(self):
        a = random_dd_arrays(3)
        assert (a + 1.0).to_scalars() == [x + 1 for x in a.to_scalars()]
        assert (1.0 + a).to_scalars() == [x + 1 for x in a.to_scalars()]
        assert (a * dd(2)).to_scalars() == [x * 2 for x in a.to_scalars()]
        assert (2.0 - a).to_scalars() == [2 - x for x in a.to_scalars()]
        assert (1.0 / (a + 10.0)).to_scalars() == [1 / (x + 10) for x in a.to_scalars()]

    def test_negation(self):
        a = random_dd_arrays(4)
        assert (-a).to_scalars() == [-x for x in a.to_scalars()]

    def test_power(self):
        a = random_dd_arrays(5, size=8)
        assert (a ** 3).to_scalars() == [x.power(3) for x in a.to_scalars()]
        assert (a ** 0).to_scalars() == [dd(1)] * 8

    def test_power_rejects_negative_or_float(self):
        a = DDArray.ones(2)
        with pytest.raises(TypeError):
            a ** -1
        with pytest.raises(TypeError):
            a ** 0.5


class TestReductionsAndHelpers:
    def test_sum_matches_sequential_scalar_sum(self):
        a = random_dd_arrays(6, size=20)
        total = a.sum()
        expected = DoubleDouble(0.0)
        for x in a.to_scalars():
            expected = expected + x
        assert total == expected

    def test_sum_along_axis(self):
        a = DDArray(np.arange(6, dtype=float).reshape(2, 3))
        s = a.sum(axis=0)
        assert isinstance(s, DDArray)
        assert s.to_float64().tolist() == [3.0, 5.0, 7.0]

    def test_abs_and_max_abs(self):
        a = DDArray.from_scalars([dd(-3), dd(2)])
        assert a.abs().to_scalars() == [dd(3), dd(2)]
        assert a.max_abs() == 3.0

    def test_allclose(self):
        a = random_dd_arrays(7)
        b = a + 1e-40
        assert a.allclose(b)
        assert not a.allclose(a + 1.0)

    def test_compensated_sum_beats_float64(self):
        # Summing 1 followed by many 1e-20 terms: float64 loses them entirely,
        # double-double keeps them.
        n = 1000
        hi = np.full(n + 1, 1e-20)
        hi[0] = 1.0
        a = DDArray(hi)
        exact_tail = n * 1e-20
        dd_sum = a.sum()
        assert float(dd_sum.to_fraction() - 1) == pytest.approx(exact_tail, rel=1e-12)
        assert np.sum(hi) == 1.0  # the float64 sum it beats


class TestComplexDDArray:
    def test_construction_and_roundtrip(self):
        z = np.array([1 + 2j, -0.5j, 3.0])
        a = ComplexDDArray.from_complex128(z)
        assert np.all(a.to_complex128() == z)
        assert a.shape == (3,)
        assert len(a) == 3

    def test_scalar_roundtrip(self):
        scalars = [ComplexDD(1 + 1j), ComplexDD(2 - 3j)]
        a = ComplexDDArray.from_scalars(scalars)
        assert a.to_scalars() == scalars

    def test_getitem_and_setitem(self):
        a = ComplexDDArray.zeros(3)
        a[1] = ComplexDD(2 + 2j)
        assert isinstance(a[1], ComplexDD)
        assert a[1].to_complex() == 2 + 2j

    def test_arithmetic_matches_scalars(self):
        rng = np.random.default_rng(8)
        z1 = rng.normal(size=10) + 1j * rng.normal(size=10)
        z2 = rng.normal(size=10) + 1j * rng.normal(size=10)
        a, b = ComplexDDArray.from_complex128(z1), ComplexDDArray.from_complex128(z2)
        for op, scalar_op in [
            (a + b, lambda x, y: x + y),
            (a - b, lambda x, y: x - y),
            (a * b, lambda x, y: x * y),
            (a / b, lambda x, y: x / y),
        ]:
            expected = [scalar_op(x, y) for x, y in zip(a.to_scalars(), b.to_scalars())]
            assert op.to_scalars() == expected

    def test_power_and_conjugate(self):
        z = np.array([1 + 1j, 2 - 1j])
        a = ComplexDDArray.from_complex128(z)
        cubed = a ** 3
        assert np.allclose(cubed.to_complex128(), z ** 3)
        assert np.all(a.conjugate().to_complex128() == z.conjugate())
        with pytest.raises(TypeError):
            a ** -1

    def test_sum_and_abs(self):
        z = np.array([3 + 4j, 1 - 1j])
        a = ComplexDDArray.from_complex128(z)
        total = a.sum()
        assert isinstance(total, ComplexDD)
        assert total.to_complex() == z.sum()
        assert a.abs2().to_float64().tolist() == [25.0, 2.0]
        assert a.max_abs() == pytest.approx(5.0)

    def test_allclose(self):
        z = np.array([1 + 1j, 2 + 2j])
        a = ComplexDDArray.from_complex128(z)
        assert a.allclose(a + 1e-40)
        assert not a.allclose(a + 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ComplexDDArray(DDArray.zeros(2), DDArray.zeros(3))

    def test_scalar_coercion_in_arithmetic(self):
        a = ComplexDDArray.from_complex128(np.array([1 + 1j, 2 + 2j]))
        shifted = a + (1 + 0j)
        assert np.allclose(shifted.to_complex128(), np.array([2 + 1j, 3 + 2j]))
        scaled = a * ComplexDD(2)
        assert np.allclose(scaled.to_complex128(), np.array([2 + 2j, 4 + 4j]))
