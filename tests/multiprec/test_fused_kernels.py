"""Differential and property tests for the fused QD/DD batch kernels.

The fused kernels (:mod:`repro.multiprec.qdarray` / ``ddarray`` with the
scratch stack from :mod:`repro.multiprec.bufferpool`) must be **bit-for-bit**
identical to

* the reference out-of-place operation chains (toggled via
  ``use_fused_kernels(False)``), and
* the scalar :class:`~repro.multiprec.quad_double.QuadDouble` /
  :class:`~repro.multiprec.double_double.DoubleDouble` loops,

including on adversarial expansions: overlapping components, signed zeros,
values past the Dekker split threshold, inf and NaN.  The renormalisation's
non-finite guard and the insertion pointer's NaN behaviour (both audited in
this PR) are pinned here against the scalar branch nest.

When ``hypothesis`` is installed the invariants additionally run under its
adversarial generator; the seeded driver below always runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.multiprec import (
    ComplexDDArray,
    ComplexQD,
    ComplexQDArray,
    DDArray,
    DoubleDouble,
    QDArray,
    QuadDouble,
)
from repro.multiprec.backend import (
    COMPLEX128_BACKEND,
    COMPLEX_DD_BACKEND,
    COMPLEX_QD_BACKEND,
)
from repro.multiprec.bufferpool import (
    one_plane,
    plane_stack,
    use_fused_kernels,
    zero_plane,
)
from repro.multiprec.eft import SPLIT_THRESHOLD
from repro.multiprec.qdarray import _insert_lowest, _renorm4, _renorm5
from repro.multiprec.quad_double import (
    _renorm4 as scalar_renorm4,
    _renorm5 as scalar_renorm5,
)

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def assert_planes_identical(got, expected) -> None:
    """Bit-for-bit plane equality; NaNs must sit in the same elements."""
    got_planes = got if isinstance(got, tuple) else got._components()
    exp_planes = expected if isinstance(expected, tuple) else expected._components()
    for g, e in zip(got_planes, exp_planes):
        g = np.asarray(g)
        e = np.asarray(e)
        assert np.array_equal(np.isnan(g), np.isnan(e))
        mask = ~np.isnan(g)
        assert np.array_equal(g[mask], e[mask])


def assert_dd_identical(got: DDArray, expected: DDArray) -> None:
    assert_planes_identical((got.hi, got.lo), (expected.hi, expected.lo))


def random_qd_array(seed: int, size: int = 32) -> QDArray:
    rng = np.random.default_rng(seed)
    full = QDArray.from_float64(rng.normal(size=size))
    for scale in (1e-17, 1e-34, 1e-51):
        full = full + QDArray.from_float64(rng.normal(size=size) * scale)
    return full


def random_dd_array(seed: int, size: int = 32) -> DDArray:
    rng = np.random.default_rng(seed)
    return DDArray(rng.normal(size=size), rng.normal(size=size) * 1e-17)


#: One batch mixing every adversarial shape the renorm and split guards
#: care about: ordinary values, overlapping (non-canonical) expansions,
#: signed zeros, magnitudes past the split threshold, inf and NaN.
ADVERSARIAL_COMPONENTS = np.array([
    [1.0, 1e-17, 1e-34, 1e-51],
    [1.0, 1.0, 1.0, 1.0],                      # fully overlapping
    [0.0, -0.0, 0.0, -0.0],
    [-0.0, 0.0, -0.0, 0.0],
    [1e300, -1e284, 1e268, -1e252],
    [SPLIT_THRESHOLD * 2.0, 1.0, 0.0, 0.0],    # forces the scaling split
    [np.inf, 1.0, 2.0, 3.0],
    [-np.inf, np.nan, 0.0, 0.0],
    [np.nan, 1.0, 2.0, 3.0],
    [1.0, np.inf, 0.0, 0.0],
    [1.0, np.nan, 0.0, 0.0],
    [1e-300, 1e-310, 0.0, 0.0],                # denormal tail
    [-1.0, 1e-17, -1e-34, 1e-51],
    [2.0**52, 1.0, 0.5, 0.25],
])


def adversarial_qd_pair():
    with np.errstate(all="ignore"):
        a = QDArray(*(ADVERSARIAL_COMPONENTS[:, i].copy() for i in range(4)))
        rolled = np.roll(ADVERSARIAL_COMPONENTS, 3, axis=0)
        b = QDArray(*(rolled[:, i].copy() for i in range(4)))
    return a, b


# ----------------------------------------------------------------------
# fused vs reference vs scalar: the three-way differential
# ----------------------------------------------------------------------
class TestFusedMatchesReference:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_qd_ops_bit_for_bit(self, op):
        a_f = random_qd_array(1)
        b_f = random_qd_array(2)
        apply = {
            "add": lambda x, y: x + y,
            "sub": lambda x, y: x - y,
            "mul": lambda x, y: x * y,
            "div": lambda x, y: x / y,
        }[op]
        with use_fused_kernels(True):
            fused = apply(a_f, b_f)
        with use_fused_kernels(False):
            a_r = QDArray(a_f.c0.copy(), a_f.c1.copy(), a_f.c2.copy(), a_f.c3.copy())
            b_r = QDArray(b_f.c0.copy(), b_f.c1.copy(), b_f.c2.copy(), b_f.c3.copy())
            reference = apply(a_r, b_r)
        assert_planes_identical(fused, reference)

    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_dd_ops_bit_for_bit(self, op):
        a = random_dd_array(3)
        b = random_dd_array(4)
        apply = {
            "add": lambda x, y: x + y,
            "sub": lambda x, y: x - y,
            "mul": lambda x, y: x * y,
            "div": lambda x, y: x / y,
        }[op]
        with use_fused_kernels(True):
            fused = apply(a, b)
        with use_fused_kernels(False):
            reference = apply(a, b)
        assert_dd_identical(fused, reference)

    def test_qd_ops_match_scalar_loop(self):
        a = random_qd_array(5)
        b = random_qd_array(6)
        with use_fused_kernels(True):
            total = a + b
            prod = a * b
            quot = a / b
        a_s, b_s = a.to_scalars(), b.to_scalars()
        for got, x, y in zip(total.to_scalars(), a_s, b_s):
            assert got.c == (x + y).c
        for got, x, y in zip(prod.to_scalars(), a_s, b_s):
            assert got.c == (x * y).c
        for got, x, y in zip(quot.to_scalars(), a_s, b_s):
            assert got.c == (x / y).c

    def test_adversarial_expansions(self):
        a, b = adversarial_qd_pair()
        with np.errstate(all="ignore"):
            for apply in (lambda x, y: x + y, lambda x, y: x - y,
                          lambda x, y: x * y):
                with use_fused_kernels(True):
                    fused = apply(a, b)
                with use_fused_kernels(False):
                    reference = apply(a, b)
                assert_planes_identical(fused, reference)

    def test_complex_ops_bit_for_bit(self):
        a = ComplexQDArray(random_qd_array(7), random_qd_array(8))
        b = ComplexQDArray(random_qd_array(9), random_qd_array(10))
        with use_fused_kernels(True):
            fused = a * b
        with use_fused_kernels(False):
            reference = a * b
        assert_planes_identical(fused.real, reference.real)
        assert_planes_identical(fused.imag, reference.imag)

    def test_split_threshold_fallback_matches_reference(self):
        big = QDArray.from_float64(np.array([SPLIT_THRESHOLD * 4, 1.0, -3.5]))
        small = QDArray.from_float64(np.array([2.0, 0.5, 7.0]))
        with use_fused_kernels(True):
            fused = big * small
        with use_fused_kernels(False):
            reference = big * small
        assert_planes_identical(fused, reference)


# ----------------------------------------------------------------------
# the renormalisation guard: inf and NaN lanes in the same batch
# ----------------------------------------------------------------------
class TestRenormNonFiniteGuard:
    def test_vector_renorms_match_scalar_on_mixed_batch(self):
        comps = ADVERSARIAL_COMPONENTS
        with np.errstate(all="ignore"):
            vec4 = _renorm4(*(comps[:, i].copy() for i in range(4)))
            extra = np.linspace(-1e-40, 1e-40, comps.shape[0])
            vec5 = _renorm5(*(comps[:, i].copy() for i in range(4)), extra)
        for row in range(comps.shape[0]):
            scal4 = scalar_renorm4(*(float(comps[row, i]) for i in range(4)))
            scal5 = scalar_renorm5(*(float(comps[row, i]) for i in range(4)),
                                   float(extra[row]))
            got4 = tuple(float(vec4[i][row]) for i in range(4))
            got5 = tuple(float(vec5[i][row]) for i in range(4))
            for g, e in zip(got4 + got5, scal4 + scal5):
                assert g == e or (np.isnan(g) and np.isnan(e)), (row, g, e)

    def test_inf_lane_kept_untouched(self):
        with np.errstate(invalid="ignore"):
            out = _renorm4(np.array([np.inf]), np.array([7.0]),
                           np.array([8.0]), np.array([9.0]))
        assert [float(c[0]) for c in out] == [np.inf, 7.0, 8.0, 9.0]

    def test_nan_lane_kept_untouched(self):
        with np.errstate(invalid="ignore"):
            out = _renorm4(np.array([np.nan]), np.array([7.0]),
                           np.array([8.0]), np.array([9.0]))
        assert np.isnan(out[0][0])
        assert [float(c[0]) for c in out[1:]] == [7.0, 8.0, 9.0]
        # The scalar guard agrees: NaN leading components pass through.
        scal = scalar_renorm4(float("nan"), 7.0, 8.0, 9.0)
        assert np.isnan(scal[0]) and scal[1:] == (7.0, 8.0, 9.0)

    def test_constructor_applies_guard_on_both_paths(self):
        planes = (np.array([np.nan, np.inf, 1.0]), np.array([1.0, 2.0, 1e-17]),
                  np.array([2.0, 3.0, 0.0]), np.array([3.0, 4.0, 0.0]))
        with np.errstate(all="ignore"):
            with use_fused_kernels(True):
                fused = QDArray(*(p.copy() for p in planes))
            with use_fused_kernels(False):
                reference = QDArray(*(p.copy() for p in planes))
        assert_planes_identical(fused, reference)
        assert np.isnan(fused.c0[0]) and fused.c1[0] == 1.0
        assert fused.c0[1] == np.inf and fused.c1[1] == 2.0


# ----------------------------------------------------------------------
# insertion pointer vs the scalar branch nest (NaN errors)
# ----------------------------------------------------------------------
class TestInsertPointerNaN:
    def test_nan_error_advances_pointer_like_the_scalar_branch(self):
        # quick_two_sum(1.0, NaN) yields a NaN error; the scalar branch nest
        # tests `if s2 != 0.0`, and NaN != 0.0 is True in Python, so the
        # scalar *descends* (the pointer advances).  The vectorised
        # insertion must do the same: error != 0.0 is True for NaN.
        s = [np.array([1.0]), np.array([0.0]), np.array([0.0]), np.array([0.0])]
        ptr = np.array([0], dtype=np.int64)
        with np.errstate(invalid="ignore"):
            new_ptr = _insert_lowest(s, ptr, np.array([np.nan]))
        assert int(new_ptr[0]) == 1
        assert np.isnan(s[0][0]) and np.isnan(s[1][0])

    def test_zero_error_does_not_advance(self):
        s = [np.array([1.0]), np.array([0.0]), np.array([0.0]), np.array([0.0])]
        ptr = np.array([0], dtype=np.int64)
        new_ptr = _insert_lowest(s, ptr, np.array([0.5]))
        assert int(new_ptr[0]) == 0          # 1.0 + 0.5 is exact: no error
        assert float(s[0][0]) == 1.5

    def test_mid_insertion_nan_matches_scalar_renorm(self):
        # c0 finite, an inner inf: the prologue manufactures NaN errors that
        # flow through the insertion loop; fused, reference and scalar must
        # land on identical planes.
        c = (1.0, 1e-20, np.inf, 1.0)
        extra = 1.0
        with np.errstate(all="ignore"):
            vec = _renorm5(*(np.array([v]) for v in c), np.array([extra]))
            with use_fused_kernels(True):
                fused = QDArray(*(np.array([v]) for v in c))
            with use_fused_kernels(False):
                reference = QDArray(*(np.array([v]) for v in c))
        scal = scalar_renorm5(*c, extra)
        for got, exp in zip((float(p[0]) for p in vec), scal):
            assert got == exp or (np.isnan(got) and np.isnan(exp))
        assert_planes_identical(fused, reference)


# ----------------------------------------------------------------------
# in-place variants
# ----------------------------------------------------------------------
class TestInPlaceVariants:
    @pytest.mark.parametrize("fused", [True, False])
    def test_qdarray_inplace_ops(self, fused):
        a = random_qd_array(11)
        b = random_qd_array(12)
        mask = np.arange(32) % 3 == 0
        with use_fused_kernels(fused):
            acc = a.copy()
            acc.iadd_(b)
            assert_planes_identical(acc, a + b)
            acc = a.copy()
            acc.isub_(b)
            assert_planes_identical(acc, a - b)
            acc = a.copy()
            acc.iadd_where_(b, mask)
            assert_planes_identical(acc, QDArray.where(mask, a + b, a))

    @pytest.mark.parametrize("fused", [True, False])
    def test_ddarray_inplace_ops(self, fused):
        a = random_dd_array(13)
        b = random_dd_array(14)
        mask = np.arange(32) % 2 == 0
        with use_fused_kernels(fused):
            acc = a.copy()
            acc.iadd_(b)
            assert_dd_identical(acc, a + b)
            acc = a.copy()
            acc.isub_(b)
            assert_dd_identical(acc, a - b)
            acc = a.copy()
            acc.iadd_where_(b, mask)
            assert_dd_identical(acc, DDArray.where(mask, a + b, a))

    def test_inplace_add_aliasing_self(self):
        a = random_qd_array(15)
        with use_fused_kernels(True):
            doubled = a + a
            acc = a.copy()
            acc.iadd_(acc)
        assert_planes_identical(acc, doubled)

    @pytest.mark.parametrize("backend", [COMPLEX128_BACKEND, COMPLEX_DD_BACKEND,
                                         COMPLEX_QD_BACKEND],
                             ids=lambda b: b.name)
    def test_backend_inplace_interface(self, backend):
        rng = np.random.default_rng(20120521)
        z = rng.normal(size=(3, 8)) + 1j * rng.normal(size=(3, 8))
        w = rng.normal(size=(3, 8)) + 1j * rng.normal(size=(3, 8))
        f = rng.normal(size=(3, 8)) + 1j * rng.normal(size=(3, 8))
        mask = np.array([True, False, True, False, True, True, False, False])

        def fresh(values):
            return backend.from_points([list(col) for col in values.T])

        expected_add = fresh(z) + fresh(w)
        got = backend.iadd(fresh(z), fresh(w))
        np.testing.assert_array_equal(backend.to_complex128(got),
                                      backend.to_complex128(expected_add))

        expected_sub = fresh(z) - fresh(f) * fresh(w)
        got = backend.isub_mul(fresh(z), fresh(f), fresh(w))
        np.testing.assert_array_equal(backend.to_complex128(got),
                                      backend.to_complex128(expected_sub))

        expected_masked = backend.where(mask, fresh(z) + fresh(w), fresh(z))
        got = backend.iadd_masked(fresh(z), fresh(w), mask)
        np.testing.assert_array_equal(backend.to_complex128(got),
                                      backend.to_complex128(expected_masked))

    def test_complex_isub_mul_bit_for_bit(self):
        acc = ComplexQDArray(random_qd_array(16), random_qd_array(17))
        f = ComplexQDArray(random_qd_array(18), random_qd_array(19))
        v = ComplexQDArray(random_qd_array(20), random_qd_array(21))
        with use_fused_kernels(True):
            expected = acc - f * v
            got = acc.copy().isub_mul_(f, v)
        assert_planes_identical(got.real, expected.real)
        assert_planes_identical(got.imag, expected.imag)
        acc_dd = ComplexDDArray(random_dd_array(22), random_dd_array(23))
        f_dd = ComplexDDArray(random_dd_array(24), random_dd_array(25))
        v_dd = ComplexDDArray(random_dd_array(26), random_dd_array(27))
        with use_fused_kernels(True):
            expected = acc_dd - f_dd * v_dd
            got = acc_dd.copy().isub_mul_(f_dd, v_dd)
        assert_dd_identical(got.real, expected.real)
        assert_dd_identical(got.imag, expected.imag)


# ----------------------------------------------------------------------
# the scratch stack and cached planes
# ----------------------------------------------------------------------
class TestPlaneStack:
    def test_stack_balances_after_ops(self):
        stack = plane_stack()
        a = random_qd_array(28)
        b = random_qd_array(29)
        with use_fused_kernels(True):
            _ = a + b
            _ = a * b
            _ = a / b
        assert stack.depth() == 0

    def test_takes_nest(self):
        stack = plane_stack()
        outer, outer_mark = stack.take((4,), 2)
        inner, inner_mark = stack.take((4,), 2)
        assert not any(o is i for o in outer for i in inner)
        stack.release(inner_mark)
        again, again_mark = stack.take((4,), 2)
        assert all(x is y for x, y in zip(inner, again))
        stack.release(again_mark)
        stack.release(outer_mark)

    def test_cached_planes_are_read_only(self):
        z = zero_plane((5,))
        o = one_plane((5,))
        assert np.all(z == 0.0) and np.all(o == 1.0)
        with pytest.raises(ValueError):
            z[0] = 1.0
        with pytest.raises(ValueError):
            o[0] = 0.0
        assert zero_plane((5,)) is z

    def test_clear_also_drops_cached_constant_planes(self):
        stack = plane_stack()
        _, mark = stack.take((7,), 3)
        stack.release(mark)
        z = zero_plane((7,))
        o = one_plane((7,))
        stack.clear()
        assert stack.capacity() == 0
        # The constant caches are part of the footprint clear() reclaims:
        # next use re-materialises fresh planes instead of the old ones.
        assert zero_plane((7,)) is not z
        assert one_plane((7,)) is not o

    def test_shrink_releases_capacity_above_the_take_depth(self):
        stack = plane_stack()
        stack.clear()
        _, mark = stack.take((9,), 8)
        stack.release(mark)
        assert stack.capacity() == 8 and stack.depth() == 0
        stack.shrink()  # nothing on loan: every bucket goes entirely
        assert stack.capacity() == 0

    def test_shrink_keeps_planes_still_on_loan(self):
        stack = plane_stack()
        stack.clear()
        taken, mark = stack.take((11,), 2)
        deeper, deeper_mark = stack.take((11,), 4)
        stack.release(deeper_mark)
        stack.shrink()
        assert stack.capacity() == 2 and stack.depth() == 2
        # The loaned planes survive and are returned by the next take.
        taken[0][...] = 3.0
        assert np.all(taken[0] == 3.0)
        stack.release(mark)
        again, again_mark = stack.take((11,), 2)
        assert all(x is y for x, y in zip(taken, again))
        stack.release(again_mark)


# ----------------------------------------------------------------------
# hypothesis layer (seeded fallback above always runs)
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    component = st.floats(min_value=-1e30, max_value=1e30,
                          allow_nan=False, allow_infinity=False)
    special = st.sampled_from([0.0, -0.0, np.inf, -np.inf, np.nan,
                               SPLIT_THRESHOLD * 2, 1e-310])
    any_component = st.one_of(component, special)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(component, component, component, component),
                    min_size=1, max_size=8))
    def test_hypothesis_fused_ops_match_reference(rows):
        comps = np.array(rows)
        with np.errstate(all="ignore"):
            a = QDArray(*(comps[:, i].copy() for i in range(4)))
            b = QDArray(*(np.roll(comps, 1, axis=0)[:, i].copy() for i in range(4)))
            for apply in (lambda x, y: x + y, lambda x, y: x * y):
                with use_fused_kernels(True):
                    fused = apply(a, b)
                with use_fused_kernels(False):
                    reference = apply(a, b)
                assert_planes_identical(fused, reference)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(any_component, any_component,
                              any_component, any_component),
                    min_size=1, max_size=8))
    def test_hypothesis_renorm_matches_scalar(rows):
        comps = np.array(rows)
        with np.errstate(all="ignore"):
            vec = _renorm4(*(comps[:, i].copy() for i in range(4)))
            with use_fused_kernels(True):
                fused = QDArray(*(comps[:, i].copy() for i in range(4)))
        for row in range(comps.shape[0]):
            scal = scalar_renorm4(*(float(comps[row, i]) for i in range(4)))
            for plane, planef, e in zip(vec, fused._components(), scal):
                g = float(plane[row])
                gf = float(planef[row])
                assert g == e or (np.isnan(g) and np.isnan(e))
                assert gf == e or (np.isnan(gf) and np.isnan(e))
