"""Tests for complex double-double arithmetic (and the complex quad-double
scalar used by the quad-double numeric context)."""

from __future__ import annotations

import cmath
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.multiprec import ComplexDD, DoubleDouble, cdd, dd
from repro.multiprec.numeric import ComplexQD

component = st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e20, max_value=1e20)
complexes = st.builds(complex, component, component)


def to_fractions(z: ComplexDD):
    return z.real.to_fraction(), z.imag.to_fraction()


def assert_close(z: ComplexDD, exact_re: Fraction, exact_im: Fraction):
    re, im = to_fractions(z)
    tol = Fraction(1, 2 ** 98)
    scale = max(abs(exact_re), abs(exact_im), Fraction(1))
    assert abs(re - exact_re) <= tol * scale
    assert abs(im - exact_im) <= tol * scale


class TestConstruction:
    def test_from_complex(self):
        z = ComplexDD.from_complex(1.5 - 2.5j)
        assert z.to_complex() == 1.5 - 2.5j

    def test_from_real_imag_parts(self):
        z = ComplexDD(dd("0.1"), dd("0.2"))
        assert abs(z.real.to_fraction() - Fraction(1, 10)) < Fraction(1, 10 ** 30)

    def test_from_reals_only(self):
        assert ComplexDD(3).to_complex() == 3 + 0j

    def test_copy(self):
        z = cdd(1 + 2j)
        assert ComplexDD(z) == z

    def test_rejects_complex_plus_imag(self):
        with pytest.raises(TypeError):
            ComplexDD(1 + 2j, 3.0)

    def test_cdd_helper(self):
        assert cdd(2 + 1j).to_complex() == 2 + 1j
        assert cdd(dd(2), dd(3)).to_complex() == 2 + 3j
        z = cdd(5)
        assert cdd(z) is z

    def test_immutability_and_hash(self):
        z = cdd(1 + 1j)
        with pytest.raises(AttributeError):
            z.real = dd(0)
        assert hash(cdd(1 + 1j)) == hash(cdd(1 + 1j))

    def test_components(self):
        re_hi, re_lo, im_hi, im_lo = cdd(0.5 + 0.25j).components()
        assert (re_hi, im_hi) == (0.5, 0.25)
        assert (re_lo, im_lo) == (0.0, 0.0)


class TestArithmetic:
    @given(complexes, complexes)
    def test_addition_matches_exact(self, a, b):
        z = cdd(a) + cdd(b)
        assert_close(z, Fraction(a.real) + Fraction(b.real),
                     Fraction(a.imag) + Fraction(b.imag))

    @given(complexes, complexes)
    def test_multiplication_matches_exact(self, a, b):
        z = cdd(a) * cdd(b)
        exact_re = Fraction(a.real) * Fraction(b.real) - Fraction(a.imag) * Fraction(b.imag)
        exact_im = Fraction(a.real) * Fraction(b.imag) + Fraction(a.imag) * Fraction(b.real)
        assert_close(z, exact_re, exact_im)

    @given(complexes)
    def test_division_inverts_multiplication(self, a):
        if abs(a) < 1e-10:
            return
        z = cdd(a)
        w = (z * cdd(2 - 1j)) / cdd(2 - 1j)
        assert abs(w.to_complex() - a) <= 1e-12 * max(1.0, abs(a))

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            cdd(1) / cdd(0)

    def test_mixed_operand_types(self):
        assert (cdd(1 + 1j) + 1).to_complex() == 2 + 1j
        assert (1 + cdd(1 + 1j)).to_complex() == 2 + 1j
        assert (cdd(1 + 1j) * 2).to_complex() == 2 + 2j
        assert (cdd(2) - dd(1)).to_complex() == 1 + 0j
        assert (2 - cdd(1j)).to_complex() == 2 - 1j

    def test_negation_and_subtraction(self):
        assert (-cdd(1 + 2j)).to_complex() == -1 - 2j
        assert (cdd(3 + 3j) - cdd(1 + 2j)).to_complex() == 2 + 1j

    def test_precision_beyond_hardware_complex(self):
        tiny = 2.0 ** -80
        z = cdd(1) + cdd(complex(tiny, 0.0))
        assert z.real.to_fraction() == 1 + Fraction(tiny)

    def test_equality(self):
        assert cdd(1 + 2j) == 1 + 2j
        assert cdd(1) == 1
        assert cdd(1 + 2j) != cdd(1 - 2j)
        assert (cdd(1) == "x") is False


class TestPowersAndModulus:
    @given(complexes, st.integers(min_value=0, max_value=8))
    def test_integer_power_matches_binary_exponentiation(self, a, e):
        if abs(a) < 1e-8 and e == 0:
            return
        if abs(a) > 1e3:
            return
        z = cdd(a).power(e)
        expected = a ** e
        assert abs(z.to_complex() - expected) <= 1e-9 * max(1.0, abs(expected))

    def test_power_operator_and_negative_exponent(self):
        z = cdd(1 + 1j) ** -2
        assert abs(z.to_complex() - (1 + 1j) ** -2) < 1e-14

    def test_power_zero_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            cdd(0).power(0)

    def test_conjugate_and_abs2(self):
        z = cdd(3 + 4j)
        assert z.conjugate().to_complex() == 3 - 4j
        assert z.abs2().to_fraction() == 25
        assert abs(z).to_fraction() == 5

    def test_bool_and_is_zero(self):
        assert not ComplexDD(0)
        assert cdd(1e-200j)


class TestComplexQD:
    def test_basic_arithmetic(self):
        a = ComplexQD(1 + 2j)
        b = ComplexQD(3 - 1j)
        assert (a + b).to_complex() == 4 + 1j
        assert (a - b).to_complex() == -2 + 3j
        assert (a * b).to_complex() == (1 + 2j) * (3 - 1j)
        q = (a / b) * b
        assert abs(q.to_complex() - (1 + 2j)) < 1e-14

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            ComplexQD(1) / ComplexQD(0)

    def test_mixed_operands_and_conjugate(self):
        assert (ComplexQD(2) + 1).to_complex() == 3 + 0j
        assert (1 - ComplexQD(2j)).to_complex() == 1 - 2j
        assert ComplexQD(1 + 1j).conjugate().to_complex() == 1 - 1j

    def test_abs2_precision(self):
        z = ComplexQD(3 + 4j)
        assert z.abs2().to_fraction() == 25
        assert abs(z).to_fraction() == 5

    def test_equality_and_hash(self):
        assert ComplexQD(2 + 1j) == ComplexQD(2 + 1j)
        assert hash(ComplexQD(2 + 1j)) == hash(ComplexQD(2 + 1j))
