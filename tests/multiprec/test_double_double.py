"""Tests for scalar double-double arithmetic.

Ground truth is exact rational arithmetic via :class:`fractions.Fraction`:
every double-double result is compared against the exact result rounded to
roughly 2**-104 relative accuracy.
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.multiprec import DoubleDouble, dd

# Relative accuracy the dd format must deliver (a few ulps of 2**-104).
DD_RTOL = Fraction(1, 2 ** 100)

reasonable = st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e100, max_value=1e100)

# Values whose products stay far away from underflow/overflow; the
# double-double algorithms (like the QD library) assume this, exactly as the
# error-free transformations do.
balanced = st.one_of(
    st.just(0.0),
    st.floats(allow_nan=False, allow_infinity=False, min_value=1e-40, max_value=1e40),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e40, max_value=-1e-40),
)
balanced_nonzero = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, min_value=1e-40, max_value=1e40),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e40, max_value=-1e-40),
)


def dd_values(draw_hi=reasonable):
    """Strategy producing DoubleDouble values built from float sums."""
    return st.builds(lambda a, b: DoubleDouble.from_sum(a, b * 1e-17), draw_hi, reasonable)


def assert_close(value: DoubleDouble, exact: Fraction):
    err = abs(value.to_fraction() - exact)
    scale = max(abs(exact), Fraction(1, 10 ** 300))
    assert err <= DD_RTOL * scale, f"error {float(err)} too large for {float(exact)}"


class TestConstruction:
    def test_from_float_is_exact(self):
        x = DoubleDouble.from_float(0.1)
        assert x.to_fraction() == Fraction(0.1)

    def test_from_int_wide(self):
        n = 2 ** 80 + 12345
        assert DoubleDouble.from_int(n).to_fraction() == n

    def test_from_string(self):
        x = DoubleDouble.from_string("0.1")
        # Much closer to 1/10 than any single double.
        assert abs(x.to_fraction() - Fraction(1, 10)) < Fraction(1, 10 ** 30)

    def test_from_sum_and_product_exact(self):
        assert DoubleDouble.from_sum(1.0, 1e-20).to_fraction() == 1 + Fraction(1e-20)
        assert DoubleDouble.from_product(0.1, 0.1).to_fraction() == Fraction(0.1) ** 2

    def test_constructor_renormalises(self):
        x = DoubleDouble(1.0, 3.0)  # unordered components
        assert x.hi == 4.0 and x.lo == 0.0

    def test_copy_constructor(self):
        x = dd("3.14159")
        assert DoubleDouble(x) == x

    def test_immutability(self):
        x = dd(1)
        with pytest.raises(AttributeError):
            x.hi = 2.0

    def test_dd_helper_accepts_fraction(self):
        assert dd(Fraction(1, 3)).to_fraction() != 0
        assert abs(dd(Fraction(1, 3)).to_fraction() - Fraction(1, 3)) < Fraction(1, 10 ** 30)


class TestConversions:
    def test_to_float_rounds(self):
        x = dd("0.1")
        assert x.to_float() == 0.1

    def test_int_conversion(self):
        assert int(dd(7)) == 7
        assert int(dd("-3.9")) == -3

    def test_bool(self):
        assert not DoubleDouble(0.0)
        assert DoubleDouble(1e-300)

    def test_decimal_string_roundtrip(self):
        x = dd("1.2345678901234567890123456789")
        s = x.to_decimal_string(30)
        assert s.startswith("1.2345678901234567890123456")

    def test_decimal_string_zero(self):
        assert DoubleDouble(0.0).to_decimal_string(8).startswith("0.0000000")

    def test_str_and_repr(self):
        x = dd(2)
        assert "2.0" in str(x) or "2." in str(x)
        assert "DoubleDouble" in repr(x)

    def test_components(self):
        hi, lo = dd("0.1").components()
        assert hi == 0.1
        assert lo != 0.0

    def test_hashable(self):
        assert hash(dd(1)) == hash(dd(1.0))
        assert len({dd(1), dd(1), dd(2)}) == 2


class TestPredicates:
    def test_sign_predicates(self):
        assert dd(3).is_positive() and not dd(3).is_negative()
        assert dd(-3).is_negative() and not dd(-3).is_positive()
        assert dd(0).is_zero()

    def test_sign_determined_by_lo_when_hi_ties(self):
        x = DoubleDouble(1.0, 1e-20) - DoubleDouble(1.0)
        assert x.is_positive()

    def test_finite_and_nan(self):
        assert dd(1).is_finite()
        assert not DoubleDouble(float("inf")).is_finite()
        assert DoubleDouble(float("nan")).is_nan()


class TestComparisons:
    def test_total_order_on_close_values(self):
        a = dd(1) + dd("1e-25")
        b = dd(1)
        assert b < a < dd(2)
        assert a > b
        assert a >= b and b <= a
        assert a != b

    def test_comparison_with_python_numbers(self):
        assert dd("2.5") > 2
        assert dd("2.5") < 3.0
        assert dd(2) == 2

    def test_unsupported_comparison(self):
        assert (dd(1) == "one") is False


class TestArithmetic:
    @given(reasonable, reasonable)
    def test_addition_accuracy(self, a, b):
        assert_close(dd(a) + dd(b), Fraction(a) + Fraction(b))

    @given(reasonable, reasonable)
    def test_subtraction_accuracy(self, a, b):
        assert_close(dd(a) - dd(b), Fraction(a) - Fraction(b))

    @given(balanced, balanced)
    def test_multiplication_accuracy(self, a, b):
        assert_close(dd(a) * dd(b), Fraction(a) * Fraction(b))

    @given(balanced, balanced_nonzero)
    def test_division_accuracy(self, a, b):
        assert_close(dd(a) / dd(b), Fraction(a) / Fraction(b))

    def test_addition_beats_double_precision(self):
        # 1 + 2**-80 is invisible in double but exact in double-double.
        tiny = 2.0 ** -80
        x = dd(1) + dd(tiny)
        assert x.to_fraction() == 1 + Fraction(tiny)
        assert (1.0 + tiny) == 1.0  # the double comparison it beats

    def test_mixed_operand_types(self):
        assert (dd(2) + 3).to_fraction() == 5
        assert (3 + dd(2)).to_fraction() == 5
        assert (dd(2) * 3).to_fraction() == 6
        assert (3 - dd(2)).to_fraction() == 1
        assert (dd(1) / 4).to_fraction() == Fraction(1, 4)
        assert (1 / dd(4)).to_fraction() == Fraction(1, 4)

    def test_negation_and_abs(self):
        assert (-dd(3)).to_fraction() == -3
        assert abs(dd(-3)).to_fraction() == 3
        assert (+dd(3)) == dd(3)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            dd(1) / dd(0)

    @given(st.floats(min_value=-1e20, max_value=1e20, allow_nan=False),
           st.floats(min_value=-1e20, max_value=1e20, allow_nan=False),
           st.floats(min_value=-1e20, max_value=1e20, allow_nan=False))
    def test_additive_associativity_error_is_tiny(self, a, b, c):
        left = (dd(a) + dd(b)) + dd(c)
        right = dd(a) + (dd(b) + dd(c))
        exact = Fraction(a) + Fraction(b) + Fraction(c)
        assert_close(left, exact)
        assert_close(right, exact)

    @given(st.floats(min_value=-1e15, max_value=1e15, allow_nan=False))
    def test_multiplicative_inverse(self, a):
        assume(abs(a) > 1e-10)
        x = dd(a)
        assert_close(x * x.recip(), Fraction(1))


class TestPowerAndSqrt:
    @given(st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
           st.integers(min_value=0, max_value=12))
    def test_integer_power(self, a, e):
        # Keep a^e well inside the normal double range.
        assume(abs(a) >= 1e-6)
        assert_close(dd(a).power(e), Fraction(a) ** e)

    def test_negative_power(self):
        assert_close(dd(2).power(-3), Fraction(1, 8))
        assert_close(dd(2) ** -3, Fraction(1, 8))

    def test_power_of_zero(self):
        assert dd(0).power(5).is_zero()
        with pytest.raises(ZeroDivisionError):
            dd(0).power(0)

    @given(st.floats(min_value=1e-10, max_value=1e10, allow_nan=False))
    def test_sqrt_squares_back(self, a):
        root = dd(a).sqrt()
        assert_close(root * root, Fraction(a))

    def test_sqrt_two_is_accurate_beyond_double(self):
        root = dd(2).sqrt()
        err = abs(root.to_fraction() ** 2 - 2)
        assert err < Fraction(1, 10 ** 30)

    def test_sqrt_of_zero_and_negative(self):
        assert dd(0).sqrt().is_zero()
        with pytest.raises(ValueError):
            dd(-1).sqrt()

    def test_conjugate_is_identity(self):
        assert dd(3).conjugate() == dd(3)


class TestEps:
    def test_eps_magnitude(self):
        assert DoubleDouble.eps == pytest.approx(2.0 ** -104, rel=1e-6)

    def test_one_plus_eps_distinguishable(self):
        one_plus = dd(1) + dd(2.0 ** -100)
        assert one_plus != dd(1)
