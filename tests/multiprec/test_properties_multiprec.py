"""Property-based hardening of the multiprecision numeric core.

Three layers of invariants, each checked over randomised inputs:

* the error-free transformations in :mod:`repro.multiprec.eft` are *exact*:
  ``result + error`` equals the true real-number result, verified with
  :class:`fractions.Fraction` (arbitrary-precision rationals);
* double-double / quad-double arithmetic round-trips: ``(a + b) - b``,
  ``(a * b) / b`` and ``1 / (1 / a)`` recover ``a`` to the format's relative
  rounding unit;
* :class:`~repro.multiprec.ddarray.DDArray` is *bit-for-bit* the vectorised
  form of the scalar :class:`~repro.multiprec.double_double.DoubleDouble`
  loop, and division edge cases raise :class:`repro.errors` types instead of
  silently filling lanes with NaN.

When ``hypothesis`` is installed the invariants additionally run under its
adversarial generator; otherwise the seeded random driver below provides a
deterministic fallback with the same coverage shape.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import DivisionByZeroError, NumericalError
from repro.multiprec import (
    ComplexDD,
    ComplexDDArray,
    ComplexQD,
    ComplexQDArray,
    DDArray,
    DoubleDouble,
    QDArray,
    QuadDouble,
    quick_two_sum,
    two_diff,
    two_prod,
    two_sqr,
    two_sum,
)

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

# ----------------------------------------------------------------------
# seeded random driver (the hypothesis fallback; always runs)
# ----------------------------------------------------------------------
_RNG = np.random.default_rng(20120521)  # the paper's conference year


def random_doubles(count: int, magnitude: float = 1e12) -> np.ndarray:
    """Well-scaled nonzero doubles: safe for exact-product checks."""
    mantissa = _RNG.uniform(-1.0, 1.0, size=count)
    mantissa = np.where(np.abs(mantissa) < 1e-3, 0.5, mantissa)
    exponent = _RNG.uniform(-np.log10(magnitude), np.log10(magnitude), size=count)
    return mantissa * 10.0 ** exponent


def random_dd(count: int) -> list:
    values = random_doubles(count)
    tails = _RNG.uniform(-1.0, 1.0, size=count)
    return [DoubleDouble(float(v), float(v) * 1e-17 * float(t))
            for v, t in zip(values, tails)]


def random_qd(count: int) -> list:
    """Full-expansion quad doubles (all four components populated)."""
    values = random_doubles(count)
    tails = _RNG.uniform(-1.0, 1.0, size=(3, count))
    return [QuadDouble(float(v))
            + QuadDouble(float(v) * 1e-17 * float(t0))
            + QuadDouble(float(v) * 1e-34 * float(t1))
            + QuadDouble(float(v) * 1e-51 * float(t2))
            for v, t0, t1, t2 in zip(values, tails[0], tails[1], tails[2])]


# ----------------------------------------------------------------------
# error-free transformations: exactness over the rationals
# ----------------------------------------------------------------------
class TestEFTInvariants:
    PAIRS = list(zip(random_doubles(200), random_doubles(200)))

    @pytest.mark.parametrize("a,b", [(1.0, 2.0 ** -60), (1e16, -1.0), (0.0, 0.0)])
    def test_two_sum_exact_on_corner_cases(self, a, b):
        s, e = two_sum(a, b)
        assert Fraction(s) + Fraction(e) == Fraction(a) + Fraction(b)

    def test_two_sum_exact(self):
        for a, b in self.PAIRS:
            s, e = two_sum(float(a), float(b))
            assert Fraction(s) + Fraction(e) == Fraction(float(a)) + Fraction(float(b))

    def test_two_diff_exact(self):
        for a, b in self.PAIRS:
            s, e = two_diff(float(a), float(b))
            assert Fraction(s) + Fraction(e) == Fraction(float(a)) - Fraction(float(b))

    def test_two_prod_exact(self):
        for a, b in self.PAIRS:
            p, e = two_prod(float(a), float(b))
            assert Fraction(p) + Fraction(e) == Fraction(float(a)) * Fraction(float(b))

    def test_two_sqr_exact(self):
        for a, _ in self.PAIRS:
            p, e = two_sqr(float(a))
            assert Fraction(p) + Fraction(e) == Fraction(float(a)) ** 2

    def test_quick_two_sum_exact_when_ordered(self):
        for a, b in self.PAIRS:
            hi, lo = (a, b) if abs(a) >= abs(b) else (b, a)
            s, e = quick_two_sum(float(hi), float(lo))
            assert Fraction(s) + Fraction(e) == Fraction(float(hi)) + Fraction(float(lo))

    def test_eft_results_are_normalised(self):
        # |error| can never exceed half an ulp of the result.
        for a, b in self.PAIRS:
            s, e = two_sum(float(a), float(b))
            if s != 0.0:
                assert abs(e) <= abs(s) * 2.0 ** -52


# ----------------------------------------------------------------------
# double-double / quad-double round trips
# ----------------------------------------------------------------------
def _relative_error(value: DoubleDouble, reference: DoubleDouble) -> float:
    scale = max(abs(reference.hi), 1e-300)
    return abs(float((value - reference).hi)) / scale


class TestScalarRoundTrips:
    A = random_dd(120)
    B = random_dd(120)

    def test_add_sub_round_trip(self):
        # The recovered error is relative to the *larger* operand: adding a
        # huge b and subtracting it again cancels the low-order digits of a.
        for a, b in zip(self.A, self.B):
            err = abs(float(((a + b) - b - a).hi))
            scale = max(abs(a.hi), abs(b.hi), 1e-300)
            assert err <= 8 * DoubleDouble.eps * scale

    def test_mul_div_round_trip(self):
        for a, b in zip(self.A, self.B):
            assert _relative_error((a * b) / b, a) <= 8 * DoubleDouble.eps

    def test_div_mul_round_trip(self):
        for a, b in zip(self.A, self.B):
            assert _relative_error((a / b) * b, a) <= 8 * DoubleDouble.eps

    def test_double_reciprocal(self):
        for a in self.A:
            assert _relative_error(1.0 / (1.0 / a), a) <= 8 * DoubleDouble.eps

    def test_qd_mul_div_round_trip(self):
        for a, b in zip(self.A[:40], self.B[:40]):
            qa = QuadDouble.from_float(a.hi)
            qb = QuadDouble.from_float(b.hi)
            back = (qa * qb) / qb
            err = abs(float((back - qa).to_float()))
            assert err <= 8 * QuadDouble.eps * max(abs(a.hi), 1e-300)

    def test_complex_dd_mul_div_round_trip(self):
        for a, b in zip(self.A[:40], self.B[:40]):
            za = ComplexDD(a, b)
            zb = ComplexDD(b, a * 0.5)
            back = (za * zb) / zb
            diff = back - za
            scale = max(abs(a.hi), abs(b.hi), 1e-300)
            assert abs(complex(diff)) <= 1e3 * DoubleDouble.eps * scale

    def test_complex_qd_division_by_zero(self):
        with pytest.raises(DivisionByZeroError):
            ComplexQD(1.0) / ComplexQD(0.0)


# ----------------------------------------------------------------------
# DDArray == vectorised DoubleDouble, bit for bit
# ----------------------------------------------------------------------
def _assert_bit_identical(array: DDArray, scalars: list) -> None:
    for got, expected in zip(array.to_scalars(), scalars):
        assert (got.hi == expected.hi or (np.isnan(got.hi) and np.isnan(expected.hi)))
        assert (got.lo == expected.lo or (np.isnan(got.lo) and np.isnan(expected.lo)))


class TestDDArrayAgreesWithScalars:
    A = random_dd(64)
    B = random_dd(64)

    def _arrays(self):
        return DDArray.from_scalars(self.A), DDArray.from_scalars(self.B)

    def test_add(self):
        va, vb = self._arrays()
        _assert_bit_identical(va + vb, [a + b for a, b in zip(self.A, self.B)])

    def test_sub(self):
        va, vb = self._arrays()
        _assert_bit_identical(va - vb, [a - b for a, b in zip(self.A, self.B)])

    def test_mul(self):
        va, vb = self._arrays()
        _assert_bit_identical(va * vb, [a * b for a, b in zip(self.A, self.B)])

    def test_div(self):
        va, vb = self._arrays()
        _assert_bit_identical(va / vb, [a / b for a, b in zip(self.A, self.B)])

    def test_pow(self):
        va, _ = self._arrays()
        _assert_bit_identical(va ** 3, [a * a * a for a in self.A])

    def test_complex_mul(self):
        za = ComplexDDArray(DDArray.from_scalars(self.A), DDArray.from_scalars(self.B))
        zb = ComplexDDArray(DDArray.from_scalars(self.B), DDArray.from_scalars(self.A))
        expected = [ComplexDD(a, b) * ComplexDD(b, a)
                    for a, b in zip(self.A, self.B)]
        got = (za * zb).to_scalars()
        for g, e in zip(got, expected):
            assert g.real.hi == e.real.hi and g.real.lo == e.real.lo
            assert g.imag.hi == e.imag.hi and g.imag.lo == e.imag.lo


class TestDDArrayDivisionEdgeCases:
    """The audit of satellite task 4: no silent NaN from division."""

    def test_zero_denominator_raises_repro_error(self):
        with pytest.raises(DivisionByZeroError):
            DDArray(np.array([1.0, 2.0])) / DDArray(np.array([3.0, 0.0]))

    def test_zero_denominator_is_also_zero_division_error(self):
        with pytest.raises(ZeroDivisionError):
            DDArray(np.array([1.0])) / 0.0
        with pytest.raises(NumericalError):
            DDArray(np.array([1.0])) / 0.0

    def test_scalar_rtruediv_zero_denominator(self):
        with pytest.raises(DivisionByZeroError):
            1.0 / DDArray(np.array([2.0, 0.0]))

    def test_complex_zero_denominator(self):
        num = ComplexDDArray.from_complex128(np.array([1 + 1j, 2.0]))
        den = ComplexDDArray.from_complex128(np.array([1.0, 0.0]))
        with pytest.raises(DivisionByZeroError):
            num / den

    def test_complex_rtruediv(self):
        den = ComplexDDArray.from_complex128(np.array([1 + 1j, 2.0]))
        out = (2 + 0j) / den
        expected = 2.0 / np.array([1 + 1j, 2.0])
        assert np.allclose(out.to_complex128(), expected)

    def test_nan_numerator_propagates_without_raising(self):
        out = DDArray(np.array([np.nan, 4.0])) / DDArray(np.array([2.0, 2.0]))
        assert np.isnan(out.hi[0]) and out.hi[1] == 2.0

    def test_nan_denominator_poisons_only_its_lane(self):
        out = DDArray(np.array([1.0, 4.0])) / DDArray(np.array([np.nan, 2.0]))
        assert np.isnan(out.hi[0]) and out.hi[1] == 2.0

    def test_scalar_division_by_zero_matches(self):
        with pytest.raises(DivisionByZeroError):
            DoubleDouble(1.0) / DoubleDouble(0.0)
        with pytest.raises(DivisionByZeroError):
            ComplexDD(1.0) / ComplexDD(0.0)


# ----------------------------------------------------------------------
# QDArray == vectorised QuadDouble, bit for bit (same suite shape as DD)
# ----------------------------------------------------------------------
def _assert_qd_bit_identical(array: QDArray, scalars: list) -> None:
    for got, expected in zip(array.to_scalars(), scalars):
        for g, e in zip(got.c, expected.c):
            assert g == e or (np.isnan(g) and np.isnan(e))


class TestQDArrayAgreesWithScalars:
    A = random_qd(64)
    B = random_qd(64)

    def _arrays(self):
        return QDArray.from_scalars(self.A), QDArray.from_scalars(self.B)

    def test_add(self):
        va, vb = self._arrays()
        _assert_qd_bit_identical(va + vb, [a + b for a, b in zip(self.A, self.B)])

    def test_sub(self):
        va, vb = self._arrays()
        _assert_qd_bit_identical(va - vb, [a - b for a, b in zip(self.A, self.B)])

    def test_mul(self):
        va, vb = self._arrays()
        _assert_qd_bit_identical(va * vb, [a * b for a, b in zip(self.A, self.B)])

    def test_div(self):
        va, vb = self._arrays()
        _assert_qd_bit_identical(va / vb, [a / b for a, b in zip(self.A, self.B)])

    def test_pow(self):
        # Compare against the scalar binary exponentiation (QD's sloppy mul
        # is not bit-associative, so (a*a)*a would differ in the last ulp).
        va, _ = self._arrays()
        _assert_qd_bit_identical(va ** 3, [a.power(3) for a in self.A])

    def test_renorm_round_trip(self):
        # Reconstructing from raw components must renormalise exactly like
        # the scalar constructor (identity on canonical expansions).
        va, _ = self._arrays()
        back = QDArray(va.c0, va.c1, va.c2, va.c3)
        _assert_qd_bit_identical(back, self.A)

    def test_complex_mul(self):
        za = ComplexQDArray(QDArray.from_scalars(self.A), QDArray.from_scalars(self.B))
        zb = ComplexQDArray(QDArray.from_scalars(self.B), QDArray.from_scalars(self.A))
        expected = [ComplexQD(a, b) * ComplexQD(b, a)
                    for a, b in zip(self.A, self.B)]
        for g, e in zip((za * zb).to_scalars(), expected):
            assert g.real.c == e.real.c
            assert g.imag.c == e.imag.c


class TestQDArrayDivisionEdgeCases:
    def test_zero_denominator_raises_repro_error(self):
        with pytest.raises(DivisionByZeroError):
            QDArray(np.array([1.0, 2.0])) / QDArray(np.array([3.0, 0.0]))
        with pytest.raises(NumericalError):
            QDArray(np.array([1.0])) / 0.0

    def test_complex_zero_denominator(self):
        num = ComplexQDArray.from_complex128(np.array([1 + 1j, 2.0]))
        den = ComplexQDArray.from_complex128(np.array([1.0, 0.0]))
        with pytest.raises(DivisionByZeroError):
            num / den

    def test_nan_lanes_propagate_without_raising(self):
        out = QDArray(np.array([np.nan, 4.0])) / QDArray(np.array([2.0, 2.0]))
        assert np.isnan(out.c0[0]) and out.c0[1] == 2.0
        out = QDArray(np.array([1.0, 4.0])) / QDArray(np.array([np.nan, 2.0]))
        assert np.isnan(out.c0[0]) and out.c0[1] == 2.0

    def test_scalar_division_by_zero_matches(self):
        with pytest.raises(DivisionByZeroError):
            QuadDouble(1.0) / QuadDouble(0.0)
        with pytest.raises(DivisionByZeroError):
            ComplexQD(1.0) / ComplexQD(0.0)


class TestDDArrayMaskedOps:
    def test_where_selects_lanes(self):
        a = DDArray(np.array([1.0, 2.0, 3.0]))
        b = DDArray(np.array([-1.0, -2.0, -3.0]))
        out = DDArray.where(np.array([True, False, True]), a, b)
        assert out.hi.tolist() == [1.0, -2.0, 3.0]

    def test_where_broadcasts_lane_mask_over_rows(self):
        matrix = ComplexDDArray.from_complex128(np.arange(6, dtype=complex).reshape(2, 3))
        zeros = ComplexDDArray.zeros((2, 3))
        out = ComplexDDArray.where(np.array([True, False, True]), matrix, zeros)
        expected = np.arange(6, dtype=complex).reshape(2, 3)
        expected[:, 1] = 0
        assert np.array_equal(out.to_complex128(), expected)

    def test_masked_fill(self):
        a = DDArray(np.array([1.0, 2.0]))
        out = a.masked_fill(np.array([False, True]), DoubleDouble(9.0))
        assert out.hi.tolist() == [1.0, 9.0]

    def test_max_abs_axis(self):
        a = DDArray(np.array([[1.0, -5.0], [3.0, 2.0]]))
        assert a.max_abs() == 5.0
        assert a.max_abs(axis=0).tolist() == [3.0, 5.0]


# ----------------------------------------------------------------------
# the same invariants under hypothesis, when available
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    finite = st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e150, max_value=1e150)
    well_scaled = st.floats(allow_nan=False, allow_infinity=False,
                            min_value=-1e100, max_value=1e100).filter(
        lambda x: x == 0.0 or abs(x) > 1e-100)
    nonzero = well_scaled.filter(lambda x: x != 0.0)

    class TestHypothesisEFT:
        @given(a=finite, b=finite)
        @settings(max_examples=100, deadline=None)
        def test_two_sum_exact(self, a, b):
            s, e = two_sum(a, b)
            assert Fraction(s) + Fraction(e) == Fraction(a) + Fraction(b)

        @given(a=well_scaled, b=well_scaled)
        @settings(max_examples=100, deadline=None)
        def test_two_prod_exact(self, a, b):
            p, e = two_prod(a, b)
            assert Fraction(p) + Fraction(e) == Fraction(a) * Fraction(b)

    class TestHypothesisDD:
        @given(a=nonzero, b=nonzero)
        @settings(max_examples=75, deadline=None)
        def test_mul_div_round_trip(self, a, b):
            da, db = DoubleDouble(a), DoubleDouble(b)
            result = (da * db) / db
            assert _relative_error(result, da) <= 8 * DoubleDouble.eps

        @given(values=st.lists(nonzero, min_size=1, max_size=16),
               divisors=st.lists(nonzero, min_size=1, max_size=16))
        @settings(max_examples=50, deadline=None)
        def test_ddarray_division_matches_scalars(self, values, divisors):
            size = min(len(values), len(divisors))
            scalars_a = [DoubleDouble(v) for v in values[:size]]
            scalars_b = [DoubleDouble(v) for v in divisors[:size]]
            out = DDArray.from_scalars(scalars_a) / DDArray.from_scalars(scalars_b)
            _assert_bit_identical(out, [a / b for a, b in zip(scalars_a, scalars_b)])

    class TestHypothesisQD:
        @given(values=st.lists(nonzero, min_size=1, max_size=12),
               tails=st.lists(finite, min_size=1, max_size=12),
               others=st.lists(nonzero, min_size=1, max_size=12))
        @settings(max_examples=40, deadline=None)
        def test_qdarray_ops_match_scalars(self, values, tails, others):
            size = min(len(values), len(tails), len(others))
            A = [QuadDouble(v) + QuadDouble(v * 1e-17 * (t % 1.0 if t else 0.5))
                 for v, t in zip(values[:size], tails[:size])]
            B = [QuadDouble(v) for v in others[:size]]
            va, vb = QDArray.from_scalars(A), QDArray.from_scalars(B)
            _assert_qd_bit_identical(va + vb, [a + b for a, b in zip(A, B)])
            _assert_qd_bit_identical(va * vb, [a * b for a, b in zip(A, B)])
            _assert_qd_bit_identical(va / vb, [a / b for a, b in zip(A, B)])

        @given(a=nonzero, b=nonzero)
        @settings(max_examples=50, deadline=None)
        def test_qd_mul_div_round_trip(self, a, b):
            qa, qb = QuadDouble(a), QuadDouble(b)
            back = (qa * qb) / qb
            err = abs(float((back - qa).to_float()))
            assert err <= 8 * QuadDouble.eps * max(abs(a), 1e-300)

        @given(values=st.lists(finite, min_size=4, max_size=4))
        @settings(max_examples=75, deadline=None)
        def test_vectorised_renorm_matches_scalar(self, values):
            # The branch-nest flattening of the renormalisation is the one
            # nontrivial piece of vectorisation; pin it against the scalar
            # constructor on adversarial component quadruples.
            arrays = [np.array([v]) for v in values]
            got = QDArray(*arrays)
            expected = QuadDouble(*values)
            for g, e in zip((got.c0[0], got.c1[0], got.c2[0], got.c3[0]),
                            expected.c):
                assert g == e or (np.isnan(g) and np.isnan(e))
