"""Tests for scalar quad-double arithmetic against exact rational ground truth."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.multiprec import DoubleDouble, QuadDouble, qd

# The sloppy QD algorithms are accurate to a few ulps of 2**-209; we require
# a couple of orders of magnitude of slack.
QD_RTOL = Fraction(1, 2 ** 200)

moderate = st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e40, max_value=1e40)

# Values whose products stay far away from underflow/overflow (the QD-style
# algorithms assume this, just like the error-free transformations).
balanced = st.one_of(
    st.just(0.0),
    st.floats(allow_nan=False, allow_infinity=False, min_value=1e-30, max_value=1e30),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=-1e-30),
)
balanced_nonzero = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, min_value=1e-30, max_value=1e30),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=-1e-30),
)


def assert_close(value: QuadDouble, exact: Fraction, rtol: Fraction = QD_RTOL):
    err = abs(value.to_fraction() - exact)
    scale = max(abs(exact), Fraction(1, 10 ** 300))
    assert err <= rtol * scale, f"error {float(err)} too large for {float(exact)}"


class TestConstruction:
    def test_from_float(self):
        assert QuadDouble.from_float(0.5).to_fraction() == Fraction(1, 2)

    def test_from_double_double(self):
        x = DoubleDouble.from_string("0.1")
        q = QuadDouble.from_double_double(x)
        assert q.to_fraction() == x.to_fraction()

    def test_from_string_beats_double_double(self):
        q = qd("0.1")
        err = abs(q.to_fraction() - Fraction(1, 10))
        assert err < Fraction(1, 10 ** 60)

    def test_components_are_canonical(self):
        q = QuadDouble(1.0, 3.0, 0.25, 0.0)
        comps = q.components()
        assert comps[0] == 4.25
        assert sum(Fraction(c) for c in comps) == Fraction(17, 4)

    def test_copy_constructor_and_raw(self):
        q = qd("2.5")
        assert QuadDouble(q) == q

    def test_immutability(self):
        with pytest.raises(AttributeError):
            qd(1).c = (0.0, 0.0, 0.0, 0.0)

    def test_qd_helper_variants(self):
        assert qd(3).to_fraction() == 3
        assert qd(Fraction(1, 3)).to_fraction() != 0
        assert qd(DoubleDouble.from_float(2.0)).to_fraction() == 2


class TestConversions:
    def test_to_double_double_truncates(self):
        q = qd("0.1")
        x = q.to_double_double()
        assert abs(x.to_fraction() - Fraction(1, 10)) < Fraction(1, 10 ** 30)

    def test_float_and_bool(self):
        assert float(qd("2.5")) == 2.5
        assert not QuadDouble(0.0)
        assert qd("1e-200")

    def test_decimal_string(self):
        s = qd("0.333333333333333333333333333333333333").to_decimal_string(30)
        assert s.startswith("3.3333333333333333333333333333")

    def test_hash_consistency(self):
        assert hash(qd(5)) == hash(qd(5.0))


class TestPredicates:
    def test_is_negative_uses_leading_nonzero(self):
        small_negative = qd(1) - qd(1) - qd("1e-100")
        assert small_negative.is_negative()

    def test_is_finite(self):
        assert qd(1).is_finite()
        assert not QuadDouble(float("inf")).is_finite()


class TestComparisons:
    def test_ordering_at_quad_precision(self):
        a = qd(1) + qd("1e-50")
        assert a > qd(1)
        assert qd(1) < a
        assert a >= qd(1) and qd(1) <= a

    def test_compare_with_numbers_and_dd(self):
        assert qd("2.5") > 2
        assert qd("2.5") == 2.5
        assert qd(2) >= DoubleDouble.from_float(2.0)


class TestArithmetic:
    @given(moderate, moderate)
    def test_addition(self, a, b):
        assert_close(qd(a) + qd(b), Fraction(a) + Fraction(b))

    @given(moderate, moderate)
    def test_subtraction(self, a, b):
        assert_close(qd(a) - qd(b), Fraction(a) - Fraction(b))

    @given(balanced, balanced)
    def test_multiplication(self, a, b):
        assert_close(qd(a) * qd(b), Fraction(a) * Fraction(b))

    @given(balanced, balanced_nonzero)
    def test_division(self, a, b):
        assert_close(qd(a) / qd(b), Fraction(a) / Fraction(b))

    def test_precision_beyond_double_double(self):
        # A three-term sum 1 + 2**-60 + 2**-170 needs more than the 106 bits
        # of double-double but fits comfortably in quad-double.
        mid = Fraction(1, 2 ** 60)
        tiny = Fraction(1, 2 ** 170)
        exact = 1 + mid + tiny
        q = qd(1) + QuadDouble.from_fraction(mid) + QuadDouble.from_fraction(tiny)
        assert q.to_fraction() == exact
        x = (DoubleDouble.from_float(1.0) + DoubleDouble.from_fraction(mid)
             + DoubleDouble.from_fraction(tiny))
        assert x.to_fraction() != exact

    def test_mixed_operands(self):
        assert (qd(2) + 3).to_fraction() == 5
        assert (3 * qd(2)).to_fraction() == 6
        assert (1 - qd(2)).to_fraction() == -1
        assert (1 / qd(4)).to_fraction() == Fraction(1, 4)
        assert (qd(2) + DoubleDouble.from_float(1.0)).to_fraction() == 3

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            qd(1) / qd(0)

    def test_negation_and_abs(self):
        assert (-qd(2)).to_fraction() == -2
        assert abs(qd(-2)).to_fraction() == 2

    @given(st.floats(min_value=0.01, max_value=100, allow_nan=False))
    def test_add_sub_roundtrip(self, a):
        # Relative accuracy is measured against the largest intermediate
        # (which is at least 0.1 here), hence the lower bound on |a|.
        x = qd(a)
        assert_close((x + qd("0.1")) - qd("0.1"), Fraction(a), rtol=Fraction(1, 2 ** 190))


class TestPowerAndSqrt:
    @given(st.floats(min_value=-10, max_value=10, allow_nan=False),
           st.integers(min_value=0, max_value=10))
    def test_integer_power(self, a, e):
        assume(abs(a) > 1e-3)
        assert_close(qd(a).power(e), Fraction(a) ** e, rtol=Fraction(1, 2 ** 190))

    def test_negative_power(self):
        assert_close(qd(2) ** -2, Fraction(1, 4))

    def test_power_zero_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            qd(0).power(0)

    @given(st.floats(min_value=1e-5, max_value=1e5, allow_nan=False))
    def test_sqrt(self, a):
        root = qd(a).sqrt()
        assert_close(root * root, Fraction(a), rtol=Fraction(1, 2 ** 180))

    def test_sqrt_negative(self):
        with pytest.raises(ValueError):
            qd(-1).sqrt()

    def test_sqrt_zero(self):
        assert qd(0).sqrt().is_zero()

    def test_eps_value(self):
        assert QuadDouble.eps == pytest.approx(2.0 ** -209, rel=1e-6)
