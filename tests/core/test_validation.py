"""Tests for the GPU-vs-CPU validation helpers."""

from __future__ import annotations

import pytest

from repro.core import GPUEvaluator, compare_evaluations, validate_evaluator
from repro.core.validation import ComparisonReport
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import random_regular_system


class TestCompareEvaluations:
    def test_identical_inputs_give_zero(self):
        values = [1 + 1j, 2j]
        jacobian = [[1j, 0j], [0j, 2 + 0j]]
        report = compare_evaluations(values, jacobian, list(values), [list(r) for r in jacobian])
        assert report.max_value_difference == 0
        assert report.max_jacobian_difference == 0
        assert report.max_relative_difference == 0
        assert report.within(1e-15)

    def test_detects_value_difference(self):
        report = compare_evaluations([1 + 0j], [[1 + 0j]], [1.5 + 0j], [[1 + 0j]])
        assert report.max_value_difference == pytest.approx(0.5)
        assert not report.within(1e-3)

    def test_detects_jacobian_difference(self):
        report = compare_evaluations([1 + 0j], [[1 + 0j]], [1 + 0j], [[2 + 0j]])
        assert report.max_jacobian_difference == pytest.approx(1.0)

    def test_relative_difference_uses_magnitudes(self):
        report = compare_evaluations([1e8 + 0j], [[0j]], [1e8 + 1 + 0j], [[0j]])
        assert report.max_relative_difference == pytest.approx(1e-8, rel=1e-3)

    def test_handles_extended_precision_scalars(self):
        ctx = DOUBLE_DOUBLE
        a = [ctx.from_complex(1 + 1j)]
        j = [[ctx.from_complex(2 + 0j)]]
        report = compare_evaluations(a, j, a, j, context=ctx)
        assert report.max_relative_difference == 0

    def test_report_is_frozen(self):
        report = ComparisonReport(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(AttributeError):
            report.max_value_difference = 1.0


class TestValidateEvaluator:
    def test_passes_for_correct_pipeline(self, small_system):
        report = validate_evaluator(small_system, points=2, tolerance=1e-10)
        assert report.max_relative_difference < 1e-12

    def test_accepts_existing_evaluator(self, small_system):
        evaluator = GPUEvaluator(small_system, check_capacity=False)
        report = validate_evaluator(small_system, points=1, evaluator=evaluator)
        assert report.within(1e-10)

    def test_double_double_validation(self):
        system = random_regular_system(4, 2, 2, 3, seed=13)
        report = validate_evaluator(system, context=DOUBLE_DOUBLE, points=1,
                                    tolerance=1e-12)
        assert report.within(1e-12)

    def test_failure_raises_assertion(self, small_system):
        class BrokenEvaluator:
            def __init__(self, inner):
                self.inner = inner

            def evaluate(self, point):
                result = self.inner.evaluate(point)
                result.values[0] = result.values[0] + 1.0
                return result

        broken = BrokenEvaluator(GPUEvaluator(small_system, check_capacity=False))
        with pytest.raises(AssertionError):
            validate_evaluator(small_system, points=1, evaluator=broken, tolerance=1e-10)
