"""Differential plan-vs-walk suite for the compiled evaluation plans.

The compiled :class:`~repro.core.evalplan.EvaluationPlan` must reproduce
the walk-the-terms path *bit for bit* at every rung -- the two paths share
their power chains, sweeps and accumulation order, so any divergence is a
compiler bug, not roundoff.  The :class:`~repro.core.evalplan.HomotopyPlan`
is bit-for-bit on the value rows and the t-derivative; Jacobian entries
compare under ``==`` (structurally one-sided entries may differ in the sign
of a signed zero, never in value).

Coverage deliberately includes the adversarial shapes the compiler
deduplicates: repeated supports with different exponents, monomials shared
verbatim between the start and target systems, constant terms, repeated
identical terms, and inf/NaN lanes flowing through the masked arithmetic.
When ``hypothesis`` is installed the system generator additionally runs
under its adversarial shrinking; the seeded driver below always runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import VectorisedBatchEvaluator
from repro.core.evalplan import (
    EvaluationPlan,
    HomotopyPlan,
    PlanOpCounts,
    eval_plans_enabled,
    homotopy_walk_op_counts,
    pow_chain_multiplications,
    use_eval_plans,
    walk_op_counts,
)
from repro.core.opcounts import sharing_report
from repro.errors import ConfigurationError
from repro.multiprec.backend import backend_for_context, masked_lane_errstate
from repro.multiprec.numeric import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial
from repro.polynomials.system import PolynomialSystem
from repro.tracking.homotopy import BatchHomotopy
from repro.tracking.start_systems import total_degree_start_system

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

ALL_CONTEXTS = (DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE)

_RNG = np.random.default_rng(20120521)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def random_system(rng, dimension: int, terms_per_poly: int = 4,
                  max_exponent: int = 5) -> PolynomialSystem:
    """A random sparse square system with deliberately repeated supports."""
    supports = []
    polys = []
    for _ in range(dimension):
        poly_terms = []
        for _ in range(terms_per_poly):
            kind = rng.integers(0, 4)
            if kind == 0:
                poly_terms.append((complex(rng.normal(), rng.normal()),
                                   Monomial((), ())))
                continue
            if kind == 1 and supports:
                # Reuse an earlier support (possibly with new exponents):
                # the dedup path the plan exists for.
                positions = supports[int(rng.integers(0, len(supports)))]
            else:
                k = int(rng.integers(1, dimension + 1))
                positions = tuple(sorted(rng.choice(dimension, size=k,
                                                    replace=False).tolist()))
                supports.append(positions)
            exponents = tuple(int(e) for e in
                              rng.integers(1, max_exponent + 1,
                                           size=len(positions)))
            poly_terms.append((complex(rng.normal(), rng.normal()),
                               Monomial(positions, exponents)))
        polys.append(Polynomial(poly_terms))
    return PolynomialSystem(polys, dimension=dimension)


def lane_points(backend, dimension: int, lanes: int, rng,
                poison: bool = False):
    """A random lane batch; with ``poison``, lane 0 carries inf and lane 1
    NaN components (the dead-lane shapes of the masked tracker)."""
    points = [[complex(a, b) for a, b in zip(rng.normal(size=dimension),
                                             rng.normal(size=dimension))]
              for _ in range(lanes)]
    if poison and lanes >= 2:
        points[0] = [complex(np.inf, -1.0)] + points[0][1:]
        points[1] = [complex(np.nan, 2.0)] + points[1][1:]
    with masked_lane_errstate():
        # Packing inf/NaN lanes renormalises through two_sum, which is
        # exactly the dead-lane arithmetic the errstate scope silences.
        return backend.from_points(points)


def component_planes(array, context):
    if context.name == "d":
        return [array.real, array.imag]
    if context.name == "dd":
        return [array.real.hi, array.real.lo, array.imag.hi, array.imag.lo]
    return ([getattr(array.real, f"c{c}") for c in range(4)]
            + [getattr(array.imag, f"c{c}") for c in range(4)])


def assert_bit_for_bit(a, b, context, where=""):
    """Exact plane equality, NaNs matching positionally."""
    for pa, pb in zip(component_planes(a, context), component_planes(b, context)):
        assert np.array_equal(pa, pb, equal_nan=True), \
            f"bit-for-bit mismatch {where}: {pa} vs {pb}"


def assert_value_equal(a, b, context, where=""):
    """``==`` equality (tolerates signed-zero bit differences)."""
    for pa, pb in zip(component_planes(a, context), component_planes(b, context)):
        both_nan = np.isnan(pa) & np.isnan(pb)
        assert np.array_equal(np.isnan(pa), np.isnan(pb)), \
            f"NaN pattern mismatch {where}"
        assert np.all((pa == pb) | both_nan), \
            f"value mismatch {where}: {pa} vs {pb}"


# ----------------------------------------------------------------------
# the differential core, reused by the seeded and hypothesis drivers
# ----------------------------------------------------------------------
def check_single_system(system, context, rng, lanes=5, poison=False):
    backend = backend_for_context(context)
    points = lane_points(backend, system.dimension, lanes, rng, poison=poison)
    evaluator = VectorisedBatchEvaluator(system, backend=backend)
    with masked_lane_errstate():
        with use_eval_plans(False):
            walk = evaluator.evaluate(points)
        with use_eval_plans(True):
            plan = evaluator.evaluate(points)
    n = system.dimension
    for i in range(n):
        assert_bit_for_bit(walk.values[i], plan.values[i], context,
                           f"values[{i}] at {context.name}")
        for j in range(n):
            assert_bit_for_bit(walk.jacobian[i][j], plan.jacobian[i][j],
                               context, f"jacobian[{i}][{j}] at {context.name}")


def check_homotopy(start, target, context, rng, lanes=5, poison=False):
    backend = backend_for_context(context)
    n = target.dimension
    points = lane_points(backend, n, lanes, rng, poison=poison)
    t = rng.uniform(0.0, 1.0, size=lanes)
    homotopy = BatchHomotopy(start, target, context=context, backend=backend)
    with masked_lane_errstate():
        with use_eval_plans(False):
            walk = homotopy.evaluate_batch(points, t)
        with use_eval_plans(True):
            plan = homotopy.evaluate_batch(points, t)
    for i in range(n):
        assert_bit_for_bit(walk.values[i], plan.values[i], context,
                           f"h values[{i}] at {context.name}")
        assert_bit_for_bit(walk.t_derivative[i], plan.t_derivative[i], context,
                           f"dh/dt[{i}] at {context.name}")
        for j in range(n):
            assert_value_equal(walk.jacobian[i][j], plan.jacobian[i][j],
                               context, f"h jacobian[{i}][{j}] at {context.name}")


# ----------------------------------------------------------------------
# seeded driver: always runs, all three rungs
# ----------------------------------------------------------------------
class TestDifferentialSeeded:
    @pytest.mark.parametrize("context", ALL_CONTEXTS, ids=lambda c: c.name)
    def test_single_system_bit_for_bit(self, context):
        for trial in range(4):
            rng = np.random.default_rng(100 + trial)
            system = random_system(rng, dimension=int(rng.integers(2, 5)))
            check_single_system(system, context, rng)

    @pytest.mark.parametrize("context", ALL_CONTEXTS, ids=lambda c: c.name)
    def test_homotopy_against_walk(self, context):
        for trial in range(3):
            rng = np.random.default_rng(200 + trial)
            target = random_system(rng, dimension=int(rng.integers(2, 4)))
            start = total_degree_start_system(target)
            check_homotopy(start, target, context, rng)

    @pytest.mark.parametrize("context", ALL_CONTEXTS, ids=lambda c: c.name)
    def test_inf_nan_lanes_propagate_identically(self, context):
        rng = np.random.default_rng(300)
        target = random_system(rng, dimension=3)
        start = total_degree_start_system(target)
        check_single_system(target, context, rng, poison=True)
        check_homotopy(start, target, context, rng, poison=True)

    @pytest.mark.parametrize("context", ALL_CONTEXTS, ids=lambda c: c.name)
    def test_repeated_identical_terms_share_planes(self, context):
        # The same (coeff, monomial) term appearing twice in one polynomial
        # and once in the other: the shared term plane must not be corrupted
        # by the first consumer's in-place accumulation.
        mono = Monomial((0, 1), (2, 1))
        system = PolynomialSystem([
            Polynomial([(2 + 1j, mono), (2 + 1j, mono), (1 + 0j, Monomial((), ()))]),
            Polynomial([(2 + 1j, mono), (-1 + 0j, Monomial((1,), (3,)))]),
        ], dimension=2)
        rng = np.random.default_rng(400)
        check_single_system(system, context, rng)


if HAVE_HYPOTHESIS:
    @st.composite
    def small_systems(draw):
        dimension = draw(st.integers(min_value=2, max_value=4))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        return random_system(rng, dimension), seed

    class TestDifferentialHypothesis:
        @settings(max_examples=25, deadline=None)
        @given(small_systems())
        def test_single_system_bit_for_bit_d(self, system_seed):
            system, seed = system_seed
            check_single_system(system, DOUBLE, np.random.default_rng(seed))

        @settings(max_examples=10, deadline=None)
        @given(small_systems())
        def test_homotopy_dd(self, system_seed):
            target, seed = system_seed
            start = total_degree_start_system(target)
            check_homotopy(start, target, DOUBLE_DOUBLE,
                           np.random.default_rng(seed))


# ----------------------------------------------------------------------
# shape validation (regression: 1-D points used to be silently misread)
# ----------------------------------------------------------------------
class TestInputShapeValidation:
    def make_evaluator(self):
        system = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (2,)))]),
            Polynomial([(1 + 0j, Monomial((1,), (1,)))]),
        ], dimension=2)
        return VectorisedBatchEvaluator(system)

    @pytest.mark.parametrize("use_plan", [True, False])
    def test_one_dimensional_points_rejected(self, use_plan):
        evaluator = self.make_evaluator()
        flat = np.array([1 + 0j, 2 + 0j])  # a single point, not a batch
        with use_eval_plans(use_plan):
            with pytest.raises(ConfigurationError, match=r"\(n, B\)"):
                evaluator.evaluate(flat)

    @pytest.mark.parametrize("use_plan", [True, False])
    def test_wrong_leading_dimension_rejected(self, use_plan):
        evaluator = self.make_evaluator()
        wrong = np.zeros((3, 4), dtype=np.complex128)
        with use_eval_plans(use_plan):
            with pytest.raises(ConfigurationError, match="dimension"):
                evaluator.evaluate(wrong)

    def test_correct_shape_accepted(self):
        evaluator = self.make_evaluator()
        points = np.ones((2, 3), dtype=np.complex128)
        result = evaluator.evaluate(points)
        assert len(result.values) == 2
        assert result.values[0].shape == (3,)

    def test_batch_homotopy_rejects_flat_points(self):
        system = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (2,))),
                        (-1 + 0j, Monomial((), ()))]),
        ], dimension=1)
        homotopy = BatchHomotopy(total_degree_start_system(system), system)
        for use_plan in (True, False):
            with use_eval_plans(use_plan):
                with pytest.raises(ConfigurationError):
                    homotopy.evaluate_batch(np.ones(3, dtype=np.complex128),
                                            np.zeros(3))


# ----------------------------------------------------------------------
# the toggle and the compiled structure
# ----------------------------------------------------------------------
class TestPlanMachinery:
    def test_toggle_round_trip(self):
        assert eval_plans_enabled()  # default on
        with use_eval_plans(False):
            assert not eval_plans_enabled()
            with use_eval_plans(True):
                assert eval_plans_enabled()
            assert not eval_plans_enabled()
        assert eval_plans_enabled()

    def test_use_plan_parameter_overrides_toggle(self):
        rng = np.random.default_rng(7)
        system = random_system(rng, 2)
        backend = backend_for_context(DOUBLE)
        points = lane_points(backend, 2, 3, rng)
        pinned_walk = VectorisedBatchEvaluator(system, use_plan=False)
        with use_eval_plans(True):
            pinned_walk.evaluate(points)
        assert pinned_walk._plan is None  # the walk never compiled a plan
        pinned_plan = VectorisedBatchEvaluator(system, use_plan=True)
        with use_eval_plans(False):
            pinned_plan.evaluate(points)
        assert pinned_plan._plan is not None

    def test_pow_chain_matches_pow_operator_cost(self):
        # e = 1 -> ones*base + one squaring; e = 6 (110b) -> 2 result muls
        # + 3 squarings.
        assert pow_chain_multiplications(0) == 0
        assert pow_chain_multiplications(1) == 2
        assert pow_chain_multiplications(6) == 5

    def test_plan_compiles_lazily_and_once(self):
        rng = np.random.default_rng(8)
        system = random_system(rng, 2)
        evaluator = VectorisedBatchEvaluator(system)
        assert evaluator._plan is None
        plan = evaluator.plan
        assert evaluator.plan is plan

    def test_rejects_non_square_system(self):
        lopsided = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (1,)))]),
        ], dimension=2)
        with pytest.raises(ConfigurationError):
            EvaluationPlan(lopsided)

    def test_homotopy_plan_requires_gamma_to_execute(self):
        rng = np.random.default_rng(9)
        target = random_system(rng, 2)
        start = total_degree_start_system(target)
        plan = HomotopyPlan(start, target)  # compiles fine (op counts only)
        assert plan.op_counts.multiplications > 0
        backend = backend_for_context(DOUBLE)
        points = lane_points(backend, 2, 3, rng)
        with pytest.raises(ConfigurationError, match="gamma"):
            plan.execute(points, np.zeros(3))

    def test_dimension_mismatch_rejected(self):
        rng = np.random.default_rng(10)
        with pytest.raises(ConfigurationError):
            HomotopyPlan(random_system(rng, 2), random_system(rng, 3))


# ----------------------------------------------------------------------
# op counts: the plan never schedules more work than the walk
# ----------------------------------------------------------------------
class TestOpCounts:
    def test_plan_counts_never_exceed_walk(self):
        for seed in range(6):
            rng = np.random.default_rng(500 + seed)
            target = random_system(rng, int(rng.integers(2, 5)))
            plan = EvaluationPlan(target)
            assert plan.op_counts.multiplications <= plan.walk_counts.multiplications
            assert plan.op_counts.additions <= plan.walk_counts.additions
            start = total_degree_start_system(target)
            hplan = HomotopyPlan(start, target)
            assert hplan.op_counts.multiplications <= hplan.walk_counts.multiplications
            assert hplan.op_counts.additions <= hplan.walk_counts.additions

    def test_walk_counts_match_module_functions(self):
        rng = np.random.default_rng(600)
        target = random_system(rng, 3)
        start = total_degree_start_system(target)
        assert EvaluationPlan(target).walk_counts == walk_op_counts(target)
        assert (HomotopyPlan(start, target).walk_counts
                == homotopy_walk_op_counts(start, target))

    def test_op_counts_arithmetic(self):
        total = PlanOpCounts(3, 2) + PlanOpCounts(1, 1)
        assert total == PlanOpCounts(4, 3)
        assert total.total == 7
        assert total.as_dict()["multiplications"] == 4

    def test_common_chain_shared_across_monomials_with_same_powers(self):
        # x0^3*x1^2*x2 and x0^3*x1^2*x3 differ only in an exponent-1
        # variable: their common factor x0^2*x1 is one chain, not two.
        system = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0, 1, 2), (3, 2, 1))),
                        (1 + 0j, Monomial((0, 1, 3), (3, 2, 1)))]),
            Polynomial([(1 + 0j, Monomial((1,), (1,)))]),
            Polynomial([(1 + 0j, Monomial((2,), (1,)))]),
            Polynomial([(1 + 0j, Monomial((3,), (1,)))]),
        ], dimension=4)
        plan = EvaluationPlan(system)
        chains = [spec for spec in plan._specs if spec[0] == "chain"]
        assert len(chains) == 1
        # A single >1 exponent needs no chain plane at all: the power is
        # the common factor.
        single = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (3,)))]),
            Polynomial([(1 + 0j, Monomial((1,), (1,)))]),
        ], dimension=2)
        assert not [s for s in EvaluationPlan(single)._specs
                    if s[0] == "chain"]

    def test_sharing_report_shapes(self):
        rng = np.random.default_rng(700)
        target = random_system(rng, 3)
        start = total_degree_start_system(target)
        single = sharing_report(target)
        assert single["walk"]["multiplications"] >= single["plan"]["multiplications"]
        paired = sharing_report(target, start)
        assert paired["multiplication_saving_factor"] >= 1.0
        assert paired["sharing"]["terms"] > 0
        assert paired["multiplications_saved"] == (
            paired["walk"]["multiplications"] - paired["plan"]["multiplications"])
