"""Tests for the multicore (partition-and-merge) evaluator."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.core import CPUReferenceEvaluator, MulticoreEvaluator, partition_monomials
from repro.multiprec import DOUBLE_DOUBLE
from repro.polynomials import random_point, random_regular_system


class TestPartition:
    def test_partition_covers_all_monomials(self, small_system):
        chunks = partition_monomials(small_system, 4)
        assert len(chunks) == 4
        total = sum(len(c) for c in chunks)
        assert total == small_system.total_monomials
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_single_worker_gets_everything(self, small_system):
        chunks = partition_monomials(small_system, 1)
        assert len(chunks) == 1
        assert len(chunks[0]) == small_system.total_monomials

    def test_more_workers_than_monomials(self):
        system = random_regular_system(2, 1, 1, 1, seed=0)
        chunks = partition_monomials(system, 8)
        assert sum(len(c) for c in chunks) == 2
        assert sum(1 for c in chunks if c) == 2

    def test_invalid_worker_count(self, small_system):
        with pytest.raises(ConfigurationError):
            partition_monomials(small_system, 0)
        with pytest.raises(ConfigurationError):
            MulticoreEvaluator(small_system, workers=0)


class TestEvaluation:
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_matches_sequential_reference(self, small_system, small_point, workers):
        multicore = MulticoreEvaluator(small_system, workers=workers)
        sequential = CPUReferenceEvaluator(small_system, algorithm="naive")
        m = multicore.evaluate(small_point)
        s = sequential.evaluate(small_point)
        for a, b in zip(m.values, s.values):
            assert a == pytest.approx(b, rel=1e-11)
        for row_a, row_b in zip(m.jacobian, s.jacobian):
            for a, b in zip(row_a, row_b):
                assert a == pytest.approx(b, rel=1e-11, abs=1e-11)

    def test_operation_total_matches_sequential_factored(self, small_system, small_point):
        multicore = MulticoreEvaluator(small_system, workers=3)
        sequential = CPUReferenceEvaluator(small_system, algorithm="factored")
        m_ops = multicore.evaluate(small_point).operations
        s_ops = sequential.evaluate(small_point).operations
        # Partitioning rebuilds the power table per chunk, so the multicore
        # evaluator can only do at least as many multiplications.
        assert m_ops.multiplications >= s_ops.multiplications
        assert m_ops.additions >= s_ops.additions

    def test_double_double_context(self, small_system, small_point):
        multicore = MulticoreEvaluator(small_system, workers=2, context=DOUBLE_DOUBLE)
        result = multicore.evaluate(small_point)
        reference = CPUReferenceEvaluator(small_system, context=DOUBLE_DOUBLE,
                                          algorithm="naive").evaluate(small_point)
        for a, b in zip(result.values, reference.values):
            assert abs(a.to_complex() - b.to_complex()) < 1e-12

    def test_external_executor(self, small_system, small_point):
        with ThreadPoolExecutor(max_workers=2) as pool:
            multicore = MulticoreEvaluator(small_system, workers=2, executor=pool)
            result = multicore.evaluate(small_point)
        reference = CPUReferenceEvaluator(small_system, algorithm="naive").evaluate(small_point)
        for a, b in zip(result.values, reference.values):
            assert a == pytest.approx(b, rel=1e-11)

    def test_elapsed_time_recorded(self, small_system, small_point):
        assert MulticoreEvaluator(small_system, workers=2).evaluate(small_point).elapsed_seconds > 0
