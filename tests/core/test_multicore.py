"""Tests for the multicore (partition-and-merge) evaluator."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError, WorkerExecutionError
from repro.core import (
    CPUReferenceEvaluator,
    MulticoreEvaluator,
    partition_lanes,
    partition_monomials,
)
from repro.multiprec import DOUBLE_DOUBLE
from repro.polynomials import random_point, random_regular_system


class TestPartition:
    def test_partition_covers_all_monomials(self, small_system):
        chunks = partition_monomials(small_system, 4)
        assert len(chunks) == 4
        total = sum(len(c) for c in chunks)
        assert total == small_system.total_monomials
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_single_worker_gets_everything(self, small_system):
        chunks = partition_monomials(small_system, 1)
        assert len(chunks) == 1
        assert len(chunks[0]) == small_system.total_monomials

    def test_more_workers_than_monomials(self):
        system = random_regular_system(2, 1, 1, 1, seed=0)
        chunks = partition_monomials(system, 8)
        assert sum(len(c) for c in chunks) == 2
        assert sum(1 for c in chunks if c) == 2

    def test_invalid_worker_count(self, small_system):
        with pytest.raises(ConfigurationError):
            partition_monomials(small_system, 0)
        with pytest.raises(ConfigurationError):
            MulticoreEvaluator(small_system, workers=0)

    def test_partition_computed_once_at_construction(self, small_system,
                                                     small_point, monkeypatch):
        """The static work partition must not be recomputed per evaluation."""
        from repro.core import multicore

        calls = []
        original = multicore.partition_monomials

        def counting(system, workers):
            calls.append(workers)
            return original(system, workers)

        monkeypatch.setattr(multicore, "partition_monomials", counting)
        evaluator = MulticoreEvaluator(small_system, workers=3)
        assert calls == [3]
        evaluator.evaluate(small_point)
        evaluator.evaluate(small_point)
        assert calls == [3]  # still just the constructor's call


class TestLanePartition:
    """partition_lanes: the sharded service's contiguous path partition."""

    def test_contiguous_balanced_runs(self):
        assert partition_lanes(10, 3) == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_concatenation_preserves_global_order(self):
        lanes = partition_lanes(17, 4)
        flat = [i for shard in lanes for i in shard]
        assert flat == list(range(17))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [len(s) for s in partition_lanes(11, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_lanes(self):
        assert partition_lanes(2, 4) == [[0], [1], [], []]

    def test_empty_batch(self):
        assert partition_lanes(0, 3) == [[], [], []]

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            partition_lanes(4, 0)
        with pytest.raises(ConfigurationError):
            partition_lanes(-1, 2)


class TestEvaluation:
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_matches_sequential_reference(self, small_system, small_point, workers):
        multicore = MulticoreEvaluator(small_system, workers=workers)
        sequential = CPUReferenceEvaluator(small_system, algorithm="naive")
        m = multicore.evaluate(small_point)
        s = sequential.evaluate(small_point)
        for a, b in zip(m.values, s.values):
            assert a == pytest.approx(b, rel=1e-11)
        for row_a, row_b in zip(m.jacobian, s.jacobian):
            for a, b in zip(row_a, row_b):
                assert a == pytest.approx(b, rel=1e-11, abs=1e-11)

    def test_operation_total_matches_sequential_factored(self, small_system, small_point):
        multicore = MulticoreEvaluator(small_system, workers=3)
        sequential = CPUReferenceEvaluator(small_system, algorithm="factored")
        m_ops = multicore.evaluate(small_point).operations
        s_ops = sequential.evaluate(small_point).operations
        # Partitioning rebuilds the power table per chunk, so the multicore
        # evaluator can only do at least as many multiplications.
        assert m_ops.multiplications >= s_ops.multiplications
        assert m_ops.additions >= s_ops.additions

    def test_double_double_context(self, small_system, small_point):
        multicore = MulticoreEvaluator(small_system, workers=2, context=DOUBLE_DOUBLE)
        result = multicore.evaluate(small_point)
        reference = CPUReferenceEvaluator(small_system, context=DOUBLE_DOUBLE,
                                          algorithm="naive").evaluate(small_point)
        for a, b in zip(result.values, reference.values):
            assert abs(a.to_complex() - b.to_complex()) < 1e-12

    def test_external_executor(self, small_system, small_point):
        with ThreadPoolExecutor(max_workers=2) as pool:
            multicore = MulticoreEvaluator(small_system, workers=2, executor=pool)
            result = multicore.evaluate(small_point)
        reference = CPUReferenceEvaluator(small_system, algorithm="naive").evaluate(small_point)
        for a, b in zip(result.values, reference.values):
            assert a == pytest.approx(b, rel=1e-11)

    def test_elapsed_time_recorded(self, small_system, small_point):
        assert MulticoreEvaluator(small_system, workers=2).evaluate(small_point).elapsed_seconds > 0

    def test_elapsed_time_includes_merge(self, small_system, small_point,
                                         monkeypatch):
        """The timer must span submit through merge, not just the futures."""
        import time as time_module

        multicore = MulticoreEvaluator(small_system, workers=2)
        ticks = iter([100.0, 107.5] + [200.0] * 50)
        monkeypatch.setattr(time_module, "perf_counter", lambda: next(ticks))
        result = multicore.evaluate(small_point)
        # First tick before submit, second after the merge loop: any
        # implementation that stops the clock earlier reads a later tick.
        assert result.elapsed_seconds == pytest.approx(7.5)


class TestWorkerErrorAttribution:
    """Failures surface with the worker's coordinates, mirroring how the
    simulated-GPU launcher reports failing thread coordinates."""

    class _ExplodingExecutor:
        """Executor whose every task raises inside the 'worker'."""

        def submit(self, fn, *args, **kwargs):
            from concurrent.futures import Future

            future = Future()
            future.set_exception(ValueError("boom"))
            return future

    def test_worker_exception_is_wrapped_with_coordinates(self, small_system,
                                                          small_point):
        multicore = MulticoreEvaluator(small_system, workers=3,
                                       executor=self._ExplodingExecutor())
        with pytest.raises(WorkerExecutionError) as excinfo:
            multicore.evaluate(small_point)
        message = str(excinfo.value)
        assert "worker 0 of" in message
        assert "hosting polynomial(s)" in message
        assert "boom" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_existing_worker_errors_pass_through_unwrapped(self, small_system,
                                                           small_point):
        class AlreadyWrapped:
            def submit(self, fn, *args, **kwargs):
                from concurrent.futures import Future

                future = Future()
                future.set_exception(WorkerExecutionError("original coords"))
                return future

        multicore = MulticoreEvaluator(small_system, workers=2,
                                       executor=AlreadyWrapped())
        with pytest.raises(WorkerExecutionError, match="original coords"):
            multicore.evaluate(small_point)
