"""Tests for the batch evaluation API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core import BatchEvaluator, CPUReferenceEvaluator, GPUEvaluator
from repro.core.batch import VectorisedBatchEvaluator
from repro.gpusim import GPUCostModel
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.multiprec.backend import backend_for_context
from repro.polynomials import Monomial, Polynomial, PolynomialSystem, random_point


@pytest.fixture
def points():
    return [random_point(6, seed=s) for s in range(4)]


class TestBatchEvaluation:
    def test_results_match_single_evaluations(self, small_system, points):
        batch = BatchEvaluator(small_system, check_capacity=False)
        result = batch.evaluate_batch(points)
        assert len(result) == 4
        single = GPUEvaluator(small_system, check_capacity=False)
        for point, values, jacobian in zip(points, result.values, result.jacobians):
            expected = single.evaluate(point)
            assert values == pytest.approx(expected.values)
            assert jacobian[0] == pytest.approx(expected.jacobian[0])

    def test_statistics_aggregate(self, small_system, points):
        batch = BatchEvaluator(small_system, check_capacity=False)
        result = batch.evaluate_batch(points)
        stats = result.statistics
        assert stats.evaluations == 4
        assert stats.kernel_launches == 12
        single = GPUEvaluator(small_system, check_capacity=False).evaluate(points[0])
        per_eval_mults = sum(s.total_multiplications for s in single.launch_stats)
        assert stats.total_multiplications == 4 * per_eval_mults
        assert stats.predicted_device_seconds > 0
        assert stats.predicted_seconds_per_evaluation == pytest.approx(
            stats.predicted_device_seconds / 4)

    def test_extrapolation_is_linear(self, small_system, points):
        batch = BatchEvaluator(small_system, check_capacity=False)
        stats = batch.evaluate_batch(points).statistics
        assert stats.extrapolate(100_000) == pytest.approx(
            stats.predicted_seconds_per_evaluation * 100_000)

    def test_validation_passes_for_correct_pipeline(self, small_system, points):
        batch = BatchEvaluator(small_system, check_capacity=False, validate_every=2)
        result = batch.evaluate_batch(points)
        assert result.validation_failures == 0

    def test_validation_counts_mismatches(self, small_system, points):
        class Corrupted:
            def __init__(self, inner):
                self.inner = inner

            def evaluate(self, point):
                out = self.inner.evaluate(point)
                out.values[0] = out.values[0] + 1.0
                return out

        inner = GPUEvaluator(small_system, check_capacity=False)
        batch = BatchEvaluator(small_system, evaluator=Corrupted(inner), validate_every=1)
        result = batch.evaluate_batch(points)
        assert result.validation_failures == len(points)

    def test_invalid_validate_every(self, small_system):
        with pytest.raises(ConfigurationError):
            BatchEvaluator(small_system, check_capacity=False, validate_every=-1)

    def test_predicted_run_times(self, small_system, points):
        batch = BatchEvaluator(small_system, check_capacity=False)
        stats = batch.evaluate_batch(points).statistics
        prediction = batch.predicted_run_times(100_000, stats)
        assert prediction["evaluations"] == 100_000
        assert prediction["predicted_gpu_seconds"] > 0
        assert prediction["predicted_cpu_seconds"] > 0
        assert prediction["predicted_speedup"] == pytest.approx(
            prediction["predicted_cpu_seconds"] / prediction["predicted_gpu_seconds"])

    def test_double_double_batch(self, small_system):
        batch = BatchEvaluator(small_system, context=DOUBLE_DOUBLE, check_capacity=False,
                               validate_every=1, validation_tolerance=1e-12)
        pts = [random_point(6, seed=11)]
        result = batch.evaluate_batch(pts)
        assert result.validation_failures == 0
        reference = CPUReferenceEvaluator(small_system, context=DOUBLE_DOUBLE).evaluate(pts[0])
        got = result.values[0][0].to_complex()
        assert got == pytest.approx(reference.values[0].to_complex(), rel=1e-12)

    def test_empty_batch(self, small_system):
        batch = BatchEvaluator(small_system, check_capacity=False)
        result = batch.evaluate_batch([])
        assert len(result) == 0
        assert result.statistics.predicted_seconds_per_evaluation == 0.0
        assert result.statistics.extrapolate(10) == 0.0


class TestVectorisedBatchEvaluator:
    """The structure-of-arrays evaluator against the scalar CPU reference."""

    def _check_against_reference(self, system, context, lanes=4, tol=1e-12):
        backend = backend_for_context(context)
        pts = [random_point(system.dimension, seed=100 + s) for s in range(lanes)]
        batch = VectorisedBatchEvaluator(system, backend=backend).evaluate(
            backend.from_points(pts))
        reference = CPUReferenceEvaluator(system, context=context, algorithm="naive")
        n = system.dimension
        for lane, point in enumerate(pts):
            expected = reference.evaluate([context.from_complex(complex(x))
                                           for x in point])
            for i in range(n):
                got = backend.to_complex128(batch.values[i])[lane]
                assert got == pytest.approx(context.to_complex(expected.values[i]),
                                            rel=tol, abs=tol)
                for j in range(n):
                    got_j = backend.to_complex128(batch.jacobian[i][j])[lane]
                    assert got_j == pytest.approx(
                        context.to_complex(expected.jacobian[i][j]), rel=tol, abs=tol)

    def test_matches_reference_double(self, small_system):
        self._check_against_reference(small_system, DOUBLE)

    def test_matches_reference_double_double_exactly(self, small_system):
        # ComplexDDArray runs the same operation sequences as the scalar
        # ComplexDD loop, so double-rounded results agree exactly.
        self._check_against_reference(small_system, DOUBLE_DOUBLE, tol=0.0)

    def test_handles_irregular_systems(self):
        # x0^2 - 1 mixes k=1 and k=0 monomials: refused by the simulated
        # device, fine for the structure-of-arrays path.
        system = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (2,))), (-1 + 0j, Monomial((), ()))]),
        ])
        assert system.regularity() is None
        self._check_against_reference(system, DOUBLE)

    def test_speelpenning_product_gradient(self):
        system = PolynomialSystem([
            Polynomial([(2 + 0j, Monomial((0, 1, 2), (1, 2, 3)))]),
            Polynomial([(1 + 0j, Monomial((0, 2), (1, 1)))]),
            Polynomial([(1 + 0j, Monomial((1,), (1,)))]),
        ], dimension=3)
        self._check_against_reference(system, DOUBLE)

    def test_rejects_non_square_systems(self):
        system = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (1,)))]),
        ], dimension=2)
        with pytest.raises(ConfigurationError):
            VectorisedBatchEvaluator(system, context=DOUBLE)
