"""Shared fixtures for the core-pipeline tests.

The kernel and evaluator tests all work on small regular systems so that the
whole pipeline (thousands of simulated thread executions) stays fast.
"""

from __future__ import annotations

import pytest

from repro.polynomials import random_point, random_regular_system


@pytest.fixture(scope="package")
def small_system():
    """A 6-dimensional regular system: k=3 variables per monomial, d<=4."""
    return random_regular_system(dimension=6, monomials_per_polynomial=4,
                                 variables_per_monomial=3, max_variable_degree=4,
                                 seed=2012)


@pytest.fixture(scope="package")
def small_point():
    return random_point(6, seed=99)


@pytest.fixture(scope="package")
def linear_system():
    """A system whose monomials are all products of distinct variables
    (d = 1), exercising the degenerate common-factor path."""
    return random_regular_system(dimension=5, monomials_per_polynomial=3,
                                 variables_per_monomial=2, max_variable_degree=1,
                                 seed=7)
