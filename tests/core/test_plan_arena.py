"""Lifecycle and reuse tests for the plan-arena executor.

The arena path must stay bit-for-bit with the allocating plan path (which
the differential suite in ``test_evalplan.py`` pins against the walk), and
its persistent buffers must obey their lifecycle contract: exactly one
re-size per lane-count change, step-scoped plane reuse that is a pure
dedup, and exception-safety without scoped releases (an aborted execution
leaves the arena fully reusable and the scratch stack at depth zero).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import VectorisedBatchEvaluator
from repro.core.evalplan import (
    EvaluationPlan,
    HomotopyPlan,
    eval_plans_enabled,
    plan_arenas_enabled,
    use_eval_plans,
    use_plan_arenas,
)
from repro.multiprec.backend import backend_for_context, masked_lane_errstate
from repro.multiprec.bufferpool import plane_stack, use_fused_kernels
from repro.multiprec.numeric import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial
from repro.polynomials.system import PolynomialSystem
from repro.tracking.start_systems import total_degree_start_system

ALL_CONTEXTS = (DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE)


def example_system() -> PolynomialSystem:
    """Small square system with shared supports, powers and a constant."""
    xy = Monomial((0, 1), (2, 3))
    yz = Monomial((1, 2), (1, 2))
    return PolynomialSystem([
        Polynomial([(2 + 1j, xy), (1 - 1j, yz), (0.5 + 0j, Monomial((), ()))]),
        Polynomial([(1 + 0j, xy), (-3 + 0j, Monomial((2,), (4,)))]),
        Polynomial([(1 + 2j, yz), (1 + 0j, Monomial((0,), (1,)))]),
    ], dimension=3)


def lane_points(backend, dimension: int, lanes: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    points = [[complex(a, b) for a, b in zip(rng.normal(size=dimension),
                                             rng.normal(size=dimension))]
              for _ in range(lanes)]
    with masked_lane_errstate():
        return backend.from_points(points)


def planes_of(array, context):
    if context.name == "d":
        return [array.real, array.imag]
    if context.name == "dd":
        return [array.real.hi, array.real.lo, array.imag.hi, array.imag.lo]
    return ([getattr(array.real, f"c{c}") for c in range(4)]
            + [getattr(array.imag, f"c{c}") for c in range(4)])


def assert_same(a, b, context, where=""):
    for pa, pb in zip(planes_of(a, context), planes_of(b, context)):
        assert np.array_equal(pa, pb, equal_nan=True), \
            f"bit-for-bit mismatch {where}"


def snapshot(values, jacobian, context):
    """Deep-copy an execution's rows (arena rows are reused next call)."""
    copy = [[np.array(p, copy=True) for p in planes_of(v, context)]
            for v in values]
    jcopy = [[[np.array(p, copy=True) for p in planes_of(e, context)]
              for e in row] for row in jacobian]
    return copy, jcopy


def assert_matches_snapshot(values, jacobian, snap, context):
    vals, jac = snap
    for v, planes in zip(values, vals):
        for pa, pb in zip(planes_of(v, context), planes):
            assert np.array_equal(pa, pb, equal_nan=True)
    for row, srow in zip(jacobian, jac):
        for entry, splanes in zip(row, srow):
            for pa, pb in zip(planes_of(entry, context), splanes):
                assert np.array_equal(pa, pb, equal_nan=True)


class TestToggle:
    def test_round_trip(self):
        assert plan_arenas_enabled()  # default on
        with use_plan_arenas(False):
            assert not plan_arenas_enabled()
            with use_plan_arenas(True):
                assert plan_arenas_enabled()
            assert not plan_arenas_enabled()
        assert plan_arenas_enabled()

    def test_independent_of_plan_toggle(self):
        with use_eval_plans(False):
            assert plan_arenas_enabled()
            assert not eval_plans_enabled()


class TestArenaVsAllocating:
    @pytest.mark.parametrize("context", ALL_CONTEXTS, ids=lambda c: c.name)
    def test_single_system_bit_for_bit(self, context):
        system = example_system()
        backend = backend_for_context(context)
        points = lane_points(backend, 3, 5, seed=1)
        plan = EvaluationPlan(system, backend=backend)
        with masked_lane_errstate():
            with use_plan_arenas(True):
                av, aj = plan.execute(points)
                arena_snap = snapshot(av, aj, context)
            with use_plan_arenas(False):
                bv, bj = plan.execute(points)
        assert_matches_snapshot(bv, bj, arena_snap, context)
        assert plan.exec_stats.executions == 1

    @pytest.mark.parametrize("context", ALL_CONTEXTS, ids=lambda c: c.name)
    def test_homotopy_bit_for_bit(self, context):
        target = example_system()
        start = total_degree_start_system(target)
        backend = backend_for_context(context)
        points = lane_points(backend, 3, 4, seed=2)
        t = np.random.default_rng(3).uniform(0.0, 1.0, size=4)
        plan = HomotopyPlan(start, target, gamma=0.6 - 0.8j, backend=backend)
        with masked_lane_errstate():
            with use_plan_arenas(True):
                av, aj, ad = plan.execute(points, t)
                arena_snap = snapshot(av, aj, context)
                dt_snap = [np.array(p, copy=True)
                           for d in ad for p in planes_of(d, context)]
            with use_plan_arenas(False):
                bv, bj, bd = plan.execute(points, t)
        assert_matches_snapshot(bv, bj, arena_snap, context)
        flat = [p for d in bd for p in planes_of(d, context)]
        for pa, pb in zip(dt_snap, flat):
            assert np.array_equal(pa, pb, equal_nan=True)


class TestLifecycle:
    def test_lane_count_change_resizes_exactly_once(self):
        system = example_system()
        backend = backend_for_context(DOUBLE)
        plan = EvaluationPlan(system, backend=backend)
        with use_plan_arenas(True):
            plan.execute(lane_points(backend, 3, 8, seed=4))
            assert plan.arena.resizes == 0
            slots_at_8 = len(plan.arena)
            # Same lane count: no re-size, every slot a hit.
            misses_before = plan.arena.misses
            plan.execute(lane_points(backend, 3, 8, seed=5))
            assert plan.arena.resizes == 0
            assert plan.arena.misses == misses_before
            # Lane compression: exactly one re-size, then stability again.
            plan.execute(lane_points(backend, 3, 3, seed=6))
            assert plan.arena.resizes == 1
            assert len(plan.arena) == slots_at_8
            plan.execute(lane_points(backend, 3, 3, seed=7))
            assert plan.arena.resizes == 1

    def test_results_correct_across_resize(self):
        system = example_system()
        backend = backend_for_context(DOUBLE_DOUBLE)
        plan = EvaluationPlan(system, backend=backend)
        wide = lane_points(backend, 3, 6, seed=8)
        narrow = lane_points(backend, 3, 2, seed=9)
        with masked_lane_errstate():
            for points in (wide, narrow, wide):
                with use_plan_arenas(True):
                    av, aj = plan.execute(points)
                    snap = snapshot(av, aj, DOUBLE_DOUBLE)
                with use_plan_arenas(False):
                    bv, bj = plan.execute(points)
                assert_matches_snapshot(bv, bj, snap, DOUBLE_DOUBLE)

    @pytest.mark.parametrize("context", (DOUBLE, DOUBLE_DOUBLE),
                             ids=lambda c: c.name)
    def test_nested_toggle_scopes_with_arenas_on(self, context):
        # The arena executor must be insensitive to the fused-kernel and
        # plan toggles flipping between executions of the same plan.
        system = example_system()
        backend = backend_for_context(context)
        points = lane_points(backend, 3, 5, seed=10)
        evaluator = VectorisedBatchEvaluator(system, backend=backend)
        with masked_lane_errstate():
            with use_eval_plans(False):
                walk = evaluator.evaluate(points)
                walk_snap = snapshot(walk.values, walk.jacobian, context)
            for fused in (True, False):
                with use_fused_kernels(fused), use_plan_arenas(True), \
                        use_eval_plans(True):
                    with use_eval_plans(False):
                        pass  # nested flip must restore cleanly
                    got = evaluator.evaluate(points)
                    assert_matches_snapshot(got.values, got.jacobian,
                                            walk_snap, context)

    def test_exception_mid_execution_leaves_arena_reusable(self):
        system = example_system()
        backend = backend_for_context(DOUBLE_DOUBLE)
        points = lane_points(backend, 3, 5, seed=11)
        plan = EvaluationPlan(system, backend=backend)
        with use_plan_arenas(True), masked_lane_errstate():
            plan.execute(points)  # size the arena
            boom = RuntimeError("injected mid-plan failure")
            calls = {"n": 0}
            original = backend.iadd_mul

            def failing_iadd_mul(acc, a, b):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise boom
                return original(acc, a, b)

            backend.iadd_mul = failing_iadd_mul
            try:
                with pytest.raises(RuntimeError, match="injected"):
                    plan.execute(points)
            finally:
                backend.iadd_mul = original
            # No leaked scratch takes, no poisoned slots: the next
            # execution fully overwrites and matches the allocating path.
            assert plane_stack().depth() == 0
            av, aj = plan.execute(points)
            snap = snapshot(av, aj, DOUBLE_DOUBLE)
        with use_plan_arenas(False), masked_lane_errstate():
            bv, bj = plan.execute(points)
        assert_matches_snapshot(bv, bj, snap, DOUBLE_DOUBLE)


class TestStepScopedReuse:
    def test_second_execution_at_same_points_reuses_power_tables(self):
        system = example_system()
        backend = backend_for_context(DOUBLE_DOUBLE)
        points = lane_points(backend, 3, 5, seed=12)
        plan = EvaluationPlan(system, backend=backend)
        per_build = plan.statistics["power_table_entries"]
        assert per_build > 0
        with use_plan_arenas(True), masked_lane_errstate():
            with plan.step_scope():
                av, aj = plan.execute(points)
                first = snapshot(av, aj, DOUBLE_DOUBLE)
                stats = plan.exec_stats
                assert stats.plane_builds == 1
                assert stats.power_entries == per_build
                assert stats.step_cache_misses == 1
                bv, bj = plan.execute(points)
                # Pure dedup: zero new power-table entries, same bits.
                assert stats.plane_builds == 1
                assert stats.power_entries == per_build
                assert stats.step_cache_hits == 1
                assert_matches_snapshot(bv, bj, first, DOUBLE_DOUBLE)

    def test_cache_invalidated_by_new_points_and_scope_exit(self):
        system = example_system()
        backend = backend_for_context(DOUBLE)
        a = lane_points(backend, 3, 5, seed=13)
        b = lane_points(backend, 3, 5, seed=14)
        plan = EvaluationPlan(system, backend=backend)
        with use_plan_arenas(True), masked_lane_errstate():
            with plan.step_scope():
                plan.execute(a)
                plan.execute(b)  # different bits -> miss, planes rebuilt
                assert plan.exec_stats.step_cache_hits == 0
                assert plan.exec_stats.plane_builds == 2
                av, aj = plan.execute(b)
                assert plan.exec_stats.step_cache_hits == 1
                snap = snapshot(av, aj, DOUBLE)
            # Scope closed: no stale reuse on the next execution.
            plan.execute(b)
            assert plan.exec_stats.step_cache_hits == 1
        with use_plan_arenas(False), masked_lane_errstate():
            bv, bj = plan.execute(b)
        assert_matches_snapshot(bv, bj, snap, DOUBLE)

    def test_caller_mutating_points_after_a_miss_cannot_go_stale(self):
        # The cached planes are built from a plan-owned copy; mutating the
        # caller's buffer between calls must produce a miss (fingerprint
        # differs) and fresh planes, not a hit on stale views.
        system = example_system()
        backend = backend_for_context(DOUBLE)
        points = lane_points(backend, 3, 5, seed=15)
        plan = EvaluationPlan(system, backend=backend)
        with use_plan_arenas(True), masked_lane_errstate():
            with plan.step_scope():
                plan.execute(points)
                points[0, 0] += 1.0 + 0.5j
                av, aj = plan.execute(points)
                assert plan.exec_stats.step_cache_hits == 0
                snap = snapshot(av, aj, DOUBLE)
        with use_plan_arenas(False), masked_lane_errstate():
            bv, bj = plan.execute(points)
        assert_matches_snapshot(bv, bj, snap, DOUBLE)

    def test_tracker_run_hits_the_step_cache(self):
        from repro.bench.eval_plan import (cyclic_quadratic_system,
                                           start_solutions)
        from repro.tracking.batch_tracker import BatchTracker, TrackerOptions

        target = cyclic_quadratic_system(3)
        start = total_degree_start_system(target)
        tracker = BatchTracker(start, target, context=DOUBLE,
                               options=TrackerOptions(predictor="tangent"))
        results = tracker.track_many(start_solutions(target))
        assert all(r.success for r in results)
        stats = tracker.plan_execution_stats
        per_build = tracker.homotopy.plan.statistics["power_table_entries"]
        # The tangent predictor reuses the corrector's accepted-point
        # planes: strictly fewer plane builds (hence power-table entries)
        # than homotopy evaluations.
        assert stats.step_cache_hits > 0
        assert stats.plane_builds < stats.executions
        assert stats.power_entries == stats.plane_builds * per_build
        assert stats.power_entries < stats.executions * per_build


class TestScaleFactorSharing:
    def scaled_system(self):
        # The same monomial under distinct coefficients, with one
        # (coeff, monomial) pair consumed twice: without scale sharing the
        # compiler would materialise a scaled term plane; with it, the one
        # unscaled product plane feeds every consumer through iadd_mul.
        xy = Monomial((0, 1), (1, 2))
        z2 = Monomial((2,), (2,))
        return PolynomialSystem([
            Polynomial([(2 + 0j, xy), (1 + 0j, z2)]),
            Polynomial([(2 + 0j, xy), (3 + 0j, z2)]),
            Polynomial([(5 + 0j, xy), (1 + 1j, z2)]),
        ], dimension=3)

    def test_products_shared_and_counted(self):
        plan = EvaluationPlan(self.scaled_system())
        assert plan.statistics["scale_shared_products"] >= 1
        # Suppressed products never materialise scaled planes.
        assert plan.statistics["shared_term_planes"] == 0

    @pytest.mark.parametrize("context", ALL_CONTEXTS, ids=lambda c: c.name)
    def test_bit_for_bit_with_walk(self, context):
        system = self.scaled_system()
        backend = backend_for_context(context)
        points = lane_points(backend, 3, 5, seed=16)
        evaluator = VectorisedBatchEvaluator(system, backend=backend)
        with masked_lane_errstate():
            with use_eval_plans(False):
                walk = evaluator.evaluate(points)
                walk_snap = snapshot(walk.values, walk.jacobian, context)
            with use_eval_plans(True), use_plan_arenas(True):
                got = evaluator.evaluate(points)
        assert_matches_snapshot(got.values, got.jacobian, walk_snap, context)
