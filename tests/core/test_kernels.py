"""Tests for the three simulated kernels, launched individually.

Each kernel is validated against the analytic reference: kernel 1 against the
common factors of the monomials, kernel 2 against the analytic monomial
derivatives, kernel 3 against direct sums of the Mons array.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ARRAY_COMMON_FACTORS,
    ARRAY_MONS,
    ARRAY_RESULTS,
    CommonFactorFromScratchKernel,
    CommonFactorKernel,
    GPUEvaluator,
    SpeelpenningKernel,
    SummationKernel,
    kernel1_multiplications_per_thread,
    kernel2_multiplications_per_thread,
)
from repro.gpusim import launch_kernel
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import random_point, random_regular_system


def build_evaluator(system, **kwargs):
    return GPUEvaluator(system, check_capacity=False, **kwargs)


class TestCommonFactorKernel:
    def run_kernel1(self, system, point, variant="two_stage"):
        evaluator = build_evaluator(system, common_factor_variant=variant)
        evaluator.upload_point(point)
        kernel = evaluator._kernel1
        stats = launch_kernel(kernel, evaluator.monomial_grid(), evaluator._global_memory,
                              evaluator._constant_memory, device=evaluator.device)
        return evaluator, stats

    def test_values_match_analytic_common_factors(self, small_system, small_point):
        evaluator, _ = self.run_kernel1(small_system, small_point)
        factors = evaluator._global_memory.snapshot(ARRAY_COMMON_FACTORS)
        for record in evaluator.layout.sequence:
            expected = record.monomial.common_factor().evaluate(small_point)
            assert factors[record.sequence_index] == pytest.approx(expected, rel=1e-12)

    def test_degree_one_system_gives_unit_factors(self, linear_system):
        point = random_point(5, seed=1)
        evaluator, _ = self.run_kernel1(linear_system, point)
        factors = evaluator._global_memory.snapshot(ARRAY_COMMON_FACTORS)
        assert all(f == pytest.approx(1.0) for f in factors)

    def test_per_thread_multiplication_count(self, small_system, small_point):
        _, stats = self.run_kernel1(small_system, small_point)
        k = 3
        d = small_system.require_regular().max_variable_degree
        # Warps are uniform: every active thread does (k-1) factor
        # multiplications; the first n threads additionally build the powers.
        for trace in stats.thread_traces:
            if trace.thread_index < 6 and trace.block_index == 0:
                assert trace.multiplications == (d - 2) + kernel1_multiplications_per_thread(k)

    def test_no_divergence_in_two_stage_kernel(self, small_system, small_point):
        _, stats = self.run_kernel1(small_system, small_point)
        # All 24 monomial threads of the single block do identical factor
        # work; only the power-table stage differs between the first n
        # threads and the rest, which is a uniform structural split.
        assert stats.kernel_name == "common_factor"
        assert stats.barriers == stats.config.grid_dim

    def test_from_scratch_variant_matches_values(self, small_system, small_point):
        evaluator, stats = self.run_kernel1(small_system, small_point, variant="from_scratch")
        reference, _ = self.run_kernel1(small_system, small_point, variant="two_stage")
        got = evaluator._global_memory.snapshot(ARRAY_COMMON_FACTORS)
        expected = reference._global_memory.snapshot(ARRAY_COMMON_FACTORS)
        assert got == pytest.approx(expected, rel=1e-12)
        assert stats.kernel_name == "common_factor_from_scratch"

    def test_from_scratch_variant_diverges(self, small_system, small_point):
        _, stats = self.run_kernel1(small_system, small_point, variant="from_scratch")
        # Different exponent tuples per thread -> threads of the warp do
        # different numbers of multiplications.
        assert stats.divergent_warps >= 1

    def test_from_scratch_reads_variables_uncoalesced(self, small_system, small_point):
        _, scratch_stats = self.run_kernel1(small_system, small_point, variant="from_scratch")
        _, staged_stats = self.run_kernel1(small_system, small_point, variant="two_stage")
        # The two-stage kernel reads each variable once per block;
        # the from-scratch kernel reads one variable per monomial slot.
        assert (scratch_stats.coalescing.global_read_transactions
                > staged_stats.coalescing.global_read_transactions)


class TestSpeelpenningKernel:
    def run_kernels_1_and_2(self, system, point, context=DOUBLE):
        evaluator = build_evaluator(system, context=context)
        evaluator.upload_point(point)
        stats1 = launch_kernel(evaluator._kernel1, evaluator.monomial_grid(),
                               evaluator._global_memory, evaluator._constant_memory,
                               device=evaluator.device)
        stats2 = launch_kernel(evaluator._kernel2, evaluator.monomial_grid(),
                               evaluator._global_memory, evaluator._constant_memory,
                               device=evaluator.device)
        return evaluator, stats1, stats2

    def test_mons_entries_match_analytic_terms(self, small_system, small_point):
        evaluator, _, _ = self.run_kernels_1_and_2(small_system, small_point)
        mons = evaluator._global_memory.snapshot(ARRAY_MONS)
        layout = evaluator.layout
        for record in layout.sequence:
            coeff, mono = record.coefficient, record.monomial
            value_idx = layout.mons_value_index(record.term_index, record.polynomial_index)
            expected_value = coeff * mono.evaluate(small_point)
            assert mons[value_idx] == pytest.approx(expected_value, rel=1e-11)
            gradient = mono.evaluate_gradient(small_point)
            for variable, derivative in gradient.items():
                d_idx = layout.mons_derivative_index(record.term_index,
                                                     record.polynomial_index, variable)
                assert mons[d_idx] == pytest.approx(coeff * derivative, rel=1e-11)

    def test_structural_zeros_untouched(self, small_system, small_point):
        evaluator, _, _ = self.run_kernels_1_and_2(small_system, small_point)
        layout = evaluator.layout
        mons = evaluator._global_memory.snapshot(ARRAY_MONS)
        meaningful = set(layout.meaningful_mons_indices())
        zeros = [v for i, v in enumerate(mons) if i not in meaningful]
        assert len(zeros) == layout.structural_zero_count
        assert all(v == 0j for v in zeros)

    def test_per_thread_multiplications_are_5k_minus_4(self, small_system, small_point):
        _, _, stats2 = self.run_kernels_1_and_2(small_system, small_point)
        k = 3
        nm = 24
        active = [t for t in stats2.thread_traces if t.thread_index < nm]
        idle = [t for t in stats2.thread_traces if t.thread_index >= nm]
        assert active and idle
        for trace in active:
            assert trace.multiplications == kernel2_multiplications_per_thread(k)
        assert all(t.multiplications == 0 for t in idle)

    def test_full_warps_do_not_diverge(self):
        """With the monomial count a multiple of the warp size every warp is
        fully active and all threads execute the same instruction path."""
        system = random_regular_system(dimension=8, monomials_per_polynomial=4,
                                       variables_per_monomial=3, max_variable_degree=3,
                                       seed=5)
        point = random_point(8, seed=6)
        _, _, stats2 = self.run_kernels_1_and_2(system, point)
        assert stats2.config.total_threads == 32
        assert stats2.divergent_warps == 0

    def test_partial_tail_warp_diverges_only_structurally(self, small_system, small_point):
        _, _, stats2 = self.run_kernels_1_and_2(small_system, small_point)
        # 24 monomials in a 32-thread block: the idle tail makes the single
        # warp technically divergent, but no *active* thread deviates.
        assert stats2.divergent_warps == 1
        assert stats2.warp_stats[0].max_multiplications == kernel2_multiplications_per_thread(3)
        assert stats2.warp_stats[0].min_multiplications == 0

    def test_coefficient_reads_coalesce_and_writes_do_not(self, small_system, small_point):
        _, _, stats2 = self.run_kernels_1_and_2(small_system, small_point)
        events = stats2.coalescing.events
        coeff_reads = [e for e in events if e.array == "Coeffs"]
        mons_writes = [e for e in events if e.array == "Mons" and e.kind == "write"]
        assert coeff_reads and mons_writes
        # 24 active threads reading 16-byte coefficients contiguously: at most
        # 4 transactions per warp instruction.
        assert all(e.transactions <= 4 for e in coeff_reads)
        # The scattered Mons writes need far more transactions per access
        # than the coalesced coefficient reads.
        writes_per_thread = (sum(e.transactions for e in mons_writes)
                             / sum(e.active_threads for e in mons_writes))
        reads_per_thread = (sum(e.transactions for e in coeff_reads)
                            / sum(e.active_threads for e in coeff_reads))
        assert writes_per_thread > 3 * reads_per_thread

    def test_double_double_results_match_double(self, small_system, small_point):
        evaluator_dd, _, _ = self.run_kernels_1_and_2(small_system, small_point,
                                                      context=DOUBLE_DOUBLE)
        evaluator_d, _, _ = self.run_kernels_1_and_2(small_system, small_point)
        mons_dd = evaluator_dd._global_memory.snapshot(ARRAY_MONS)
        mons_d = evaluator_d._global_memory.snapshot(ARRAY_MONS)
        for a, b in zip(mons_dd, mons_d):
            a_c = a.to_complex() if hasattr(a, "to_complex") else complex(a)
            assert a_c == pytest.approx(complex(b), rel=1e-12, abs=1e-13)


class TestSummationKernel:
    def test_results_are_sums_of_mons(self, small_system, small_point):
        evaluator = build_evaluator(small_system)
        result = evaluator.evaluate(small_point)
        layout = evaluator.layout
        mons = evaluator._global_memory.snapshot(ARRAY_MONS)
        results = evaluator._global_memory.snapshot(ARRAY_RESULTS)
        m = layout.monomials_per_polynomial
        num_targets = layout.num_targets
        for t in range(num_targets):
            direct = sum(mons[t + j * num_targets] for j in range(m))
            assert results[t] == pytest.approx(direct, rel=1e-12)

    def test_every_thread_adds_exactly_m_terms(self, small_system, small_point):
        evaluator = build_evaluator(small_system)
        result = evaluator.evaluate(small_point)
        stats3 = result.launch_stats[2]
        m = evaluator.layout.monomials_per_polynomial
        active = [t for t in stats3.thread_traces
                  if t.block_index * stats3.config.block_dim + t.thread_index
                  < evaluator.layout.num_targets]
        assert all(t.additions == m for t in active)
        assert stats3.divergent_warps <= 1  # only the tail warp is partial

    def test_reads_are_coalesced(self, small_system, small_point):
        evaluator = build_evaluator(small_system)
        result = evaluator.evaluate(small_point)
        stats3 = result.launch_stats[2]
        reads = [e for e in stats3.coalescing.events
                 if e.array == "Mons" and e.kind == "read"]
        # Full warps reading 32 consecutive complex doubles need 4 aligned
        # 128-byte transactions (5 when the run straddles a segment
        # boundary), never anything close to one per thread.
        full_warp_reads = [e for e in reads if e.active_threads == 32]
        assert full_warp_reads
        assert all(e.transactions <= 5 for e in full_warp_reads)
