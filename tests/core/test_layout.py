"""Tests for the device data layouts (Sm, Coeffs, Mons, Results)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ConstantMemoryOverflow, DeviceCapacityError
from repro.core import SystemLayout, shared_memory_budget
from repro.gpusim import TESLA_C2050
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import random_regular_system


@pytest.fixture(scope="module")
def layout():
    system = random_regular_system(dimension=6, monomials_per_polynomial=4,
                                   variables_per_monomial=3, max_variable_degree=4,
                                   seed=2012)
    return SystemLayout(system)


class TestSizes:
    def test_basic_dimensions(self, layout):
        assert layout.dimension == 6
        assert layout.monomials_per_polynomial == 4
        assert layout.variables_per_monomial == 3
        assert layout.total_monomials == 24
        assert layout.num_targets == 42            # n^2 + n
        assert layout.coeffs_length == 24 * 4      # n*m*(k+1)
        assert layout.mons_length == 42 * 4        # (n^2+n)*m
        assert layout.complex_element_bytes == 16

    def test_structural_zero_count(self, layout):
        assert layout.structural_zero_count == layout.mons_length - 24 * 4
        assert layout.structural_zero_count > 0

    def test_element_bytes_follow_context(self):
        system = random_regular_system(4, 2, 2, 2, seed=1)
        dd_layout = SystemLayout(system, context=DOUBLE_DOUBLE)
        assert dd_layout.complex_element_bytes == 32


class TestSequence:
    def test_sequence_order_matches_paper(self, layout):
        """Sm lists the m monomials of polynomial 0 first, then polynomial 1."""
        records = layout.sequence
        assert len(records) == 24
        assert [r.sequence_index for r in records] == list(range(24))
        assert [r.polynomial_index for r in records] == [i // 4 for i in range(24)]
        assert [r.term_index for r in records] == [i % 4 for i in range(24)]

    def test_records_carry_the_right_monomials(self, layout):
        for record in layout.sequence:
            poly = layout.system[record.polynomial_index]
            coeff, mono = poly.terms[record.term_index]
            assert record.coefficient == coeff
            assert record.monomial == mono


class TestIndexing:
    def test_coeffs_index_layout(self, layout):
        nm = layout.total_monomials
        assert layout.coeffs_index(0, 0) == 0
        assert layout.coeffs_index(0, 5) == 5
        assert layout.coeffs_index(1, 0) == nm
        assert layout.coeffs_index(3, 7) == 3 * nm + 7

    def test_coeffs_index_bounds(self, layout):
        with pytest.raises(ConfigurationError):
            layout.coeffs_index(4, 0)
        with pytest.raises(ConfigurationError):
            layout.coeffs_index(0, 24)

    def test_mons_indices_are_unique_and_in_range(self, layout):
        seen = set()
        for record in layout.sequence:
            indices = [layout.mons_value_index(record.term_index, record.polynomial_index)]
            for variable in record.monomial.positions:
                indices.append(layout.mons_derivative_index(record.term_index,
                                                            record.polynomial_index, variable))
            for idx in indices:
                assert 0 <= idx < layout.mons_length
                assert idx not in seen
                seen.add(idx)
        assert seen == set(layout.meaningful_mons_indices())

    def test_mons_layout_is_coalesced_per_step(self, layout):
        """At summation step j, target t reads Mons[t + j*(n^2+n)]: the value
        and derivative indices of term j must all fall into that slice."""
        num_targets = layout.num_targets
        for record in layout.sequence:
            j = record.term_index
            value_idx = layout.mons_value_index(j, record.polynomial_index)
            assert j * num_targets <= value_idx < (j + 1) * num_targets
            for variable in record.monomial.positions:
                d_idx = layout.mons_derivative_index(j, record.polynomial_index, variable)
                assert j * num_targets <= d_idx < (j + 1) * num_targets

    def test_results_indexing(self, layout):
        n = layout.dimension
        assert layout.results_value_index(3) == 3
        assert layout.results_jacobian_index(2, 0) == n + 2
        assert layout.results_jacobian_index(2, 4) == (4 + 1) * n + 2

    def test_extract_results_shapes(self, layout):
        results = list(range(layout.num_targets))
        values, jacobian = layout.extract_results(results)
        assert values == list(range(6))
        assert len(jacobian) == 6 and len(jacobian[0]) == 6
        assert jacobian[2][4] == layout.results_jacobian_index(2, 4)


class TestCoefficients:
    def test_derivative_coefficients_fold_in_exponents(self, layout):
        coeffs = layout.build_coefficients()
        k = layout.variables_per_monomial
        for record in layout.sequence:
            for slot in range(k):
                expected = record.coefficient * record.monomial.exponents[slot]
                got = coeffs[layout.coeffs_index(slot, record.sequence_index)]
                assert got == pytest.approx(expected)
            assert coeffs[layout.coeffs_index(k, record.sequence_index)] == pytest.approx(
                record.coefficient)

    def test_mons_initial_is_all_zero(self, layout):
        mons = layout.build_mons_initial()
        assert len(mons) == layout.mons_length
        assert all(v == 0j for v in mons)

    def test_coefficients_in_double_double(self):
        system = random_regular_system(4, 2, 2, 3, seed=5)
        layout = SystemLayout(system, context=DOUBLE_DOUBLE)
        coeffs = layout.build_coefficients()
        plain = SystemLayout(system).build_coefficients()
        assert [c.to_complex() for c in coeffs] == pytest.approx(plain)


class TestCapacityChecks:
    def test_small_system_fits(self, layout):
        layout.check_device_capacity(TESLA_C2050)

    def test_constant_memory_limit_detected(self):
        """A dimension-64 system with 2048 monomials and k=16 exhausts the
        64 KiB constant memory, as the paper reports."""
        system = random_regular_system(dimension=64, monomials_per_polynomial=40,
                                       variables_per_monomial=16, max_variable_degree=2,
                                       seed=0)
        layout = SystemLayout(system)
        with pytest.raises(ConstantMemoryOverflow):
            layout.check_device_capacity(TESLA_C2050)

    def test_shared_memory_limit_detected(self):
        budget = shared_memory_budget(dimension=70, variables_per_monomial=60,
                                      block_size=32, context=DOUBLE_DOUBLE)
        assert not budget.fits(TESLA_C2050)

    def test_paper_shared_memory_example(self):
        """Section 3.2: n = 70, k = 35, double-double complex needs 36,864 +
        2,240 bytes, more than 10,000 bytes below the 49,152 capacity."""
        budget = shared_memory_budget(dimension=70, variables_per_monomial=35,
                                      block_size=32, context=DOUBLE_DOUBLE)
        assert budget.workspace_bytes == 36864
        assert budget.variable_bytes == 2240
        assert budget.fits(TESLA_C2050)
        assert TESLA_C2050.shared_memory_per_block_bytes - budget.total_bytes > 10000

    def test_table_dimensions_fit_in_double(self):
        budget = shared_memory_budget(dimension=32, variables_per_monomial=16,
                                      block_size=32, context=DOUBLE)
        assert budget.fits(TESLA_C2050)
