"""Tests for the device data layouts (Sm, Coeffs, Mons, Results)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ConstantMemoryOverflow, DeviceCapacityError
from repro.core import SystemLayout, shared_memory_budget
from repro.gpusim import TESLA_C2050
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import random_regular_system


@pytest.fixture(scope="module")
def layout():
    system = random_regular_system(dimension=6, monomials_per_polynomial=4,
                                   variables_per_monomial=3, max_variable_degree=4,
                                   seed=2012)
    return SystemLayout(system)


class TestSizes:
    def test_basic_dimensions(self, layout):
        assert layout.dimension == 6
        assert layout.monomials_per_polynomial == 4
        assert layout.variables_per_monomial == 3
        assert layout.total_monomials == 24
        assert layout.num_targets == 42            # n^2 + n
        assert layout.coeffs_length == 24 * 4      # n*m*(k+1)
        assert layout.mons_length == 42 * 4        # (n^2+n)*m
        assert layout.complex_element_bytes == 16

    def test_structural_zero_count(self, layout):
        assert layout.structural_zero_count == layout.mons_length - 24 * 4
        assert layout.structural_zero_count > 0

    def test_element_bytes_follow_context(self):
        system = random_regular_system(4, 2, 2, 2, seed=1)
        dd_layout = SystemLayout(system, context=DOUBLE_DOUBLE)
        assert dd_layout.complex_element_bytes == 32


class TestSequence:
    def test_sequence_order_matches_paper(self, layout):
        """Sm lists the m monomials of polynomial 0 first, then polynomial 1."""
        records = layout.sequence
        assert len(records) == 24
        assert [r.sequence_index for r in records] == list(range(24))
        assert [r.polynomial_index for r in records] == [i // 4 for i in range(24)]
        assert [r.term_index for r in records] == [i % 4 for i in range(24)]

    def test_records_carry_the_right_monomials(self, layout):
        for record in layout.sequence:
            poly = layout.system[record.polynomial_index]
            coeff, mono = poly.terms[record.term_index]
            assert record.coefficient == coeff
            assert record.monomial == mono


class TestIndexing:
    def test_coeffs_index_layout(self, layout):
        nm = layout.total_monomials
        assert layout.coeffs_index(0, 0) == 0
        assert layout.coeffs_index(0, 5) == 5
        assert layout.coeffs_index(1, 0) == nm
        assert layout.coeffs_index(3, 7) == 3 * nm + 7

    def test_coeffs_index_bounds(self, layout):
        with pytest.raises(ConfigurationError):
            layout.coeffs_index(4, 0)
        with pytest.raises(ConfigurationError):
            layout.coeffs_index(0, 24)

    def test_mons_indices_are_unique_and_in_range(self, layout):
        seen = set()
        for record in layout.sequence:
            indices = [layout.mons_value_index(record.term_index, record.polynomial_index)]
            for variable in record.monomial.positions:
                indices.append(layout.mons_derivative_index(record.term_index,
                                                            record.polynomial_index, variable))
            for idx in indices:
                assert 0 <= idx < layout.mons_length
                assert idx not in seen
                seen.add(idx)
        assert seen == set(layout.meaningful_mons_indices())

    def test_mons_layout_is_coalesced_per_step(self, layout):
        """At summation step j, target t reads Mons[t + j*(n^2+n)]: the value
        and derivative indices of term j must all fall into that slice."""
        num_targets = layout.num_targets
        for record in layout.sequence:
            j = record.term_index
            value_idx = layout.mons_value_index(j, record.polynomial_index)
            assert j * num_targets <= value_idx < (j + 1) * num_targets
            for variable in record.monomial.positions:
                d_idx = layout.mons_derivative_index(j, record.polynomial_index, variable)
                assert j * num_targets <= d_idx < (j + 1) * num_targets

    def test_results_indexing(self, layout):
        n = layout.dimension
        assert layout.results_value_index(3) == 3
        assert layout.results_jacobian_index(2, 0) == n + 2
        assert layout.results_jacobian_index(2, 4) == (4 + 1) * n + 2

    def test_extract_results_shapes(self, layout):
        results = list(range(layout.num_targets))
        values, jacobian = layout.extract_results(results)
        assert values == list(range(6))
        assert len(jacobian) == 6 and len(jacobian[0]) == 6
        assert jacobian[2][4] == layout.results_jacobian_index(2, 4)


class TestCoefficients:
    def test_derivative_coefficients_fold_in_exponents(self, layout):
        coeffs = layout.build_coefficients()
        k = layout.variables_per_monomial
        for record in layout.sequence:
            for slot in range(k):
                expected = record.coefficient * record.monomial.exponents[slot]
                got = coeffs[layout.coeffs_index(slot, record.sequence_index)]
                assert got == pytest.approx(expected)
            assert coeffs[layout.coeffs_index(k, record.sequence_index)] == pytest.approx(
                record.coefficient)

    def test_mons_initial_is_all_zero(self, layout):
        mons = layout.build_mons_initial()
        assert len(mons) == layout.mons_length
        assert all(v == 0j for v in mons)

    def test_coefficients_in_double_double(self):
        system = random_regular_system(4, 2, 2, 3, seed=5)
        layout = SystemLayout(system, context=DOUBLE_DOUBLE)
        coeffs = layout.build_coefficients()
        plain = SystemLayout(system).build_coefficients()
        assert [c.to_complex() for c in coeffs] == pytest.approx(plain)


class TestCapacityChecks:
    def test_small_system_fits(self, layout):
        layout.check_device_capacity(TESLA_C2050)

    def test_constant_memory_limit_detected(self):
        """A dimension-64 system with 2048 monomials and k=16 exhausts the
        64 KiB constant memory, as the paper reports."""
        system = random_regular_system(dimension=64, monomials_per_polynomial=40,
                                       variables_per_monomial=16, max_variable_degree=2,
                                       seed=0)
        layout = SystemLayout(system)
        with pytest.raises(ConstantMemoryOverflow):
            layout.check_device_capacity(TESLA_C2050)

    def test_shared_memory_limit_detected(self):
        budget = shared_memory_budget(dimension=70, variables_per_monomial=60,
                                      block_size=32, context=DOUBLE_DOUBLE)
        assert not budget.fits(TESLA_C2050)

    def test_paper_shared_memory_example(self):
        """Section 3.2: n = 70, k = 35, double-double complex needs 36,864 +
        2,240 bytes, more than 10,000 bytes below the 49,152 capacity."""
        budget = shared_memory_budget(dimension=70, variables_per_monomial=35,
                                      block_size=32, context=DOUBLE_DOUBLE)
        assert budget.workspace_bytes == 36864
        assert budget.variable_bytes == 2240
        assert budget.fits(TESLA_C2050)
        assert TESLA_C2050.shared_memory_per_block_bytes - budget.total_bytes > 10000

    def test_table_dimensions_fit_in_double(self):
        budget = shared_memory_budget(dimension=32, variables_per_monomial=16,
                                      block_size=32, context=DOUBLE)
        assert budget.fits(TESLA_C2050)


class TestPaddedLayout:
    """The padded mode: irregular systems laid out with zero-coefficient
    padding terms and a phantom variable pinned to 1."""

    @staticmethod
    def start_system(dimension=3, degree=2):
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem

        polys = []
        for i in range(dimension):
            polys.append(Polynomial([
                (1 + 0j, Monomial((i,), (degree,))),
                (-1 + 0j, Monomial((), ())),
            ]))
        return PolynomialSystem(polys, dimension=dimension)

    def test_irregular_system_rejected_without_padding(self):
        with pytest.raises(ConfigurationError):
            SystemLayout(self.start_system())

    def test_padded_shape_and_phantom(self):
        layout = SystemLayout(self.start_system(3, 2), padded=True)
        assert layout.padded
        assert layout.has_phantom_variable
        assert layout.dimension == 3
        assert layout.storage_dimension == 4
        assert layout.monomials_per_polynomial == 2
        assert layout.variables_per_monomial == 1
        # One extra (discarded) derivative block for the phantom variable.
        assert layout.num_targets == 3 * (4 + 1)

    def test_padded_encoding_entries(self):
        layout = SystemLayout(self.start_system(3, 2), padded=True)
        # Monomial 0 of polynomial 0: x0^2 -> (position 0, exponent 2).
        assert layout.encoding.monomial_entry(0, 0) == (0, 2)
        # Monomial 1 of polynomial 0: the constant -> phantom entry x3^1.
        assert layout.encoding.monomial_entry(1, 0) == (3, 1)

    def test_padded_coefficients_zero_phantom_derivatives(self):
        layout = SystemLayout(self.start_system(3, 2), padded=True)
        coeffs = layout.build_coefficients()
        # The constant term of polynomial 0 sits at sequence index 1: its
        # phantom derivative coefficient (slot 0) must be zero, its own
        # coefficient (slot k=1) must be -1.
        assert coeffs[layout.coeffs_index(0, 1)] == 0j
        assert coeffs[layout.coeffs_index(1, 1)] == -1 + 0j

    def test_regular_system_padded_is_phantom_free(self):
        system = random_regular_system(4, 3, 2, 3, seed=7)
        layout = SystemLayout(system, padded=True)
        assert not layout.has_phantom_variable
        assert layout.storage_dimension == layout.dimension
        assert layout.num_targets == 4 * 5

    def test_ragged_term_counts_get_padding_records(self):
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem

        polys = [
            Polynomial([(1 + 0j, Monomial((0,), (1,))),
                        (2 + 0j, Monomial((1,), (2,)))]),
            Polynomial([(1 + 0j, Monomial((1,), (1,)))]),
        ]
        layout = SystemLayout(PolynomialSystem(polys), padded=True)
        assert layout.monomials_per_polynomial == 2
        records = [r for r in layout.sequence if r.polynomial_index == 1]
        assert len(records) == 2
        assert records[1].coefficient == 0j
        assert records[1].monomial.num_variables == 0

    def test_padded_requires_byte_encoding(self):
        with pytest.raises(ConfigurationError):
            SystemLayout(self.start_system(), padded=True,
                         encoding_format="packed")

    def test_padded_evaluation_matches_reference(self):
        """End to end through the three kernels: values and Jacobian of the
        irregular start system come out exactly right, with measured stats."""
        from repro.core import CPUReferenceEvaluator, GPUEvaluator
        from repro.polynomials.generators import random_point

        system = self.start_system(4, 3)
        point = random_point(4, seed=3)
        for context in (DOUBLE, DOUBLE_DOUBLE):
            gpu = GPUEvaluator(system, context=context, padded=True,
                               collect_memory_trace=False)
            evaluation = gpu.evaluate(point)
            reference = CPUReferenceEvaluator(system, context=context,
                                              algorithm="naive").evaluate(point)
            to_c = context.to_complex
            for got, expected in zip(evaluation.values, reference.values):
                assert to_c(got) == to_c(expected)
            for got_row, expected_row in zip(evaluation.jacobian, reference.jacobian):
                for got, expected in zip(got_row, expected_row):
                    assert to_c(got) == to_c(expected)
            assert [s.kernel_name for s in evaluation.launch_stats] == \
                ["common_factor", "speelpenning", "summation"]
            assert all(s.total_multiplications > 0 for s in evaluation.launch_stats[:2])

    def test_padded_start_system_stats_differ_from_target_template(self):
        """The point of the padded mode: the start system's own (smaller)
        launch statistics, not the target's borrowed template."""
        from repro.bench.batch_tracking import cyclic_quadratic_system
        from repro.core import GPUEvaluator
        from repro.polynomials.generators import random_point
        from repro.tracking import total_degree_start_system

        target = cyclic_quadratic_system(5)
        start = total_degree_start_system(target)
        point = random_point(5, seed=7)
        target_stats = GPUEvaluator(target, collect_memory_trace=False
                                    ).evaluate(point).launch_stats
        start_stats = GPUEvaluator(start, padded=True, collect_memory_trace=False
                                   ).evaluate(point).launch_stats
        target_profile = [(s.total_multiplications, s.total_additions,
                           s.global_transactions) for s in target_stats]
        start_profile = [(s.total_multiplications, s.total_additions,
                          s.global_transactions) for s in start_stats]
        assert start_profile != target_profile

    def test_padded_mixed_irregular_system(self):
        """Non-uniform m *and* k in one system."""
        from repro.core import CPUReferenceEvaluator, GPUEvaluator
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem
        from repro.polynomials.generators import random_point

        polys = [
            Polynomial([(1 + 0j, Monomial((0, 1, 2), (1, 2, 1))),
                        (-8 + 0j, Monomial((), ())),
                        (2 + 0j, Monomial((1,), (3,)))]),
            Polynomial([(1 + 0j, Monomial((0,), (1,))),
                        (-1 + 0j, Monomial((1,), (1,)))]),
            Polynomial([(1 + 0j, Monomial((1, 2), (2, 2)))]),
        ]
        system = PolynomialSystem(polys, dimension=3)
        point = random_point(3, seed=5)
        gpu = GPUEvaluator(system, padded=True, collect_memory_trace=False)
        evaluation = gpu.evaluate(point)
        reference = CPUReferenceEvaluator(system, algorithm="naive").evaluate(point)
        for got, expected in zip(evaluation.values, reference.values):
            assert abs(complex(got) - complex(expected)) < 1e-12 * max(1.0, abs(complex(expected)))
        for got_row, expected_row in zip(evaluation.jacobian, reference.jacobian):
            for got, expected in zip(got_row, expected_row):
                assert abs(complex(got) - complex(expected)) < 1e-12 * max(1.0, abs(complex(expected)))
