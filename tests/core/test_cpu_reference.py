"""Tests for the sequential CPU reference evaluators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core import CPUReferenceEvaluator
from repro.gpusim import CPUCostModel
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import random_point


class TestAlgorithms:
    def test_invalid_algorithm(self, small_system):
        with pytest.raises(ConfigurationError):
            CPUReferenceEvaluator(small_system, algorithm="vectorised")

    def test_factored_and_naive_agree(self, small_system, small_point):
        factored = CPUReferenceEvaluator(small_system, algorithm="factored").evaluate(small_point)
        naive = CPUReferenceEvaluator(small_system, algorithm="naive").evaluate(small_point)
        for a, b in zip(factored.values, naive.values):
            assert a == pytest.approx(b, rel=1e-12)
        for row_a, row_b in zip(factored.jacobian, naive.jacobian):
            for a, b in zip(row_a, row_b):
                assert a == pytest.approx(b, rel=1e-12, abs=1e-12)

    def test_factored_needs_fewer_multiplications(self, small_system, small_point):
        factored = CPUReferenceEvaluator(small_system, algorithm="factored").evaluate(small_point)
        naive = CPUReferenceEvaluator(small_system, algorithm="naive").evaluate(small_point)
        assert factored.operations.multiplications < naive.operations.multiplications

    def test_elapsed_time_recorded(self, small_system, small_point):
        result = CPUReferenceEvaluator(small_system).evaluate(small_point)
        assert result.elapsed_seconds > 0

    def test_jacobian_shape(self, small_system, small_point):
        result = CPUReferenceEvaluator(small_system).evaluate(small_point)
        assert len(result.values) == 6
        assert len(result.jacobian) == 6 and len(result.jacobian[0]) == 6


class TestContexts:
    def test_double_double_evaluation(self, small_system, small_point):
        dd = CPUReferenceEvaluator(small_system, context=DOUBLE_DOUBLE).evaluate(small_point)
        d = CPUReferenceEvaluator(small_system, context=DOUBLE).evaluate(small_point)
        for a, b in zip(dd.values, d.values):
            assert a.to_complex() == pytest.approx(b, rel=1e-12)

    def test_accepts_preconverted_points(self, small_system, small_point):
        ctx = DOUBLE_DOUBLE
        converted = ctx.vector(small_point)
        result = CPUReferenceEvaluator(small_system, context=ctx).evaluate(converted)
        plain = CPUReferenceEvaluator(small_system, context=ctx).evaluate(small_point)
        assert [ctx.to_complex(v) for v in result.values] == pytest.approx(
            [ctx.to_complex(v) for v in plain.values])

    def test_evaluate_complex_helper(self, small_system, small_point):
        values, jacobian = CPUReferenceEvaluator(
            small_system, context=DOUBLE_DOUBLE).evaluate_complex(small_point)
        assert isinstance(values[0], complex)
        assert isinstance(jacobian[0][0], complex)


class TestCostIntegration:
    def test_predicted_host_time(self, small_system, small_point):
        result = CPUReferenceEvaluator(small_system).evaluate(small_point)
        predicted = result.predicted_host_time()
        assert predicted > 0
        assert predicted == pytest.approx(
            CPUCostModel().evaluation_time(result.operations))

    def test_predicted_time_scales_with_precision(self, small_system, small_point):
        result = CPUReferenceEvaluator(small_system).evaluate(small_point)
        d = result.predicted_host_time(context=DOUBLE)
        dd = result.predicted_host_time(context=DOUBLE_DOUBLE)
        assert dd == pytest.approx(8 * d)

    def test_operations_per_evaluation_default_point(self, small_system):
        ops = CPUReferenceEvaluator(small_system).operations_per_evaluation()
        assert ops.multiplications > 0
