"""Tests for the packed-constant-memory kernel variants (the paper's planned
"more compact encodings" extension)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core import (
    ARRAY_EXPONENTS,
    ARRAY_PACKED_SUPPORTS,
    ARRAY_POSITIONS,
    CPUReferenceEvaluator,
    GPUEvaluator,
    SystemLayout,
    compare_evaluations,
    kernel2_multiplications_per_thread,
)
from repro.multiprec import DOUBLE_DOUBLE
from repro.polynomials import PackedSupportEncoding, random_point, random_regular_system


@pytest.fixture(scope="module")
def packed_evaluator(small_system):
    return GPUEvaluator(small_system, check_capacity=False, support_encoding="packed")


class TestConstruction:
    def test_layout_encoding_format(self, small_system):
        layout = SystemLayout(small_system, encoding_format="packed")
        assert isinstance(layout.encoding, PackedSupportEncoding)
        assert layout.encoding_format == "packed"

    def test_invalid_format_rejected(self, small_system):
        with pytest.raises(ConfigurationError):
            SystemLayout(small_system, encoding_format="huffman")
        with pytest.raises(ConfigurationError):
            GPUEvaluator(small_system, check_capacity=False, support_encoding="huffman")

    def test_from_scratch_variant_not_supported_with_packed(self, small_system):
        with pytest.raises(ConfigurationError):
            GPUEvaluator(small_system, check_capacity=False, support_encoding="packed",
                         common_factor_variant="from_scratch")

    def test_constant_memory_holds_one_packed_array(self, packed_evaluator):
        const = packed_evaluator._constant_memory
        assert const.has_array(ARRAY_PACKED_SUPPORTS)
        assert not const.has_array(ARRAY_POSITIONS)
        assert not const.has_array(ARRAY_EXPONENTS)
        assert const.element_bytes(ARRAY_PACKED_SUPPORTS) == 2

    def test_kernel_names(self, packed_evaluator):
        assert packed_evaluator._kernel1.name == "common_factor_packed"
        assert packed_evaluator._kernel2.name == "speelpenning_packed"


class TestCorrectness:
    def test_matches_byte_encoded_pipeline(self, small_system, small_point):
        packed = GPUEvaluator(small_system, check_capacity=False,
                              support_encoding="packed").evaluate(small_point)
        plain = GPUEvaluator(small_system, check_capacity=False).evaluate(small_point)
        report = compare_evaluations(packed.values, packed.jacobian,
                                     plain.values, plain.jacobian)
        # Identical operation order: results agree exactly.
        assert report.max_value_difference == 0.0
        assert report.max_jacobian_difference == 0.0

    def test_matches_cpu_reference(self, small_system, small_point):
        packed = GPUEvaluator(small_system, check_capacity=False,
                              support_encoding="packed").evaluate(small_point)
        cpu = CPUReferenceEvaluator(small_system, algorithm="naive").evaluate(small_point)
        report = compare_evaluations(packed.values, packed.jacobian,
                                     cpu.values, cpu.jacobian)
        assert report.max_relative_difference < 1e-12

    def test_double_double_context(self, small_system, small_point):
        packed = GPUEvaluator(small_system, context=DOUBLE_DOUBLE, check_capacity=False,
                              support_encoding="packed").evaluate(small_point)
        cpu = CPUReferenceEvaluator(small_system, context=DOUBLE_DOUBLE,
                                    algorithm="naive").evaluate(small_point)
        report = compare_evaluations(packed.values, packed.jacobian,
                                     cpu.values, cpu.jacobian, context=DOUBLE_DOUBLE)
        assert report.max_relative_difference < 1e-13


class TestCostAccounting:
    def test_same_multiplications_extra_decode_ops(self, small_system, small_point):
        """The packed variant performs the same floating-point work but pays
        integer decode operations -- the trade-off the paper predicts is
        dominated by the multiplications."""
        packed = GPUEvaluator(small_system, check_capacity=False,
                              support_encoding="packed").evaluate(small_point)
        plain = GPUEvaluator(small_system, check_capacity=False).evaluate(small_point)
        for p_stats, b_stats in zip(packed.launch_stats, plain.launch_stats):
            assert p_stats.total_multiplications == b_stats.total_multiplications
        packed_other_ops = sum(t.other_ops for s in packed.launch_stats
                               for t in s.thread_traces)
        plain_other_ops = sum(t.other_ops for s in plain.launch_stats
                              for t in s.thread_traces)
        assert packed_other_ops > plain_other_ops
        # Decode work stays far below the multiplication work.
        k = 3
        assert packed_other_ops < small_system.total_monomials * (
            kernel2_multiplications_per_thread(k) + k)

    def test_per_thread_counts_unchanged(self, small_system, small_point):
        packed = GPUEvaluator(small_system, check_capacity=False,
                              support_encoding="packed").evaluate(small_point)
        active = [t for t in packed.launch_stats[1].thread_traces if t.thread_index < 24]
        assert all(t.multiplications == kernel2_multiplications_per_thread(3) for t in active)


class TestHigherDimensions:
    def test_byte_encoding_caps_at_256_variables_packed_does_not(self):
        system = random_regular_system(dimension=300, monomials_per_polynomial=1,
                                       variables_per_monomial=2, max_variable_degree=2,
                                       seed=1)
        with pytest.raises(ConfigurationError):
            SystemLayout(system, encoding_format="byte")
        layout = SystemLayout(system, encoding_format="packed")
        assert layout.encoding.total_monomials == 300
        # Round-trip of an entry referencing a variable index above 255.
        high_entries = [layout.encoding.monomial_entry(i, j)
                        for i in range(300) for j in range(2)]
        assert any(position > 255 for position, _ in high_entries)
