"""End-to-end tests for the GPU evaluation pipeline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ConstantMemoryOverflow
from repro.core import (
    CPUReferenceEvaluator,
    GPUEvaluator,
    compare_evaluations,
    expected_counts,
)
from repro.gpusim import GPUCostModel
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.polynomials import random_point, random_regular_system, speelpenning_system


class TestAgainstCPUReference:
    @pytest.mark.parametrize("params", [
        dict(dimension=4, monomials_per_polynomial=2, variables_per_monomial=2,
             max_variable_degree=2, seed=1),
        dict(dimension=6, monomials_per_polynomial=4, variables_per_monomial=3,
             max_variable_degree=4, seed=2),
        dict(dimension=8, monomials_per_polynomial=5, variables_per_monomial=4,
             max_variable_degree=6, seed=3),
        dict(dimension=5, monomials_per_polynomial=3, variables_per_monomial=5,
             max_variable_degree=3, seed=4),
    ], ids=["tiny", "small", "medium", "dense-k"])
    def test_matches_naive_reference(self, params):
        system = random_regular_system(**params)
        point = random_point(system.dimension, seed=17)
        gpu = GPUEvaluator(system, check_capacity=False)
        cpu = CPUReferenceEvaluator(system, algorithm="naive")
        g = gpu.evaluate(point)
        c = cpu.evaluate(point)
        report = compare_evaluations(g.values, g.jacobian, c.values, c.jacobian)
        assert report.max_relative_difference < 1e-12

    def test_single_variable_monomials(self):
        """k = 1: every monomial is a pure power of one variable."""
        system = random_regular_system(dimension=4, monomials_per_polynomial=3,
                                       variables_per_monomial=1, max_variable_degree=5,
                                       seed=8)
        point = random_point(4, seed=21)
        g = GPUEvaluator(system, check_capacity=False).evaluate(point)
        c = CPUReferenceEvaluator(system, algorithm="naive").evaluate(point)
        report = compare_evaluations(g.values, g.jacobian, c.values, c.jacobian)
        assert report.max_relative_difference < 1e-12

    def test_two_variable_monomials(self):
        """k = 2: the Speelpenning sweep degenerates to swapping factors."""
        system = random_regular_system(dimension=4, monomials_per_polynomial=3,
                                       variables_per_monomial=2, max_variable_degree=4,
                                       seed=9)
        point = random_point(4, seed=22)
        g = GPUEvaluator(system, check_capacity=False).evaluate(point)
        c = CPUReferenceEvaluator(system, algorithm="naive").evaluate(point)
        assert compare_evaluations(g.values, g.jacobian, c.values,
                                   c.jacobian).max_relative_difference < 1e-12

    def test_product_system_known_jacobian(self):
        """A regular system whose single monomial per polynomial is the full
        Speelpenning product scaled by (i + 1): values and Jacobian entries
        have closed forms."""
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem

        n = 5
        product = Monomial(tuple(range(n)), tuple([1] * n))
        system = PolynomialSystem(
            [Polynomial([((i + 1) + 0j, product)]) for i in range(n)])
        point = [1.0, 2.0, 3.0, 4.0, 5.0]
        g = GPUEvaluator(system, check_capacity=False).evaluate(point)
        assert g.values[0] == pytest.approx(120.0)
        assert g.values[4] == pytest.approx(5 * 120.0)
        assert g.jacobian[0][0] == pytest.approx(120.0)       # 1 * prod / x0
        assert g.jacobian[0][4] == pytest.approx(24.0)        # 1 * prod / x4
        assert g.jacobian[2][1] == pytest.approx(3 * 60.0)    # 3 * prod / x1

    def test_repeated_evaluations_are_independent(self, small_system):
        evaluator = GPUEvaluator(small_system, check_capacity=False)
        cpu = CPUReferenceEvaluator(small_system, algorithm="naive")
        for seed in (1, 2, 3):
            point = random_point(6, seed=seed)
            g = evaluator.evaluate(point)
            c = cpu.evaluate(point)
            assert compare_evaluations(g.values, g.jacobian, c.values,
                                       c.jacobian).max_relative_difference < 1e-12

    def test_evaluate_complex_helper(self, small_system, small_point):
        evaluator = GPUEvaluator(small_system, check_capacity=False)
        values, jacobian = evaluator.evaluate_complex(small_point)
        assert isinstance(values[0], complex)
        assert isinstance(jacobian[0][0], complex)


class TestExtendedPrecision:
    def test_double_double_context(self, small_system, small_point):
        gpu = GPUEvaluator(small_system, context=DOUBLE_DOUBLE, check_capacity=False)
        cpu = CPUReferenceEvaluator(small_system, context=DOUBLE_DOUBLE, algorithm="naive")
        g = gpu.evaluate(small_point)
        c = cpu.evaluate(small_point)
        report = compare_evaluations(g.values, g.jacobian, c.values, c.jacobian,
                                     context=DOUBLE_DOUBLE)
        assert report.max_relative_difference < 1e-13

    def test_double_double_pipeline_keeps_extra_digits(self):
        """The dd pipeline preserves a perturbation of size 1e-20 on an input
        coordinate that the double pipeline cannot even represent."""
        from fractions import Fraction

        from repro.multiprec import ComplexDD, DoubleDouble
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem

        n = 3
        product = Monomial(tuple(range(n)), tuple([1] * n))
        system = PolynomialSystem([Polynomial([(1 + 0j, product)]) for _ in range(n)])

        eps = 1e-20
        # x0 = 1 + 1e-20 exactly representable only in double-double.
        point_dd = [ComplexDD(DoubleDouble.from_sum(1.0, eps), DoubleDouble(0.0)),
                    ComplexDD(2.0), ComplexDD(3.0)]
        gpu_dd = GPUEvaluator(system, context=DOUBLE_DOUBLE, check_capacity=False)
        value_dd = gpu_dd.evaluate(point_dd).values[0]
        exact = (Fraction(1) + Fraction(eps)) * 2 * 3
        error = abs(value_dd.real.to_fraction() - exact)
        assert error < Fraction(1, 10 ** 25)
        # The double pipeline evaluates the rounded point and misses the
        # perturbation entirely.
        value_d = GPUEvaluator(system, check_capacity=False).evaluate([1.0, 2.0, 3.0]).values[0]
        assert value_d == 6.0


class TestLaunchStatistics:
    def test_three_kernels_per_evaluation(self, small_system, small_point):
        result = GPUEvaluator(small_system, check_capacity=False).evaluate(small_point)
        assert [s.kernel_name for s in result.launch_stats] == [
            "common_factor", "speelpenning", "summation"]

    def test_operation_counts_match_formulas(self, small_system, small_point):
        evaluator = GPUEvaluator(small_system, check_capacity=False)
        result = evaluator.evaluate(small_point)
        shape = small_system.require_regular()
        expected = expected_counts(shape, block_size=32)
        stats1, stats2, stats3 = result.launch_stats
        assert stats1.total_multiplications == (expected.kernel1_power_multiplications
                                                + expected.kernel1_factor_multiplications)
        assert stats2.total_multiplications == expected.kernel2_multiplications
        assert stats3.total_additions == expected.kernel3_additions

    def test_predicted_device_time_positive_and_additive(self, small_system, small_point):
        result = GPUEvaluator(small_system, check_capacity=False).evaluate(small_point)
        model = GPUCostModel()
        total = result.predicted_device_time(model)
        assert total > 0
        assert total == pytest.approx(sum(model.kernel_time(s).total
                                          for s in result.launch_stats))

    def test_grid_shapes(self, small_system):
        evaluator = GPUEvaluator(small_system, check_capacity=False, block_size=8)
        assert evaluator.monomial_grid().grid_dim == 3      # 24 monomials / 8
        assert evaluator.summation_grid().grid_dim == 6     # 42 targets / 8 -> ceil

    def test_memory_trace_disabled(self, small_system, small_point):
        evaluator = GPUEvaluator(small_system, check_capacity=False,
                                 collect_memory_trace=False)
        result = evaluator.evaluate(small_point)
        assert result.launch_stats[1].global_transactions > 0
        assert all(t.accesses == [] for t in result.launch_stats[1].thread_traces)


class TestConfigurationAndCapacity:
    def test_irregular_system_rejected(self):
        from repro.polynomials import Monomial, Polynomial, PolynomialSystem
        irregular = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (1,)))]),
            Polynomial([(1 + 0j, Monomial((0,), (1,))), (1 + 0j, Monomial((1,), (1,)))]),
        ])
        with pytest.raises(ConfigurationError):
            GPUEvaluator(irregular)

    def test_invalid_variant(self, small_system):
        with pytest.raises(ConfigurationError):
            GPUEvaluator(small_system, common_factor_variant="magic")

    def test_wrong_point_length(self, small_system):
        evaluator = GPUEvaluator(small_system, check_capacity=False)
        with pytest.raises(ConfigurationError):
            evaluator.evaluate([1.0] * 3)

    def test_constant_memory_capacity_enforced_at_construction(self):
        system = random_regular_system(dimension=64, monomials_per_polynomial=40,
                                       variables_per_monomial=16, max_variable_degree=2,
                                       seed=0)
        with pytest.raises(ConstantMemoryOverflow):
            GPUEvaluator(system)

    def test_check_capacity_can_be_disabled_but_allocation_still_guards(self):
        system = random_regular_system(dimension=64, monomials_per_polynomial=40,
                                       variables_per_monomial=16, max_variable_degree=2,
                                       seed=0)
        with pytest.raises(ConstantMemoryOverflow):
            GPUEvaluator(system, check_capacity=False)

    def test_paper_dimension_32_block_size_32_is_accepted(self):
        system = random_regular_system(dimension=32, monomials_per_polynomial=2,
                                       variables_per_monomial=9, max_variable_degree=2,
                                       seed=0)
        evaluator = GPUEvaluator(system)   # must not raise
        assert evaluator.block_size == 32
