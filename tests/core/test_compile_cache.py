"""Tests for the structural homotopy compile cache in ``evalplan``.

The cache shares *compile artifacts* -- schedules, plane specs, Jacobian
union, op counts -- between :class:`HomotopyPlan` instances over the same
(start, target) pair; execution state (arena, step cache) stays
per-instance.  The promises: hits share, execution is bit-for-bit
identical with the cache off, distinct coefficients never collide (the
coefficients are baked into the schedules), eviction is LRU-bounded, and
the toggle restores itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import evalplan
from repro.core.evalplan import (
    HomotopyPlan,
    clear_homotopy_compile_cache,
    homotopy_compile_cache_stats,
    use_homotopy_compile_cache,
)
from repro.polynomials import katsura_system, random_sparse_system
from repro.polynomials.generators import perturb_coefficients
from repro.tracking.start_systems import total_degree_start_system


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_homotopy_compile_cache()
    yield
    clear_homotopy_compile_cache()


def plan_pair():
    target = katsura_system(3)
    return total_degree_start_system(target), target


def lane_batch(dimension, lanes=3, seed=41):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((dimension, lanes))
            + 1j * rng.standard_normal((dimension, lanes)))


class TestSharing:
    def test_same_pair_hits_and_shares_artifacts(self):
        start, target = plan_pair()
        first = HomotopyPlan(start, target, gamma=0.6 + 0.8j)
        second = HomotopyPlan(start, target, gamma=0.3 - 0.9j)
        stats = homotopy_compile_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        assert second._g_schedules is first._g_schedules
        assert second._f_schedules is first._f_schedules
        assert second._specs is first._specs

    def test_perturbed_coefficients_do_not_collide(self):
        """Coefficients are baked into the compiled schedules as scalar
        ops, so two family members must get distinct cache entries."""
        start, target = plan_pair()
        shifted = perturb_coefficients(target, scale=1e-2, seed=3)
        HomotopyPlan(start, target, gamma=0.5 + 0.5j)
        HomotopyPlan(start, shifted, gamma=0.5 + 0.5j)
        stats = homotopy_compile_cache_stats()
        assert stats["misses"] == 2
        assert stats["entries"] == 2

    def test_cached_execution_is_bit_for_bit_uncached(self):
        start, target = plan_pair()
        HomotopyPlan(start, target, gamma=0.6 + 0.8j)  # prime the cache
        cached = HomotopyPlan(start, target, gamma=0.6 + 0.8j)
        with use_homotopy_compile_cache(False):
            direct = HomotopyPlan(start, target, gamma=0.6 + 0.8j)
        points = lane_batch(target.dimension)
        t = np.array([0.15, 0.5, 0.85])
        h_a, jac_a, dt_a = cached.execute(points, t)
        h_b, jac_b, dt_b = direct.execute(points, t)
        for a, b in zip(h_a, h_b):
            assert (np.asarray(a) == np.asarray(b)).all()
        for row_a, row_b in zip(jac_a, jac_b):
            for a, b in zip(row_a, row_b):
                assert (np.asarray(a) == np.asarray(b)).all()
        for a, b in zip(dt_a, dt_b):
            assert (np.asarray(a) == np.asarray(b)).all()

    def test_instances_do_not_share_execution_state(self):
        start, target = plan_pair()
        first = HomotopyPlan(start, target, gamma=0.6 + 0.8j)
        second = HomotopyPlan(start, target, gamma=0.6 + 0.8j)
        points = lane_batch(target.dimension)
        t = np.array([0.2, 0.4, 0.9])
        reference, _, _ = first.execute(points, t)
        second.execute(lane_batch(target.dimension, seed=77),
                       np.array([0.3, 0.6, 0.7]))
        again, _, _ = first.execute(points, t)
        for a, b in zip(reference, again):
            assert (np.asarray(a) == np.asarray(b)).all()


class TestLifecycle:
    def test_disabled_cache_stores_nothing(self):
        start, target = plan_pair()
        with use_homotopy_compile_cache(False):
            HomotopyPlan(start, target, gamma=0.5 + 0.5j)
            HomotopyPlan(start, target, gamma=0.5 + 0.5j)
        stats = homotopy_compile_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0}

    def test_toggle_restores_on_exit(self):
        start, target = plan_pair()
        with use_homotopy_compile_cache(False):
            pass
        HomotopyPlan(start, target, gamma=0.5 + 0.5j)
        assert homotopy_compile_cache_stats()["entries"] == 1

    def test_eviction_is_lru_bounded(self):
        limit = evalplan._COMPILE_CACHE_LIMIT
        for seed in range(limit + 3):
            target = random_sparse_system(2, seed=seed)
            HomotopyPlan(total_degree_start_system(target), target,
                         gamma=0.5 + 0.5j)
        stats = homotopy_compile_cache_stats()
        assert stats["entries"] == limit
        assert stats["misses"] == limit + 3

    def test_clear_resets_stats_and_entries(self):
        start, target = plan_pair()
        HomotopyPlan(start, target, gamma=0.5 + 0.5j)
        clear_homotopy_compile_cache()
        assert homotopy_compile_cache_stats() == \
            {"hits": 0, "misses": 0, "entries": 0}
