"""Tests for the closed-form operation-count formulas of section 3."""

from __future__ import annotations

import pytest

from repro.core import (
    expected_counts,
    kernel1_multiplications_per_thread,
    kernel2_multiplications_per_thread,
    speelpenning_multiplications,
)
from repro.core.opcounts import kernel1_power_multiplications_per_variable
from repro.polynomials import SystemShape


class TestPerThreadFormulas:
    def test_speelpenning_3k_minus_6(self):
        assert speelpenning_multiplications(3) == 3
        assert speelpenning_multiplications(9) == 21
        assert speelpenning_multiplications(16) == 42
        assert speelpenning_multiplications(2) == 0
        assert speelpenning_multiplications(0) == 0

    def test_kernel2_5k_minus_4(self):
        """Table 1 monomials (k=9): 41; Table 2 monomials (k=16): 76."""
        assert kernel2_multiplications_per_thread(9) == 41
        assert kernel2_multiplications_per_thread(16) == 76
        assert kernel2_multiplications_per_thread(2) == 6

    def test_kernel2_degenerate_cases(self):
        assert kernel2_multiplications_per_thread(1) == 4
        assert kernel2_multiplications_per_thread(0) == 1

    def test_kernel2_decomposition(self):
        """5k-4 = (3k-6) + k + 1 + (k+1) for k >= 2."""
        for k in range(2, 40):
            assert kernel2_multiplications_per_thread(k) == (
                speelpenning_multiplications(k) + k + 1 + (k + 1))

    def test_kernel1_counts(self):
        assert kernel1_multiplications_per_thread(9) == 8
        assert kernel1_multiplications_per_thread(0) == 0
        assert kernel1_power_multiplications_per_variable(2) == 0
        assert kernel1_power_multiplications_per_variable(10) == 8


class TestSystemTotals:
    def make_shape(self, n=32, m=32, k=9, d=2):
        return SystemShape(dimension=n, monomials_per_polynomial=m,
                           variables_per_monomial=k, max_variable_degree=d)

    def test_table1_totals(self):
        shape = self.make_shape(k=9, d=2)
        counts = expected_counts(shape, block_size=32)
        nm = 1024
        assert counts.blocks == 32
        assert counts.kernel1_power_multiplications == 0          # d = 2
        assert counts.kernel1_factor_multiplications == nm * 8
        assert counts.kernel2_multiplications == nm * 41
        assert counts.kernel3_additions == (32 * 32 + 32) * 32
        assert counts.total_multiplications == nm * 49

    def test_table2_totals(self):
        shape = self.make_shape(k=16, d=10)
        counts = expected_counts(shape, block_size=32)
        nm = 1024
        assert counts.kernel1_power_multiplications == 32 * 32 * 8   # blocks * n * (d-2)
        assert counts.kernel1_factor_multiplications == nm * 15
        assert counts.kernel2_multiplications == nm * 76

    def test_block_count_rounds_up(self):
        shape = self.make_shape(n=6, m=4, k=3, d=2)
        counts = expected_counts(shape, block_size=32)
        assert counts.blocks == 1

    def test_as_dict(self):
        counts = expected_counts(self.make_shape(), block_size=32)
        d = counts.as_dict()
        assert d["total_multiplications"] == counts.total_multiplications
        assert set(d) >= {"kernel1_factor_multiplications", "kernel2_multiplications",
                          "kernel3_additions"}
