"""Acceptance tests for the fused QD arithmetic: the speedup cannot
silently regress.

The fast tier asserts the fused kernels beat the unfused reference chains
by >= 1.5x on the product ops of a small batch (the addition chain has less
to fuse -- no splits to share -- so it gets a softer floor).  The slow tier
re-runs the end-to-end qd tracker at batch 64 and checks the >= 2x
wall-clock win over the checked-in ``BENCH_batch_tracking.json`` baseline.
"""

from __future__ import annotations

import pytest

from repro.bench.qd_arith import (
    QDArithRow,
    QDTrackerRow,
    baseline_qd_wall_paths_per_second,
    qd_arith_report,
    run_qd_arith_bench,
    run_qd_tracker_bench,
)


class TestFusedSpeedup:
    @pytest.fixture(scope="class")
    def rows(self):
        rows = run_qd_arith_bench(batch_sizes=(64,), repeats=7)
        return {row.op: row for row in rows}

    def test_fused_product_ops_beat_reference(self, rows):
        for op in ("qd_mul", "cqd_mul", "qd_div"):
            speedup = rows[op].speedup
            assert speedup >= 1.5, f"{op} fused speedup only {speedup:.2f}x"

    def test_fused_addition_does_not_regress(self, rows):
        # Addition has no splits to share, so its fusion win is smaller;
        # the floor only guards against the fused path becoming a loss.
        assert rows["qd_add"].speedup >= 1.15, (
            f"qd_add fused speedup only {rows['qd_add'].speedup:.2f}x")

    def test_rows_report_consistent_units(self, rows):
        for row in rows.values():
            assert row.fused_ns_per_element > 0
            assert row.unfused_ns_per_element > 0


class TestReportShape:
    def test_report_includes_baseline_comparison(self, tmp_path):
        baseline = tmp_path / "BENCH_batch_tracking.json"
        baseline.write_text(
            '{"qd": {"rows": [{"paths": 8, "wall_s": 10.0}]}}',
            encoding="utf-8")
        arith = [QDArithRow(op="qd_mul", batch=64,
                            fused_ns_per_element=1.0,
                            unfused_ns_per_element=2.0)]
        tracker = [QDTrackerRow(batch_size=64, paths_tracked=64,
                                paths_converged=64, lane_evaluations=1000,
                                wall_seconds=4.0)]
        report = qd_arith_report(arith, tracker, baseline_path=str(baseline))
        assert report["per_op"][0]["speedup"] == 2.0
        assert report["baseline_qd_paths_per_s_wall"] == 0.8
        assert report["wall_speedup_vs_baseline_at_batch_64"] == 20.0

    def test_missing_baseline_degrades_gracefully(self, tmp_path):
        report = qd_arith_report([], [], baseline_path=str(tmp_path / "nope.json"))
        assert "baseline_qd_paths_per_s_wall" not in report
        assert report["per_op"] == [] and report["tracker"] == []


@pytest.mark.slow
def test_qd_tracker_wall_speedup_at_batch_64():
    baseline = baseline_qd_wall_paths_per_second()
    assert baseline is not None, "BENCH_batch_tracking.json qd rows missing"
    rows = run_qd_tracker_bench(batch_sizes=(64,))
    row = rows[0]
    assert row.paths_converged == row.paths_tracked
    win = row.paths_per_second / baseline
    assert win >= 2.0, f"qd wall throughput win only {win:.2f}x at batch 64"
