"""Acceptance tests for the start-strategy and family-serving bench.

The fast tier re-runs the sweep on the two cheapest diagonal scenarios and
one small family batch, asserting the answer-preservation verdicts and the
triangular path saving live; the checked-in ``BENCH_start.json`` must
record the gated acceptance numbers (also enforced by
``tools/check_bench.py`` under ``make test-all``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import run_family_serving_bench, run_start_strategy_bench
from repro.bench.scenarios import get_scenario

REPORT = Path(__file__).resolve().parents[2] / "BENCH_start.json"


class TestLiveSweep:
    def test_strategies_agree_and_triangular_saves_paths(self):
        matrix = run_start_strategy_bench(
            scenarios=[get_scenario("random-sparse-3"),
                       get_scenario("triangular-3")])
        assert all(entry["identical"] for entry in matrix.values())
        sparse = matrix["random-sparse-3"]
        assert sparse["diagonal_paths"] == sparse["bezout_number"]
        triangular = matrix["triangular-3"]
        assert triangular["diagonal_paths"] == 4
        assert triangular["bezout_number"] == 12
        assert triangular["path_saving_factor"] == 3.0
        assert triangular["solutions"] == triangular["known_root_count"]

    def test_family_serving_beats_cold_and_preserves_roots(self):
        family = run_family_serving_bench(queries=2)
        assert family["identical"]
        assert family["cold_solves"] == 1
        assert family["warm_serves"] == 2
        # The live floor is softer than the checked-in 2x gate: tier-1
        # machines are noisy and the batch is tiny.
        assert family["warm_vs_cold_speedup"] > 1.0


class TestCheckedInReport:
    def test_checked_in_report_records_the_gated_numbers(self):
        report = json.loads(REPORT.read_text(encoding="utf-8"))
        family = report["family_serving"]
        assert family["warm_vs_cold_speedup"] >= 2.0
        assert family["identical"] is True
        scenarios = report["scenarios"]
        assert all(entry["identical"] is True
                   for entry in scenarios.values())
        assert all(entry["diagonal_paths"] <= entry["bezout_number"]
                   for entry in scenarios.values())
        assert any(entry["diagonal_paths"] < entry["bezout_number"]
                   for entry in scenarios.values())
