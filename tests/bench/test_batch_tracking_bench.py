"""The acceptance criterion of the batched engine, as a fast tier-1 test:
tracking the benchmark system at batch size 32 must deliver at least twice
the paths/sec of per-path launching under the gpusim cost model."""

from __future__ import annotations

import pytest

from repro.bench import run_batch_tracking_bench
from repro.bench.batch_tracking import batch_state_bytes, cyclic_quadratic_system
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE


class TestBatchTrackingBench:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_batch_tracking_bench(batch_sizes=(1, 32), dimension=5,
                                        context=DOUBLE)

    def test_all_paths_converge_at_every_batch_size(self, rows):
        assert all(r.paths_converged == r.paths_tracked == 32 for r in rows)

    def test_same_per_lane_work_regardless_of_batching(self, rows):
        # Masked lock-stepping must not change how much per-path evaluation
        # happens -- only how the launches are grouped.
        lane_evals = {r.lane_evaluations for r in rows}
        assert len(lane_evals) == 1

    def test_throughput_win_at_batch_32(self, rows):
        by_size = {r.batch_size: r for r in rows}
        win = by_size[32].paths_per_second / by_size[1].paths_per_second
        assert win >= 2.0, f"batching win only {win:.2f}x"

    def test_fewer_batched_evaluations_at_larger_batch(self, rows):
        by_size = {r.batch_size: r for r in rows}
        assert by_size[32].batched_evaluations < by_size[1].batched_evaluations

    def test_memory_report_scales_with_batch_and_context(self):
        small = batch_state_bytes(1, 5, DOUBLE)
        large = batch_state_bytes(32, 5, DOUBLE)
        assert large == 32 * small
        assert batch_state_bytes(8, 5, DOUBLE_DOUBLE) > batch_state_bytes(8, 5, DOUBLE)

    def test_bench_system_is_regular(self):
        shape = cyclic_quadratic_system(5).regularity()
        assert shape is not None
        assert shape.monomials_per_polynomial == 2
        assert shape.variables_per_monomial == 1


@pytest.mark.slow
def test_throughput_win_in_double_double():
    rows = run_batch_tracking_bench(batch_sizes=(1, 32), dimension=5,
                                    context=DOUBLE_DOUBLE)
    by_size = {r.batch_size: r for r in rows}
    assert by_size[32].paths_per_second / by_size[1].paths_per_second >= 2.0
