"""Acceptance tests for the compiled evaluation plans: the sharing wins
cannot silently regress.

The fast tier works on compile-time operation counts (deterministic, no
timing): the plan must never schedule more backend ops than the walk path,
and must win >= 1.3x multiplications on the shared-support escalation
workload (the checked-in ``BENCH_eval_plan.json`` records 1.83x).  The slow
tier measures actual ``evaluate_batch`` wall clock at the qd rung, where
each saved multiprecision op is the most expensive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.eval_plan import (
    ArenaTrackerRow,
    EvalPlanRow,
    PlanTrackerRow,
    eval_plan_report,
    op_count_report,
    run_allocation_bench,
    run_arena_tracker_bench,
    run_eval_plan_bench,
)
from repro.core.evalplan import EvaluationPlan, HomotopyPlan
from repro.multiprec.numeric import QUAD_DOUBLE
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial
from repro.polynomials.system import PolynomialSystem
from repro.tracking.start_systems import total_degree_start_system


def random_dense_system(seed: int, dimension: int = 4,
                        terms: int = 5) -> PolynomialSystem:
    rng = np.random.default_rng(seed)
    polys = []
    for _ in range(dimension):
        poly_terms = []
        for _ in range(terms):
            k = int(rng.integers(1, dimension + 1))
            positions = tuple(sorted(rng.choice(dimension, size=k,
                                                replace=False).tolist()))
            exponents = tuple(int(e) for e in rng.integers(1, 4, size=k))
            poly_terms.append((complex(rng.normal(), rng.normal()),
                               Monomial(positions, exponents)))
        polys.append(Polynomial(poly_terms))
    return PolynomialSystem(polys, dimension=dimension)


class TestPlanOpFloor:
    def test_plan_never_schedules_more_ops_than_walk(self):
        """Across varied systems the plan is at worst op-neutral."""
        for seed in range(8):
            target = random_dense_system(seed)
            plan = EvaluationPlan(target)
            assert plan.op_counts.multiplications <= plan.walk_counts.multiplications, \
                f"seed {seed}: plan schedules more multiplications than the walk"
            assert plan.op_counts.additions <= plan.walk_counts.additions
            hplan = HomotopyPlan(total_degree_start_system(target), target)
            assert hplan.op_counts.multiplications <= hplan.walk_counts.multiplications
            assert hplan.op_counts.additions <= hplan.walk_counts.additions

    def test_shared_support_workload_saves_at_least_1_3x(self):
        """The escalation workload (shared start/target monomials) must
        keep a >= 1.3x multiplication reduction."""
        report = op_count_report(dimension=4)
        assert report["multiplication_saving_factor"] >= 1.3, report

    def test_escalation_workload_meets_acceptance_floor(self):
        """The headline acceptance number: >= 1.5x fewer multiprecision
        multiplications per batched homotopy evaluation on the 16-path
        workload."""
        report = op_count_report(dimension=4)
        assert report["multiplication_saving_factor"] >= 1.5, report
        assert report["workload"]["paths"] == 16


class TestReportShape:
    def test_report_assembles_wall_speedup(self):
        op_counts = op_count_report(dimension=3)
        eval_rows = [EvalPlanRow(context="qd", batch=16,
                                 plan_evals_per_second=20.0,
                                 walk_evals_per_second=10.0)]
        tracker_rows = [
            PlanTrackerRow(context="qd", batch_size=8, use_plans=True,
                           paths_tracked=8, paths_converged=8,
                           wall_seconds=2.0),
            PlanTrackerRow(context="qd", batch_size=8, use_plans=False,
                           paths_tracked=8, paths_converged=8,
                           wall_seconds=3.0),
        ]
        report = eval_plan_report(op_counts, eval_rows, tracker_rows)
        assert report["qd_tracker_wall_speedup"] == pytest.approx(1.5)
        assert report["evaluation"][0]["speedup"] == pytest.approx(2.0)
        assert report["op_counts"]["plan"]["multiplications"] > 0

    def test_report_assembles_arena_section(self):
        op_counts = op_count_report(dimension=3)
        arena_rows = [
            ArenaTrackerRow(context="qd", batch_size=8, use_arenas=True,
                            paths_tracked=8, paths_converged=8,
                            wall_seconds=2.0, arena_hits=100,
                            step_cache_hits=20, step_cache_misses=80,
                            plane_builds=80, executions=100),
            ArenaTrackerRow(context="qd", batch_size=8, use_arenas=False,
                            paths_tracked=8, paths_converged=8,
                            wall_seconds=3.0),
        ]
        allocations = {"walk": 1700.0, "plans": 750.0, "plans_arenas": 100.0}
        report = eval_plan_report(op_counts, [], [], arena_rows, allocations)
        arena = report["arena"]
        assert arena["qd_tracker_wall_speedup_vs_plans"] == pytest.approx(1.5)
        assert arena["allocations_per_evaluation"]["plans_arenas"] == 100.0
        assert arena["tracker"][0]["step_cache_hits"] == 20


class TestCheckedInReport:
    def test_checked_in_arena_speedup_meets_acceptance_floor(self):
        """The regenerated ``BENCH_eval_plan.json`` must record the arena
        A/B acceptance number: >= 1.15x further qd tracker wall over the
        plans-on baseline, plus the allocation drop walk -> plans ->
        plans+arenas."""
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_eval_plan.json"
        report = json.loads(path.read_text(encoding="utf-8"))
        arena = report["arena"]
        assert arena["qd_tracker_wall_speedup_vs_plans"] >= 1.15
        allocs = arena["allocations_per_evaluation"]
        assert allocs["plans_arenas"] < allocs["plans"] < allocs["walk"]
        on = next(r for r in arena["tracker"] if r["arenas"])
        assert on["step_cache_hits"] > 0


class TestAllocationDrop:
    def test_arena_path_allocates_less_than_plan_path(self):
        """Steady-state allocations per batched evaluation must drop going
        walk -> plans -> plans+arenas (the point of the arena refactor)."""
        counts = run_allocation_bench(evaluations=4)
        assert counts["plans_arenas"] < counts["plans"] < counts["walk"], counts
        # The arena path retires the bulk of the per-evaluation churn, not
        # a token amount (checked-in report records ~7x vs plans).
        assert counts["plans_arenas"] <= 0.5 * counts["plans"], counts


@pytest.mark.slow
class TestMeasuredSpeedup:
    def test_qd_evaluation_throughput_wins(self):
        """The plan path must beat the walk on qd evaluate_batch wall clock
        (the checked-in report records ~1.7x; 1.15x is the alarm floor)."""
        rows = run_eval_plan_bench(batch_sizes=(64,),
                                   contexts=(QUAD_DOUBLE,),
                                   repeats=7)
        assert rows[0].speedup >= 1.15, \
            f"qd plan evaluate_batch speedup only {rows[0].speedup:.2f}x"

    def test_qd_arena_tracker_wall_wins(self):
        """Arenas on must beat the allocating plan path end to end on the
        qd tracker.  The acceptance floor (1.15x) is asserted against the
        checked-in report (see ``TestCheckedInReport`` and
        ``tools/check_bench.py``), where the single-run measurement is not
        noise-compressed; the live re-measurement here uses a softer alarm
        floor because repeated interleaved runs warm the allocator and
        squeeze the allocating arm's disadvantage."""
        rows = run_arena_tracker_bench(repeats=3)
        on = next(r for r in rows if r.use_arenas)
        off = next(r for r in rows if not r.use_arenas)
        speedup = off.wall_seconds / on.wall_seconds
        assert speedup >= 1.05, \
            f"qd arena tracker speedup only {speedup:.2f}x"
        assert on.step_cache_hits > 0, \
            "tangent-predictor run never hit the step-scoped row cache"
