"""Acceptance tests for the compiled evaluation plans: the sharing wins
cannot silently regress.

The fast tier works on compile-time operation counts (deterministic, no
timing): the plan must never schedule more backend ops than the walk path,
and must win >= 1.3x multiplications on the shared-support escalation
workload (the checked-in ``BENCH_eval_plan.json`` records 1.83x).  The slow
tier measures actual ``evaluate_batch`` wall clock at the qd rung, where
each saved multiprecision op is the most expensive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.eval_plan import (
    EvalPlanRow,
    PlanTrackerRow,
    eval_plan_report,
    op_count_report,
    run_eval_plan_bench,
)
from repro.core.evalplan import EvaluationPlan, HomotopyPlan
from repro.multiprec.numeric import QUAD_DOUBLE
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial
from repro.polynomials.system import PolynomialSystem
from repro.tracking.start_systems import total_degree_start_system


def random_dense_system(seed: int, dimension: int = 4,
                        terms: int = 5) -> PolynomialSystem:
    rng = np.random.default_rng(seed)
    polys = []
    for _ in range(dimension):
        poly_terms = []
        for _ in range(terms):
            k = int(rng.integers(1, dimension + 1))
            positions = tuple(sorted(rng.choice(dimension, size=k,
                                                replace=False).tolist()))
            exponents = tuple(int(e) for e in rng.integers(1, 4, size=k))
            poly_terms.append((complex(rng.normal(), rng.normal()),
                               Monomial(positions, exponents)))
        polys.append(Polynomial(poly_terms))
    return PolynomialSystem(polys, dimension=dimension)


class TestPlanOpFloor:
    def test_plan_never_schedules_more_ops_than_walk(self):
        """Across varied systems the plan is at worst op-neutral."""
        for seed in range(8):
            target = random_dense_system(seed)
            plan = EvaluationPlan(target)
            assert plan.op_counts.multiplications <= plan.walk_counts.multiplications, \
                f"seed {seed}: plan schedules more multiplications than the walk"
            assert plan.op_counts.additions <= plan.walk_counts.additions
            hplan = HomotopyPlan(total_degree_start_system(target), target)
            assert hplan.op_counts.multiplications <= hplan.walk_counts.multiplications
            assert hplan.op_counts.additions <= hplan.walk_counts.additions

    def test_shared_support_workload_saves_at_least_1_3x(self):
        """The escalation workload (shared start/target monomials) must
        keep a >= 1.3x multiplication reduction."""
        report = op_count_report(dimension=4)
        assert report["multiplication_saving_factor"] >= 1.3, report

    def test_escalation_workload_meets_acceptance_floor(self):
        """The headline acceptance number: >= 1.5x fewer multiprecision
        multiplications per batched homotopy evaluation on the 16-path
        workload."""
        report = op_count_report(dimension=4)
        assert report["multiplication_saving_factor"] >= 1.5, report
        assert report["workload"]["paths"] == 16


class TestReportShape:
    def test_report_assembles_wall_speedup(self):
        op_counts = op_count_report(dimension=3)
        eval_rows = [EvalPlanRow(context="qd", batch=16,
                                 plan_evals_per_second=20.0,
                                 walk_evals_per_second=10.0)]
        tracker_rows = [
            PlanTrackerRow(context="qd", batch_size=8, use_plans=True,
                           paths_tracked=8, paths_converged=8,
                           wall_seconds=2.0),
            PlanTrackerRow(context="qd", batch_size=8, use_plans=False,
                           paths_tracked=8, paths_converged=8,
                           wall_seconds=3.0),
        ]
        report = eval_plan_report(op_counts, eval_rows, tracker_rows)
        assert report["qd_tracker_wall_speedup"] == pytest.approx(1.5)
        assert report["evaluation"][0]["speedup"] == pytest.approx(2.0)
        assert report["op_counts"]["plan"]["multiplications"] > 0


@pytest.mark.slow
class TestMeasuredSpeedup:
    def test_qd_evaluation_throughput_wins(self):
        """The plan path must beat the walk on qd evaluate_batch wall clock
        (the checked-in report records ~1.7x; 1.15x is the alarm floor)."""
        rows = run_eval_plan_bench(batch_sizes=(64,),
                                   contexts=(QUAD_DOUBLE,),
                                   repeats=7)
        assert rows[0].speedup >= 1.15, \
            f"qd plan evaluate_batch speedup only {rows[0].speedup:.2f}x"
