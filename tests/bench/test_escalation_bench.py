"""The acceptance criteria of the escalation pipeline, as fast tier-1 tests:
paths that genuinely fail at plain double are recovered by the wider rung,
escalation economises the precision-sensitive work relative to the
*measured* widest-only baseline, and warm restarts strictly beat cold
re-tracking on the escalated rung."""

from __future__ import annotations

import pytest

from repro.bench import run_escalation_bench
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE


class TestEscalationBench:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_escalation_bench(dimension=4, ladder=(DOUBLE, DOUBLE_DOUBLE),
                                    end_tolerance=5e-17)

    def test_some_paths_escalate_and_all_converge(self, summary):
        assert summary.paths_total == 16
        assert summary.recovered_by_escalation >= 1
        assert summary.paths_converged == summary.paths_total

    def test_rungs_report_shrinking_residue(self, summary):
        assert [row.context for row in summary.rows] == ["d", "dd"]
        d_row, dd_row = summary.rows
        assert d_row.paths_attempted == 16
        assert dd_row.paths_attempted == 16 - d_row.paths_converged
        assert dd_row.recovered == dd_row.paths_converged

    def test_arithmetic_saving_over_all_widest(self, summary):
        # Paths converged at d never pay the ~8x double-double factor.
        assert summary.arithmetic_saving_factor > 1.1
        # The launch-overhead-dominated totals stay comparable (quality-up:
        # once batched, the wide arithmetic is nearly wall-clock free).
        assert 0.4 < summary.saving_factor < 1.5

    def test_rows_price_with_the_rungs_overhead(self, summary):
        d_row, dd_row = summary.rows
        assert d_row.overhead_factor == 1.0
        assert dd_row.overhead_factor == 8.0
        # Arithmetic seconds per lane evaluation are ~8x dearer at dd.
        d_cost = d_row.arithmetic_seconds / d_row.lane_evaluations
        dd_cost = dd_row.arithmetic_seconds / dd_row.lane_evaluations
        assert dd_cost / d_cost == pytest.approx(8.0, rel=0.5)

    def test_widest_only_baseline_is_measured(self, summary):
        # The baseline is an actual dd run over every path: it converges the
        # full workload, took real wall-clock, and its evaluation log is its
        # own (not the d profile re-priced).
        assert summary.widest_only_converged == summary.paths_total
        assert summary.widest_only_wall_seconds > 0.0
        assert summary.widest_only_lane_evaluations > 0
        d_row = summary.rows[0]
        assert summary.widest_only_lane_evaluations != d_row.lane_evaluations

    def test_warm_restart_strictly_beats_cold_retracking(self, summary):
        # Same first rung, same residue: the only difference is whether the
        # dd rung resumes from checkpoints or replays from t = 0.
        assert summary.escalated_device_seconds < summary.cold_device_seconds
        assert summary.escalated_lane_evaluations < summary.cold_lane_evaluations
        assert summary.escalated_arithmetic_seconds < summary.cold_arithmetic_seconds
        assert summary.warm_restart_saving_factor > 1.0

    def test_warm_rung_resumes_at_the_endgame(self, summary):
        dd_row = summary.rows[1]
        assert dd_row.resumed == dd_row.paths_attempted
        assert dd_row.restarted == 0
        assert dd_row.mean_resume_t == pytest.approx(1.0)
        # Endgame-only replay: an order of magnitude fewer lane evaluations
        # than the d rung spent tracking the same failed paths to t = 1.
        assert dd_row.lane_evaluations * 10 < summary.rows[0].lane_evaluations

    def test_as_dict_carries_the_comparison_entries(self, summary):
        payload = summary.as_dict()
        assert payload["widest_only"]["measured"] is True
        warm_cold = payload["warm_vs_cold"]
        assert warm_cold["warm_device_s"] < warm_cold["cold_device_s"]
        assert warm_cold["warm_lane_evals"] < warm_cold["cold_lane_evals"]
        assert warm_cold["warm_restart_saving_factor"] > 1.0
