"""The acceptance criteria of the escalation pipeline, as fast tier-1 tests:
paths that genuinely fail at plain double are recovered by the wider rung,
and escalation economises the precision-sensitive work relative to tracking
every path at the widest arithmetic."""

from __future__ import annotations

import pytest

from repro.bench import run_escalation_bench
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE


class TestEscalationBench:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_escalation_bench(dimension=4, ladder=(DOUBLE, DOUBLE_DOUBLE),
                                    end_tolerance=5e-17)

    def test_some_paths_escalate_and_all_converge(self, summary):
        assert summary.paths_total == 16
        assert summary.recovered_by_escalation >= 1
        assert summary.paths_converged == summary.paths_total

    def test_rungs_report_shrinking_residue(self, summary):
        assert [row.context for row in summary.rows] == ["d", "dd"]
        d_row, dd_row = summary.rows
        assert d_row.paths_attempted == 16
        assert dd_row.paths_attempted == 16 - d_row.paths_converged
        assert dd_row.recovered == dd_row.paths_converged

    def test_arithmetic_saving_over_all_widest(self, summary):
        # Paths converged at d never pay the ~8x double-double factor.
        assert summary.arithmetic_saving_factor > 1.1
        # The launch-overhead-dominated totals stay comparable (quality-up:
        # once batched, the wide arithmetic is nearly wall-clock free).
        assert 0.4 < summary.saving_factor < 1.5

    def test_rows_price_with_the_rungs_overhead(self, summary):
        d_row, dd_row = summary.rows
        assert d_row.overhead_factor == 1.0
        assert dd_row.overhead_factor == 8.0
        # Arithmetic seconds per lane evaluation are ~8x dearer at dd.
        d_cost = d_row.arithmetic_seconds / d_row.lane_evaluations
        dd_cost = dd_row.arithmetic_seconds / dd_row.lane_evaluations
        assert dd_cost / d_cost == pytest.approx(8.0, rel=0.5)
