"""Tests for the benchmark workload definitions and the harness."""

from __future__ import annotations

import pytest

from repro.bench import (
    EVALUATIONS_PER_RUN,
    TABLE1_ROWS,
    TABLE1_WORKLOADS,
    TABLE2_ROWS,
    TABLE2_WORKLOADS,
    Workload,
    format_breakdown,
    format_paper_rows,
    format_table,
    run_workload,
    speedup_curve,
)
from repro.bench.workloads import PaperRow
from repro.polynomials import random_regular_system


class TestPublishedRows:
    def test_row_counts(self):
        assert len(TABLE1_ROWS) == 3
        assert len(TABLE2_ROWS) == 3
        assert EVALUATIONS_PER_RUN == 100_000

    def test_table1_values_match_the_paper(self):
        by_monomials = {r.total_monomials: r for r in TABLE1_ROWS}
        assert by_monomials[704].gpu_seconds == pytest.approx(14.514)
        assert by_monomials[1024].cpu_seconds == pytest.approx(159.3)
        assert by_monomials[1536].speedup == pytest.approx(14.04)

    def test_table2_values_match_the_paper(self):
        by_monomials = {r.total_monomials: r for r in TABLE2_ROWS}
        assert by_monomials[704].cpu_seconds == pytest.approx(196.9)
        assert by_monomials[1024].gpu_seconds == pytest.approx(20.800)
        assert by_monomials[1536].speedup == pytest.approx(19.56)

    def test_published_speedups_are_consistent_with_times(self):
        for row in TABLE1_ROWS + TABLE2_ROWS:
            assert row.cpu_seconds / row.gpu_seconds == pytest.approx(row.speedup, rel=0.01)

    def test_speedups_grow_with_monomials(self):
        for rows in (TABLE1_ROWS, TABLE2_ROWS):
            speedups = [r.speedup for r in rows]
            assert speedups == sorted(speedups)


class TestWorkloads:
    def test_workload_parameters(self):
        w = TABLE1_WORKLOADS[1]
        assert w.dimension == 32
        assert w.total_monomials == 1024
        assert w.monomials_per_polynomial == 32
        assert w.variables_per_monomial == 9
        assert w.paper.speedup == pytest.approx(10.44)
        w2 = TABLE2_WORKLOADS[0]
        assert w2.variables_per_monomial == 16
        assert w2.max_variable_degree == 10

    def test_build_system_matches_declared_shape(self):
        w = TABLE1_WORKLOADS[0]
        system = w.build_system()
        shape = system.require_regular()
        assert shape.dimension == w.dimension
        assert shape.total_monomials == w.total_monomials
        assert shape.variables_per_monomial == w.variables_per_monomial
        assert shape.max_variable_degree <= w.max_variable_degree

    def test_build_system_threads_the_seed(self):
        """Regression: ``build_system`` used to drop the dataclass seed and
        always build the default-seed system."""
        from dataclasses import replace

        base = TABLE1_WORKLOADS[0]
        reseeded = replace(base, seed=base.seed + 1)
        assert base.build_system().polynomials != reseeded.build_system().polynomials
        # Same seed still regenerates the identical system.
        assert base.build_system().polynomials == base.build_system().polynomials


def small_workload():
    """A scaled-down workload so the harness test stays fast."""
    paper = PaperRow("toy", 64, 1.0, 8.0, 8.0)
    return Workload(
        name="toy", table="toy", dimension=8, total_monomials=64,
        variables_per_monomial=4, max_variable_degree=3, paper=paper,
        builder=lambda total, seed: random_regular_system(
            dimension=8, monomials_per_polynomial=total // 8,
            variables_per_monomial=4, max_variable_degree=3, seed=seed),
        seed=1,
    )


class TestHarness:
    def test_run_workload_produces_comparable_numbers(self):
        result = run_workload(small_workload(), evaluations=1000)
        assert result.model_gpu_seconds > 0
        assert result.model_cpu_seconds > 0
        assert result.model_speedup == pytest.approx(
            result.model_cpu_seconds / result.model_gpu_seconds)
        assert result.simulated_wall_seconds > 0
        assert set(result.kernel_breakdown) == {"common_factor", "speelpenning", "summation"}
        d = result.as_dict()
        assert d["paper_speedup"] == 8.0
        assert d["evaluations"] == 1000

    def test_speedup_curve(self):
        result = run_workload(small_workload(), evaluations=10)
        curve = speedup_curve([result])
        assert curve[0]["total_monomials"] == 64.0
        assert curve[0]["paper_speedup"] == 8.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.000001}], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_booleans_and_columns(self):
        text = format_table([{"x": True, "y": "z"}], columns=["y", "x"])
        assert text.splitlines()[0].startswith("y")
        assert "yes" in text

    def test_format_paper_rows_and_breakdown(self):
        result = run_workload(small_workload(), evaluations=10)
        table_text = format_paper_rows([result], title="toy table")
        assert "toy table" in table_text
        assert "#monomials" in table_text
        breakdown_text = format_breakdown(result)
        assert "speelpenning" in breakdown_text
