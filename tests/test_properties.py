"""Cross-cutting property-based tests.

These use hypothesis to generate whole random regular systems (small enough to
simulate quickly) and assert the end-to-end invariants that tie the layers
together:

* the simulated GPU pipeline agrees with the analytic CPU reference for every
  generated system, point and precision;
* the kernels' measured multiplication counts always match the closed-form
  ``5k-4`` / ``k-1`` formulas;
* evaluation results are independent of the block size used for the launch;
* the two sequential reference algorithms (naive and factored) agree.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CPUReferenceEvaluator,
    GPUEvaluator,
    compare_evaluations,
    expected_counts,
)
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import evaluate_factored, evaluate_naive, random_point, random_regular_system

# Small but varied regular-system shapes; each draw rebuilds the system from a
# drawn seed so shrinking stays meaningful.
system_shapes = st.fixed_dictionaries({
    "dimension": st.integers(min_value=2, max_value=7),
    "variables_per_monomial": st.integers(min_value=1, max_value=4),
    "max_variable_degree": st.integers(min_value=1, max_value=5),
    "monomials_per_polynomial": st.integers(min_value=1, max_value=4),
    "seed": st.integers(min_value=0, max_value=10_000),
}).filter(lambda p: p["variables_per_monomial"] <= p["dimension"])


def build_system(params):
    # Guard against support spaces too small to hold m distinct monomials.
    from repro.errors import ConfigurationError

    try:
        return random_regular_system(**params)
    except ConfigurationError:
        return None


common_settings = settings(max_examples=25, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


class TestEndToEndAgreement:
    @common_settings
    @given(system_shapes, st.integers(min_value=0, max_value=1000))
    def test_gpu_matches_cpu_reference(self, params, point_seed):
        system = build_system(params)
        if system is None:
            return
        point = random_point(system.dimension, seed=point_seed)
        gpu = GPUEvaluator(system, check_capacity=False).evaluate(point)
        cpu = CPUReferenceEvaluator(system, algorithm="naive").evaluate(point)
        report = compare_evaluations(gpu.values, gpu.jacobian, cpu.values, cpu.jacobian)
        assert report.max_relative_difference < 1e-10

    @common_settings
    @given(system_shapes)
    def test_factored_matches_naive_reference(self, params):
        system = build_system(params)
        if system is None:
            return
        point = random_point(system.dimension, seed=7)
        naive = evaluate_naive(system, point)
        factored = evaluate_factored(system, point)
        report = compare_evaluations(naive.values, naive.jacobian,
                                     factored.values, factored.jacobian)
        assert report.max_relative_difference < 1e-10

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(system_shapes)
    def test_double_double_rounds_to_double_results(self, params):
        system = build_system(params)
        if system is None:
            return
        point = random_point(system.dimension, seed=3)
        d = GPUEvaluator(system, check_capacity=False).evaluate(point)
        dd = GPUEvaluator(system, context=DOUBLE_DOUBLE, check_capacity=False).evaluate(point)
        rounded = [DOUBLE_DOUBLE.to_complex(v) for v in dd.values]
        report = compare_evaluations(d.values, d.jacobian,
                                     rounded, [[DOUBLE_DOUBLE.to_complex(v) for v in row]
                                               for row in dd.jacobian])
        assert report.max_relative_difference < 1e-12


class TestStructuralInvariants:
    @common_settings
    @given(system_shapes)
    def test_measured_multiplications_match_formulas(self, params):
        system = build_system(params)
        if system is None:
            return
        point = random_point(system.dimension, seed=11)
        evaluator = GPUEvaluator(system, check_capacity=False)
        result = evaluator.evaluate(point)
        expected = expected_counts(system.require_regular(), block_size=evaluator.block_size)
        stats1, stats2, stats3 = result.launch_stats
        assert stats1.total_multiplications == (expected.kernel1_power_multiplications
                                                + expected.kernel1_factor_multiplications)
        assert stats2.total_multiplications == expected.kernel2_multiplications
        assert stats3.total_additions == expected.kernel3_additions

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(system_shapes, st.sampled_from([8, 16, 32, 64]))
    def test_results_independent_of_block_size(self, params, block_size):
        system = build_system(params)
        if system is None:
            return
        point = random_point(system.dimension, seed=5)
        reference = GPUEvaluator(system, check_capacity=False, block_size=32).evaluate(point)
        other = GPUEvaluator(system, check_capacity=False, block_size=block_size).evaluate(point)
        report = compare_evaluations(reference.values, reference.jacobian,
                                     other.values, other.jacobian)
        assert report.max_relative_difference < 1e-13
