"""Tests for the top-level package surface (what ``import repro`` promises)."""

from __future__ import annotations

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.bench
        import repro.core
        import repro.gpusim
        import repro.multiprec
        import repro.polynomials
        import repro.tracking

        assert repro.core.GPUEvaluator is repro.GPUEvaluator

    def test_headline_workflow(self):
        """The README's quickstart snippet, condensed."""
        system = repro.random_regular_system(dimension=4, monomials_per_polynomial=2,
                                             variables_per_monomial=2, max_variable_degree=2,
                                             seed=7)
        point = repro.random_point(4, seed=1)

        gpu = repro.GPUEvaluator(system)
        result = gpu.evaluate(point)
        cpu = repro.CPUReferenceEvaluator(system)
        reference = cpu.evaluate(point)

        gpu_seconds = result.predicted_device_time(repro.GPUCostModel())
        cpu_seconds = repro.CPUCostModel().evaluation_time(reference.operations)
        assert gpu_seconds > 0 and cpu_seconds > 0
        assert len(result.values) == 4
        assert len(result.jacobian) == 4

    def test_device_constants_exported(self):
        assert repro.TESLA_C2050.multiprocessors == 14
        assert repro.XEON_X5690.clock_hz == pytest.approx(3.47e9)

    def test_subpackage_all_lists_resolve(self):
        import repro.core as core
        import repro.gpusim as gpusim
        import repro.multiprec as multiprec
        import repro.polynomials as polynomials
        import repro.tracking as tracking

        for module in (core, gpusim, multiprec, polynomials, tracking):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
