"""Tests for the predictor-corrector path tracker."""

from __future__ import annotations

import cmath

import pytest

from repro.core import CPUReferenceEvaluator
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import (
    Homotopy,
    PathTracker,
    SecantPredictor,
    TangentPredictor,
    TrackerOptions,
    start_solutions,
    total_degree_start_system,
)


def decoupled_quadratic_system():
    """f_i = x_i^2 - a_i with known solutions: easy, well-separated paths."""
    targets = [2.0, 3.0]
    polys = []
    for i, a in enumerate(targets):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-a + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys), targets


def make_homotopy(system, context=DOUBLE):
    start = total_degree_start_system(system)
    return Homotopy(CPUReferenceEvaluator(start, context=context),
                    CPUReferenceEvaluator(system, context=context),
                    context=context), start


class TestPredictors:
    def test_secant_predictor_needs_history(self):
        predictor = SecantPredictor()
        prediction = predictor.predict(None, [1 + 0j, 2 + 0j], 0.1, 0.05)
        assert prediction == [1 + 0j, 2 + 0j]

    def test_secant_predictor_extrapolates_linearly(self):
        predictor = SecantPredictor()
        predictor.remember([0j, 0j], 0.0)
        prediction = predictor.predict(None, [1 + 0j, 2 + 0j], 0.1, 0.05)
        # Half the previous step forward: adds 50% of the last increment.
        assert prediction[0] == pytest.approx(1.5 + 0j)
        assert prediction[1] == pytest.approx(3.0 + 0j)

    def test_secant_reset(self):
        predictor = SecantPredictor()
        predictor.remember([1 + 0j], 0.2)
        predictor.reset()
        assert predictor.predict(None, [5 + 0j], 0.4, 0.1) == [5 + 0j]

    def test_tangent_predictor_follows_the_path(self):
        system, _ = decoupled_quadratic_system()
        homotopy, _ = make_homotopy(system)
        predictor = TangentPredictor()
        # At t=0 on the path starting at (1, 1).
        point = [1 + 0j, 1 + 0j]
        prediction = predictor.predict(homotopy, point, 0.0, 0.05)
        assert len(prediction) == 2
        # The prediction should move the point (nonzero tangent) but only a
        # little for a small step.
        assert prediction != point
        assert abs(prediction[0] - point[0]) < 0.2


class TestTracking:
    def test_tracks_all_paths_of_decoupled_system(self):
        system, targets = decoupled_quadratic_system()
        homotopy, start = make_homotopy(system)
        tracker = PathTracker(homotopy)
        results = tracker.track_many(list(start_solutions(system)))
        assert len(results) == 4
        assert all(r.success for r in results)
        # Every found solution satisfies x_i^2 = a_i.
        for r in results:
            for i, a in enumerate(targets):
                assert abs(r.solution[i] ** 2 - a) < 1e-8
        # All four sign combinations are found.
        signs = {(round(r.solution[0].real / abs(r.solution[0])),
                  round(r.solution[1].real / abs(r.solution[1]))) for r in results}
        assert len(signs) == 4

    def test_path_metadata(self):
        system, _ = decoupled_quadratic_system()
        homotopy, _ = make_homotopy(system)
        tracker = PathTracker(homotopy)
        result = tracker.track([1 + 0j, 1 + 0j])
        assert result.success
        assert result.steps_accepted > 0
        assert result.newton_iterations > 0
        assert result.residual < 1e-10
        assert result.path[-1].t == pytest.approx(1.0)
        assert all(0 < p.t <= 1.0 for p in result.path)

    def test_tangent_predictor_option(self):
        system, targets = decoupled_quadratic_system()
        homotopy, _ = make_homotopy(system)
        tracker = PathTracker(homotopy, options=TrackerOptions(predictor="tangent"))
        result = tracker.track([1 + 0j, 1 + 0j])
        assert result.success
        assert abs(result.solution[0] ** 2 - targets[0]) < 1e-8

    def test_bad_start_point_reports_failure(self):
        system, _ = decoupled_quadratic_system()
        homotopy, _ = make_homotopy(system)
        tracker = PathTracker(homotopy)
        # The origin makes the start-system Jacobian (2 x_i on the diagonal)
        # singular, so the initial corrector cannot succeed; the tracker must
        # report a clean failure rather than raising.
        result = tracker.track([0j, 0j])
        assert not result.success
        assert result.failure_reason == "start point does not satisfy the start system"

    def test_far_away_start_point_is_pulled_back(self):
        """A wrong but well-conditioned start point is simply corrected onto
        the nearest start-system solution and then tracked successfully."""
        system, targets = decoupled_quadratic_system()
        homotopy, _ = make_homotopy(system)
        result = PathTracker(homotopy).track([5 + 0j, -7 + 0j])
        assert result.success
        assert abs(result.solution[0] ** 2 - targets[0]) < 1e-8

    def test_max_steps_failure(self):
        system, _ = decoupled_quadratic_system()
        homotopy, _ = make_homotopy(system)
        options = TrackerOptions(initial_step=1e-4, max_step=1e-4, max_steps=5)
        tracker = PathTracker(homotopy, options=options)
        result = tracker.track([1 + 0j, 1 + 0j])
        assert not result.success
        assert result.failure_reason == "maximum number of steps exceeded"

    def test_double_double_tracking_reaches_tighter_residuals(self):
        system, targets = decoupled_quadratic_system()
        ctx = DOUBLE_DOUBLE
        homotopy, _ = make_homotopy(system, context=ctx)
        options = TrackerOptions(end_tolerance=1e-25, corrector_tolerance=1e-12,
                                 end_iterations=20)
        tracker = PathTracker(homotopy, context=ctx, options=options)
        result = tracker.track([1 + 0j, 1 + 0j])
        assert result.success
        assert result.residual < 1e-25
        assert abs(ctx.to_complex(result.solution[0]) - cmath.sqrt(targets[0])) < 1e-12
