"""Tests for parameter-homotopy families (:mod:`repro.tracking.parameter`).

The serving protocol against stub solvers (no real tracking, so these run
in milliseconds): cold adoption, warm member-seeded serving, the support
guard, rootless-member retry, and thread-safe adoption.  The real-solve
differential -- a warm serve reproducing a cold solve's solution set --
lives in ``tests/scenarios/test_start_differential.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.polynomials import (
    Polynomial,
    PolynomialSystem,
    katsura_system,
    random_sparse_system,
)
from repro.polynomials.generators import perturb_coefficients
from repro.tracking import ParameterFamily, Solution, SolveReport


def make_report(system, roots=1):
    point = tuple(0j for _ in range(system.dimension))
    return SolveReport(system=system, bezout_number=8, paths_tracked=8,
                       paths_converged=roots,
                       solutions=[Solution(point=point, residual=0.0)
                                  for _ in range(roots)])


class RecordingSolver:
    def __init__(self, roots=1):
        self.calls = []
        self.roots = roots

    def __call__(self, system, **kwargs):
        self.calls.append(kwargs)
        return make_report(system, roots=self.roots)


class TestServingProtocol:
    def test_first_solve_is_cold_and_adopts_the_member(self):
        solver = RecordingSolver()
        family = ParameterFamily(name="kat", solver=solver)
        assert family.member is None
        base = katsura_system(3)
        report = family.solve(base)
        assert family.member is report
        assert "start" not in solver.calls[0]
        assert family.stats() == {"cold_solves": 1, "warm_serves": 0}

    def test_later_solves_are_member_seeded(self):
        solver = RecordingSolver()
        family = ParameterFamily(name="kat", solver=solver)
        base = katsura_system(3)
        member = family.solve(base)
        family.solve(perturb_coefficients(base, seed=2))
        family.solve(perturb_coefficients(base, seed=3))
        assert family.stats() == {"cold_solves": 1, "warm_serves": 2}
        for call in solver.calls[1:]:
            start = call["start"]
            assert start.name == "generic-member"
            assert start.member is member.system

    def test_defaults_merge_under_overrides(self):
        solver = RecordingSolver()
        family = ParameterFamily(solver=solver, seed=7, max_paths=4)
        base = katsura_system(3)
        family.solve(base)
        family.solve(base, max_paths=2)
        assert solver.calls[0] == {"seed": 7, "max_paths": 4}
        assert solver.calls[1]["seed"] == 7
        assert solver.calls[1]["max_paths"] == 2

    def test_rootless_cold_solve_is_not_adopted(self):
        solver = RecordingSolver(roots=0)
        family = ParameterFamily(solver=solver)
        base = katsura_system(3)
        family.solve(base)
        assert family.member is None
        solver.roots = 2
        family.solve(base)  # retries cold, now adoptable
        assert family.member is not None
        assert family.stats() == {"cold_solves": 2, "warm_serves": 0}
        assert all("start" not in call for call in solver.calls)

    def test_dimension_mismatch_is_refused(self):
        family = ParameterFamily(solver=RecordingSolver())
        family.solve(katsura_system(3))
        with pytest.raises(ConfigurationError):
            family.solve(katsura_system(2))

    def test_foreign_support_is_refused(self):
        """A target with monomials the member never had is outside the
        coefficient family -- serving it from the member could silently
        drop roots."""
        family = ParameterFamily(name="sparse", solver=RecordingSolver())
        family.solve(katsura_system(3))
        with pytest.raises(ConfigurationError, match="sparse"):
            family.solve(random_sparse_system(4, seed=1))

    def test_dropped_terms_stay_in_family(self):
        """Coefficients may vanish relative to the member (support subset),
        that is still the same family."""
        solver = RecordingSolver()
        family = ParameterFamily(solver=solver)
        base = random_sparse_system(3, seed=5)
        family.solve(base)
        first = Polynomial(list(base[0].terms)[:-1])
        assert len(first.terms) < len(base[0].terms)
        smaller = PolynomialSystem([first] + [base[i] for i in (1, 2)])
        family.solve(smaller)
        assert family.stats()["warm_serves"] == 1

    def test_concurrent_first_solves_adopt_exactly_once(self):
        lock = threading.Lock()
        calls = []

        def solver(system, **kwargs):
            with lock:
                calls.append(kwargs)
            return make_report(system)

        family = ParameterFamily(solver=solver)
        base = katsura_system(3)
        threads = [threading.Thread(target=family.solve, args=(base,))
                   for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = family.stats()
        assert stats["cold_solves"] == 1
        assert stats["warm_serves"] == 5
        assert sum("start" not in call for call in calls) == 1
