"""Tests for total-degree start systems and their solutions."""

from __future__ import annotations

import cmath

import pytest

from repro.errors import ConfigurationError
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import (
    sample_start_solutions,
    start_solutions,
    total_degree,
    total_degree_start_system,
)


def target_system():
    """Degrees 2 and 3: Bezout number 6."""
    p1 = Polynomial([
        (1 + 0j, Monomial((0,), (2,))),
        (1 + 0j, Monomial((1,), (1,))),
        (-3 + 0j, Monomial((), ())),
    ])
    p2 = Polynomial([
        (1 + 0j, Monomial((0, 1), (1, 2))),
        (-1 + 0j, Monomial((), ())),
    ])
    return PolynomialSystem([p1, p2])


class TestTotalDegree:
    def test_bezout_number(self):
        assert total_degree(target_system()) == 6

    def test_constant_polynomial_counts_as_degree_one(self):
        system = PolynomialSystem([Polynomial([(1 + 0j, Monomial((), ()))])], dimension=1)
        assert total_degree(system) == 1


class TestStartSystem:
    def test_structure(self):
        start = total_degree_start_system(target_system())
        assert start.dimension == 2
        # g_0 = x0^2 - 1, g_1 = x1^3 - 1.
        assert str(start[0]).replace(" ", "") in ("(1+0j)*x0^2+(-1+0j)", "((1+0j))*x0^2+((-1+0j))")
        assert start[0].total_degree == 2
        assert start[1].total_degree == 3

    def test_start_solutions_are_roots_of_unity(self):
        start = total_degree_start_system(target_system())
        solutions = list(start_solutions(target_system()))
        assert len(solutions) == 6
        for sol in solutions:
            values = start.evaluate(sol)
            assert all(abs(v) < 1e-12 for v in values)

    def test_solutions_are_distinct(self):
        solutions = list(start_solutions(target_system()))
        rounded = {tuple(complex(round(z.real, 9), round(z.imag, 9)) for z in s)
                   for s in solutions}
        assert len(rounded) == 6


class TestSampling:
    def test_sampled_solutions_solve_the_start_system(self):
        system = target_system()
        start = total_degree_start_system(system)
        samples = sample_start_solutions(system, 4, seed=1)
        assert len(samples) == 4
        for sol in samples:
            assert all(abs(v) < 1e-12 for v in start.evaluate(sol))

    def test_sampling_caps_at_bezout_number(self):
        samples = sample_start_solutions(target_system(), 100, seed=2)
        assert len(samples) == 6

    def test_samples_are_distinct(self):
        samples = sample_start_solutions(target_system(), 6, seed=3)
        rounded = {tuple(complex(round(z.real, 9), round(z.imag, 9)) for z in s)
                   for s in samples}
        assert len(rounded) == 6

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            sample_start_solutions(target_system(), 0)

    def test_reproducible(self):
        a = sample_start_solutions(target_system(), 3, seed=11)
        b = sample_start_solutions(target_system(), 3, seed=11)
        assert a == b
