"""Tests for the quality-up (precision for parallelism) accounting."""

from __future__ import annotations

import pytest

from repro.multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.polynomials.speelpenning import OperationCount
from repro.tracking import (
    affordable_precision,
    measured_overhead_factor,
    offset_factor,
    quality_up_table,
)


class TestOffsetFactor:
    def test_basic_ratio(self):
        assert offset_factor(16.0, 8.0) == pytest.approx(2.0)
        assert offset_factor(4.0, 8.0) == pytest.approx(0.5)

    def test_invalid_overhead(self):
        with pytest.raises(ValueError):
            offset_factor(10.0, 0.0)

    def test_paper_table_speedups_cover_double_double(self):
        """The paper's Table 1/2 speedups (7.6 .. 19.6) against the ~8x dd
        overhead: the largest configurations achieve quality up."""
        assert offset_factor(19.56, DOUBLE_DOUBLE.mul_cost_factor) > 1.0
        assert offset_factor(7.60, DOUBLE_DOUBLE.mul_cost_factor) < 1.0
        assert offset_factor(10.44, DOUBLE_DOUBLE.mul_cost_factor) > 1.0


class TestAffordablePrecision:
    def test_small_speedup_stays_in_double(self):
        assert affordable_precision(2.0) is DOUBLE

    def test_moderate_speedup_affords_double_double(self):
        assert affordable_precision(10.0) is DOUBLE_DOUBLE
        assert affordable_precision(8.0) is DOUBLE_DOUBLE

    def test_large_speedup_affords_quad_double(self):
        assert affordable_precision(45.0) is QUAD_DOUBLE

    def test_custom_context_subset(self):
        assert affordable_precision(100.0, contexts=[DOUBLE, DOUBLE_DOUBLE]) is DOUBLE_DOUBLE


class TestQualityUpTable:
    def test_rows_are_sorted_by_cost(self):
        rows = quality_up_table(12.0)
        assert [r.context_name for r in rows] == ["d", "dd", "qd"]
        assert rows[0].affordable
        assert rows[1].affordable
        assert not rows[2].affordable

    def test_row_contents(self):
        rows = quality_up_table(16.0)
        dd_row = next(r for r in rows if r.context_name == "dd")
        assert dd_row.overhead_factor == pytest.approx(8.0)
        assert dd_row.offset == pytest.approx(2.0)
        assert dd_row.speedup == 16.0
        assert dd_row.as_dict()["affordable_in_sequential_double_time"] is True


class TestMeasuredOverhead:
    def test_overhead_matches_context_factor(self):
        ops = OperationCount(multiplications=5000, additions=1000)
        assert measured_overhead_factor(ops, DOUBLE_DOUBLE) == pytest.approx(8.0)
        assert measured_overhead_factor(ops, QUAD_DOUBLE) == pytest.approx(40.0)

    def test_zero_work(self):
        assert measured_overhead_factor(OperationCount(), DOUBLE_DOUBLE) == float("inf")
