"""Tests for the blackbox homotopy-continuation solver."""

from __future__ import annotations

import cmath

import pytest

from repro.core import CPUReferenceEvaluator, GPUEvaluator
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import PathResult, TrackerOptions, solve_system
from repro.tracking.solver import _deduplicate


def decoupled_quadratics(values=(2.0, 3.0)):
    """f_i = x_i^2 - a_i with 2^n known solutions."""
    polys = []
    for i, a in enumerate(values):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-a + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys)


def circle_and_line():
    """x^2 + y^2 = 2 and x = y: exactly two solutions (1,1) and (-1,-1)."""
    p1 = Polynomial([
        (1 + 0j, Monomial((0,), (2,))),
        (1 + 0j, Monomial((1,), (2,))),
        (-2 + 0j, Monomial((), ())),
    ])
    p2 = Polynomial([
        (1 + 0j, Monomial((0,), (1,))),
        (-1 + 0j, Monomial((1,), (1,))),
    ])
    return PolynomialSystem([p1, p2])


class TestDecoupledQuadratics:
    def test_finds_all_four_solutions(self):
        report = solve_system(decoupled_quadratics())
        assert report.bezout_number == 4
        assert report.paths_tracked == 4
        assert report.paths_converged == 4
        assert report.success_rate == 1.0
        assert len(report.solutions) == 4
        for solution in report.solutions:
            x, y = solution.as_complex()
            assert abs(x * x - 2.0) < 1e-7
            assert abs(y * y - 3.0) < 1e-7
            assert solution.residual < 1e-8

    def test_all_sign_combinations_present(self):
        report = solve_system(decoupled_quadratics())
        signs = set()
        for solution in report.solutions:
            x, y = solution.as_complex()
            signs.add((round(x.real / abs(x)), round(y.real / abs(y))))
        assert len(signs) == 4

    def test_max_paths_subsamples(self):
        report = solve_system(decoupled_quadratics(), max_paths=2, seed=3)
        assert report.paths_tracked == 2
        assert len(report.solutions) <= 2

    def test_failures_are_reported_not_raised(self):
        # An absurdly tight step budget forces failures.
        options = TrackerOptions(initial_step=1e-5, max_step=1e-5, max_steps=3)
        report = solve_system(decoupled_quadratics(), options=options)
        assert report.paths_converged < report.paths_tracked
        assert len(report.failures) == report.paths_tracked - report.paths_converged
        assert report.success_rate < 1.0


class TestCircleAndLine:
    def test_both_isolated_solutions_found(self):
        """The quadric/line intersection has Bezout number 2 (degrees 2 and 1)
        and exactly the two isolated solutions (1, 1) and (-1, -1)."""
        report = solve_system(circle_and_line())
        assert report.bezout_number == 2
        assert report.paths_converged == 2
        assert len(report.solutions) == 2
        endpoints = sorted(round(s.as_complex()[0].real, 6) for s in report.solutions)
        assert endpoints == [-1.0, 1.0]
        for s in report.solutions:
            x, y = s.as_complex()
            assert abs(x - y) < 1e-8

    def test_multiplicities_accumulate(self):
        report = solve_system(circle_and_line())
        total_multiplicity = sum(s.multiplicity for s in report.solutions)
        assert total_multiplicity == report.paths_converged


class TestDeduplication:
    def make_result(self, point, residual=1e-12):
        return PathResult(success=True, solution=list(point), residual=residual,
                          steps_accepted=1, steps_rejected=0, newton_iterations=1)

    def test_nearby_endpoints_merge_with_multiplicity(self):
        results = [
            self.make_result([1.0 + 0j, 2.0 + 0j], residual=1e-12),
            self.make_result([1.0 + 1e-9j, 2.0 + 0j], residual=1e-14),
            self.make_result([-1.0 + 0j, 2.0 + 0j], residual=1e-13),
        ]
        merged = _deduplicate(results, DOUBLE, tolerance=1e-6)
        assert len(merged) == 2
        clustered = next(s for s in merged if abs(s.as_complex()[0] - 1.0) < 1e-6)
        assert clustered.multiplicity == 2
        assert clustered.residual == 1e-14   # keeps the best residual
        isolated = next(s for s in merged if abs(s.as_complex()[0] + 1.0) < 1e-6)
        assert isolated.multiplicity == 1

    def test_distinct_endpoints_stay_distinct(self):
        results = [self.make_result([float(i) + 0j]) for i in range(5)]
        merged = _deduplicate(results, DOUBLE, tolerance=1e-8)
        assert len(merged) == 5

    def test_relative_tolerance_scales_with_magnitude(self):
        results = [
            self.make_result([1e6 + 0j]),
            self.make_result([1e6 * (1 + 1e-8) + 0j]),
        ]
        merged = _deduplicate(results, DOUBLE, tolerance=1e-6)
        assert len(merged) == 1


class TestBackends:
    def test_double_double_context(self):
        report = solve_system(decoupled_quadratics((2.0,)), context=DOUBLE_DOUBLE,
                              options=TrackerOptions(end_tolerance=1e-25,
                                                     end_iterations=20))
        assert report.paths_converged == 2
        for solution in report.solutions:
            assert solution.residual < 1e-25

    def test_gpu_evaluator_factory(self):
        """Drive the paths with the simulated GPU pipeline.  The target must
        be regular; the start system is evaluated on the CPU."""
        system = decoupled_quadratics((2.0, 5.0))

        def factory(s):
            if s.regularity() is not None and s is system:
                return GPUEvaluator(s, check_capacity=False)
            return CPUReferenceEvaluator(s)

        report = solve_system(system, evaluator_factory=factory)
        assert report.paths_converged == 4
        for solution in report.solutions:
            x, y = solution.as_complex()
            assert abs(x * x - 2.0) < 1e-7
            assert abs(y * y - 5.0) < 1e-7


class TestDeduplicationScales:
    """The bucketed clustering: coincident endpoints are one dict probe
    each, not a scan over every previously found solution."""

    def make_result(self, point, residual=1e-12):
        return PathResult(success=True, solution=list(point), residual=residual,
                          steps_accepted=1, steps_rejected=0, newton_iterations=1)

    def test_200_coincident_endpoints_collapse_to_one(self):
        import numpy as np

        rng = np.random.default_rng(0)
        base = [1.25 + 0.5j, -0.75 + 2.0j]
        results = []
        for _ in range(250):
            jitter = (rng.normal(size=2) + 1j * rng.normal(size=2)) * 1e-9
            results.append(self.make_result([b + j for b, j in zip(base, jitter)]))
        merged = _deduplicate(results, DOUBLE, tolerance=1e-6)
        assert len(merged) == 1
        assert merged[0].multiplicity == 250

    def test_mixed_clusters_and_singletons(self):
        results = []
        for i in range(100):
            results.append(self.make_result([1.0 + 0j, 2.0 + 0j]))      # cluster A
            results.append(self.make_result([-1.0 + 0j, 2.0 + 0j]))     # cluster B
        for i in range(20):
            results.append(self.make_result([float(10 + i) + 0j, 0j]))  # singletons
        merged = _deduplicate(results, DOUBLE, tolerance=1e-8)
        assert len(merged) == 22
        multiplicities = sorted(s.multiplicity for s in merged)
        assert multiplicities[-2:] == [100, 100]

    def test_dedup_scan_is_bucket_local(self):
        """Monkeypatch-free scaling probe: with B distinct buckets the inner
        tolerance scan must not grow with the number of *clusters*, which the
        old O(paths^2) global scan did.  Validated behaviourally: widely
        separated endpoints stay distinct and coincident ones still merge."""
        results = [self.make_result([complex(i, -i)]) for i in range(300)]
        results += [self.make_result([complex(7, -7)])] * 5
        merged = _deduplicate(results, DOUBLE, tolerance=1e-9)
        assert len(merged) == 300
        seven = next(s for s in merged if abs(s.as_complex()[0] - (7 - 7j)) < 1e-6)
        assert seven.multiplicity == 6


class TestEscalation:
    def test_policy_validates_order_and_nonempty(self):
        from repro.errors import ConfigurationError
        from repro.multiprec import QUAD_DOUBLE
        from repro.tracking import EscalationPolicy

        with pytest.raises(ConfigurationError):
            EscalationPolicy(ladder=())
        with pytest.raises(ConfigurationError):
            EscalationPolicy(ladder=(QUAD_DOUBLE, DOUBLE))
        policy = EscalationPolicy()
        assert [c.name for c in policy.ladder] == ["d", "dd", "qd"]
        assert policy.start_context.name == "d"

    def test_from_speedup_consults_quality_up(self):
        from repro.tracking import EscalationPolicy

        assert [c.name for c in EscalationPolicy.from_speedup(1.0).ladder] == \
            ["d", "dd", "qd"]
        assert [c.name for c in EscalationPolicy.from_speedup(10.0).ladder] == \
            ["dd", "qd"]
        assert [c.name for c in EscalationPolicy.from_speedup(50.0).ladder] == \
            ["qd"]

    def test_escalation_recovers_paths_that_fail_at_plain_double(self):
        """Acceptance criterion: a Bezout >= 16 system with an end tolerance
        below the double roundoff floor -- paths genuinely fail at d and are
        recovered by the dd rung."""
        from repro.bench.batch_tracking import cyclic_quadratic_system
        from repro.tracking import EscalationPolicy
        from repro.multiprec import DOUBLE_DOUBLE

        system = cyclic_quadratic_system(4)
        options = TrackerOptions(end_tolerance=1e-17, end_iterations=12)
        policy = EscalationPolicy(ladder=(DOUBLE, DOUBLE_DOUBLE))
        report = solve_system(system, options=options, escalation=policy)

        assert report.bezout_number == 16
        assert report.paths_tracked == 16
        assert report.recovered_by_escalation >= 1
        assert report.paths_converged == 16
        assert not report.failures
        assert report.contexts_used == ["d", "dd"]
        assert report.paths_by_context["d"] == 16
        # Only the d failures were re-tracked at dd...
        assert report.paths_by_context["dd"] == \
            16 - report.converged_by_context["d"]
        # ... and everything the dd rung attempted converged.
        assert report.converged_by_context["dd"] == report.paths_by_context["dd"]
        # Escalated endpoints certify the tight tolerance.
        assert all(s.residual <= 1e-15 for s in report.solutions)

    def test_without_escalation_those_paths_fail(self):
        from repro.bench.batch_tracking import cyclic_quadratic_system

        system = cyclic_quadratic_system(4)
        options = TrackerOptions(end_tolerance=1e-17, end_iterations=12)
        report = solve_system(system, options=options)
        assert report.paths_converged < report.paths_tracked
        assert report.failures
        assert report.recovered_by_escalation == 0

    def test_single_rung_ladder_equals_plain_context(self):
        from repro.tracking import EscalationPolicy

        plain = solve_system(decoupled_quadratics())
        ladder = solve_system(decoupled_quadratics(),
                              escalation=EscalationPolicy(ladder=(DOUBLE,)))
        assert plain.paths_converged == ladder.paths_converged == 4
        assert ladder.paths_by_context == {"d": 4}
        assert ladder.recovered_by_escalation == 0


class TestWarmRestartEscalation:
    """The escalated rung resumes failed paths from their checkpoints."""

    @staticmethod
    def acceptance_reports():
        from repro.bench.batch_tracking import cyclic_quadratic_system
        from repro.multiprec import DOUBLE_DOUBLE
        from repro.tracking import EscalationPolicy

        system = cyclic_quadratic_system(4)
        options = TrackerOptions(end_tolerance=1e-17, end_iterations=12)
        warm = solve_system(system, options=options,
                            escalation=EscalationPolicy(
                                ladder=(DOUBLE, DOUBLE_DOUBLE)))
        cold = solve_system(system, options=options,
                            escalation=EscalationPolicy(
                                ladder=(DOUBLE, DOUBLE_DOUBLE),
                                warm_restart=False))
        return warm, cold

    def test_warm_restart_is_the_default_and_resumes_the_residue(self):
        warm, _ = self.acceptance_reports()
        assert warm.paths_converged == 16
        assert warm.resumed_by_context["d"] == 0
        assert warm.restarted_by_context["d"] == 16
        # Every escalated path continued mid-track...
        assert warm.resumed_by_context["dd"] == warm.paths_by_context["dd"]
        assert warm.restarted_by_context["dd"] == 0
        # ... from the very end of the path: the d failures are endgames.
        resume_ts = warm.resume_t_by_context["dd"]
        assert len(resume_ts) == warm.paths_by_context["dd"]
        assert all(0.0 < t <= 1.0 for t in resume_ts)
        assert all(t == 1.0 for t in resume_ts)

    def test_recovery_does_not_regress_versus_cold_restarts(self):
        warm, cold = self.acceptance_reports()
        assert warm.recovered_by_escalation >= 1
        assert warm.recovered_by_escalation == cold.recovered_by_escalation
        assert warm.paths_converged == cold.paths_converged == 16
        assert not warm.failures and not cold.failures
        # Cold restarts report everything as restarted.
        assert cold.resumed_by_context["dd"] == 0
        assert cold.restarted_by_context["dd"] == cold.paths_by_context["dd"]
        assert cold.resume_t_by_context["dd"] == []
        # Same solution sets either way (dd-certified residuals).
        warm_roots = sorted(round(abs(s.as_complex()[0]), 9)
                            for s in warm.solutions)
        cold_roots = sorted(round(abs(s.as_complex()[0]), 9)
                            for s in cold.solutions)
        assert warm_roots == cold_roots

    def test_scalar_route_reports_cold_restarts(self):
        """Without the batched engine there are no checkpoints; the report
        must say so instead of claiming warm restarts."""

        class Opaque:
            def __init__(self, inner):
                self._inner = inner

            def evaluate(self, point):
                return self._inner.evaluate(point)

        report = solve_system(decoupled_quadratics(),
                              evaluator_factory=lambda s: Opaque(
                                  CPUReferenceEvaluator(s)))
        assert report.resumed_by_context == {"d": 0}
        assert report.restarted_by_context == {"d": 4}
        assert report.resume_t_by_context == {"d": []}


class TestBatchedRoute:
    def test_default_factory_goes_through_batch_tracker(self):
        report = solve_system(decoupled_quadratics(), batch_size=2)
        assert report.paths_converged == 4
        assert len(report.solutions) == 4

    def test_opaque_factory_falls_back_to_scalar_tracker(self):
        """An evaluator that hides its system still solves, path by path."""

        class Opaque:
            def __init__(self, inner):
                self._inner = inner

            def evaluate(self, point):
                return self._inner.evaluate(point)

        report = solve_system(decoupled_quadratics(),
                              evaluator_factory=lambda s: Opaque(
                                  CPUReferenceEvaluator(s)))
        assert report.paths_converged == 4
        assert len(report.solutions) == 4

    def test_opaque_factory_with_escalation_is_rejected(self):
        """An opaque evaluator is stuck in one arithmetic, so the wider
        rungs could not actually widen the precision -- refuse loudly
        instead of producing a lying escalated report."""
        from repro.errors import ConfigurationError
        from repro.tracking import EscalationPolicy

        class Opaque:
            def __init__(self, inner):
                self._inner = inner

            def evaluate(self, point):
                return self._inner.evaluate(point)

        with pytest.raises(ConfigurationError):
            solve_system(decoupled_quadratics(),
                         evaluator_factory=lambda s: Opaque(
                             CPUReferenceEvaluator(s)),
                         escalation=EscalationPolicy())


class TestScalarRouteCannotHonourCheckpoints:
    """resume_from down a route that cannot honour it must fail loudly at
    the tracking layer, and degrade *recorded* (never silent) at the solver
    layer."""

    @staticmethod
    def _tracked_checkpoints(system):
        from repro.tracking.batch_tracker import BatchTracker
        from repro.tracking.start_systems import (
            start_solutions,
            total_degree_start_system,
        )

        start = total_degree_start_system(system)
        starts = list(start_solutions(system))
        outcome = BatchTracker(start, system).track_batches(starts)
        return start, starts, outcome.checkpoints()

    def test_track_paths_raises_when_factory_hides_systems(self):
        from repro.errors import ConfigurationError
        from repro.tracking.solver import _track_paths

        system = decoupled_quadratics()
        start, starts, checkpoints = self._tracked_checkpoints(system)
        with pytest.raises(ConfigurationError, match="cannot honour"):
            _track_paths(start, system, starts, DOUBLE, None,
                         None,  # exposed=None: the scalar route
                         None, None, None, resume_from=checkpoints)

    def test_track_paths_raises_when_context_has_no_backend(self):
        import dataclasses

        from repro.errors import ConfigurationError
        from repro.tracking.solver import _track_paths

        system = decoupled_quadratics()
        start, starts, checkpoints = self._tracked_checkpoints(system)
        orphan = dataclasses.replace(DOUBLE_DOUBLE, name="dd-no-backend")
        with pytest.raises(ConfigurationError, match="no registered"):
            _track_paths(start, system, starts, orphan, None,
                         (start, system), None, None, None,
                         resume_from=checkpoints)

    def test_skip_certified_endgame_alone_also_raises(self):
        from repro.errors import ConfigurationError
        from repro.tracking.solver import _track_paths

        system = decoupled_quadratics()
        start, starts, _ = self._tracked_checkpoints(system)
        with pytest.raises(ConfigurationError):
            _track_paths(start, system, starts, DOUBLE, None, None,
                         None, None, None, skip_certified_endgame=True)

    def test_solver_records_degradation_for_backendless_rung(self):
        """A warm escalation onto a rung without the batched route must
        cold re-track AND say so in SolveReport.degradations."""
        import dataclasses

        from repro.tracking import EscalationPolicy

        # x^2 - 2: the irrational root's double residual sits just above a
        # tolerance at the roundoff floor, so both paths fail at d; the
        # second rung is double-double arithmetic under a name with no
        # registered batch backend, forcing the scalar fallback.
        system = decoupled_quadratics(values=(2.0,))
        orphan = dataclasses.replace(DOUBLE_DOUBLE, name="dd-no-backend")
        report = solve_system(
            system,
            options=TrackerOptions(end_tolerance=5e-17, end_iterations=12),
            escalation=EscalationPolicy(ladder=(DOUBLE, orphan)))
        assert report.paths_by_context.get("dd-no-backend", 0) > 0
        assert len(report.degradations) == 1
        assert "cold re-track" in report.degradations[0]
        assert "dd-no-backend" in report.degradations[0]
        # The degraded rung is accounted as restarted, never as resumed.
        assert report.resumed_by_context["dd-no-backend"] == 0
        assert report.restarted_by_context["dd-no-backend"] == \
            report.paths_by_context["dd-no-backend"]
        # The solve itself still succeeds -- degradation, not failure.
        assert report.paths_converged == report.paths_tracked

    def test_clean_escalated_solve_reports_no_degradations(self):
        from repro.bench.batch_tracking import cyclic_quadratic_system
        from repro.tracking import EscalationPolicy

        report = solve_system(
            cyclic_quadratic_system(4),
            options=TrackerOptions(end_tolerance=5e-17, end_iterations=12),
            escalation=EscalationPolicy(ladder=(DOUBLE, DOUBLE_DOUBLE)))
        assert report.degradations == []
        assert report.shards == 1  # single-process defaults
        assert report.worker_retries == 0
        assert report.resumed_after_crash == 0
