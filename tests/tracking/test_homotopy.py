"""Tests for the convex linear homotopy with the gamma trick."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core import CPUReferenceEvaluator
from repro.multiprec import DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import Homotopy, total_degree_start_system


def target_system():
    p1 = Polynomial([
        (1 + 0j, Monomial((0,), (2,))),
        (1 + 0j, Monomial((1,), (1,))),
        (-3 + 0j, Monomial((), ())),
    ])
    p2 = Polynomial([
        (1 + 0j, Monomial((0, 1), (1, 2))),
        (-1 + 0j, Monomial((), ())),
    ])
    return PolynomialSystem([p1, p2])


@pytest.fixture
def homotopy():
    target = target_system()
    start = total_degree_start_system(target)
    return Homotopy(CPUReferenceEvaluator(start), CPUReferenceEvaluator(target),
                    gamma=complex(0.6, 0.8))


class TestEndpoints:
    def test_at_t_zero_matches_gamma_times_start(self, homotopy):
        point = [0.5 + 0.5j, -0.25 + 1j]
        start_values = CPUReferenceEvaluator(
            total_degree_start_system(target_system())).evaluate(point).values
        h = homotopy.evaluate_at(point, 0.0)
        for hv, gv in zip(h.values, start_values):
            assert hv == pytest.approx(complex(0.6, 0.8) * gv, rel=1e-12)

    def test_at_t_one_matches_target(self, homotopy):
        point = [0.5 + 0.5j, -0.25 + 1j]
        target_values = CPUReferenceEvaluator(target_system()).evaluate(point).values
        h = homotopy.evaluate_at(point, 1.0)
        for hv, fv in zip(h.values, target_values):
            assert hv == pytest.approx(fv, rel=1e-12)

    def test_intermediate_t_is_convex_combination(self, homotopy):
        point = [0.3 - 0.2j, 0.7 + 0.1j]
        t = 0.375
        g = CPUReferenceEvaluator(total_degree_start_system(target_system())).evaluate(point)
        f = CPUReferenceEvaluator(target_system()).evaluate(point)
        h = homotopy.evaluate_at(point, t)
        for hv, gv, fv in zip(h.values, g.values, f.values):
            assert hv == pytest.approx(complex(0.6, 0.8) * (1 - t) * gv + t * fv, rel=1e-12)

    def test_jacobian_combination(self, homotopy):
        point = [0.3 - 0.2j, 0.7 + 0.1j]
        t = 0.25
        g = CPUReferenceEvaluator(total_degree_start_system(target_system())).evaluate(point)
        f = CPUReferenceEvaluator(target_system()).evaluate(point)
        h = homotopy.evaluate_at(point, t)
        for i in range(2):
            for j in range(2):
                expected = complex(0.6, 0.8) * (1 - t) * g.jacobian[i][j] + t * f.jacobian[i][j]
                assert h.jacobian[i][j] == pytest.approx(expected, rel=1e-12)

    def test_t_derivative(self, homotopy):
        point = [0.2 + 0.4j, -0.6 + 0.3j]
        g = CPUReferenceEvaluator(total_degree_start_system(target_system())).evaluate(point)
        f = CPUReferenceEvaluator(target_system()).evaluate(point)
        h = homotopy.evaluate_at(point, 0.5)
        for dv, gv, fv in zip(h.t_derivative, g.values, f.values):
            assert dv == pytest.approx(fv - complex(0.6, 0.8) * gv, rel=1e-12)

    def test_t_derivative_matches_finite_difference(self, homotopy):
        point = [0.2 + 0.4j, -0.6 + 0.3j]
        t, dt = 0.4, 1e-7
        h0 = homotopy.evaluate_at(point, t)
        h1 = homotopy.evaluate_at(point, t + dt)
        for dv, v0, v1 in zip(h0.t_derivative, h0.values, h1.values):
            assert (v1 - v0) / dt == pytest.approx(dv, rel=1e-5)


class TestInterface:
    def test_invalid_t_rejected(self, homotopy):
        with pytest.raises(ConfigurationError):
            homotopy.evaluate_at([0j, 0j], 1.5)
        with pytest.raises(ConfigurationError):
            homotopy.evaluate_at([0j, 0j], -0.1)

    def test_gamma_must_have_unit_modulus(self):
        target = target_system()
        start = total_degree_start_system(target)
        with pytest.raises(ConfigurationError):
            Homotopy(CPUReferenceEvaluator(start), CPUReferenceEvaluator(target), gamma=2.0)

    def test_default_gamma_is_unit_modulus(self):
        target = target_system()
        start = total_degree_start_system(target)
        h = Homotopy(CPUReferenceEvaluator(start), CPUReferenceEvaluator(target))
        assert abs(h.gamma) == pytest.approx(1.0)

    def test_frozen_adapter_exposes_evaluator_interface(self, homotopy):
        frozen = homotopy.at(0.5)
        result = frozen.evaluate([0.1 + 0.1j, 0.2 - 0.2j])
        assert len(result.values) == 2
        assert len(result.jacobian) == 2

    def test_double_double_homotopy(self):
        target = target_system()
        start = total_degree_start_system(target)
        ctx = DOUBLE_DOUBLE
        h = Homotopy(CPUReferenceEvaluator(start, context=ctx),
                     CPUReferenceEvaluator(target, context=ctx),
                     gamma=complex(0.6, 0.8), context=ctx)
        point = ctx.vector([0.5 + 0.5j, -0.25 + 1j])
        result = h.evaluate_at(point, 0.5)
        plain = Homotopy(CPUReferenceEvaluator(start), CPUReferenceEvaluator(target),
                         gamma=complex(0.6, 0.8)).evaluate_at([0.5 + 0.5j, -0.25 + 1j], 0.5)
        for a, b in zip(result.values, plain.values):
            assert a.to_complex() == pytest.approx(b, rel=1e-12)
