"""Dead/diverged lanes must not spray RuntimeWarnings.

The batched engine keeps retired and diverging lanes inside the arrays and
masks them out of the control flow, so inf/NaN legitimately flow through
the masked arithmetic (``inf - inf`` in a two_sum, ``|pivot|^2`` overflow
in the singularity guard, ...).  Before this audit every such lane emitted
NumPy RuntimeWarnings; the hot loops now run inside
:func:`repro.multiprec.backend.masked_lane_errstate`.  These tests promote
RuntimeWarning to an error (the in-process form of running pytest with
``-W error::RuntimeWarning``) and drive batches with one diverged lane
through the solver, the corrector and the full tracker.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import numpy as np
import pytest

from repro.multiprec.backend import (
    COMPLEX128_BACKEND,
    COMPLEX_DD_BACKEND,
    COMPLEX_QD_BACKEND,
    masked_lane_errstate,
)
from repro.multiprec.numeric import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial
from repro.polynomials.system import PolynomialSystem
from repro.tracking.batch_linsolve import batched_solve
from repro.tracking.batch_tracker import BatchTracker, PathStatus
from repro.tracking.homotopy import BatchHomotopy
from repro.tracking.newton import BatchNewtonCorrector
from repro.tracking.start_systems import start_solutions, total_degree_start_system


@contextmanager
def runtime_warnings_are_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        yield


def quadratic_system() -> PolynomialSystem:
    # x_i^2 - x_{(i+1) mod 2}: well-conditioned away from zero.
    polys = [
        Polynomial([(1 + 0j, Monomial((0,), (2,))),
                    (-1 + 0j, Monomial((1,), (1,)))]),
        Polynomial([(1 + 0j, Monomial((1,), (2,))),
                    (-1 + 0j, Monomial((0,), (1,)))]),
    ]
    return PolynomialSystem(polys, dimension=2)


@pytest.mark.parametrize("backend", [COMPLEX128_BACKEND, COMPLEX_DD_BACKEND,
                                     COMPLEX_QD_BACKEND],
                         ids=lambda b: b.name)
class TestBatchedSolveSilent:
    def test_inf_lane_stays_silent_and_flagged(self, backend):
        # Lane 0 is an ordinary system; lane 1 carries inf/NaN entries (a
        # diverged path whose Jacobian went non-finite).  Packing non-finite
        # scalars renormalises them, so the *setup* runs under errstate; the
        # solve itself must stay silent on its own.
        def entry(good, bad):
            with np.errstate(all="ignore"):
                return backend.from_points([[good], [bad]])[0]

        matrix = [[entry(2.0, np.inf), entry(1.0, np.nan)],
                  [entry(1.0, np.inf), entry(3.0, np.inf)]]
        rhs = [entry(1.0, np.inf), entry(2.0, np.nan)]
        with runtime_warnings_are_errors():
            solution, singular = batched_solve(matrix, rhs, backend)
        # The healthy lane solves exactly: 2x + y = 1, x + 3y = 2.
        x = backend.to_complex128(solution[0])[0]
        y = backend.to_complex128(solution[1])[0]
        assert abs(2 * x + y - 1) < 1e-10
        assert abs(x + 3 * y - 2) < 1e-10

    def test_huge_pivot_magnitudes_stay_silent(self, backend):
        # |pivot|^2 overflows double for ~1e200 entries -- the singularity
        # guard squares magnitudes and must do so inside the errstate scope.
        def entry(good, bad):
            return backend.from_points([[good], [bad]])[0]

        matrix = [[entry(1.0, 1e200), entry(0.0, 0.0)],
                  [entry(0.0, 0.0), entry(1.0, 1e200)]]
        rhs = [entry(1.0, 1e200), entry(1.0, 1e200)]
        with runtime_warnings_are_errors():
            solution, singular = batched_solve(matrix, rhs, backend)
        assert not singular[0]


class TestCorrectorSilent:
    @pytest.mark.parametrize("context", [DOUBLE, DOUBLE_DOUBLE],
                             ids=lambda c: c.name)
    def test_diverged_lane_stays_silent(self, context):
        target = quadratic_system()
        start = total_degree_start_system(target)
        homotopy = BatchHomotopy(start, target, context=context)
        backend = homotopy.backend
        # Lane 0: a genuine start solution.  Lane 1: astronomically far off,
        # so Newton squares it into overflow (inf) within an iteration.
        good = list(start_solutions(target))[0]
        bad = [1e200 + 0j, 1e200 + 0j]
        points = backend.from_points([good, bad])
        corrector = BatchNewtonCorrector(homotopy.at(np.zeros(2)), backend,
                                         tolerance=1e-10, max_iterations=6)
        with runtime_warnings_are_errors():
            result = corrector.correct(points, np.array([True, True]))
        assert result.converged[0]
        assert not result.converged[1]


class TestTrackerSilent:
    def test_batch_with_one_diverged_lane_tracks_silently(self):
        target = quadratic_system()
        start = total_degree_start_system(target)
        starts = list(start_solutions(target))
        # Poison one lane with a start point that does not satisfy the start
        # system and blows up under correction.
        poisoned = starts + [[1e200 + 0j, 1e200 + 0j]]
        tracker = BatchTracker(start, target, context=DOUBLE)
        with runtime_warnings_are_errors():
            results = tracker.track_many(poisoned)
        healthy = results[:len(starts)]
        assert all(r.success for r in healthy)
        assert not results[-1].success

    def test_masked_lane_errstate_suppresses_fp_warnings(self):
        with runtime_warnings_are_errors():
            with masked_lane_errstate():
                np.array([np.inf]) - np.array([np.inf])
                np.array([1e200]) * np.array([1e200])
                np.array([1.0]) / np.array([0.0])
        # ... and outside the scope the warning machinery still works.
        with pytest.raises((RuntimeWarning, FloatingPointError)):
            with runtime_warnings_are_errors():
                np.array([np.inf]) - np.array([np.inf])
