"""Tests for the generic dense LU solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SingularMatrixError
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.tracking import lu_factor, lu_solve, residual_norm, solve, vector_norm


def random_complex_matrix(rng, n):
    return (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))).tolist()


def random_complex_vector(rng, n):
    return (rng.normal(size=n) + 1j * rng.normal(size=n)).tolist()


class TestDoublePrecision:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        a = random_complex_matrix(rng, n)
        b = random_complex_vector(rng, n)
        x = solve(a, b)
        expected = np.linalg.solve(np.array(a), np.array(b))
        assert np.allclose(x, expected)

    def test_factor_then_solve_multiple_rhs(self):
        rng = np.random.default_rng(3)
        a = random_complex_matrix(rng, 4)
        lu, pivots = lu_factor(a)
        for seed in range(3):
            b = random_complex_vector(np.random.default_rng(seed), 4)
            x = lu_solve(lu, pivots, b)
            assert np.allclose(x, np.linalg.solve(np.array(a), np.array(b)))

    def test_pivoting_handles_zero_leading_entry(self):
        a = [[0.0 + 0j, 1.0 + 0j], [1.0 + 0j, 0.0 + 0j]]
        b = [2.0 + 0j, 3.0 + 0j]
        x = solve(a, b)
        assert x == [3.0 + 0j, 2.0 + 0j]

    def test_singular_matrix_raises(self):
        a = [[1.0 + 0j, 2.0 + 0j], [2.0 + 0j, 4.0 + 0j]]
        with pytest.raises(SingularMatrixError):
            solve(a, [1.0 + 0j, 1.0 + 0j])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            lu_factor([[1.0 + 0j, 2.0 + 0j]])

    def test_rhs_length_mismatch(self):
        lu, pivots = lu_factor([[1.0 + 0j]])
        with pytest.raises(ValueError):
            lu_solve(lu, pivots, [1.0 + 0j, 2.0 + 0j])

    def test_residual_norm(self):
        rng = np.random.default_rng(7)
        a = random_complex_matrix(rng, 5)
        b = random_complex_vector(rng, 5)
        x = solve(a, b)
        assert residual_norm(a, x, b) < 1e-10

    def test_vector_norm(self):
        assert vector_norm([1 + 0j, -3j, 2 + 2j]) == pytest.approx(3.0)
        assert vector_norm([]) == 0.0

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_random_solves_have_small_residuals(self, n, seed):
        rng = np.random.default_rng(seed)
        a = random_complex_matrix(rng, n)
        b = random_complex_vector(rng, n)
        try:
            x = solve(a, b)
        except SingularMatrixError:
            return
        assert residual_norm(a, x, b) < 1e-8 * max(1.0, vector_norm(b))


class TestExtendedPrecision:
    def _to_ctx(self, matrix, vector, ctx):
        m = [[ctx.from_complex(v) for v in row] for row in matrix]
        v = [ctx.from_complex(x) for x in vector]
        return m, v

    @pytest.mark.parametrize("ctx", [DOUBLE_DOUBLE, QUAD_DOUBLE], ids=["dd", "qd"])
    def test_solution_matches_double(self, ctx):
        rng = np.random.default_rng(11)
        a = random_complex_matrix(rng, 4)
        b = random_complex_vector(rng, 4)
        m, v = self._to_ctx(a, b, ctx)
        x = solve(m, v, ctx)
        expected = np.linalg.solve(np.array(a), np.array(b))
        got = np.array([ctx.to_complex(xi) for xi in x])
        assert np.allclose(got, expected)

    def test_double_double_reaches_smaller_residuals(self):
        """On an ill-conditioned system the dd solve leaves a much smaller
        residual than the double solve -- the reason the paper wants dd."""
        n = 8
        # Hilbert-like matrix: notoriously ill-conditioned.
        a = [[1.0 / (i + j + 1) + 0j for j in range(n)] for i in range(n)]
        b = [1.0 + 0j] * n

        x_double = solve(a, b, DOUBLE)
        res_double = residual_norm(a, x_double, b)

        ctx = DOUBLE_DOUBLE
        a_dd = [[ctx.from_complex(v) for v in row] for row in a]
        b_dd = [ctx.from_complex(v) for v in b]
        x_dd = solve(a_dd, b_dd, ctx)
        res_dd = residual_norm(a_dd, x_dd, b_dd, ctx)

        assert res_dd < res_double
        assert res_dd < 1e-20

    def test_vector_norm_with_dd(self):
        ctx = DOUBLE_DOUBLE
        values = [ctx.from_complex(3 + 4j), ctx.from_complex(1j)]
        assert vector_norm(values, ctx) == pytest.approx(5.0)
