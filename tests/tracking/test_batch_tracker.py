"""Differential tests: the batched tracker against the scalar tracker.

Both engines share the homotopy, the step-control policy and the Newton
convergence rules, so on any well-conditioned system they must find the
*same solution sets* -- compared here as sorted root lists to (double-double
where applicable) tolerance.  The fixtures cover the seed start-system
shapes plus a Speelpenning instance (product monomials exercise the
forward/backward gradient sweep of the batched evaluator), and the masked
machinery: chunking, lane retirement, and failure attribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPUReferenceEvaluator
from repro.errors import ConfigurationError
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.polynomials.generators import speelpenning_system
from repro.tracking import (
    BatchTracker,
    Homotopy,
    PathStatus,
    PathTracker,
    TrackerOptions,
    start_solutions,
    total_degree_start_system,
)
from repro.tracking.batch_tracker import PathBatch


def decoupled_quadratic_system():
    """``f_i = x_i^2 - a_i``: the seed tracker-test fixture."""
    polys = []
    for i, a in enumerate([2.0, 3.0]):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-a + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys)


def speelpenning_chain_system():
    """``x0 x1 x2 = 8`` with chain couplings: a Speelpenning product drives
    the Jacobian, so the batched gradient sweep is on the critical path."""
    polys = [
        Polynomial([(1 + 0j, Monomial((0, 1, 2), (1, 1, 1))),
                    (-8 + 0j, Monomial((), ()))]),
        Polynomial([(1 + 0j, Monomial((0,), (1,))), (-1 + 0j, Monomial((1,), (1,)))]),
        Polynomial([(1 + 0j, Monomial((1,), (1,))), (-1 + 0j, Monomial((2,), (1,)))]),
    ]
    return PolynomialSystem(polys, dimension=3)


def scalar_results(system, context, options=None, starts=None):
    start = total_degree_start_system(system)
    homotopy = Homotopy(CPUReferenceEvaluator(start, context=context),
                        CPUReferenceEvaluator(system, context=context),
                        context=context)
    tracker = PathTracker(homotopy, context=context, options=options)
    return [tracker.track(s) for s in (starts or list(start_solutions(system)))]


def batch_results(system, context, options=None, batch_size=None, starts=None):
    start = total_degree_start_system(system)
    tracker = BatchTracker(start, system, context=context, options=options,
                           batch_size=batch_size)
    return tracker.track_many(starts or list(start_solutions(system)))


def sorted_roots(results, context, digits=8):
    roots = []
    for r in results:
        if not r.success:
            continue
        point = [context.to_complex(x) if not isinstance(x, (int, float, complex))
                 else complex(x) for x in r.solution]
        roots.append(tuple((round(z.real, digits), round(z.imag, digits))
                           for z in point))
    return sorted(roots)


def assert_same_solution_sets(scalar, batched, context, tolerance=1e-8):
    assert sum(r.success for r in scalar) == sum(r.success for r in batched)
    left = sorted_roots(scalar, context)
    right = sorted_roots(batched, context)
    assert len(left) == len(right)
    for a, b in zip(left, right):
        for (ar, ai), (br, bi) in zip(a, b):
            assert abs(ar - br) <= tolerance
            assert abs(ai - bi) <= tolerance


class TestDifferentialAgainstScalarTracker:
    @pytest.mark.parametrize("context", [DOUBLE, DOUBLE_DOUBLE],
                             ids=lambda c: c.name)
    def test_decoupled_quadratics(self, context):
        scalar = scalar_results(decoupled_quadratic_system(), context)
        batched = batch_results(decoupled_quadratic_system(), context)
        assert all(r.success for r in batched)
        assert_same_solution_sets(scalar, batched, context)

    def test_speelpenning_chain(self):
        system = speelpenning_chain_system()
        scalar = scalar_results(system, DOUBLE)
        batched = batch_results(system, DOUBLE)
        assert all(r.success for r in batched)
        assert_same_solution_sets(scalar, batched, DOUBLE)

    def test_speelpenning_chain_dd_matches_double_roots(self):
        system = speelpenning_chain_system()
        batched_dd = batch_results(system, DOUBLE_DOUBLE)
        scalar_d = scalar_results(system, DOUBLE)
        assert all(r.success for r in batched_dd)
        assert_same_solution_sets(scalar_d, batched_dd, DOUBLE_DOUBLE)

    def test_classic_speelpenning_example_system(self):
        # Every polynomial is the full product x0 x1 x2 minus a constant;
        # only the first path bundle converges to actual solutions of the
        # (inconsistent-looking but square) system where constants differ,
        # so compare engine against engine, not against a closed form.
        system = speelpenning_system(2)
        scalar = scalar_results(system, DOUBLE)
        batched = batch_results(system, DOUBLE)
        assert_same_solution_sets(scalar, batched, DOUBLE)

    def test_tangent_predictor_agrees_too(self):
        options = TrackerOptions(predictor="tangent")
        system = decoupled_quadratic_system()
        scalar = scalar_results(system, DOUBLE, options=options)
        batched = batch_results(system, DOUBLE, options=options)
        assert_same_solution_sets(scalar, batched, DOUBLE)

    def test_chunked_batches_agree_with_single_batch(self):
        system = speelpenning_chain_system()
        whole = batch_results(system, DOUBLE)
        chunked = batch_results(system, DOUBLE, batch_size=2)
        assert_same_solution_sets(whole, chunked, DOUBLE)

    def test_track_many_delegation(self):
        system = decoupled_quadratic_system()
        start = total_degree_start_system(system)
        homotopy = Homotopy(CPUReferenceEvaluator(start), CPUReferenceEvaluator(system))
        tracker = PathTracker(homotopy)
        starts = list(start_solutions(system))
        delegated = tracker.track_many(starts, batch_size=2)
        sequential = tracker.track_many(starts)
        assert_same_solution_sets(sequential, delegated, DOUBLE)


class TestLaneRetirement:
    def test_bad_start_lane_retires_without_stalling_batch(self):
        system = speelpenning_chain_system()
        good = list(start_solutions(system))
        starts = [[0j, 0j, 0j]] + good
        results = batch_results(system, DOUBLE, starts=starts)
        assert not results[0].success
        assert results[0].failure_reason == "start point does not satisfy the start system"
        assert all(r.success for r in results[1:])

    def test_max_steps_reported(self):
        system = decoupled_quadratic_system()
        options = TrackerOptions(max_steps=2, initial_step=1e-3, max_step=1e-3)
        results = batch_results(system, DOUBLE, options=options)
        assert not any(r.success for r in results)
        assert all(r.failure_reason == "maximum number of steps exceeded"
                   for r in results)

    def test_evaluation_log_counts_shrink_as_lanes_retire(self):
        system = decoupled_quadratic_system()
        start = total_degree_start_system(system)
        tracker = BatchTracker(start, system, context=DOUBLE)
        outcome = tracker.track_batches(list(start_solutions(system)))
        assert outcome.batched_evaluations == len(outcome.evaluation_log)
        assert max(outcome.evaluation_log) == 4  # full batch at the start
        assert min(outcome.evaluation_log) >= 1
        # the per-lane total is what a scalar tracker would have paid
        assert outcome.lane_evaluations >= outcome.batched_evaluations

    def test_status_counts(self):
        system = decoupled_quadratic_system()
        start = total_degree_start_system(system)
        tracker = BatchTracker(start, system, context=DOUBLE)
        outcome = tracker.track_batches(list(start_solutions(system)))
        assert outcome.status_counts() == {"success": 4}

    def test_status_counts_aggregate_across_chunks(self):
        system = decoupled_quadratic_system()
        start = total_degree_start_system(system)
        good = list(start_solutions(system))
        starts = [[0j, 0j]] + good  # chunk 1 holds the failing lane
        tracker = BatchTracker(start, system, context=DOUBLE, batch_size=2)
        outcome = tracker.track_batches(starts)
        assert len(outcome.batches) == 3
        counts = outcome.status_counts()
        assert counts.get("start_failed") == 1
        assert counts.get("success") == 4


class TestPathBatchStructure:
    def test_select_and_scatter_round_trip(self):
        from repro.multiprec.backend import COMPLEX128_BACKEND

        batch = PathBatch.from_start_solutions(
            COMPLEX128_BACKEND, [[1 + 0j, 2 + 0j], [3 + 0j, 4 + 0j],
                                 [5 + 0j, 6 + 0j]], initial_step=0.1)
        lanes = np.array([0, 2])
        sub = batch.select(lanes)
        assert sub.n_paths == 2 and sub.dimension == 2
        sub.t[:] = 0.5
        sub.points[0, 0] = 9 + 0j
        batch.scatter(lanes, sub)
        assert batch.t.tolist() == [0.5, 0.0, 0.5]
        assert batch.points[0, 0] == 9 + 0j
        assert batch.points[0, 1] == 3 + 0j

    def test_retire_masks_lanes(self):
        from repro.multiprec.backend import COMPLEX128_BACKEND

        batch = PathBatch.from_start_solutions(
            COMPLEX128_BACKEND, [[1 + 0j], [2 + 0j]], initial_step=0.1)
        batch.retire(np.array([True, False]), PathStatus.STEP_UNDERFLOW)
        assert batch.active.tolist() == [False, True]
        assert batch.status[0] == int(PathStatus.STEP_UNDERFLOW)

    def test_unregistered_context_is_rejected_clearly(self):
        from dataclasses import replace

        from repro.multiprec import DOUBLE

        system = decoupled_quadratic_system()
        start = total_degree_start_system(system)
        octuple = replace(DOUBLE, name="od", description="octuple double")
        with pytest.raises(ConfigurationError):
            BatchTracker(start, system, context=octuple)


class TestQuadDoubleBatchTracking:
    """The qd backend drives the batch stack end to end (seed fixtures)."""

    def test_decoupled_quadratics_match_scalar_qd_tracker(self):
        system = decoupled_quadratic_system()
        scalar = scalar_results(system, QUAD_DOUBLE)
        batched = batch_results(system, QUAD_DOUBLE)
        assert all(r.success for r in batched)
        # Both engines run the same operation sequences per lane; endpoints
        # agree far below double precision (working tolerance).
        assert_same_solution_sets(scalar, batched, QUAD_DOUBLE, tolerance=1e-14)

    def test_qd_endpoints_sharper_than_double(self):
        options = TrackerOptions(end_tolerance=1e-30, end_iterations=20)
        batched = batch_results(decoupled_quadratic_system(), QUAD_DOUBLE,
                                options=options)
        assert all(r.success for r in batched)
        assert max(r.residual for r in batched) < 1e-30

    def test_chunked_qd_batches_agree(self):
        system = decoupled_quadratic_system()
        whole = batch_results(system, QUAD_DOUBLE)
        chunked = batch_results(system, QUAD_DOUBLE, batch_size=2)
        assert_same_solution_sets(whole, chunked, QUAD_DOUBLE)

    @pytest.mark.slow
    def test_speelpenning_chain_qd(self):
        system = speelpenning_chain_system()
        scalar = scalar_results(system, QUAD_DOUBLE)
        batched = batch_results(system, QUAD_DOUBLE)
        assert_same_solution_sets(scalar, batched, QUAD_DOUBLE, tolerance=1e-14)


class TestCheckpoints:
    """Per-lane checkpoint export and warm-restarted resume."""

    @staticmethod
    def tracked(system, context, options, starts=None, resume_from=None):
        start = total_degree_start_system(system)
        tracker = BatchTracker(start, system, context=context, options=options)
        if resume_from is not None:
            return tracker.track_batches(resume_from=resume_from)
        return tracker.track_batches(starts or list(start_solutions(system)))

    def test_checkpoints_align_with_results_and_capture_state(self):
        from repro.tracking import LaneCheckpoint

        system = decoupled_quadratic_system()
        outcome = self.tracked(system, DOUBLE, None)
        cps = outcome.checkpoints()
        assert len(cps) == len(outcome.results) == 4
        for cp, result in zip(cps, outcome.results):
            assert isinstance(cp, LaneCheckpoint)
            assert cp.context_name == "d"
            assert cp.status is PathStatus.SUCCESS and not cp.failed
            assert cp.failure_reason is None
            assert cp.t == 1.0 and cp.resumes_mid_path
            assert len(cp.point) == 2
            assert cp.steps_accepted == result.steps_accepted
            assert cp.newton_iterations == result.newton_iterations
            assert cp.consecutive_successes > 0

    def test_failure_cause_recorded(self):
        system = decoupled_quadratic_system()
        options = TrackerOptions(max_steps=2, initial_step=1e-3, max_step=1e-3)
        cps = self.tracked(system, DOUBLE, options).checkpoints()
        assert all(cp.status is PathStatus.MAX_STEPS and cp.failed for cp in cps)
        assert all(cp.failure_reason == "maximum number of steps exceeded"
                   for cp in cps)
        assert all(0.0 < cp.t < 1.0 for cp in cps)

    def test_same_rung_resume_is_bit_for_bit(self):
        """Interrupt a run by max_steps, resume from the checkpoints at the
        same rung: endpoints AND work counters must equal the cold run's
        exactly -- the checkpoint is the complete lane state."""
        from repro.bench.batch_tracking import cyclic_quadratic_system

        system = cyclic_quadratic_system(4)
        opts = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
        cold = self.tracked(system, DOUBLE, opts)

        short = TrackerOptions(end_tolerance=5e-17, end_iterations=12,
                               max_steps=4)
        interrupted = self.tracked(system, DOUBLE, short)
        assert interrupted.status_counts() == {"max_steps": 16}

        resumed = self.tracked(system, DOUBLE, opts,
                               resume_from=interrupted.checkpoints())
        assert resumed.status_counts() == cold.status_counts()
        for a, b in zip(cold.results, resumed.results):
            assert [complex(x) for x in a.solution] == \
                [complex(x) for x in b.solution]
            assert a.residual == b.residual
            assert (a.steps_accepted, a.steps_rejected, a.newton_iterations) \
                == (b.steps_accepted, b.steps_rejected, b.newton_iterations)

    def test_cross_rung_resume_replays_only_the_endgame(self):
        """d failures on the escalation acceptance workload sit at t = 1;
        resuming them at dd converges every lane at a tiny fraction of the
        cold re-track's evaluations."""
        from repro.bench.batch_tracking import cyclic_quadratic_system

        system = cyclic_quadratic_system(4)
        opts = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
        at_d = self.tracked(system, DOUBLE, opts)
        failed = [(s, cp) for s, cp, r in zip(
            list(start_solutions(system)), at_d.checkpoints(), at_d.results)
            if not r.success]
        assert failed
        checkpoints = [cp for _, cp in failed]
        assert all(cp.t == 1.0 for cp in checkpoints)

        warm = self.tracked(system, DOUBLE_DOUBLE, opts,
                            resume_from=checkpoints)
        assert all(r.success for r in warm.results)
        cold = self.tracked(system, DOUBLE_DOUBLE, opts,
                            starts=[s for s, _ in failed])
        assert all(r.success for r in cold.results)
        assert warm.lane_evaluations < cold.lane_evaluations / 10
        # Warm and cold land on the same roots (dd tolerance).
        assert_same_solution_sets(cold.results, warm.results, DOUBLE_DOUBLE,
                                  tolerance=1e-10)

    def test_start_failed_checkpoint_is_recorrected_on_resume(self):
        """A START_FAILED lane has no accepted point; resuming it re-runs
        the start correction, so a checkpoint whose raw start is valid
        tracks to success."""
        from dataclasses import replace

        system = decoupled_quadratic_system()
        outcome = self.tracked(system, DOUBLE, None)
        good = outcome.checkpoints()[0]
        # Pretend the start correction had failed with the raw start point.
        start_point = tuple(list(start_solutions(system))[0])
        doctored = replace(good, point=start_point, prev_point=start_point,
                           t=0.0, prev_t=0.0, has_prev=False,
                           status=PathStatus.START_FAILED,
                           steps_accepted=0, steps_rejected=0,
                           newton_iterations=0, consecutive_successes=0)
        resumed = self.tracked(system, DOUBLE, None, resume_from=[doctored])
        assert resumed.results[0].success

    def test_step_underflow_resume_resets_dt(self):
        from dataclasses import replace

        from repro.multiprec.backend import COMPLEX128_BACKEND

        system = decoupled_quadratic_system()
        cp = self.tracked(system, DOUBLE, None).checkpoints()[0]
        underflowed = replace(cp, t=0.5, dt=1e-9,
                              status=PathStatus.STEP_UNDERFLOW)
        tracking = replace(cp, t=0.5, dt=1e-9, status=PathStatus.TRACKING)
        batch = PathBatch.from_checkpoints(
            COMPLEX128_BACKEND, [underflowed, tracking], initial_step=0.1)
        assert batch.dt[0] == 0.1      # underflow: fresh step budget
        assert batch.dt[1] == 1e-9     # mid-path interrupt: exact continuation
        assert batch.active.tolist() == [True, True]
        assert batch.status.tolist() == [int(PathStatus.TRACKING)] * 2

    def test_finished_lanes_resume_straight_to_endgame(self):
        from repro.multiprec.backend import COMPLEX128_BACKEND

        system = decoupled_quadratic_system()
        cps = self.tracked(system, DOUBLE, None).checkpoints()
        batch = PathBatch.from_checkpoints(COMPLEX128_BACKEND, cps,
                                           initial_step=0.1)
        # t = 1 lanes skip the predictor-corrector loop entirely.
        assert not batch.active.any()

    def test_checkpoint_round_trip_preserves_points_bitwise_dd(self):
        from repro.multiprec.backend import COMPLEX_DD_BACKEND

        system = decoupled_quadratic_system()
        outcome = self.tracked(system, DOUBLE_DOUBLE, None)
        batch = outcome.batches[0]
        rebuilt = PathBatch.from_checkpoints(COMPLEX_DD_BACKEND,
                                             batch.checkpoints(),
                                             initial_step=0.1)
        assert np.array_equal(rebuilt.points.real.hi, batch.points.real.hi)
        assert np.array_equal(rebuilt.points.real.lo, batch.points.real.lo)
        assert np.array_equal(rebuilt.points.imag.hi, batch.points.imag.hi)
        assert np.array_equal(rebuilt.points.imag.lo, batch.points.imag.lo)

    def test_widening_d_checkpoints_into_dd_batch_is_exact(self):
        from repro.multiprec.backend import COMPLEX_DD_BACKEND

        system = decoupled_quadratic_system()
        outcome = self.tracked(system, DOUBLE, None)
        batch = outcome.batches[0]
        widened = PathBatch.from_checkpoints(COMPLEX_DD_BACKEND,
                                             batch.checkpoints(),
                                             initial_step=0.1)
        assert np.array_equal(widened.points.real.hi, batch.points.real)
        assert not widened.points.real.lo.any()

    def test_both_or_neither_inputs_rejected(self):
        system = decoupled_quadratic_system()
        start = total_degree_start_system(system)
        tracker = BatchTracker(start, system, context=DOUBLE)
        starts = list(start_solutions(system))
        with pytest.raises(ConfigurationError):
            tracker.track_batches()
        cps = self.tracked(system, DOUBLE, None).checkpoints()
        with pytest.raises(ConfigurationError):
            tracker.track_batches(starts, resume_from=cps)

    def test_consecutive_success_streak_tracks_step_control(self):
        system = decoupled_quadratic_system()
        outcome = self.tracked(system, DOUBLE, None)
        for cp, r in zip(outcome.checkpoints(), outcome.results):
            assert cp.consecutive_successes <= cp.steps_accepted
            if r.steps_rejected == 0:
                assert cp.consecutive_successes == cp.steps_accepted


@pytest.mark.slow
class TestDifferentialSlow:
    """Larger differential sweeps, excluded from the tier-1 run."""

    def test_cyclic_quadratic_dimension_4_dd(self):
        from repro.bench.batch_tracking import cyclic_quadratic_system

        system = cyclic_quadratic_system(4)
        scalar = scalar_results(system, DOUBLE_DOUBLE)
        batched = batch_results(system, DOUBLE_DOUBLE, batch_size=8)
        assert_same_solution_sets(scalar, batched, DOUBLE_DOUBLE)

    def test_same_rung_resume_is_bit_for_bit_dd(self):
        """The dd plane arithmetic continues bit-for-bit across a
        checkpoint boundary too."""
        system = speelpenning_chain_system()
        start = total_degree_start_system(system)
        starts = list(start_solutions(system))
        cold = BatchTracker(start, system,
                            context=DOUBLE_DOUBLE).track_batches(starts)
        short = TrackerOptions(max_steps=3)
        interrupted = BatchTracker(start, system, context=DOUBLE_DOUBLE,
                                   options=short).track_batches(starts)
        resumed = BatchTracker(start, system, context=DOUBLE_DOUBLE) \
            .track_batches(resume_from=interrupted.checkpoints())
        for a, b in zip(cold.results, resumed.results):
            assert a.success == b.success
            for x, y in zip(a.solution, b.solution):
                assert x.real.hi == y.real.hi and x.real.lo == y.real.lo
                assert x.imag.hi == y.imag.hi and x.imag.lo == y.imag.lo
