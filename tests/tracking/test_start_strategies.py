"""Tests for the start-strategy layer (:mod:`repro.tracking.start_systems`).

Three families of promises:

* :class:`TotalDegreeStart` is a *protocol wrapper* around the historical
  module functions -- same start system, same enumeration order, same
  samples for the same seed (the default-path bit-for-bit guarantee);
* :class:`DiagonalStart` only accepts systems where the binomial start is
  sound (all rows diagonal-dominated, or all rows triangular) and its
  start solutions actually solve the start system;
* :class:`GenericMemberStart` validates its member/solution bundle and
  replays the member's solutions as start points.

Plus the full-draw sampling regression: ``sample_start_solutions`` at
``count == bezout`` must return every solution without the old rejection
loop's near-certain-collision degeneration.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.polynomials import (
    Monomial,
    Polynomial,
    PolynomialSystem,
    katsura_system,
    noon_system,
    random_sparse_system,
    speelpenning_product_system,
    triangular_root_count,
    triangular_sparse_system,
)
from repro.tracking import (
    DiagonalStart,
    GenericMemberStart,
    TotalDegreeStart,
    sample_start_solutions,
    solve_system,
    start_solutions,
    total_degree,
    total_degree_start_system,
)


def target_system():
    """Degrees 2 and 3: Bezout number 6."""
    p1 = Polynomial([
        (1 + 0j, Monomial((0,), (2,))),
        (1 + 0j, Monomial((1,), (1,))),
        (-3 + 0j, Monomial((), ())),
    ])
    p2 = Polynomial([
        (1 + 0j, Monomial((0, 1), (1, 2))),
        (-1 + 0j, Monomial((), ())),
    ])
    return PolynomialSystem([p1, p2])


def residual(system, point):
    return max(abs(v) for v in system.evaluate(point))


def point_set(points):
    """Order-insensitive, hashable view of a solution list."""
    return sorted(tuple((z.real, z.imag) for z in point) for point in points)


class TestTotalDegreeStart:
    def test_plan_mirrors_the_module_functions(self):
        system = target_system()
        plan = TotalDegreeStart().prepare(system)
        assert plan.strategy == "total-degree"
        assert plan.path_count == total_degree(system) == 6
        assert plan.start_system.polynomials == \
            total_degree_start_system(system).polynomials
        assert list(plan.solutions()) == list(start_solutions(system))

    def test_sampling_matches_the_module_sampler(self):
        system = target_system()
        plan = TotalDegreeStart().prepare(system)
        assert plan.sample_solutions(4, seed=9) == \
            sample_start_solutions(system, 4, seed=9)

    def test_sample_count_validation(self):
        plan = TotalDegreeStart().prepare(target_system())
        with pytest.raises(ConfigurationError):
            plan.sample_solutions(0)


class TestFullDrawSampling:
    """Regression: the rejection sampler degenerated as ``count`` approached
    the Bezout number (every re-roll almost surely collided).  The
    mixed-radix sampler draws indices without replacement, so a full draw
    is exact and instant."""

    def test_full_draw_returns_every_start_solution(self):
        system = target_system()
        bezout = total_degree(system)
        samples = sample_start_solutions(system, bezout, seed=0)
        assert len(samples) == bezout
        assert point_set(samples) == point_set(start_solutions(system))

    def test_full_draw_on_a_larger_system(self):
        system = speelpenning_product_system(3, seed=11)
        bezout = total_degree(system)
        samples = sample_start_solutions(system, bezout, seed=1)
        assert len(samples) == bezout == 27
        assert len(set(map(tuple, samples))) == bezout

    def test_near_full_draws_stay_distinct(self):
        system = target_system()
        bezout = total_degree(system)
        samples = sample_start_solutions(system, bezout - 1, seed=4)
        assert len(set(map(tuple, samples))) == bezout - 1

    def test_full_draw_is_still_seed_shuffled(self):
        system = target_system()
        a = sample_start_solutions(system, 6, seed=1)
        b = sample_start_solutions(system, 6, seed=2)
        assert point_set(a) == point_set(b)
        assert a != b  # different permutations of the same set


class TestDiagonalStart:
    def test_dense_dominated_rows_match_bezout(self):
        system = random_sparse_system(3, seed=5)
        plan = DiagonalStart().prepare(system)
        assert plan.strategy == "diagonal"
        assert plan.path_count == total_degree(system)

    def test_triangular_rows_beat_bezout(self):
        system = triangular_sparse_system(3)
        plan = DiagonalStart().prepare(system)
        assert plan.path_count == triangular_root_count(3) == 4
        assert plan.path_count < total_degree(system) == 12

    def test_start_solutions_solve_the_binomial_start(self):
        for system in (random_sparse_system(3, seed=5),
                       triangular_sparse_system(4)):
            plan = DiagonalStart().prepare(system)
            points = list(plan.solutions())
            assert len(points) == plan.path_count
            for point in points:
                assert residual(plan.start_system, point) < 1e-12

    def test_samples_are_distinct_start_solutions(self):
        plan = DiagonalStart().prepare(random_sparse_system(3, seed=5))
        samples = plan.sample_solutions(5, seed=3)
        assert len(set(map(tuple, samples))) == 5
        for point in samples:
            assert residual(plan.start_system, point) < 1e-12

    def test_deterministic_per_seed(self):
        system = random_sparse_system(3, seed=5)
        a = DiagonalStart(seed=17).prepare(system)
        b = DiagonalStart(seed=17).prepare(system)
        c = DiagonalStart(seed=18).prepare(system)
        assert a.start_system.polynomials == b.start_system.polynomials
        assert a.start_system.polynomials != c.start_system.polynomials

    @pytest.mark.parametrize("system", [katsura_system(3), noon_system(2)],
                             ids=["katsura-3", "noon-2"])
    def test_rejects_rows_without_a_dominant_diagonal(self, system):
        with pytest.raises(ConfigurationError):
            DiagonalStart().prepare(system)

    def test_rejects_mixed_dense_and_triangular_rows(self):
        """f0 = x0^2 + x1 is diagonal-dominated, f1 = x1 + x0^3 is only
        triangular -- mixing the two shapes under-counts the homotopy's
        solution set (3 finite roots, 2 start paths), so it must be
        refused, not silently accepted."""
        mixed = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (2,))),
                        (1 + 0j, Monomial((1,), (1,)))]),
            Polynomial([(1 + 0j, Monomial((1,), (1,))),
                        (1 + 0j, Monomial((0,), (3,)))]),
        ])
        with pytest.raises(ConfigurationError):
            DiagonalStart().prepare(mixed)

    def test_rejects_equal_crossing_degree(self):
        """A foreign monomial matching the diagonal's x_i-degree would put
        earlier variables into the univariate leading coefficient -- the
        dominance must be strict."""
        system = PolynomialSystem([
            Polynomial([(1 + 0j, Monomial((0,), (2,))),
                        (-1 + 0j, Monomial((), ()))]),
            Polynomial([(1 + 0j, Monomial((1,), (2,))),
                        (1 + 0j, Monomial((0, 1), (1, 2,))),
                        (-1 + 0j, Monomial((), ()))]),
        ])
        with pytest.raises(ConfigurationError):
            DiagonalStart().prepare(system)


class TestGenericMemberStart:
    def test_replays_the_member_solutions(self):
        member = target_system()
        points = [[1 + 0j, 2 + 0j], [3 + 0j, 4 + 0j]]
        plan = GenericMemberStart(member, points).prepare(target_system())
        assert plan.strategy == "generic-member"
        assert plan.path_count == 2
        assert list(plan.solutions()) == points

    def test_from_report_round_trips(self):
        system = katsura_system(2)
        report = solve_system(system)
        start = GenericMemberStart.from_report(report)
        plan = start.prepare(system)
        assert plan.start_system is report.system
        assert plan.path_count == len(report.solutions)
        assert list(plan.solutions()) == \
            [list(s.point) for s in report.solutions]

    def test_samples_draw_without_replacement(self):
        points = [[complex(k), complex(-k)] for k in range(6)]
        plan = GenericMemberStart(target_system(), points).prepare(
            target_system())
        samples = plan.sample_solutions(6, seed=0)
        assert point_set(samples) == point_set(points)

    def test_rejects_empty_solution_lists(self):
        with pytest.raises(ConfigurationError):
            GenericMemberStart(target_system(), [])

    def test_rejects_mismatched_solution_length(self):
        with pytest.raises(ConfigurationError):
            GenericMemberStart(target_system(), [[1 + 0j]])

    def test_rejects_mismatched_target_dimension(self):
        start = GenericMemberStart(target_system(), [[1 + 0j, 2 + 0j]])
        with pytest.raises(ConfigurationError):
            start.prepare(katsura_system(3))


class TestDefaultPathPreservation:
    """``solve_system`` without ``start=`` must be indistinguishable from
    an explicit ``TotalDegreeStart`` -- the refactor's bit-for-bit
    promise on the historical default."""

    def test_explicit_total_degree_is_bit_for_bit_the_default(self):
        system = katsura_system(2)
        default = solve_system(system, seed=3)
        explicit = solve_system(system, start=TotalDegreeStart(), seed=3)
        assert default.start_strategy == explicit.start_strategy == \
            "total-degree"
        assert default.solutions == explicit.solutions
        assert default.paths_tracked == explicit.paths_tracked
        assert default.paths_by_context == explicit.paths_by_context
        assert default.converged_by_context == explicit.converged_by_context
        assert default.resume_t_by_context == explicit.resume_t_by_context
        assert [f.status for f in default.failures] == \
            [f.status for f in explicit.failures]

    def test_diagonal_report_records_its_strategy(self):
        report = solve_system(triangular_sparse_system(3),
                              start=DiagonalStart())
        assert report.start_strategy == "diagonal"
        assert report.paths_tracked == triangular_root_count(3)
        assert report.bezout_number == 12
