"""Tests for Newton's corrector driven by the evaluator interface."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConvergenceError
from repro.core import CPUReferenceEvaluator, GPUEvaluator
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import NewtonCorrector


def circle_line_system():
    """x0^2 + x1^2 - 2 = 0, x0 - x1 = 0: solutions (+-1, +-1)."""
    p1 = Polynomial([
        (1 + 0j, Monomial((0,), (2,))),
        (1 + 0j, Monomial((1,), (2,))),
        (-2 + 0j, Monomial((), ())),
    ])
    p2 = Polynomial([
        (1 + 0j, Monomial((0,), (1,))),
        (-1 + 0j, Monomial((1,), (1,))),
    ])
    return PolynomialSystem([p1, p2])


class TestNewtonOnCPUReference:
    def test_converges_to_nearby_root(self):
        system = circle_line_system()
        corrector = NewtonCorrector(CPUReferenceEvaluator(system), tolerance=1e-12)
        result = corrector.correct([1.2 + 0.1j, 0.9 - 0.1j])
        assert result.converged
        assert result.residual_norm < 1e-12
        assert abs(result.solution[0] - 1.0) < 1e-8
        assert abs(result.solution[1] - 1.0) < 1e-8

    def test_converges_to_negative_root_from_negative_start(self):
        system = circle_line_system()
        corrector = NewtonCorrector(CPUReferenceEvaluator(system))
        result = corrector.correct([-1.3, -0.8])
        assert result.converged
        assert abs(result.solution[0] + 1.0) < 1e-8

    def test_quadratic_convergence_history(self):
        system = circle_line_system()
        corrector = NewtonCorrector(CPUReferenceEvaluator(system), tolerance=1e-14)
        result = corrector.correct([1.05, 1.02])
        assert result.converged
        residuals = [step.residual_norm for step in result.history]
        # Quadratic convergence: each residual is (roughly) the square of the
        # previous one once in the basin.
        assert all(residuals[i + 1] < residuals[i] for i in range(len(residuals) - 2))
        assert result.iterations <= 6

    def test_history_and_steps_recorded(self):
        system = circle_line_system()
        result = NewtonCorrector(CPUReferenceEvaluator(system)).correct([1.1, 1.0])
        assert len(result.history) == result.iterations
        assert result.history[0].iteration == 1

    def test_failure_returns_unconverged_result(self):
        system = circle_line_system()
        corrector = NewtonCorrector(CPUReferenceEvaluator(system),
                                    tolerance=1e-15, max_iterations=1)
        result = corrector.correct([5.0, -3.0])
        assert not result.converged
        assert result.iterations == 1

    def test_failure_can_raise(self):
        system = circle_line_system()
        corrector = NewtonCorrector(CPUReferenceEvaluator(system), tolerance=1e-15,
                                    max_iterations=1, raise_on_failure=True)
        with pytest.raises(ConvergenceError):
            corrector.correct([5.0, -3.0])

    def test_already_converged_point_returns_immediately(self):
        system = circle_line_system()
        corrector = NewtonCorrector(CPUReferenceEvaluator(system), tolerance=1e-9)
        result = corrector.correct([1.0, 1.0])
        assert result.converged
        assert result.iterations == 1
        assert result.update_norm == 0.0


class TestNewtonInDoubleDouble:
    @staticmethod
    def sqrt2_system():
        """x0^2 - 2 = 0, x0 - x1 = 0: the root sqrt(2) is not representable
        in double precision, so the achievable residual floor depends on the
        working precision."""
        p1 = Polynomial([
            (1 + 0j, Monomial((0,), (2,))),
            (-2 + 0j, Monomial((), ())),
        ])
        p2 = Polynomial([
            (1 + 0j, Monomial((0,), (1,))),
            (-1 + 0j, Monomial((1,), (1,))),
        ])
        return PolynomialSystem([p1, p2])

    def test_reaches_beyond_double_accuracy(self):
        """With double-double evaluation and linear algebra the residual can
        be driven far below the double-precision roundoff floor -- the whole
        point of the paper's extended-precision path tracking."""
        system = self.sqrt2_system()
        evaluator = CPUReferenceEvaluator(system, context=DOUBLE_DOUBLE)
        corrector = NewtonCorrector(evaluator, context=DOUBLE_DOUBLE,
                                    tolerance=1e-28, max_iterations=30)
        result = corrector.correct([1.4, 1.4])
        assert result.converged
        assert result.residual_norm < 1e-28

    def test_double_cannot_reach_that_tolerance(self):
        system = self.sqrt2_system()
        corrector = NewtonCorrector(CPUReferenceEvaluator(system), context=DOUBLE,
                                    tolerance=1e-28, max_iterations=30)
        result = corrector.correct([1.4, 1.4])
        # The best a double iterate can do is |x^2 - 2| of the order of the
        # double roundoff (~2e-16), far above the requested tolerance.
        assert not result.converged
        assert result.residual_norm > 1e-17


class TestNewtonOnGPUEvaluator:
    def test_gpu_pipeline_drives_newton(self):
        """The GPU evaluator plugs into the same corrector.

        The system ``f_i = x0 x1 x2 - x_j x_k x_l^2`` (with ``(j, k, l)`` a
        rotation of ``(0, 1, 2)``) is regular -- every polynomial has two
        monomials of three variables each -- vanishes at ``x = (1, 1, 1)``,
        and has a nonsingular (negated permutation) Jacobian there.
        """
        n = 3
        polys = []
        for i in range(n):
            j, k_, l = i, (i + 1) % n, (i + 2) % n
            m1 = Monomial(tuple(sorted((j, k_, l))), (1, 1, 1))
            m2 = Monomial.from_dict({j: 1, k_: 1, l: 2})
            polys.append(Polynomial([(1 + 0j, m1), (-1 + 0j, m2)]))
        system = PolynomialSystem(polys)
        assert system.regularity() is not None

        evaluator = GPUEvaluator(system, check_capacity=False)
        corrector = NewtonCorrector(evaluator, tolerance=1e-10, max_iterations=40)
        result = corrector.correct([1.05 + 0.01j, 0.97 - 0.02j, 1.02 + 0.02j])
        assert result.converged
        # x = (1,1,1) is a solution; Newton from a nearby start should stay
        # close to it (the solution set may contain other nearby points, so
        # just check the residual and proximity).
        assert result.residual_norm < 1e-10


class TestBatchCorrectorMatchesScalar:
    """Differential pin: the batched corrector takes exactly the scalar
    corrector's decisions per lane -- including the relaxed small-update
    acceptance, which both apply in the same iteration and both treat as
    final (no further iterating when the relaxed test fails)."""

    @staticmethod
    def _fixture():
        from repro.tracking import BatchHomotopy, Homotopy, total_degree_start_system
        import numpy as np

        system = circle_line_system()
        start = total_degree_start_system(system)
        scalar_homotopy = Homotopy(CPUReferenceEvaluator(start),
                                   CPUReferenceEvaluator(system))
        batch_homotopy = BatchHomotopy(start, system)
        # Starts around the root (1, 1): in the basin, near-converged, and
        # far enough out that the iteration cap bites.
        points = [
            [1.2 + 0.1j, 0.9 - 0.1j],
            [1.0 + 1e-9j, 1.0 - 1e-9j],
            [1.0000001, 0.9999999],
            [2.5, -1.5],
            [1.0, 1.0],
        ]
        return scalar_homotopy, batch_homotopy, points

    @pytest.mark.parametrize("tolerance", [1e-10, 1e-14, 1e-15])
    def test_converged_iterations_and_residuals_agree(self, tolerance):
        import numpy as np

        from repro.multiprec.backend import COMPLEX128_BACKEND
        from repro.tracking import BatchNewtonCorrector

        scalar_homotopy, batch_homotopy, points = self._fixture()
        max_iterations = 8

        scalar_outcomes = []
        for point in points:
            corrector = NewtonCorrector(scalar_homotopy.at(1.0),
                                        tolerance=tolerance,
                                        max_iterations=max_iterations)
            scalar_outcomes.append(corrector.correct(point))

        batch = COMPLEX128_BACKEND.from_points(points)
        batched = BatchNewtonCorrector(
            batch_homotopy.at(np.ones(len(points))), COMPLEX128_BACKEND,
            tolerance=tolerance, max_iterations=max_iterations,
        ).correct(batch)

        for lane, scalar in enumerate(scalar_outcomes):
            assert bool(batched.converged[lane]) == scalar.converged, lane
            assert int(batched.iterations[lane]) == scalar.iterations, lane
            assert batched.residual_norm[lane] == pytest.approx(
                scalar.residual_norm, rel=1e-6, abs=1e-30), lane
            got = [complex(z) for z in batched.solution[:, lane]]
            expected = [complex(z) for z in scalar.solution]
            for g, e in zip(got, expected):
                assert abs(g - e) <= 1e-9 * max(1.0, abs(e)), lane

    def test_small_update_lane_stops_iterating_like_scalar(self):
        """A lane whose update falls below tolerance while its residual sits
        above the relaxed bound must retire unconverged -- the scalar
        corrector gives up there, and the batched one must not keep
        polishing it."""
        import numpy as np

        from repro.multiprec.backend import COMPLEX128_BACKEND
        from repro.tracking import BatchNewtonCorrector

        from repro.tracking import BatchHomotopy, Homotopy, total_degree_start_system

        # A scaled sqrt(2) system: the residual floor sits at ~1e6 * eps
        # (the root is not representable) while Newton updates shrink to
        # ~eps, so a tolerance between the two floors makes the update test
        # pass while the relaxed residual bound (1e2 * tol) fails -- the
        # give-up branch of the scalar small-update exit.
        scale = 1e6
        p1 = Polynomial([
            (scale + 0j, Monomial((0,), (2,))),
            (-2 * scale + 0j, Monomial((), ())),
        ])
        p2 = Polynomial([
            (1 + 0j, Monomial((0,), (1,))),
            (-1 + 0j, Monomial((1,), (1,))),
        ])
        system = PolynomialSystem([p1, p2])
        start = total_degree_start_system(system)
        scalar_homotopy = Homotopy(CPUReferenceEvaluator(start),
                                   CPUReferenceEvaluator(system))
        batch_homotopy = BatchHomotopy(start, system)
        tolerance = 1e-14
        points = [[1.4, 1.4], [1.41421356, 1.41421356]]

        scalar_outcomes = []
        for point in points:
            corrector = NewtonCorrector(scalar_homotopy.at(1.0),
                                        tolerance=tolerance, max_iterations=20)
            scalar_outcomes.append(corrector.correct(point))
        # Precondition: the scalar corrector actually takes the small-update
        # exit early (well before the iteration cap) and rejects.
        assert all(not r.converged for r in scalar_outcomes)
        assert all(r.iterations < 20 for r in scalar_outcomes)

        batch = COMPLEX128_BACKEND.from_points(points)
        batched = BatchNewtonCorrector(
            batch_homotopy.at(np.ones(len(points))), COMPLEX128_BACKEND,
            tolerance=tolerance, max_iterations=20,
        ).correct(batch)
        for lane, scalar in enumerate(scalar_outcomes):
            assert not batched.converged[lane]
            assert int(batched.iterations[lane]) == scalar.iterations, lane
