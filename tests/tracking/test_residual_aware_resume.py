"""Residual-aware warm restart: certified checkpoints skip the endgame
re-entry round.

A lane checkpointed at ``t >= 1`` whose stored residual already satisfies
the endgame tolerance carries its own convergence certificate -- the
capturing run *measured* that residual at that point -- so re-entering the
endgame corrector only spends an evaluation round re-deriving it.  With
``skip_certified_endgame`` the lane retires as a success immediately; the
count surfaces in :attr:`BatchTrackResult.endgame_reentries_skipped` and,
through :func:`solve_system`, in
:attr:`SolveReport.endgame_skips_by_context`.

The flag defaults off at the tracker level, preserving PR 3's bit-for-bit
same-arithmetic resume guarantee; :func:`solve_system` switches it on for
warm escalation unless the policy says ``residual_aware=False``.  The
certificate is conservative: endgame *failures* checkpoint with residuals
above the tolerance by construction, so the escalated failed-residue flow
legitimately records 0 skips -- the payoff case is resuming full
checkpoint sets (interrupted-run replays), exercised directly below.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.bench.batch_tracking import cyclic_quadratic_system
from repro.multiprec.numeric import DOUBLE, DOUBLE_DOUBLE
from repro.tracking.batch_tracker import BatchTracker, PathStatus
from repro.tracking.solver import EscalationPolicy, solve_system
from repro.tracking.start_systems import start_solutions, total_degree_start_system
from repro.tracking.tracker import TrackerOptions


@pytest.fixture(scope="module")
def workload():
    target = cyclic_quadratic_system(3)
    start = total_degree_start_system(target)
    starts = list(start_solutions(target))
    return start, target, starts


def tracked_checkpoints(workload, options):
    start, target, starts = workload
    tracker = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                           options=options)
    outcome = tracker.track_batches(starts)
    return outcome, outcome.checkpoints()


class TestSkipCertifiedEndgame:
    def test_certified_lanes_skip_the_reentry_round(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        assert all(cp.status is PathStatus.SUCCESS for cp in checkpoints)
        assert all(cp.residual <= opts.end_tolerance for cp in checkpoints)

        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=checkpoints)
        assert resumed.endgame_reentries_skipped == len(checkpoints)
        assert resumed.batched_evaluations == 0  # no re-entry round at all
        assert all(r.success for r in resumed.results)
        # The certified lanes keep their measured residual and counters.
        for cp, result in zip(checkpoints, resumed.results):
            assert result.residual == cp.residual
            assert result.steps_accepted == cp.steps_accepted

    def test_default_resume_still_reenters(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts)
        resumed = resumer.track_batches(resume_from=checkpoints)
        assert resumed.endgame_reentries_skipped == 0
        assert resumed.batched_evaluations >= 1  # the endgame round ran

    def test_uncertified_residual_still_reenters(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        # Degrade the stored residuals above the tolerance: the certificates
        # are void, so the endgame must run even with the skip enabled.
        stale = [dataclasses.replace(cp, residual=1e-6) for cp in checkpoints]
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=stale)
        assert resumed.endgame_reentries_skipped == 0
        assert resumed.batched_evaluations >= 1
        assert all(r.success for r in resumed.results)

    def test_nan_residual_never_certifies(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        poisoned = [dataclasses.replace(cp, residual=float("nan"))
                    for cp in checkpoints]
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=poisoned)
        assert resumed.endgame_reentries_skipped == 0

    def test_mid_path_lanes_unaffected(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        # Rewind one lane to mid-path: it must track to t = 1 normally while
        # the others skip.
        rewound = list(checkpoints)
        rewound[0] = dataclasses.replace(rewound[0], t=0.5, prev_t=0.4)
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=rewound)
        assert resumed.endgame_reentries_skipped == len(checkpoints) - 1
        assert all(r.success for r in resumed.results)


class TestSolverAccounting:
    def test_solve_report_records_skips_per_rung(self):
        # A tolerance at the double roundoff floor: some paths genuinely
        # fail at d and escalate to dd.
        target = cyclic_quadratic_system(4)
        opts = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
        report = solve_system(target, options=opts,
                              escalation=EscalationPolicy(
                                  ladder=(DOUBLE, DOUBLE_DOUBLE)))
        field_names = {f.name for f in dataclasses.fields(report)}
        assert "endgame_skips_by_context" in field_names
        assert report.endgame_skips_by_context.get("d", 0) == 0  # first rung
        # dd resumed the d failures; the accounting key must exist either way.
        if "dd" in report.paths_by_context:
            assert "dd" in report.endgame_skips_by_context

    def test_residual_aware_flag_defaults_on(self):
        assert EscalationPolicy().residual_aware
        off = EscalationPolicy(residual_aware=False)
        assert not off.residual_aware
