"""Residual-aware warm restart: certified checkpoints skip the endgame
re-entry round.

A lane checkpointed at ``t >= 1`` whose stored residual already satisfies
the endgame tolerance carries its own convergence certificate -- the
capturing run *measured* that residual at that point -- so re-entering the
endgame corrector only spends an evaluation round re-deriving it.  With
``skip_certified_endgame`` the lane retires as a success immediately; the
count surfaces in :attr:`BatchTrackResult.endgame_reentries_skipped` and,
through :func:`solve_system`, in
:attr:`SolveReport.endgame_skips_by_context`.

The flag defaults off at the tracker level, preserving PR 3's bit-for-bit
same-arithmetic resume guarantee; :func:`solve_system` switches it on for
warm escalation unless the policy says ``residual_aware=False``.  The
certificate is conservative: endgame *failures* checkpoint with residuals
above the tolerance by construction, so the escalated failed-residue flow
legitimately records 0 skips -- the payoff case is resuming full
checkpoint sets (interrupted-run replays), exercised directly below.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.bench.batch_tracking import cyclic_quadratic_system
from repro.multiprec.numeric import DOUBLE, DOUBLE_DOUBLE
from repro.tracking.batch_tracker import BatchTracker, PathStatus
from repro.tracking.solver import EscalationPolicy, solve_system
from repro.tracking.start_systems import start_solutions, total_degree_start_system
from repro.tracking.tracker import TrackerOptions


@pytest.fixture(scope="module")
def workload():
    target = cyclic_quadratic_system(3)
    start = total_degree_start_system(target)
    starts = list(start_solutions(target))
    return start, target, starts


def tracked_checkpoints(workload, options):
    start, target, starts = workload
    tracker = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                           options=options)
    outcome = tracker.track_batches(starts)
    return outcome, outcome.checkpoints()


class TestSkipCertifiedEndgame:
    def test_certified_lanes_skip_the_reentry_round(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        assert all(cp.status is PathStatus.SUCCESS for cp in checkpoints)
        assert all(cp.residual <= opts.end_tolerance for cp in checkpoints)

        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=checkpoints)
        assert resumed.endgame_reentries_skipped == len(checkpoints)
        assert resumed.batched_evaluations == 0  # no re-entry round at all
        assert all(r.success for r in resumed.results)
        # The certified lanes keep their measured residual and counters.
        for cp, result in zip(checkpoints, resumed.results):
            assert result.residual == cp.residual
            assert result.steps_accepted == cp.steps_accepted

    def test_default_resume_still_reenters(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts)
        resumed = resumer.track_batches(resume_from=checkpoints)
        assert resumed.endgame_reentries_skipped == 0
        assert resumed.batched_evaluations >= 1  # the endgame round ran

    def test_uncertified_residual_still_reenters(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        # Degrade the stored residuals above the tolerance: the certificates
        # are void, so the endgame must run even with the skip enabled.
        stale = [dataclasses.replace(cp, residual=1e-6) for cp in checkpoints]
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=stale)
        assert resumed.endgame_reentries_skipped == 0
        assert resumed.batched_evaluations >= 1
        assert all(r.success for r in resumed.results)

    def test_nan_residual_never_certifies(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        poisoned = [dataclasses.replace(cp, residual=float("nan"))
                    for cp in checkpoints]
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=poisoned)
        assert resumed.endgame_reentries_skipped == 0

    def test_mid_path_lanes_unaffected(self, workload):
        start, target, _ = workload
        opts = TrackerOptions(end_tolerance=1e-12)
        _, checkpoints = tracked_checkpoints(workload, opts)
        # Rewind one lane to mid-path: it must track to t = 1 normally while
        # the others skip.
        rewound = list(checkpoints)
        rewound[0] = dataclasses.replace(rewound[0], t=0.5, prev_t=0.4)
        resumer = BatchTracker(start, target, context=DOUBLE_DOUBLE,
                               options=opts, skip_certified_endgame=True)
        resumed = resumer.track_batches(resume_from=rewound)
        assert resumed.endgame_reentries_skipped == len(checkpoints) - 1
        assert all(r.success for r in resumed.results)


class TestSolverAccounting:
    def test_solve_report_records_skips_per_rung(self):
        # A tolerance at the double roundoff floor: some paths genuinely
        # fail at d and escalate to dd.
        target = cyclic_quadratic_system(4)
        opts = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
        report = solve_system(target, options=opts,
                              escalation=EscalationPolicy(
                                  ladder=(DOUBLE, DOUBLE_DOUBLE)))
        field_names = {f.name for f in dataclasses.fields(report)}
        assert "endgame_skips_by_context" in field_names
        assert report.endgame_skips_by_context.get("d", 0) == 0  # first rung
        # dd resumed the d failures; the accounting key must exist either way.
        if "dd" in report.paths_by_context:
            assert "dd" in report.endgame_skips_by_context

    def test_residual_aware_flag_defaults_on(self):
        assert EscalationPolicy().residual_aware
        off = EscalationPolicy(residual_aware=False)
        assert not off.residual_aware


class TestPortableCheckpointState:
    """LaneCheckpoint.to_portable / from_portable: the exact plane encoding
    the sharded solve service persists and ships across processes."""

    CONTEXTS = ["d", "dd", "qd"]

    @staticmethod
    def _synthetic_checkpoint(context_name, values, **overrides):
        import math

        from repro.multiprec.numeric import get_context
        from repro.tracking.batch_tracker import LaneCheckpoint

        ctx = get_context(context_name)
        point = tuple(ctx.from_complex(v) for v in values)
        prev = tuple(ctx.from_complex(v * 0.875) for v in values)
        fields = dict(
            context_name=context_name,
            point=point, t=0.9375,
            prev_point=prev, prev_t=0.875, has_prev=True,
            dt=2.0 ** -13, residual=3.5e-17,
            status=PathStatus.TRACKING,
            steps_accepted=17, steps_rejected=3, newton_iterations=41,
            consecutive_successes=5,
        )
        fields.update(overrides)
        return LaneCheckpoint(**fields)

    @pytest.mark.parametrize("context_name", CONTEXTS)
    def test_round_trip_through_json_is_exact(self, context_name):
        import json

        from repro.tracking.batch_tracker import (
            LaneCheckpoint,
            scalar_to_planes,
        )

        cp = self._synthetic_checkpoint(
            context_name,
            [complex(1 / 3, -2 / 7), complex(-0.0, 1e-300)])
        wire = json.loads(json.dumps(cp.to_portable()))
        back = LaneCheckpoint.from_portable(wire)
        assert back.context_name == cp.context_name
        for a, b in zip(back.point + back.prev_point,
                        cp.point + cp.prev_point):
            planes_a = scalar_to_planes(a, context_name)
            planes_b = scalar_to_planes(b, context_name)
            # Bit-for-bit: every component plane, signed zeros included.
            assert [p.hex() for p in planes_a] == [p.hex() for p in planes_b]
        assert (back.t, back.prev_t, back.dt) == (cp.t, cp.prev_t, cp.dt)
        assert back.residual == cp.residual
        assert back.status is cp.status
        assert (back.steps_accepted, back.steps_rejected,
                back.newton_iterations, back.consecutive_successes) == \
            (cp.steps_accepted, cp.steps_rejected,
             cp.newton_iterations, cp.consecutive_successes)

    @pytest.mark.parametrize("context_name", CONTEXTS)
    def test_inf_and_nan_lanes_survive(self, context_name):
        import json
        import math

        from repro.tracking.batch_tracker import (
            LaneCheckpoint,
            scalar_to_planes,
        )

        cp = self._synthetic_checkpoint(
            context_name,
            [complex(float("inf"), float("-inf")),
             complex(float("nan"), 1.0)],
            residual=float("inf"), status=PathStatus.STEP_UNDERFLOW)
        wire = json.loads(json.dumps(cp.to_portable()))
        back = LaneCheckpoint.from_portable(wire)
        first = scalar_to_planes(back.point[0], context_name)
        second = scalar_to_planes(back.point[1], context_name)
        assert first[0] == float("inf")
        assert math.isnan(second[0])
        assert back.residual == float("inf")
        assert back.status is PathStatus.STEP_UNDERFLOW
        # The im(-inf) plane of the first coordinate survives too.
        stride = len(first) // 2
        assert first[stride] == float("-inf")

    def test_unknown_context_and_bad_plane_counts_are_rejected(self):
        from repro.errors import ConfigurationError
        from repro.tracking.batch_tracker import (
            scalar_from_planes,
            scalar_to_planes,
        )

        with pytest.raises(ConfigurationError):
            scalar_to_planes(1 + 2j, "octuple")
        with pytest.raises(ConfigurationError):
            scalar_from_planes([1.0, 2.0, 3.0], "dd")  # dd needs 4 planes

    def test_resumed_tracking_bit_for_bit_vs_in_memory_resume(self, workload):
        """Resuming from portable (JSON round-tripped) checkpoints must
        reproduce the in-memory resume exactly -- the property the whole
        sharded service's crash recovery stands on."""
        import json

        from repro.core.multicore import (
            checkpoints_from_portable,
            portable_checkpoints,
        )
        from repro.multiprec.backend import backend_for_context
        from repro.tracking.batch_tracker import scalar_to_planes

        start, target, starts = workload
        opts = TrackerOptions(end_tolerance=5e-17, end_iterations=12)
        first = BatchTracker(start, target, options=opts).track_batches(starts)
        checkpoints = first.checkpoints()

        wire = json.loads(json.dumps(portable_checkpoints(checkpoints)))
        restored = checkpoints_from_portable(wire)

        resumed_memory = BatchTracker(
            start, target, context=DOUBLE_DOUBLE, options=opts,
        ).track_batches(resume_from=checkpoints)
        resumed_wire = BatchTracker(
            start, target, context=DOUBLE_DOUBLE, options=opts,
        ).track_batches(resume_from=restored)

        for a, b in zip(resumed_memory.results, resumed_wire.results):
            assert a.success == b.success
            assert a.residual == b.residual
            planes_a = [scalar_to_planes(x, "dd") for x in a.solution]
            planes_b = [scalar_to_planes(x, "dd") for x in b.solution]
            assert [[p.hex() for p in planes]
                    for planes in planes_a] == \
                [[p.hex() for p in planes] for planes in planes_b]
            assert a.steps_accepted == b.steps_accepted
            assert a.newton_iterations == b.newton_iterations
