"""Tests for the per-lane-pivoted batched linear solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.multiprec.backend import COMPLEX128_BACKEND, COMPLEX_DD_BACKEND
from repro.multiprec.ddarray import ComplexDDArray
from repro.tracking import batched_solve


def _rows(values, backend):
    arr = np.asarray(values, dtype=np.complex128)
    if backend is COMPLEX128_BACKEND:
        return arr
    return ComplexDDArray.from_complex128(arr)


@pytest.mark.parametrize("backend", [COMPLEX128_BACKEND, COMPLEX_DD_BACKEND],
                         ids=lambda b: b.name)
class TestBatchedSolve:
    def test_matches_numpy_lane_by_lane(self, backend):
        rng = np.random.default_rng(42)
        n, lanes = 3, 5
        matrices = rng.normal(size=(lanes, n, n)) + 1j * rng.normal(size=(lanes, n, n))
        rhs = rng.normal(size=(lanes, n)) + 1j * rng.normal(size=(lanes, n))
        matrix = [[_rows(matrices[:, i, j], backend) for j in range(n)]
                  for i in range(n)]
        solution, singular = batched_solve(matrix,
                                           [_rows(rhs[:, i], backend) for i in range(n)],
                                           backend)
        assert not singular.any()
        for lane in range(lanes):
            expected = np.linalg.solve(matrices[lane], rhs[lane])
            got = np.array([backend.to_complex128(solution[i])[lane]
                            for i in range(n)])
            assert np.allclose(got, expected, rtol=1e-10)

    def test_exact_zero_lane_is_masked_not_raised(self, backend):
        matrix = [[_rows([1.0, 0.0], backend), _rows([0.0, 0.0], backend)],
                  [_rows([0.0, 0.0], backend), _rows([1.0, 0.0], backend)]]
        rhs = [_rows([2.0, 2.0], backend), _rows([3.0, 3.0], backend)]
        solution, singular = batched_solve(matrix, rhs, backend)
        assert singular.tolist() == [False, True]
        assert backend.to_complex128(solution[0])[0] == pytest.approx(2.0)

    @pytest.mark.parametrize("tiny", [1e-170, 1.2e-162 + 1.2e-162j],
                             ids=["underflowed-square", "hypot-boundary"])
    def test_denormal_pivot_lane_is_masked_not_raised(self, backend, tiny):
        # Such pivots are nonzero, but squaring their components underflows:
        # complex double-double division would raise DivisionByZeroError
        # (the hypot-boundary case has |p|^2 denormal-nonzero while the
        # component squares are exact zeros).  The solver must retire only
        # that lane (the "one bad path cannot stall its batch" contract).
        matrix = [[_rows([2.0, tiny], backend), _rows([0.0, 0.0], backend)],
                  [_rows([0.0, 0.0], backend), _rows([2.0, tiny], backend)]]
        rhs = [_rows([4.0, 1.0], backend), _rows([6.0, 1.0], backend)]
        solution, singular = batched_solve(matrix, rhs, backend)
        assert singular.tolist() == [False, True]
        assert backend.to_complex128(solution[0])[0] == pytest.approx(2.0)
        assert backend.to_complex128(solution[1])[0] == pytest.approx(3.0)

    def test_inactive_lanes_never_reported_singular(self, backend):
        matrix = [[_rows([1.0, 0.0], backend)]]
        rhs = [_rows([1.0, 1.0], backend)]
        solution, singular = batched_solve(matrix, rhs, backend,
                                           active=np.array([True, False]))
        assert singular.tolist() == [False, False]
        assert backend.to_complex128(solution[0])[0] == pytest.approx(1.0)
