"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package required by the PEP 660 editable-install path.
"""

from setuptools import setup

setup()
