# Single-command runners for the repository (no tox/nox needed).
PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-all test-scenarios chaos docs bench-batch bench-qd bench-eval bench-shard bench-start bench-tables bench-json

# Tier-1: the fast suite (pytest.ini deselects @pytest.mark.slow).
test:
	$(PY) -m pytest -q

# The slow full scenario matrix: every registry scenario (matrix extras
# included) through the differential suite.
test-scenarios:
	$(PY) -m pytest -q -m scenario_matrix

# Chaos drills: the full fault-injection matrix -- every FaultInjection
# mode (kill, hang, slow, corrupt-checkpoint, store-io-error) crossed
# with every checkpoint store backend (memory, file-json, file-npz); each
# cell must end bit-for-bit identical to the single-process solver or
# with an explicitly recorded degradation.
chaos:
	$(PY) -m pytest -q -m chaos tests/service/test_chaos_matrix.py

# Everything, including tests marked slow, plus the documentation check and
# the checked-in benchmark-report validation.
test-all:
	$(PY) -m pytest -q -m "slow or not slow"
	$(PY) tools/check_docs.py
	$(PY) tools/check_bench.py

# Documentation health: execute every code block of README.md and docs/*.md
# (stale snippets fail the build) and re-run the example smoke tests.
docs:
	$(PY) tools/check_docs.py
	$(PY) -m pytest tests/test_examples.py -q

# Batched path-tracking throughput sweep (paths/sec vs batch size).
bench-batch:
	$(PY) benchmarks/bench_batch_tracking.py

# Fused QD/DD arithmetic: per-op fused-vs-unfused speedups and end-to-end
# qd tracker wall throughput vs the checked-in baseline.
bench-qd:
	$(PY) benchmarks/bench_qd_arith.py

# Compiled evaluation plans: plan-vs-walk op counts, evaluate_batch
# throughput per rung, and end-to-end qd tracker wall with plans on/off.
bench-eval:
	$(PY) benchmarks/bench_eval_plan.py

# Sharded solve service: paths/sec vs worker count plus the crash-recovery
# drill (bit-for-bit identity with the single-process solver).
bench-shard:
	$(PY) benchmarks/bench_shard.py

# Start strategies: total-degree vs diagonal paths/wall per scenario, and
# warm parameter-homotopy family serving vs cold solves.
bench-start:
	$(PY) benchmarks/bench_start.py

# Machine-readable perf trajectory: batch-tracking, escalation, fused
# qd-arithmetic and sharded-service sweeps as JSON (paths/sec per context,
# batch size and worker count; per-rung escalation pricing; fused-kernel
# speedups; crash-drill accounting).  Every solve-level report also sweeps
# the scenario registry (repro.bench.scenarios) into a per-scenario
# matrix, validated by tools/check_bench.py.
bench-json:
	$(PY) benchmarks/bench_batch_tracking.py --json BENCH_batch_tracking.json
	$(PY) benchmarks/bench_escalation.py --json BENCH_escalation.json
	$(PY) benchmarks/bench_qd_arith.py --json BENCH_qd_arith.json
	$(PY) benchmarks/bench_eval_plan.py --json BENCH_eval_plan.json
	$(PY) benchmarks/bench_shard.py --json BENCH_shard.json
	$(PY) benchmarks/bench_start.py --json BENCH_start.json

# Regenerate the paper-table benchmarks (explicit file list: bench_* files
# are not collected by default).
bench-tables:
	$(PY) -m pytest benchmarks/bench_table1.py benchmarks/bench_table2.py -q -s
