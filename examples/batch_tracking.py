#!/usr/bin/env python
"""Batched many-path tracking: the structure-of-arrays engine end to end.

The paper accelerates evaluation and differentiation in double-double
arithmetic so that *many* homotopy paths can be processed on massively
parallel hardware.  This example shows the repository's batched engine doing
exactly that:

1. build a small regular target system and its total-degree start system;
2. track *all* solution paths at once with the structure-of-arrays
   :class:`~repro.tracking.batch_tracker.BatchTracker`: one ``(n, B)`` batch
   of points, per-lane continuation parameters and step sizes, and masked
   retirement of converged/failed paths;
3. cross-check the batched roots against the scalar
   :class:`~repro.tracking.tracker.PathTracker` -- same homotopy, same
   step-control policy, so the solution sets must agree;
4. price the measured evaluation profile with the GPU cost model at several
   batch sizes: one kernel launch per *batch* instead of one per path, the
   throughput claim of the batched engine.
"""

from __future__ import annotations

import argparse

from repro.bench import format_table, run_batch_tracking_bench
from repro.bench.batch_tracking import cyclic_quadratic_system
from repro.core import CPUReferenceEvaluator
from repro.multiprec import get_context
from repro.tracking import (
    BatchTracker,
    Homotopy,
    PathTracker,
    start_solutions,
    total_degree_start_system,
)


def sorted_roots(results, context):
    """Canonical, order-independent view of a solution set."""
    roots = []
    for result in results:
        if not result.success:
            continue
        point = [context.to_complex(x) if not isinstance(x, (int, float, complex))
                 else complex(x) for x in result.solution]
        roots.append(tuple((round(z.real, 8), round(z.imag, 8)) for z in point))
    return sorted(roots)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dimension", type=int, default=3,
                        help="dimension n of the cyclic quadratic system (2^n paths)")
    parser.add_argument("--context", choices=("d", "dd", "qd"), default="dd",
                        help="working arithmetic for the trackers (qd is "
                             "pure-Python slow: keep --dimension at 2)")
    parser.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 4, 8],
                        help="batch sizes for the throughput table")
    args = parser.parse_args()

    context = get_context(args.context)
    target = cyclic_quadratic_system(args.dimension)
    start = total_degree_start_system(target)
    starts = list(start_solutions(target))

    print(f"batched path tracking of x_i^2 = x_(i+1) in dimension {args.dimension}")
    print(f"  {len(starts)} paths, context: {context.description}")

    # --- the batched engine: all paths in one structure-of-arrays batch ---
    batch_tracker = BatchTracker(start, target, context=context)
    outcome = batch_tracker.track_batches(starts)
    print(f"\nbatched tracker: {outcome.paths_converged}/{len(starts)} paths "
          f"converged in {outcome.rounds} lock-step rounds, "
          f"{outcome.batched_evaluations} batched homotopy evaluations "
          f"({outcome.lane_evaluations} per-lane evaluations)")

    # --- the scalar engine on the same homotopy, for comparison ---
    homotopy = Homotopy(CPUReferenceEvaluator(start, context=context),
                        CPUReferenceEvaluator(target, context=context),
                        context=context)
    scalar_results = PathTracker(homotopy, context=context).track_many(starts)

    batched = sorted_roots(outcome.results, context)
    scalar = sorted_roots(scalar_results, context)
    agree = batched == scalar
    print(f"roots agree with the scalar tracker: {'yes' if agree else 'NO'} "
          f"({len(batched)} distinct end points)")

    # --- throughput under the GPU cost model -----------------------------
    rows = run_batch_tracking_bench(batch_sizes=args.batch_sizes,
                                    dimension=args.dimension, context=context)
    print()
    print(format_table([r.as_dict() for r in rows],
                       title="one kernel launch per batch: paths/sec vs batch size"))
    if len(rows) > 1:
        win = rows[-1].paths_per_second / rows[0].paths_per_second
        print(f"\npaths/sec win at batch {rows[-1].batch_size} vs "
              f"batch {rows[0].batch_size}: {win:.1f}x")


if __name__ == "__main__":
    main()
