#!/usr/bin/env python
"""Double-double arithmetic and the quality-up argument.

The paper's starting point is that hardware doubles are sometimes not enough
for path tracking, and that the ~8x overhead of software double-double
arithmetic can be offset by parallel evaluation ("quality up").  This example
makes both halves concrete:

1. evaluate an ill-conditioned polynomial in double and in double-double and
   compare against the exact value computed with rational arithmetic;
2. measure the actual overhead factor of double-double evaluation in this
   implementation;
3. print the quality-up table: given the speedups of the paper's Tables 1
   and 2, which extended precisions come for free?
"""

from __future__ import annotations

import argparse
import time
from fractions import Fraction

from repro import CPUReferenceEvaluator, random_point, random_regular_system
from repro.bench import format_table
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE, DoubleDouble, dd
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import quality_up_table


def ill_conditioned_demo() -> None:
    print("=== 1. an evaluation that loses all double digits ===")
    # p(x) = (x - 1)^4 expanded; near x = 1 the expanded form suffers massive
    # cancellation.  The exact value at x = 1 + 2^-15 is 2^-60 ~ 8.7e-19,
    # which is smaller than the rounding errors of the O(1) partial sums in
    # double precision -- but still ~45 bits above the double-double noise.
    coefficients = [1, -4, 6, -4, 1]
    degree = len(coefficients) - 1
    perturbation = 2.0 ** -15
    x_double = 1.0 + perturbation
    value_double = sum(c * x_double ** (degree - i) for i, c in enumerate(coefficients))

    x_dd = dd(1) + dd(perturbation)
    value_dd = DoubleDouble(0.0)
    for i, c in enumerate(coefficients):
        value_dd = value_dd + dd(c) * x_dd.power(degree - i)

    exact = sum(Fraction(c) * (Fraction(1) + Fraction(1, 2 ** 15)) ** (degree - i)
                for i, c in enumerate(coefficients))
    print(f"exact value          : {float(exact):.6e}")
    print(f"double evaluation    : {value_double:.6e}   "
          f"(relative error {abs(value_double - float(exact)) / float(exact):.1e})")
    dd_err = abs(value_dd.to_fraction() - exact) / exact
    print(f"double-double        : {value_dd.to_decimal_string(20)}   "
          f"(relative error {float(dd_err):.1e})")
    print()


def overhead_measurement(dimension: int, monomials: int) -> float:
    print("=== 2. measured overhead of double-double evaluation ===")
    system = random_regular_system(dimension=dimension, monomials_per_polynomial=monomials,
                                   variables_per_monomial=3, max_variable_degree=4, seed=3)
    point = random_point(dimension, seed=4)

    timings = {}
    for context in (DOUBLE, DOUBLE_DOUBLE):
        evaluator = CPUReferenceEvaluator(system, context=context)
        start = time.perf_counter()
        repeats = 3
        for _ in range(repeats):
            evaluator.evaluate(point)
        timings[context.name] = (time.perf_counter() - start) / repeats

    factor = timings["dd"] / timings["d"]
    rows = [{"arithmetic": name, "seconds_per_evaluation": seconds}
            for name, seconds in timings.items()]
    print(format_table(rows))
    print(f"measured double-double overhead factor in this Python implementation: "
          f"{factor:.1f}x")
    print("(the paper's C++/QD measurement is ~8x; the cost models use that figure)\n")
    return factor


def quality_up_report() -> None:
    print("=== 3. quality up: which precision do the paper's speedups buy? ===")
    for label, speedup in [("Table 1, 1536 monomials", 14.04),
                           ("Table 2, 1536 monomials", 19.56),
                           ("Table 2, 704 monomials", 10.33)]:
        rows = [entry.as_dict() for entry in quality_up_table(speedup)]
        print(format_table(rows, title=f"{label}: GPU speedup {speedup:.2f}x"))
        print()


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dimension", type=int, default=6)
    parser.add_argument("--monomials", type=int, default=4)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    ill_conditioned_demo()
    overhead_measurement(args.dimension, args.monomials)
    quality_up_report()


if __name__ == "__main__":
    main()
