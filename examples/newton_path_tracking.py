#!/usr/bin/env python
"""Homotopy continuation with the simulated-GPU evaluator in the loop.

The paper's motivation is accelerating the evaluation of a polynomial system
and its Jacobian because that is the dominant cost of Newton's corrector in
path trackers.  This example closes that loop end to end:

1. build a small target system ``f(x) = 0`` with known structure;
2. construct the total-degree start system ``g(x) = 0`` and the gamma-trick
   homotopy ``h(x, t) = gamma (1 - t) g(x) + t f(x)``;
3. track every solution path from ``t = 0`` to ``t = 1`` with the adaptive
   predictor-corrector tracker, letting either the CPU reference evaluator or
   the simulated GPU pipeline supply ``f`` and its Jacobian;
4. sharpen the end points with Newton in double-double arithmetic, showing
   the residuals dropping far below the double-precision floor -- the
   "quality up" the paper is after.
"""

from __future__ import annotations

import argparse

from repro import CPUReferenceEvaluator, GPUEvaluator
from repro.bench import format_table
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import (
    Homotopy,
    NewtonCorrector,
    PathTracker,
    TrackerOptions,
    start_solutions,
    total_degree_start_system,
)


def build_target_system(dimension: int) -> PolynomialSystem:
    """``f_i = x_i^2 - (i + 2)``: decoupled quadrics with 2^n real solutions.

    Deliberately simple so every path can be checked against a closed form,
    while still exercising the full homotopy/tracking machinery.
    """
    polys = []
    for i in range(dimension):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-(i + 2) + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys)


def build_gpu_target_system(dimension: int) -> PolynomialSystem:
    """A regular system (uniform k) with the solution ``x = (1, ..., 1)``,
    suitable for the GPU evaluator: ``f_i = x_i x_j x_k - x_i x_j x_k^2``
    with ``(i, j, k)`` a rotation of three consecutive variables."""
    polys = []
    for i in range(dimension):
        j, k, l = i, (i + 1) % dimension, (i + 2) % dimension
        m1 = Monomial(tuple(sorted((j, k, l))), (1, 1, 1))
        m2 = Monomial.from_dict({j: 1, k: 1, l: 2})
        polys.append(Polynomial([(1 + 0j, m1), (-1 + 0j, m2)]))
    return PolynomialSystem(polys)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dimension", type=int, default=3,
                        help="dimension of the decoupled target system (default 3)")
    parser.add_argument("--max-paths", type=int, default=8,
                        help="track at most this many paths (default 8)")
    parser.add_argument("--skip-gpu-newton", action="store_true",
                        help="skip the simulated-GPU Newton demonstration")
    return parser.parse_args()


def track_all_paths(args) -> None:
    print("=== path tracking with the CPU reference evaluator ===")
    target = build_target_system(args.dimension)
    start = total_degree_start_system(target)
    homotopy = Homotopy(CPUReferenceEvaluator(start), CPUReferenceEvaluator(target))
    tracker = PathTracker(homotopy)

    rows = []
    solutions = list(start_solutions(target))[: args.max_paths]
    for index, s in enumerate(solutions):
        result = tracker.track(s)
        rows.append({
            "path": index,
            "success": result.success,
            "steps": result.steps_accepted,
            "newton_iterations": result.newton_iterations,
            "residual": result.residual,
            "x0": f"{result.solution[0]:.6f}",
        })
    print(format_table(rows))
    successes = sum(1 for r in rows if r["success"])
    print(f"{successes}/{len(rows)} paths tracked to t = 1\n")


def sharpen_in_double_double(args) -> None:
    print("=== end-game sharpening: double vs double-double ===")
    target = build_target_system(args.dimension)
    approximate_root = [complex((i + 2) ** 0.5) * (1 + 1e-9) for i in range(args.dimension)]

    rows = []
    for context in (DOUBLE, DOUBLE_DOUBLE):
        evaluator = CPUReferenceEvaluator(target, context=context)
        corrector = NewtonCorrector(evaluator, context=context,
                                    tolerance=1e-30, max_iterations=20)
        result = corrector.correct(approximate_root)
        rows.append({
            "arithmetic": context.description,
            "iterations": result.iterations,
            "final_residual": result.residual_norm,
        })
    print(format_table(rows))
    print("double-double pushes the residual orders of magnitude below the\n"
          "double-precision floor -- the extra digits the paper wants to buy\n"
          "with GPU acceleration.\n")


def newton_on_gpu_pipeline(args) -> None:
    print("=== Newton's corrector driven by the simulated GPU evaluator ===")
    dimension = max(args.dimension, 3)
    system = build_gpu_target_system(dimension)
    evaluator = GPUEvaluator(system, check_capacity=False)
    corrector = NewtonCorrector(evaluator, tolerance=1e-12, max_iterations=20)
    start = [1.0 + 0.05j * ((i % 3) - 1) for i in range(dimension)]
    result = corrector.correct(start)
    print(f"converged: {result.converged} after {result.iterations} iterations, "
          f"residual {result.residual_norm:.2e}")
    mults = sum(s.total_multiplications for s in
                evaluator.evaluate(start).launch_stats)
    print(f"one evaluation of this {dimension}-dimensional system performs "
          f"{mults} complex multiplications on the device\n")


def main() -> None:
    args = parse_args()
    track_all_paths(args)
    sharpen_in_double_double(args)
    if not args.skip_gpu_newton:
        newton_on_gpu_pipeline(args)


if __name__ == "__main__":
    main()
