#!/usr/bin/env python
"""Adaptive precision escalation: quality up as a running policy.

The paper's quality-up argument says a parallel speedup of ``s`` makes any
software arithmetic with overhead below ``s`` free in wall-clock terms.
This example turns that table into an operational pipeline:

1. solve the cyclic quadratic benchmark system with an end tolerance below
   the double-precision roundoff floor -- plain ``d`` genuinely fails;
2. let :class:`repro.tracking.EscalationPolicy` re-track the failed residue
   one rung wider (d -> dd -> qd) -- *warm-restarted* from each failed
   lane's checkpoint, so the wider rung resumes from the last accepted
   ``(x, t)`` instead of replaying the path -- reporting per-context path
   counts and the resumed-vs-restarted split;
3. print the quality-up table at the measured batching speedup and the
   ladder :meth:`EscalationPolicy.from_speedup` derives from it.
"""

from __future__ import annotations

import argparse

from repro.bench import format_table
from repro.bench.batch_tracking import cyclic_quadratic_system
from repro.tracking import (
    EscalationPolicy,
    TrackerOptions,
    quality_up_table,
    solve_system,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dimension", type=int, default=4,
                        help="cyclic quadratic system size (2^n paths)")
    parser.add_argument("--end-tolerance", type=float, default=1e-17,
                        help="endgame residual tolerance (default: below the "
                             "double roundoff floor, forcing escalation)")
    parser.add_argument("--speedup", type=float, default=19.3,
                        help="parallel speedup for the quality-up table")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    system = cyclic_quadratic_system(args.dimension)
    options = TrackerOptions(end_tolerance=args.end_tolerance,
                             end_iterations=12)

    print("== precision escalation: solve with a d -> dd -> qd ladder ==")
    report = solve_system(system, options=options,
                          escalation=EscalationPolicy())
    print(f"Bezout number:            {report.bezout_number}")
    print(f"paths tracked:            {report.paths_tracked}")
    print(f"paths converged:          {report.paths_converged}")
    print(f"paths per context:        {report.paths_by_context}")
    print(f"converged per context:    {report.converged_by_context}")
    print(f"recovered by escalation:  {report.recovered_by_escalation}")
    print(f"resumed per context:      {report.resumed_by_context}")
    resume_t = {ctx: [round(t, 3) for t in ts]
                for ctx, ts in report.resume_t_by_context.items() if ts}
    print(f"warm-restart t per rung:  {resume_t or '(nothing escalated)'}")
    worst = max((s.residual for s in report.solutions), default=0.0)
    print(f"worst solution residual:  {worst:.3e}")

    print()
    print(f"== quality-up table at a {args.speedup:g}x parallel speedup ==")
    print(format_table([row.as_dict() for row in quality_up_table(args.speedup)]))
    ladder = EscalationPolicy.from_speedup(args.speedup)
    print(f"-> escalation ladder starts at the widest affordable arithmetic: "
          f"{[ctx.name for ctx in ladder.ladder]}")


if __name__ == "__main__":
    main()
