#!/usr/bin/env python
"""Blackbox solving of a polynomial system by homotopy continuation.

The full pipeline the paper's kernels are built to serve: given a target
system ``f(x) = 0``, build the total-degree start system, track every path of
the gamma-trick homotopy, and report the isolated solutions with their
residuals.  The default target intersects a circle-like quadric with a cubic,
so the Bezout count (6) exceeds the number of isolated finite solutions and
the de-duplication/multiplicity reporting is visible; ``--quadrics N`` instead
solves ``x_i^2 = i + 2`` whose ``2^N`` solutions are all found.
"""

from __future__ import annotations

import argparse

from repro.bench import format_table
from repro.multiprec import DOUBLE, DOUBLE_DOUBLE
from repro.polynomials import Monomial, Polynomial, PolynomialSystem
from repro.tracking import TrackerOptions, solve_system


def circle_cubic_system() -> PolynomialSystem:
    """x0^2 + x1^2 - 2 = 0  and  x0^3 - x1 = 0."""
    p1 = Polynomial([
        (1 + 0j, Monomial((0,), (2,))),
        (1 + 0j, Monomial((1,), (2,))),
        (-2 + 0j, Monomial((), ())),
    ])
    p2 = Polynomial([
        (1 + 0j, Monomial((0,), (3,))),
        (-1 + 0j, Monomial((1,), (1,))),
    ])
    return PolynomialSystem([p1, p2])


def decoupled_quadrics(dimension: int) -> PolynomialSystem:
    polys = []
    for i in range(dimension):
        polys.append(Polynomial([
            (1 + 0j, Monomial((i,), (2,))),
            (-(i + 2) + 0j, Monomial((), ())),
        ]))
    return PolynomialSystem(polys)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quadrics", type=int, default=0,
                        help="solve the decoupled quadric system of this dimension "
                             "instead of the circle/cubic intersection")
    parser.add_argument("--max-paths", type=int, default=None,
                        help="track only this many (sampled) paths")
    parser.add_argument("--double-double", action="store_true",
                        help="run the whole solve in double-double arithmetic")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    system = decoupled_quadrics(args.quadrics) if args.quadrics else circle_cubic_system()
    context = DOUBLE_DOUBLE if args.double_double else DOUBLE
    options = TrackerOptions(end_tolerance=1e-24 if args.double_double else 1e-12,
                             end_iterations=20)

    print("target system:")
    for i, poly in enumerate(system):
        print(f"  f{i} = {poly}")

    report = solve_system(system, context=context, options=options,
                          max_paths=args.max_paths)

    print(f"\nBezout number (paths): {report.bezout_number}")
    print(f"paths tracked        : {report.paths_tracked}")
    print(f"paths converged      : {report.paths_converged}")
    print(f"isolated solutions   : {len(report.solutions)}\n")

    rows = []
    for index, solution in enumerate(report.solutions):
        coords = solution.as_complex(context)
        rows.append({
            "solution": index,
            "multiplicity": solution.multiplicity,
            "residual": solution.residual,
            "x": "  ".join(f"{z.real:+.6f}{z.imag:+.6f}j" for z in coords),
        })
    print(format_table(rows, title="isolated solutions"))

    if report.failures:
        print(f"\n{len(report.failures)} paths failed "
              f"({', '.join(sorted({f.failure_reason or 'unknown' for f in report.failures}))})")


if __name__ == "__main__":
    main()
