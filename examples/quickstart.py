#!/usr/bin/env python
"""Quickstart: evaluate a random sparse polynomial system and its Jacobian.

This walks through the library's central objects in a couple of minutes:

1. generate a random *regular* benchmark system (fixed number of monomials
   per polynomial, fixed number of variables per monomial -- the structure
   the paper's kernels rely on);
2. evaluate the system and its full Jacobian matrix with the three simulated
   GPU kernels (common factors, Speelpenning products, padded summation);
3. cross-check the results against the straightforward sequential CPU
   reference;
4. look at what the simulated launch actually did (multiplication counts,
   memory transactions, occupancy) and what the calibrated cost models
   predict for the paper's hardware.

Run it with no arguments for a small 8-dimensional example, or try
``--dimension 32 --monomials 32`` for a paper-sized configuration (a few
seconds of simulation).
"""

from __future__ import annotations

import argparse

from repro import CPUReferenceEvaluator, GPUEvaluator, random_point, random_regular_system
from repro.bench import format_table
from repro.core import compare_evaluations, expected_counts
from repro.gpusim import CPUCostModel, GPUCostModel


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dimension", type=int, default=8,
                        help="number of variables and equations (default 8)")
    parser.add_argument("--monomials", type=int, default=4,
                        help="monomials per polynomial (default 4)")
    parser.add_argument("--variables-per-monomial", type=int, default=3,
                        help="variables occurring in every monomial (default 3)")
    parser.add_argument("--max-degree", type=int, default=4,
                        help="maximal degree of any variable (default 4)")
    parser.add_argument("--seed", type=int, default=2012, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("=== 1. generate a regular benchmark system ===")
    system = random_regular_system(
        dimension=args.dimension,
        monomials_per_polynomial=args.monomials,
        variables_per_monomial=args.variables_per_monomial,
        max_variable_degree=args.max_degree,
        seed=args.seed,
    )
    shape = system.require_regular()
    print(f"system shape: {shape}")
    print(f"first polynomial: {str(system[0])[:100]}...")
    point = random_point(args.dimension, seed=args.seed + 1)

    print("\n=== 2. evaluate with the three simulated GPU kernels ===")
    gpu = GPUEvaluator(system)
    gpu_result = gpu.evaluate(point)
    print(f"f_0(x)      = {gpu_result.values[0]:.6f}")
    print(f"df_0/dx_0   = {gpu_result.jacobian[0][0]:.6f}")
    print(f"df_0/dx_{args.dimension - 1}   = {gpu_result.jacobian[0][-1]:.6f}")

    print("\n=== 3. cross-check against the sequential CPU reference ===")
    cpu = CPUReferenceEvaluator(system, algorithm="naive")
    cpu_result = cpu.evaluate(point)
    report = compare_evaluations(gpu_result.values, gpu_result.jacobian,
                                 cpu_result.values, cpu_result.jacobian)
    print(f"maximum relative difference GPU vs CPU: {report.max_relative_difference:.3e}")

    print("\n=== 4. launch statistics and predicted hardware times ===")
    rows = [stats.summary() for stats in gpu_result.launch_stats]
    print(format_table(rows, columns=["kernel", "blocks", "warps", "waves",
                                      "multiplications", "additions",
                                      "global_transactions", "divergent_warps"]))

    counts = expected_counts(shape, block_size=gpu.block_size)
    print("\nexpected operation totals from the paper's formulas (5k-4 etc.):")
    print(format_table([counts.as_dict()]))

    gpu_model, cpu_model = GPUCostModel(), CPUCostModel()
    per_eval_gpu = gpu_result.predicted_device_time(gpu_model)
    per_eval_cpu = cpu_model.evaluation_time(cpu_result.operations)
    print(f"\npredicted Tesla C2050 time per evaluation : {per_eval_gpu * 1e6:9.2f} us")
    print(f"predicted 1-core Xeon X5690 time          : {per_eval_cpu * 1e6:9.2f} us")
    print(f"predicted speedup                         : {per_eval_cpu / per_eval_gpu:9.2f}x")
    if per_eval_cpu < per_eval_gpu:
        print("\nnote: tiny systems are dominated by kernel-launch overhead and do "
              "not pay off on the device\n(the paper needs ~1,000 monomials to "
              "occupy the 14 multiprocessors); run\n"
              "  python examples/speedup_study.py --paper-scale\n"
              "for the paper-sized configurations where the speedups appear.")


if __name__ == "__main__":
    main()
