#!/usr/bin/env python
"""Speedup study: regenerate the shape of the paper's Tables 1 and 2.

For each monomial count the script simulates one evaluation of the system and
its Jacobian on the functional Tesla C2050 model, runs the sequential CPU
reference, and converts both into predicted wall-clock for 100,000
evaluations with the calibrated cost models -- the same quantity the paper's
tables report.  The published numbers are printed next to the model's so the
shape comparison (speedups growing with the number of monomials, Table 2
ahead of Table 1) is immediate.

By default a scaled-down dimension-16 sweep runs in a few seconds; pass
``--paper-scale`` to reproduce the full dimension-32 rows of both tables
(roughly a minute of pure-Python simulation).
"""

from __future__ import annotations

import argparse

from repro.bench import (
    TABLE1_WORKLOADS,
    TABLE2_WORKLOADS,
    Workload,
    format_breakdown,
    format_paper_rows,
    format_table,
    run_table,
)
from repro.bench.workloads import PaperRow
from repro.polynomials import random_regular_system


def scaled_down_workloads():
    """Dimension-16 rows with the same monomial shapes as Table 1."""
    workloads = []
    for monomials_per_poly in (8, 16, 24):
        total = 16 * monomials_per_poly
        paper = PaperRow("scaled table 1", total, float("nan"), float("nan"), float("nan"))
        workloads.append(Workload(
            name=f"scaled_{total}",
            table="scaled table 1",
            dimension=16,
            total_monomials=total,
            variables_per_monomial=9,
            max_variable_degree=2,
            paper=paper,
            builder=lambda t, seed, m=monomials_per_poly: random_regular_system(
                dimension=16, monomials_per_polynomial=m,
                variables_per_monomial=9, max_variable_degree=2, seed=seed),
        ))
    return workloads


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--paper-scale", action="store_true",
                        help="run the full dimension-32 rows of Tables 1 and 2")
    parser.add_argument("--breakdown", action="store_true",
                        help="also print the per-kernel time breakdown of each row")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    if args.paper_scale:
        tables = [("Table 1 (k=9, d<=2)", TABLE1_WORKLOADS),
                  ("Table 2 (k=16, d<=10)", TABLE2_WORKLOADS)]
    else:
        tables = [("scaled-down sweep (dimension 16, k=9, d<=2)", scaled_down_workloads())]

    for title, workloads in tables:
        results = run_table(workloads)
        print(format_paper_rows(results, title=title))
        if args.breakdown:
            for result in results:
                print()
                print(format_breakdown(result))
        print()

    if not args.paper_scale:
        print("pass --paper-scale to regenerate the published dimension-32 rows")


if __name__ == "__main__":
    main()
