"""repro: evaluating polynomials in several variables and their derivatives
on a (simulated) GPU computing processor.

A from-scratch Python reproduction of Verschelde & Yoffe, *Evaluating
polynomials in several variables and their derivatives on a GPU computing
processor* (IPDPS workshops 2012, arXiv:1201.0499): the three-kernel massively
parallel evaluation of a sparse polynomial system and its Jacobian matrix,
together with every substrate it relies on -- a functional SIMT simulator of
the Tesla C2050, QD-style double-double / quad-double arithmetic, sparse
polynomial algebra, and a homotopy-continuation path tracker.

Typical use::

    from repro import GPUEvaluator, random_regular_system, random_point

    system = random_regular_system(dimension=32, monomials_per_polynomial=32,
                                   variables_per_monomial=9, max_variable_degree=2,
                                   seed=7)
    evaluator = GPUEvaluator(system)
    result = evaluator.evaluate(random_point(32, seed=1))
    values, jacobian = result.values, result.jacobian

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
regeneration of the paper's Tables 1 and 2.
"""

from . import bench, core, gpusim, multiprec, polynomials, service, tracking
from .core import (
    CPUReferenceEvaluator,
    GPUEvaluation,
    GPUEvaluator,
    MulticoreEvaluator,
    SystemLayout,
    validate_evaluator,
)
from .errors import (
    ConfigurationError,
    ConstantMemoryOverflow,
    ConvergenceError,
    DeviceCapacityError,
    KernelExecutionError,
    LaunchConfigurationError,
    MemoryAccessError,
    PathTrackingError,
    ReproError,
    SharedMemoryOverflow,
    SingularMatrixError,
)
from .gpusim import CPUCostModel, GPUCostModel, TESLA_C2050, XEON_X5690
from .multiprec import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE, ComplexDD, DoubleDouble, QuadDouble
from .polynomials import (
    Monomial,
    Polynomial,
    PolynomialSystem,
    random_point,
    random_regular_system,
    table1_system,
    table2_system,
)
from .tracking import Homotopy, NewtonCorrector, PathTracker

__version__ = "1.0.0"

__all__ = [
    "ComplexDD",
    "ConfigurationError",
    "ConstantMemoryOverflow",
    "ConvergenceError",
    "CPUCostModel",
    "CPUReferenceEvaluator",
    "DeviceCapacityError",
    "DOUBLE",
    "DOUBLE_DOUBLE",
    "DoubleDouble",
    "GPUCostModel",
    "GPUEvaluation",
    "GPUEvaluator",
    "Homotopy",
    "KernelExecutionError",
    "LaunchConfigurationError",
    "MemoryAccessError",
    "Monomial",
    "MulticoreEvaluator",
    "NewtonCorrector",
    "PathTracker",
    "PathTrackingError",
    "Polynomial",
    "PolynomialSystem",
    "QUAD_DOUBLE",
    "QuadDouble",
    "ReproError",
    "SharedMemoryOverflow",
    "SingularMatrixError",
    "SystemLayout",
    "TESLA_C2050",
    "XEON_X5690",
    "bench",
    "core",
    "gpusim",
    "multiprec",
    "polynomials",
    "random_point",
    "random_regular_system",
    "service",
    "table1_system",
    "table2_system",
    "tracking",
    "validate_evaluator",
    "__version__",
]
