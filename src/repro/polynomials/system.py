"""Polynomial systems ``f(x) = 0`` and their Jacobian matrices.

A :class:`PolynomialSystem` bundles ``n`` sparse polynomials in ``n``
variables.  The GPU kernels of the paper assume a *regular* structure for
benchmark systems -- every polynomial has exactly ``m`` monomials, every
monomial involves exactly ``k`` variables, and no variable exceeds degree
``d`` -- because regularity is what keeps all threads of a warp on one
execution path.  :meth:`PolynomialSystem.regularity` reports whether a system
satisfies those assumptions and with which parameters, and the GPU evaluator
refuses irregular systems (the CPU references accept anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .monomial import Monomial
from .polynomial import Polynomial

__all__ = ["PolynomialSystem", "SystemShape"]


@dataclass(frozen=True)
class SystemShape:
    """The regular-benchmark parameters of the paper's section 2.

    Attributes
    ----------
    dimension:
        Number of variables and equations ``n``.
    monomials_per_polynomial:
        Number of monomials ``m`` in every polynomial.
    variables_per_monomial:
        Number of variables ``k`` occurring in every monomial.
    max_variable_degree:
        Maximal degree ``d`` with which any variable occurs.
    """

    dimension: int
    monomials_per_polynomial: int
    variables_per_monomial: int
    max_variable_degree: int

    @property
    def total_monomials(self) -> int:
        """``n * m``, the length of the paper's monomial sequence ``Sm``."""
        return self.dimension * self.monomials_per_polynomial

    @property
    def jacobian_entries(self) -> int:
        """``n^2``, number of polynomials in the Jacobian matrix."""
        return self.dimension * self.dimension

    def __str__(self) -> str:
        return (f"n={self.dimension}, m={self.monomials_per_polynomial}, "
                f"k={self.variables_per_monomial}, d={self.max_variable_degree}")


class PolynomialSystem:
    """A square system of sparse polynomials in several variables."""

    __slots__ = ("polynomials", "dimension")

    def __init__(self, polynomials: Sequence[Polynomial], dimension: Optional[int] = None):
        polys = tuple(polynomials)
        if not polys:
            raise ConfigurationError("a polynomial system needs at least one polynomial")
        if dimension is None:
            dimension = len(polys)
        max_var = -1
        for p in polys:
            vars_ = p.variables()
            if vars_:
                max_var = max(max_var, vars_[-1])
        if max_var >= dimension:
            raise ConfigurationError(
                f"a polynomial references variable x{max_var} but the system "
                f"dimension is {dimension}"
            )
        self.polynomials = polys
        self.dimension = int(dimension)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_polynomials(self) -> int:
        return len(self.polynomials)

    @property
    def num_variables(self) -> int:
        return self.dimension

    @property
    def total_monomials(self) -> int:
        """Total number of monomials across the system (``n*m`` when regular)."""
        return sum(p.num_terms for p in self.polynomials)

    def is_square(self) -> bool:
        return self.num_polynomials == self.dimension

    def __len__(self) -> int:
        return len(self.polynomials)

    def __iter__(self):
        return iter(self.polynomials)

    def __getitem__(self, idx: int) -> Polynomial:
        return self.polynomials[idx]

    def __str__(self) -> str:
        return "\n".join(f"f{i}: {p}" for i, p in enumerate(self.polynomials))

    # ------------------------------------------------------------------
    # regularity (the paper's benchmark assumptions)
    # ------------------------------------------------------------------
    def regularity(self) -> Optional[SystemShape]:
        """Return the :class:`SystemShape` if the system is regular, else None.

        Regular means: every polynomial has the same number of monomials
        ``m`` and every monomial has the same number of variables ``k``.
        ``d`` is reported as the maximum variable degree observed.
        """
        term_counts = {p.num_terms for p in self.polynomials}
        if len(term_counts) != 1:
            return None
        k_values = set()
        d = 0
        for p in self.polynomials:
            for _, mono in p.terms:
                k_values.add(mono.num_variables)
                d = max(d, mono.max_exponent)
        if len(k_values) != 1:
            return None
        return SystemShape(
            dimension=self.dimension,
            monomials_per_polynomial=term_counts.pop(),
            variables_per_monomial=k_values.pop(),
            max_variable_degree=d,
        )

    def require_regular(self) -> SystemShape:
        """Return the shape or raise :class:`ConfigurationError`."""
        shape = self.regularity()
        if shape is None:
            raise ConfigurationError(
                "the GPU evaluation scheme requires a regular system: every "
                "polynomial must have the same number of monomials and every "
                "monomial the same number of variables (see paper, section 2)"
            )
        return shape

    # ------------------------------------------------------------------
    # coefficient / support representation (the tuple (C, A))
    # ------------------------------------------------------------------
    def coefficients(self) -> Tuple[Tuple[complex, ...], ...]:
        return tuple(p.coefficients() for p in self.polynomials)

    def supports(self) -> Tuple[Tuple[Tuple[int, ...], ...], ...]:
        return tuple(p.support(self.dimension) for p in self.polynomials)

    @classmethod
    def from_support(cls,
                     coefficients: Sequence[Sequence[complex]],
                     supports: Sequence[Sequence[Sequence[int]]]) -> "PolynomialSystem":
        """Build a system from per-polynomial coefficient and support lists."""
        if len(coefficients) != len(supports):
            raise ConfigurationError("coefficients and supports must have equal length")
        polys = [Polynomial.from_support(c, a) for c, a in zip(coefficients, supports)]
        return cls(polys)

    # ------------------------------------------------------------------
    # calculus (reference implementations)
    # ------------------------------------------------------------------
    def evaluate(self, values: Sequence, context=None) -> List:
        """Evaluate all polynomials at ``values`` (any scalar type)."""
        if len(values) != self.dimension:
            raise ConfigurationError(
                f"expected {self.dimension} variable values, got {len(values)}"
            )
        return [p.evaluate(values, context=context) for p in self.polynomials]

    def jacobian_polynomials(self) -> Tuple[Tuple[Polynomial, ...], ...]:
        """The analytic Jacobian as an ``n x n`` matrix of polynomials."""
        return tuple(
            tuple(p.derivative(j) for j in range(self.dimension))
            for p in self.polynomials
        )

    def evaluate_jacobian(self, values: Sequence, context=None) -> List[List]:
        """Evaluate the Jacobian matrix at ``values``."""
        if len(values) != self.dimension:
            raise ConfigurationError(
                f"expected {self.dimension} variable values, got {len(values)}"
            )
        jac = []
        for p in self.polynomials:
            row = [p.derivative(j).evaluate(values, context=context)
                   for j in range(self.dimension)]
            jac.append(row)
        return jac

    def evaluate_with_jacobian(self, values: Sequence, context=None):
        """Convenience: ``(f(x), J_f(x))`` in one call."""
        return self.evaluate(values, context=context), self.evaluate_jacobian(values, context=context)
