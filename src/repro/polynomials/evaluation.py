"""Sequential (CPU) evaluation of a system and its Jacobian.

Two reference algorithms are provided:

* :func:`evaluate_naive` -- evaluate every polynomial of the system and of the
  Jacobian matrix directly from the analytic derivatives, monomial by
  monomial.  This is the simplest possible baseline; it corresponds to what a
  straightforward CPU implementation without algorithmic differentiation
  would do and serves as the ground truth for everything else.

* :func:`evaluate_factored` -- the paper's algorithm run sequentially: for
  every monomial compute the common factor (from a precomputed table of
  variable powers), run the Speelpenning forward/backward sweep, multiply by
  the common factor and the coefficients, then accumulate the additive terms
  of the ``n^2 + n`` target polynomials.  This is exactly what the three GPU
  kernels do, so it both validates the simulated kernels and provides the
  single-core timing baseline of the paper's Tables (the paper's CPU code
  uses the same evaluation scheme).

Both return an :class:`EvaluationResult` carrying the system values, the
Jacobian matrix and an operation tally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .speelpenning import OperationCount, speelpenning_gradient
from .system import PolynomialSystem

__all__ = ["EvaluationResult", "evaluate_naive", "evaluate_factored", "power_table"]


@dataclass
class EvaluationResult:
    """Values of the system and its Jacobian at one point, plus op counts."""

    values: List
    jacobian: List[List]
    operations: OperationCount = field(default_factory=OperationCount)

    def as_tuple(self):
        return self.values, self.jacobian


def _zero(context, like=None):
    if context is not None:
        return context.zero()
    return 0j


def evaluate_naive(system: PolynomialSystem, point: Sequence,
                   context=None) -> EvaluationResult:
    """Direct evaluation of ``f`` and ``J_f`` from the analytic derivatives."""
    count = OperationCount()
    n = system.dimension
    values = []
    jacobian = []
    for poly in system:
        values.append(poly.evaluate(point, context=context))
        row = []
        for j in range(n):
            row.append(poly.derivative(j).evaluate(point, context=context))
        jacobian.append(row)
        # Operation accounting: every term of every evaluated polynomial costs
        # (total_degree - 1) multiplications for the monomial plus one for the
        # coefficient, and the summation costs (#terms - 1) additions.
        for target in [poly] + [poly.derivative(j) for j in range(n)]:
            for _, mono in target.terms:
                count.multiplications += max(mono.total_degree - 1, 0) + 1
            count.additions += max(target.num_terms - 1, 0)
    return EvaluationResult(values=values, jacobian=jacobian, operations=count)


def power_table(point: Sequence, max_degree: int, context=None) -> List[List]:
    """Powers ``x_i^j`` for ``j = 1 .. max_degree - 1`` of every variable.

    Index ``table[i][j]`` holds ``x_i^j`` (``table[i][0]`` is the scalar one).
    This mirrors the first stage of kernel 1, which precomputes the powers
    from the 2nd to the ``(d-1)``-th of every variable in shared memory.
    The number of multiplications is ``n * (max_degree - 2)`` when
    ``max_degree >= 2`` and zero otherwise.
    """
    one = 1.0 if context is None else context.one()
    table: List[List] = []
    for x in point:
        row = [one, x]
        for _ in range(max_degree - 2):
            row.append(row[-1] * x)
        table.append(row)
    return table


def evaluate_factored(system: PolynomialSystem, point: Sequence,
                      context=None) -> EvaluationResult:
    """The paper's common-factor + Speelpenning evaluation, run sequentially.

    The result is numerically identical (up to the usual floating-point
    reordering effects) to :func:`evaluate_naive`, but the multiplication
    count per monomial follows the paper's ``5k - 4`` analysis plus the
    common-factor work, which is what the GPU cost model charges.
    """
    n = system.dimension
    count = OperationCount()

    coeffs_context = context
    point = list(point)

    # Stage 0 (kernel 1, stage 1): power table up to degree d - 1.
    d = max(p.max_variable_degree for p in system.polynomials)
    powers = power_table(point, d, context=context)
    if d >= 2:
        count.multiplications += n * (d - 2)

    # Values of the system and Jacobian accumulate here.
    values = [_zero(context) for _ in range(n)]
    jacobian = [[_zero(context) for _ in range(n)] for _ in range(n)]

    for poly_index, poly in enumerate(system):
        for coeff, mono in poly.terms:
            k = mono.num_variables
            c = coeffs_context.from_complex(coeff) if coeffs_context is not None else coeff

            # Stage 1 (kernel 1, stage 2): the common factor as a product of
            # k power-table entries (k - 1 multiplications).
            factor = None
            for p, e in zip(mono.positions, mono.exponents):
                entry = powers[p][e - 1]
                factor = entry if factor is None else factor * entry
            if k >= 1:
                count.multiplications += max(k - 1, 0)

            # Stage 2 (kernel 2): Speelpenning product derivatives (3k - 6),
            # multiply by the common factor (k), recover the monomial value
            # (1), multiply monomial and derivatives by coefficients (k + 1).
            factors = [point[p] for p in mono.positions]
            sp_grad, sp_count = speelpenning_gradient(factors)
            count += sp_count

            if k == 0:
                term_value = c
                values[poly_index] = values[poly_index] + term_value
                count.additions += 1
                continue

            monomial_derivatives = []
            for g in sp_grad:
                if factor is None:
                    monomial_derivatives.append(g)
                else:
                    monomial_derivatives.append(g * factor)
                    count.multiplications += 1

            # Monomial value = derivative w.r.t. the last variable times that
            # variable (one extra multiplication), as in the kernel.
            monomial_value = monomial_derivatives[-1] * point[mono.positions[-1]]
            count.multiplications += 1

            # Multiply by coefficients: the true derivative of c*x^a w.r.t.
            # x_i is c * a_i * x^(a - e_i); the exponent scale a_i folds into
            # the "coefficient of the derivative" exactly as the paper's
            # Coeffs array stores it.
            term_value = monomial_value * c
            count.multiplications += 1
            values[poly_index] = values[poly_index] + term_value
            count.additions += 1

            for slot, variable in enumerate(mono.positions):
                exponent = mono.exponents[slot]
                dcoeff = c * exponent
                deriv_value = monomial_derivatives[slot] * dcoeff
                count.multiplications += 1
                jacobian[poly_index][variable] = jacobian[poly_index][variable] + deriv_value
                count.additions += 1

    return EvaluationResult(values=values, jacobian=jacobian, operations=count)
