"""Sparse polynomials: coefficient/support pairs.

A polynomial ``f(x) = sum_{a in A} c_a x^a`` is stored as a list of terms,
each a ``(coefficient, Monomial)`` pair -- precisely the tuple ``(C, A)`` of
coefficients and supports of the paper's problem statement (equation (1)).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from .monomial import Monomial

__all__ = ["Polynomial"]


class Polynomial:
    """A sparse polynomial in several variables with complex coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[Tuple[complex, Monomial]]):
        cleaned: List[Tuple[complex, Monomial]] = []
        for coeff, mono in terms:
            if not isinstance(mono, Monomial):
                raise ConfigurationError("each term must pair a coefficient with a Monomial")
            coeff = complex(coeff)
            if coeff == 0:
                continue
            cleaned.append((coeff, mono))
        self.terms = tuple(cleaned)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_support(cls, coefficients: Sequence[complex],
                     support: Sequence[Sequence[int]]) -> "Polynomial":
        """Build from parallel lists of coefficients and dense exponent rows."""
        if len(coefficients) != len(support):
            raise ConfigurationError("coefficients and support must have equal length")
        return cls((c, Monomial.from_dense_exponents(a))
                   for c, a in zip(coefficients, support))

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls(())

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_terms(self) -> int:
        """The paper's ``m`` for this polynomial."""
        return len(self.terms)

    @property
    def total_degree(self) -> int:
        return max((m.total_degree for _, m in self.terms), default=0)

    @property
    def max_variable_degree(self) -> int:
        """The paper's ``d``: largest exponent of any single variable."""
        return max((m.max_exponent for _, m in self.terms), default=0)

    @property
    def max_variables_per_monomial(self) -> int:
        """The paper's ``k`` (maximum over terms)."""
        return max((m.num_variables for _, m in self.terms), default=0)

    def variables(self) -> Tuple[int, ...]:
        """Sorted indices of all variables appearing in the polynomial."""
        seen = set()
        for _, mono in self.terms:
            seen.update(mono.positions)
        return tuple(sorted(seen))

    def coefficients(self) -> Tuple[complex, ...]:
        return tuple(c for c, _ in self.terms)

    def support(self, n: int) -> Tuple[Tuple[int, ...], ...]:
        """Dense exponent matrix (one row per term) for ``n`` variables."""
        return tuple(m.dense_exponents(n) for _, m in self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for coeff, mono in self.terms:
            if mono.num_variables == 0:
                parts.append(f"({coeff})")
            else:
                parts.append(f"({coeff})*{mono}")
        return " + ".join(parts)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.as_dict().items(),
                                 key=lambda kv: kv[0])))

    def as_dict(self) -> Dict[Tuple[Tuple[int, int], ...], complex]:
        """Canonical form: map from ((pos, exp), ...) to summed coefficient."""
        out: Dict[Tuple[Tuple[int, int], ...], complex] = {}
        for coeff, mono in self.terms:
            key = tuple(zip(mono.positions, mono.exponents))
            out[key] = out.get(key, 0j) + coeff
        return {k: v for k, v in out.items() if v != 0}

    # ------------------------------------------------------------------
    # calculus
    # ------------------------------------------------------------------
    def evaluate(self, values: Sequence, context=None) -> object:
        """Evaluate at ``values``.

        ``values`` may hold any scalar type (complex, ComplexDD, ComplexQD).
        When ``context`` is given, the coefficients are converted into that
        arithmetic before multiplying, so the whole computation stays in the
        extended precision.
        """
        acc = None
        for coeff, mono in self.terms:
            c = context.from_complex(coeff) if context is not None else coeff
            term = c * mono.evaluate(values)
            acc = term if acc is None else acc + term
        if acc is None:
            return context.zero() if context is not None else 0j
        return acc

    def derivative(self, variable: int) -> "Polynomial":
        """Analytic partial derivative as a new :class:`Polynomial`."""
        terms = []
        for coeff, mono in self.terms:
            scale, dmono = mono.derivative(variable)
            if scale:
                terms.append((coeff * scale, dmono))
        return Polynomial(terms)

    def gradient(self, n: int) -> Tuple["Polynomial", ...]:
        """All ``n`` partial derivatives."""
        return tuple(self.derivative(i) for i in range(n))

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        return Polynomial(tuple(self.terms) + tuple(other.terms))

    def __mul__(self, other) -> "Polynomial":
        if isinstance(other, Polynomial):
            terms = []
            for c1, m1 in self.terms:
                for c2, m2 in other.terms:
                    terms.append((c1 * c2, m1.multiply(m2)))
            return Polynomial(terms)
        if isinstance(other, (int, float, complex)):
            return Polynomial((complex(other) * c, m) for c, m in self.terms)
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self) -> "Polynomial":
        return Polynomial((-c, m) for c, m in self.terms)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + (-other)
