"""Sparse multivariate polynomial substrate.

This subpackage holds the problem-statement machinery of the paper: sparse
monomials and polynomials stored as coefficient/support tuples, square
systems with their analytic Jacobians, the random regular benchmark
generators of section 2, the Speelpenning forward/backward differentiation
sweep of section 3.2, the constant-memory support encodings of section 3.1,
and two sequential reference evaluators (naive and common-factor based)
against which the simulated GPU kernels are validated.
"""

from .encoding import (
    PackedSupportEncoding,
    SupportEncoding,
    constant_memory_footprint,
    max_total_monomials_for_constant_memory,
)
from .evaluation import EvaluationResult, evaluate_factored, evaluate_naive, power_table
from .generators import (
    TABLE1_MONOMIAL_COUNTS,
    TABLE2_MONOMIAL_COUNTS,
    TABLE_DIMENSION,
    cyclic_quadratic_system,
    irregular_degree_system,
    katsura_root_count,
    katsura_system,
    noon_root_count,
    noon_system,
    perturb_coefficients,
    random_monomial,
    random_point,
    random_regular_system,
    random_sparse_system,
    speelpenning_product_system,
    speelpenning_system,
    table1_system,
    table2_system,
    triangular_root_count,
    triangular_sparse_system,
)
from .monomial import Monomial
from .polynomial import Polynomial
from .speelpenning import (
    OperationCount,
    expected_gradient_multiplications,
    naive_gradient,
    speelpenning_gradient,
    speelpenning_value,
)
from .system import PolynomialSystem, SystemShape

__all__ = [
    "EvaluationResult",
    "Monomial",
    "OperationCount",
    "PackedSupportEncoding",
    "Polynomial",
    "PolynomialSystem",
    "SupportEncoding",
    "SystemShape",
    "TABLE1_MONOMIAL_COUNTS",
    "TABLE2_MONOMIAL_COUNTS",
    "TABLE_DIMENSION",
    "constant_memory_footprint",
    "cyclic_quadratic_system",
    "evaluate_factored",
    "evaluate_naive",
    "expected_gradient_multiplications",
    "irregular_degree_system",
    "katsura_root_count",
    "katsura_system",
    "max_total_monomials_for_constant_memory",
    "naive_gradient",
    "noon_root_count",
    "noon_system",
    "perturb_coefficients",
    "power_table",
    "random_monomial",
    "random_point",
    "random_regular_system",
    "random_sparse_system",
    "speelpenning_gradient",
    "speelpenning_product_system",
    "speelpenning_system",
    "speelpenning_value",
    "table1_system",
    "table2_system",
    "triangular_root_count",
    "triangular_sparse_system",
]
