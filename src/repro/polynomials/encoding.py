"""Constant-memory encoding of monomial supports (``Positions``/``Exponents``).

Section 3.1 of the paper reserves two arrays of unsigned chars in the GPU's
constant memory:

* ``Positions[t]`` -- the index (0..255) of a variable occurring in one of the
  monomials of the system, and
* ``Exponents[t]`` -- that variable's exponent *decreased by one*, allowing
  exponents up to 256.

Both arrays are laid out monomial-by-monomial in the order of the monomial
sequence ``Sm`` (first all monomials of the first polynomial, then the second,
and so on), ``k`` entries per monomial.  The capacity of constant memory
(65,536 bytes on the Tesla C2050) therefore caps the working dimensions: the
paper reports dimension 30 needs ``900 * 2 * 15 <= 30,000`` bytes and
dimension 40 needs ``1,600 * 2 * 20 = 64,000`` bytes, and that 2,048
monomials with ``k = 16`` no longer fit -- which is why Tables 1 and 2 stop at
1,536 monomials.

:class:`SupportEncoding` implements this byte-per-entry format.
:class:`PackedSupportEncoding` implements the "more compact encoding" the
paper announces as future work: positions packed into 6 bits and exponents
into 4 bits (sufficient for dimensions up to 64 and degrees up to 16), at the
price of the decode branching the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, ConstantMemoryOverflow
from .system import PolynomialSystem

__all__ = [
    "SupportEncoding",
    "PackedSupportEncoding",
    "constant_memory_footprint",
    "max_total_monomials_for_constant_memory",
]

#: Capacity of the constant memory of the Tesla C2050, in bytes.
DEFAULT_CONSTANT_MEMORY_BYTES = 65536


@dataclass(frozen=True)
class SupportEncoding:
    """Byte-per-entry encoding of all monomial supports of a regular system.

    Attributes
    ----------
    positions:
        ``uint8`` array of length ``n * m * k`` with the variable indices,
        monomial-major in the order of the sequence ``Sm``.
    exponents:
        ``uint8`` array of the same length holding ``exponent - 1``.
    variables_per_monomial:
        The ``k`` of the regular system.
    total_monomials:
        ``n * m``.
    """

    positions: np.ndarray
    exponents: np.ndarray
    variables_per_monomial: int
    total_monomials: int

    # -- construction ---------------------------------------------------
    @classmethod
    def from_system(cls, system: PolynomialSystem) -> "SupportEncoding":
        """Encode a regular system; raises if it violates the byte limits."""
        shape = system.require_regular()
        k = shape.variables_per_monomial
        if system.dimension > 256:
            raise ConfigurationError(
                "the byte encoding stores variable positions in one unsigned "
                f"char; dimension {system.dimension} exceeds 256"
            )
        if shape.max_variable_degree > 256:
            raise ConfigurationError(
                "the byte encoding stores exponent-1 in one unsigned char; "
                f"degree {shape.max_variable_degree} exceeds 256"
            )
        positions: List[int] = []
        exponents: List[int] = []
        for poly in system:
            for _, mono in poly.terms:
                positions.extend(mono.positions)
                exponents.extend(e - 1 for e in mono.exponents)
        return cls(
            positions=np.asarray(positions, dtype=np.uint8),
            exponents=np.asarray(exponents, dtype=np.uint8),
            variables_per_monomial=k,
            total_monomials=shape.total_monomials,
        )

    # -- size accounting -------------------------------------------------
    @property
    def bytes_used(self) -> int:
        """Total constant-memory footprint in bytes (both arrays)."""
        return int(self.positions.nbytes + self.exponents.nbytes)

    def fits_in(self, capacity_bytes: int = DEFAULT_CONSTANT_MEMORY_BYTES) -> bool:
        return self.bytes_used <= capacity_bytes

    def require_fits(self, capacity_bytes: int = DEFAULT_CONSTANT_MEMORY_BYTES) -> None:
        if not self.fits_in(capacity_bytes):
            raise ConstantMemoryOverflow(
                f"the Positions/Exponents tables need {self.bytes_used} bytes "
                f"but constant memory holds only {capacity_bytes} bytes "
                f"(total monomials {self.total_monomials}, k="
                f"{self.variables_per_monomial}); the paper hits this limit "
                "at 2,048 monomials with k = 16"
            )

    # -- decoding ---------------------------------------------------------
    def monomial_entry(self, monomial_index: int, j: int) -> Tuple[int, int]:
        """Return ``(position, exponent)`` of the ``j``-th variable of the
        ``monomial_index``-th monomial of ``Sm`` (exponent already +1)."""
        k = self.variables_per_monomial
        if not (0 <= monomial_index < self.total_monomials):
            raise IndexError(f"monomial index {monomial_index} out of range")
        if not (0 <= j < k):
            raise IndexError(f"variable slot {j} out of range for k={k}")
        base = monomial_index * k
        return int(self.positions[base + j]), int(self.exponents[base + j]) + 1

    def decode_monomial(self, monomial_index: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Positions and exponents (true values) of one monomial."""
        k = self.variables_per_monomial
        base = monomial_index * k
        pos = tuple(int(p) for p in self.positions[base:base + k])
        exp = tuple(int(e) + 1 for e in self.exponents[base:base + k])
        return pos, exp


@dataclass(frozen=True)
class PackedSupportEncoding:
    """The compact encoding the paper plans as future work.

    Every (position, exponent-1) pair is packed into a single 16-bit word --
    10 bits for the position (dimensions up to 1024) and 6 bits for the
    exponent (degrees up to 64).  For dimensions that still fit in one byte
    this costs the same two bytes per entry as :class:`SupportEncoding`, but
    it keeps that footprint for dimensions up to 1024 where the byte encoding
    would have to fall back to separate 16-bit positions plus 8-bit exponents
    (three bytes per entry).  Decoding requires shift/mask work per entry,
    which is the "branching/decoding" overhead the paper argues is dominated
    by the multiplication work that follows.
    """

    packed: np.ndarray  # uint16, length n*m*k
    variables_per_monomial: int
    total_monomials: int

    POSITION_BITS = 10
    EXPONENT_BITS = 6

    @classmethod
    def from_system(cls, system: PolynomialSystem) -> "PackedSupportEncoding":
        shape = system.require_regular()
        if system.dimension > (1 << cls.POSITION_BITS):
            raise ConfigurationError(
                f"packed encoding supports dimensions up to {1 << cls.POSITION_BITS}"
            )
        if shape.max_variable_degree > (1 << cls.EXPONENT_BITS):
            raise ConfigurationError(
                f"packed encoding supports degrees up to {1 << cls.EXPONENT_BITS}"
            )
        packed: List[int] = []
        for poly in system:
            for _, mono in poly.terms:
                for p, e in zip(mono.positions, mono.exponents):
                    packed.append((p << cls.EXPONENT_BITS) | (e - 1))
        return cls(
            packed=np.asarray(packed, dtype=np.uint16),
            variables_per_monomial=shape.variables_per_monomial,
            total_monomials=shape.total_monomials,
        )

    @property
    def bytes_used(self) -> int:
        return int(self.packed.nbytes)

    def fits_in(self, capacity_bytes: int = DEFAULT_CONSTANT_MEMORY_BYTES) -> bool:
        return self.bytes_used <= capacity_bytes

    def require_fits(self, capacity_bytes: int = DEFAULT_CONSTANT_MEMORY_BYTES) -> None:
        if not self.fits_in(capacity_bytes):
            raise ConstantMemoryOverflow(
                f"the packed support table needs {self.bytes_used} bytes but "
                f"constant memory holds only {capacity_bytes} bytes"
            )

    def monomial_entry(self, monomial_index: int, j: int) -> Tuple[int, int]:
        k = self.variables_per_monomial
        if not (0 <= monomial_index < self.total_monomials):
            raise IndexError(f"monomial index {monomial_index} out of range")
        if not (0 <= j < k):
            raise IndexError(f"variable slot {j} out of range for k={k}")
        word = int(self.packed[monomial_index * k + j])
        position = word >> self.EXPONENT_BITS
        exponent = (word & ((1 << self.EXPONENT_BITS) - 1)) + 1
        return position, exponent

    def decode_monomial(self, monomial_index: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        k = self.variables_per_monomial
        pos = []
        exp = []
        for j in range(k):
            p, e = self.monomial_entry(monomial_index, j)
            pos.append(p)
            exp.append(e)
        return tuple(pos), tuple(exp)


def constant_memory_footprint(total_monomials: int, variables_per_monomial: int,
                              packed: bool = False) -> int:
    """Bytes of constant memory needed by the support tables.

    With the byte encoding each monomial costs ``2 * k`` bytes (one position
    byte and one exponent byte per occurring variable) -- the paper's
    ``900 x 2 x 15`` and ``1,600 x 2 x 20`` examples.  The packed encoding
    costs ``2 * k`` bytes per monomial as well but in a single 16-bit word
    per variable, i.e. half the entries; we report its true ``2 * k`` bytes
    (uint16) which equals the byte encoding -- the saving appears when the
    byte encoding would need 16-bit positions for dimensions above 256.
    """
    if packed:
        return total_monomials * variables_per_monomial * 2
    return total_monomials * variables_per_monomial * 2


def max_total_monomials_for_constant_memory(
        variables_per_monomial: int,
        capacity_bytes: int = DEFAULT_CONSTANT_MEMORY_BYTES,
        packed: bool = False) -> int:
    """Largest total monomial count whose support tables fit in constant memory."""
    per_monomial = constant_memory_footprint(1, variables_per_monomial, packed=packed)
    return capacity_bytes // per_monomial
