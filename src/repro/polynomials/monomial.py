"""Sparse monomials in several variables.

A monomial ``x^a = x_{i1}^{a_{i1}} ... x_{ik}^{a_{ik}}`` is stored sparsely as
the pair of tuples ``positions`` (the indices ``i1 < i2 < ... < ik`` of the
variables that occur) and ``exponents`` (their positive exponents), exactly as
the paper's constant-memory arrays ``Positions`` and ``Exponents`` store them
(with the exponent decremented by one in the on-device encoding, see
:mod:`repro.polynomials.encoding`).

The class knows how to split itself into the paper's two factors:

* the *common factor* ``x_{i1}^{a_{i1}-1} ... x_{ik}^{a_{ik}-1}`` computed by
  kernel 1, and
* the *Speelpenning product* ``x_{i1} x_{i2} ... x_{ik}`` whose value and
  gradient kernel 2 computes with the forward/backward sweep;

and how to produce its analytic partial derivatives, which the tests use as
the ground truth for every kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["Monomial"]


@dataclass(frozen=True)
class Monomial:
    """A sparse monomial ``prod_j x_{positions[j]} ** exponents[j]``.

    Parameters
    ----------
    positions:
        Strictly increasing indices (0-based) of the variables that occur.
    exponents:
        Positive integer exponents, one per position.
    """

    positions: Tuple[int, ...]
    exponents: Tuple[int, ...]

    def __post_init__(self):
        positions = tuple(int(p) for p in self.positions)
        exponents = tuple(int(e) for e in self.exponents)
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "exponents", exponents)
        if len(positions) != len(exponents):
            raise ConfigurationError(
                f"positions and exponents must have equal length "
                f"({len(positions)} vs {len(exponents)})"
            )
        if any(e < 1 for e in exponents):
            raise ConfigurationError("all exponents of a sparse monomial must be >= 1")
        if any(p < 0 for p in positions):
            raise ConfigurationError("variable positions must be non-negative")
        if any(positions[i] >= positions[i + 1] for i in range(len(positions) - 1)):
            raise ConfigurationError("variable positions must be strictly increasing")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense_exponents(cls, dense: Sequence[int]) -> "Monomial":
        """Build from a dense exponent vector (one entry per variable)."""
        positions = tuple(i for i, e in enumerate(dense) if e)
        exponents = tuple(int(dense[i]) for i in positions)
        return cls(positions, exponents)

    @classmethod
    def from_dict(cls, mapping: Dict[int, int]) -> "Monomial":
        """Build from a ``{variable index: exponent}`` mapping."""
        items = sorted((int(k), int(v)) for k, v in mapping.items() if v)
        return cls(tuple(k for k, _ in items), tuple(v for _, v in items))

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """The paper's ``k``: how many distinct variables occur."""
        return len(self.positions)

    @property
    def total_degree(self) -> int:
        return sum(self.exponents)

    @property
    def max_exponent(self) -> int:
        """The paper's per-variable degree bound ``d`` contribution."""
        return max(self.exponents) if self.exponents else 0

    def dense_exponents(self, n: int) -> Tuple[int, ...]:
        """Dense exponent vector of length ``n`` (the multi-index ``a``)."""
        if self.positions and self.positions[-1] >= n:
            raise ConfigurationError(
                f"monomial references variable {self.positions[-1]} "
                f"but the system has only {n} variables"
            )
        dense = [0] * n
        for p, e in zip(self.positions, self.exponents):
            dense[p] = e
        return tuple(dense)

    def exponent_of(self, variable: int) -> int:
        """Exponent of ``x_variable`` (0 when the variable does not occur)."""
        for p, e in zip(self.positions, self.exponents):
            if p == variable:
                return e
        return 0

    def contains(self, variable: int) -> bool:
        return variable in self.positions

    def __iter__(self):
        return iter(zip(self.positions, self.exponents))

    def __len__(self) -> int:
        return len(self.positions)

    def __str__(self) -> str:
        if not self.positions:
            return "1"
        parts = []
        for p, e in zip(self.positions, self.exponents):
            parts.append(f"x{p}" if e == 1 else f"x{p}^{e}")
        return "*".join(parts)

    # ------------------------------------------------------------------
    # the paper's factorisation
    # ------------------------------------------------------------------
    def common_factor(self) -> "Monomial":
        """The common factor ``x^(a-1)`` over the occurring variables.

        This is what kernel 1 evaluates.  Variables whose exponent is 1
        disappear from the factor (their decremented exponent is 0).
        """
        positions = tuple(p for p, e in zip(self.positions, self.exponents) if e > 1)
        exponents = tuple(e - 1 for e in self.exponents if e > 1)
        return Monomial(positions, exponents)

    def speelpenning_positions(self) -> Tuple[int, ...]:
        """The variable indices of the Speelpenning product ``x_{i1}...x_{ik}``."""
        return self.positions

    # ------------------------------------------------------------------
    # evaluation and differentiation (reference implementations)
    # ------------------------------------------------------------------
    def evaluate(self, values: Sequence) -> object:
        """Evaluate at ``values`` (a full-length vector of any scalar type)."""
        result = None
        for p, e in zip(self.positions, self.exponents):
            term = values[p]
            power = term
            for _ in range(e - 1):
                power = power * term
            result = power if result is None else result * power
        if result is None:
            # The empty monomial is the constant 1.  A plain float works with
            # every scalar type used here (complex, ComplexDD, ComplexQD)
            # because they all accept mixed arithmetic with floats.
            return 1.0
        return result

    def derivative(self, variable: int) -> Tuple[int, "Monomial"]:
        """Analytic partial derivative with respect to ``x_variable``.

        Returns ``(scale, monomial)`` such that
        ``d(x^a)/dx_variable == scale * monomial``.  The scale is the integer
        exponent; when the variable does not occur the scale is 0 and the
        returned monomial is the constant 1.
        """
        e = self.exponent_of(variable)
        if e == 0:
            return 0, Monomial((), ())
        mapping = {p: x for p, x in zip(self.positions, self.exponents)}
        if e == 1:
            del mapping[variable]
        else:
            mapping[variable] = e - 1
        return e, Monomial.from_dict(mapping)

    def evaluate_gradient(self, values: Sequence) -> Dict[int, object]:
        """Dictionary ``{variable: d(x^a)/dx_variable evaluated at values}``.

        A straightforward (not operation-count optimal) reference used to
        validate the Speelpenning/common-factor pipeline of the kernels.
        """
        grad: Dict[int, object] = {}
        for p in self.positions:
            scale, mono = self.derivative(p)
            value = mono.evaluate(values)
            grad[p] = value * scale
        return grad

    def multiply(self, other: "Monomial") -> "Monomial":
        """Product of two monomials (exponents add)."""
        mapping: Dict[int, int] = {p: e for p, e in zip(self.positions, self.exponents)}
        for p, e in zip(other.positions, other.exponents):
            mapping[p] = mapping.get(p, 0) + e
        return Monomial.from_dict(mapping)
