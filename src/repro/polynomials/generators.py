"""Random benchmark systems with the paper's regular structure.

Section 2 of the paper fixes, for benchmarking purposes, a number of
variables ``n``, a number ``m`` of monomials in every polynomial, a number
``k`` of variables occurring in every monomial and a maximal degree ``d`` for
any variable.  Section 4 then uses dimension ``n = 32`` with ``m`` in
``{22, 32, 48}`` monomials per polynomial (704, 1024, 1536 monomials in
total), with monomial shapes ``k = 9, d <= 2`` (Table 1) and
``k = 16, d <= 10`` (Table 2).

:func:`random_regular_system` generates such systems reproducibly;
:func:`table1_system` and :func:`table2_system` wrap the exact configurations
of the paper's two tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .monomial import Monomial
from .polynomial import Polynomial
from .system import PolynomialSystem, SystemShape

__all__ = [
    "random_regular_system",
    "random_point",
    "random_monomial",
    "speelpenning_system",
    "table1_system",
    "table2_system",
    "TABLE1_MONOMIAL_COUNTS",
    "TABLE2_MONOMIAL_COUNTS",
    "TABLE_DIMENSION",
]

#: Total monomial counts reported in Tables 1 and 2 of the paper.
TABLE1_MONOMIAL_COUNTS: Tuple[int, ...] = (704, 1024, 1536)
TABLE2_MONOMIAL_COUNTS: Tuple[int, ...] = (704, 1024, 1536)

#: Dimension used throughout the computational experiments (the warp size).
TABLE_DIMENSION: int = 32


def _unit_coefficient(rng: np.random.Generator) -> complex:
    """A random coefficient on the complex unit circle.

    Homotopy-continuation software conventionally uses unit-modulus random
    coefficients (the "gamma trick"); they keep evaluation well scaled, which
    matters for the double-vs-double-double accuracy comparisons.
    """
    angle = rng.uniform(0.0, 2.0 * math.pi)
    return complex(math.cos(angle), math.sin(angle))


def random_monomial(rng: np.random.Generator, dimension: int,
                    variables_per_monomial: int,
                    max_variable_degree: int) -> Monomial:
    """A random sparse monomial with exactly ``k`` variables, degrees in [1, d]."""
    if variables_per_monomial > dimension:
        raise ConfigurationError(
            f"cannot place {variables_per_monomial} distinct variables in a "
            f"monomial of a {dimension}-dimensional system"
        )
    if max_variable_degree < 1:
        raise ConfigurationError("max_variable_degree must be at least 1")
    positions = np.sort(rng.choice(dimension, size=variables_per_monomial, replace=False))
    exponents = rng.integers(1, max_variable_degree + 1, size=variables_per_monomial)
    return Monomial(tuple(int(p) for p in positions), tuple(int(e) for e in exponents))


def random_regular_system(dimension: int,
                          monomials_per_polynomial: int,
                          variables_per_monomial: int,
                          max_variable_degree: int,
                          seed: Optional[int] = None) -> PolynomialSystem:
    """Generate a random regular system with the paper's benchmark structure.

    Parameters mirror section 2 of the paper: ``n``, ``m``, ``k``, ``d``.
    Monomials within one polynomial are drawn independently; coefficients are
    random unit-modulus complex numbers.  Distinct supports are enforced
    within each polynomial so that the number of monomials is exactly ``m``.
    """
    rng = np.random.default_rng(seed)
    if monomials_per_polynomial < 1:
        raise ConfigurationError("monomials_per_polynomial must be at least 1")
    polynomials: List[Polynomial] = []
    for _ in range(dimension):
        seen = set()
        terms = []
        attempts = 0
        max_attempts = 200 * monomials_per_polynomial
        while len(terms) < monomials_per_polynomial:
            mono = random_monomial(rng, dimension, variables_per_monomial,
                                   max_variable_degree)
            key = (mono.positions, mono.exponents)
            attempts += 1
            if key in seen:
                if attempts > max_attempts:
                    raise ConfigurationError(
                        "could not generate enough distinct monomials; the "
                        "requested (k, d) support space is too small for m="
                        f"{monomials_per_polynomial}"
                    )
                continue
            seen.add(key)
            terms.append((_unit_coefficient(rng), mono))
        polynomials.append(Polynomial(terms))
    return PolynomialSystem(polynomials, dimension=dimension)


def random_point(dimension: int, seed: Optional[int] = None,
                 radius: float = 1.0) -> List[complex]:
    """A random complex evaluation point with components of modulus ``radius``.

    Unit-modulus points keep powers bounded, matching how path trackers
    normalise their working points.
    """
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0.0, 2.0 * math.pi, size=dimension)
    return [radius * complex(math.cos(a), math.sin(a)) for a in angles]


def speelpenning_system(dimension: int) -> PolynomialSystem:
    """The classic Speelpenning example embedded as a system.

    Every polynomial is the full product ``x_0 x_1 ... x_{n-1}`` minus a
    constant; useful as a worst case for differentiation (every derivative is
    a product of ``n - 1`` variables) and as a readable example system.
    """
    product = Monomial(tuple(range(dimension)), tuple([1] * dimension))
    constant = Monomial((), ())
    polys = []
    for i in range(dimension):
        polys.append(Polynomial([(1 + 0j, product), (-(i + 1) + 0j, constant)]))
    return PolynomialSystem(polys, dimension=dimension)


def _monomials_per_polynomial(total_monomials: int, dimension: int) -> int:
    if total_monomials % dimension:
        raise ConfigurationError(
            f"total monomial count {total_monomials} is not divisible by the "
            f"dimension {dimension}"
        )
    return total_monomials // dimension


def table1_system(total_monomials: int = 1024,
                  seed: Optional[int] = 20120102) -> PolynomialSystem:
    """A system with the structure of the paper's Table 1.

    Dimension 32; ``total_monomials`` in {704, 1024, 1536}; each monomial has
    9 variables occurring with nonzero power of at most 2.
    """
    m = _monomials_per_polynomial(total_monomials, TABLE_DIMENSION)
    return random_regular_system(
        dimension=TABLE_DIMENSION,
        monomials_per_polynomial=m,
        variables_per_monomial=9,
        max_variable_degree=2,
        seed=seed,
    )


def table2_system(total_monomials: int = 1024,
                  seed: Optional[int] = 20120102) -> PolynomialSystem:
    """A system with the structure of the paper's Table 2.

    Dimension 32; each monomial has 16 variables occurring with nonzero power
    of at most 10.
    """
    m = _monomials_per_polynomial(total_monomials, TABLE_DIMENSION)
    return random_regular_system(
        dimension=TABLE_DIMENSION,
        monomials_per_polynomial=m,
        variables_per_monomial=16,
        max_variable_degree=10,
        seed=seed,
    )
