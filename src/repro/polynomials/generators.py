"""Random benchmark systems with the paper's regular structure.

Section 2 of the paper fixes, for benchmarking purposes, a number of
variables ``n``, a number ``m`` of monomials in every polynomial, a number
``k`` of variables occurring in every monomial and a maximal degree ``d`` for
any variable.  Section 4 then uses dimension ``n = 32`` with ``m`` in
``{22, 32, 48}`` monomials per polynomial (704, 1024, 1536 monomials in
total), with monomial shapes ``k = 9, d <= 2`` (Table 1) and
``k = 16, d <= 10`` (Table 2).

:func:`random_regular_system` generates such systems reproducibly;
:func:`table1_system` and :func:`table2_system` wrap the exact configurations
of the paper's two tables.

Beyond the paper's random regular benchmarks, this module generates the
classical solve families the scenario registry
(:mod:`repro.bench.scenarios`) sweeps: the cyclic quadratic chain, the
Katsura and Noonburg (noon) systems with their classically known root
counts, a solvable Speelpenning-product family, seeded random sparse
systems with diagonal leading terms (so every Bezout path converges), and
an irregular-degree family whose polynomials differ in degree, monomial
count and support size -- the shape that forces the padded/unpacked device
layout instead of the packed 16-bit encoding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .monomial import Monomial
from .polynomial import Polynomial
from .system import PolynomialSystem, SystemShape

__all__ = [
    "cyclic_quadratic_system",
    "irregular_degree_system",
    "katsura_root_count",
    "katsura_system",
    "noon_root_count",
    "noon_system",
    "perturb_coefficients",
    "random_regular_system",
    "random_point",
    "random_monomial",
    "random_sparse_system",
    "speelpenning_product_system",
    "speelpenning_system",
    "table1_system",
    "table2_system",
    "triangular_root_count",
    "triangular_sparse_system",
    "TABLE1_MONOMIAL_COUNTS",
    "TABLE2_MONOMIAL_COUNTS",
    "TABLE_DIMENSION",
]

#: Total monomial counts reported in Tables 1 and 2 of the paper.
TABLE1_MONOMIAL_COUNTS: Tuple[int, ...] = (704, 1024, 1536)
TABLE2_MONOMIAL_COUNTS: Tuple[int, ...] = (704, 1024, 1536)

#: Dimension used throughout the computational experiments (the warp size).
TABLE_DIMENSION: int = 32


def _unit_coefficient(rng: np.random.Generator) -> complex:
    """A random coefficient on the complex unit circle.

    Homotopy-continuation software conventionally uses unit-modulus random
    coefficients (the "gamma trick"); they keep evaluation well scaled, which
    matters for the double-vs-double-double accuracy comparisons.
    """
    angle = rng.uniform(0.0, 2.0 * math.pi)
    return complex(math.cos(angle), math.sin(angle))


def random_monomial(rng: np.random.Generator, dimension: int,
                    variables_per_monomial: int,
                    max_variable_degree: int) -> Monomial:
    """A random sparse monomial with exactly ``k`` variables, degrees in [1, d]."""
    if variables_per_monomial > dimension:
        raise ConfigurationError(
            f"cannot place {variables_per_monomial} distinct variables in a "
            f"monomial of a {dimension}-dimensional system"
        )
    if max_variable_degree < 1:
        raise ConfigurationError("max_variable_degree must be at least 1")
    positions = np.sort(rng.choice(dimension, size=variables_per_monomial, replace=False))
    exponents = rng.integers(1, max_variable_degree + 1, size=variables_per_monomial)
    return Monomial(tuple(int(p) for p in positions), tuple(int(e) for e in exponents))


def random_regular_system(dimension: int,
                          monomials_per_polynomial: int,
                          variables_per_monomial: int,
                          max_variable_degree: int,
                          seed: Optional[int] = None) -> PolynomialSystem:
    """Generate a random regular system with the paper's benchmark structure.

    Parameters mirror section 2 of the paper: ``n``, ``m``, ``k``, ``d``.
    Monomials within one polynomial are drawn independently; coefficients are
    random unit-modulus complex numbers.  Distinct supports are enforced
    within each polynomial so that the number of monomials is exactly ``m``.
    """
    rng = np.random.default_rng(seed)
    if monomials_per_polynomial < 1:
        raise ConfigurationError("monomials_per_polynomial must be at least 1")
    polynomials: List[Polynomial] = []
    for _ in range(dimension):
        seen = set()
        terms = []
        attempts = 0
        max_attempts = 200 * monomials_per_polynomial
        while len(terms) < monomials_per_polynomial:
            mono = random_monomial(rng, dimension, variables_per_monomial,
                                   max_variable_degree)
            key = (mono.positions, mono.exponents)
            attempts += 1
            if key in seen:
                if attempts > max_attempts:
                    raise ConfigurationError(
                        "could not generate enough distinct monomials; the "
                        "requested (k, d) support space is too small for m="
                        f"{monomials_per_polynomial}"
                    )
                continue
            seen.add(key)
            terms.append((_unit_coefficient(rng), mono))
        polynomials.append(Polynomial(terms))
    return PolynomialSystem(polynomials, dimension=dimension)


def random_point(dimension: int, seed: Optional[int] = None,
                 radius: float = 1.0) -> List[complex]:
    """A random complex evaluation point with components of modulus ``radius``.

    Unit-modulus points keep powers bounded, matching how path trackers
    normalise their working points.
    """
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0.0, 2.0 * math.pi, size=dimension)
    return [radius * complex(math.cos(a), math.sin(a)) for a in angles]


def speelpenning_system(dimension: int) -> PolynomialSystem:
    """The classic Speelpenning example embedded as a system.

    Every polynomial is the full product ``x_0 x_1 ... x_{n-1}`` minus a
    constant; useful as a worst case for differentiation (every derivative is
    a product of ``n - 1`` variables) and as a readable example system.
    """
    product = Monomial(tuple(range(dimension)), tuple([1] * dimension))
    constant = Monomial((), ())
    polys = []
    for i in range(dimension):
        polys.append(Polynomial([(1 + 0j, product), (-(i + 1) + 0j, constant)]))
    return PolynomialSystem(polys, dimension=dimension)


def cyclic_quadratic_system(dimension: int) -> PolynomialSystem:
    """The cyclic quadratic chain ``x_i^2 - x_{(i+1) mod n}``.

    Every polynomial is quadratic, so the Bezout number is ``2^n`` and every
    total-degree path converges to a finite root.  This is the original
    16-path drill (``n = 4``) all solve-level benches were first measured
    on; the scenario registry keeps it as the regular baseline shape.
    """
    if dimension < 1:
        raise ConfigurationError("dimension must be at least 1")
    polys = []
    for i in range(dimension):
        square = Monomial((i,), (2,))
        successor = Monomial(((i + 1) % dimension,), (1,))
        polys.append(Polynomial([(1 + 0j, square), (-1 + 0j, successor)]))
    return PolynomialSystem(polys, dimension=dimension)


def katsura_root_count(n: int) -> int:
    """Exact root count of katsura-``n``: ``2^n`` (all Bezout paths of the
    magnetism problem converge; the classical count is well documented in
    the PHCpack/Bertini demo collections)."""
    if n < 1:
        raise ConfigurationError("katsura index must be at least 1")
    return 2 ** n


def katsura_system(n: int) -> PolynomialSystem:
    """The katsura-``n`` magnetism system in dimension ``n + 1``.

    Variables ``u_0 .. u_n``.  One linear normalisation
    ``u_0 + 2 sum_{l=1..n} u_l - 1`` plus, for ``m = 0 .. n-1``, the
    convolution equation ``sum_{l=-n..n} u_|l| u_|m-l| - u_m`` (indices with
    ``|m - l| > n`` drop out).  The Bezout number ``2^n`` equals the exact
    root count -- the registry's "every path converges, roots known in
    closed form" regular scenario.
    """
    if n < 1:
        raise ConfigurationError("katsura index must be at least 1")
    dimension = n + 1
    polys: List[Polynomial] = []
    for m in range(n):
        coeffs: dict = {}
        for l in range(-n, n + 1):
            other = m - l
            if abs(other) > n:
                continue
            i, j = sorted((abs(l), abs(other)))
            coeffs[(i, j)] = coeffs.get((i, j), 0.0) + 1.0
        terms = []
        for (i, j), c in sorted(coeffs.items()):
            if i == j:
                mono = Monomial((i,), (2,))
            else:
                mono = Monomial((i, j), (1, 1))
            terms.append((complex(c), mono))
        terms.append((-1 + 0j, Monomial((m,), (1,))))
        polys.append(Polynomial(terms))
    linear = [(1 + 0j, Monomial((0,), (1,)))]
    for l in range(1, n + 1):
        linear.append((2 + 0j, Monomial((l,), (1,))))
    linear.append((-1 + 0j, Monomial((), ())))
    polys.append(Polynomial(linear))
    return PolynomialSystem(polys, dimension=dimension)


def noon_root_count(n: int) -> int:
    """Exact root count of noon-``n``: ``3^n - 2n``.

    The Bezout number is ``3^n`` but ``2n`` total-degree paths diverge to
    infinity (Noonburg's neural-network system has that many solutions at
    infinity), making this the registry's canonical divergent-path
    scenario.
    """
    if n < 2:
        raise ConfigurationError("noon index must be at least 2")
    return 3 ** n - 2 * n


def noon_system(n: int, a: float = 1.1) -> PolynomialSystem:
    """The Noonburg neural-network system noon-``n``.

    ``x_i * sum_{j != i} x_j^2 - a * x_i + 1`` for each ``i``; every
    polynomial is a cubic, so the Bezout number is ``3^n`` while the exact
    root count is ``3^n - 2n`` -- some start paths genuinely diverge, which
    exercises failure accounting in the tracker and benches.
    """
    if n < 2:
        raise ConfigurationError("noon index must be at least 2")
    polys = []
    for i in range(n):
        terms = []
        for j in range(n):
            if j == i:
                continue
            if i < j:
                mono = Monomial((i, j), (1, 2))
            else:
                mono = Monomial((j, i), (2, 1))
            terms.append((1 + 0j, mono))
        terms.append((complex(-a), Monomial((i,), (1,))))
        terms.append((1 + 0j, Monomial((), ())))
        polys.append(Polynomial(terms))
    return PolynomialSystem(polys, dimension=n)


def speelpenning_product_system(n: int,
                                seed: Optional[int] = 11) -> PolynomialSystem:
    """A solvable Speelpenning-flavoured family.

    Each polynomial couples the full Speelpenning product
    ``x_0 x_1 ... x_{n-1}`` (the classic worst case for differentiation)
    with a diagonal leading term ``x_i^n`` and a constant, all with random
    unit-modulus coefficients.  The diagonal term is the unique monomial of
    top total degree in row ``i``, so no solutions escape to infinity: the
    exact root count equals the Bezout number ``n^n``.

    Unlike :func:`speelpenning_system` (whose ``n >= 2`` instances are
    inconsistent and only useful as evaluation benchmarks), every instance
    here is a meaningful solve workload.  The system is irregular for
    ``n >= 2`` -- the product monomial touches ``n`` variables while the
    diagonal touches one -- so it exercises the padded/unpacked layout.
    """
    if n < 1:
        raise ConfigurationError("dimension must be at least 1")
    rng = np.random.default_rng(seed)
    product = Monomial(tuple(range(n)), (1,) * n)
    constant = Monomial((), ())
    polys = []
    for i in range(n):
        terms = [
            (_unit_coefficient(rng), product),
            (_unit_coefficient(rng), Monomial((i,), (n,))),
            (_unit_coefficient(rng), constant),
        ]
        polys.append(Polynomial(terms))
    return PolynomialSystem(polys, dimension=n)


def _lower_degree_monomial(rng: np.random.Generator, dimension: int,
                           total_degree: int) -> Monomial:
    """A random monomial of exactly ``total_degree`` over ``dimension`` vars."""
    k = int(rng.integers(1, min(dimension, total_degree) + 1))
    positions = np.sort(rng.choice(dimension, size=k, replace=False))
    # Split total_degree into k positive parts via sorted cut points.
    if k == 1:
        parts = [total_degree]
    else:
        cuts = np.sort(rng.choice(total_degree - 1, size=k - 1,
                                  replace=False)) + 1
        bounds = [0] + cuts.tolist() + [total_degree]
        parts = [bounds[i + 1] - bounds[i] for i in range(k)]
    return Monomial(tuple(int(p) for p in positions),
                    tuple(int(e) for e in parts))


def random_sparse_system(dimension: int, max_degree: int = 3,
                         extra_terms: int = 2,
                         seed: Optional[int] = 5) -> PolynomialSystem:
    """A seeded random sparse system with guaranteed-finite solution set.

    Polynomial ``i`` gets a random degree ``d_i`` in ``[1, max_degree]``, a
    diagonal leading term ``x_i^{d_i}`` (the *unique* monomial of top total
    degree in its row), a constant term, and -- when ``d_i > 1`` -- up to
    ``extra_terms`` random distinct monomials of strictly lower total
    degree.  The diagonal construction means the top-degree part only
    vanishes at the origin, so there are no solutions at infinity and the
    exact root count equals the Bezout number ``prod(d_i)``: every
    total-degree path converges, which makes the family usable for exact
    acceptance checks despite being random.  Degrees generally differ per
    row, so instances are irregular.
    """
    if dimension < 1:
        raise ConfigurationError("dimension must be at least 1")
    if max_degree < 1:
        raise ConfigurationError("max_degree must be at least 1")
    rng = np.random.default_rng(seed)
    degrees = [int(d) for d in rng.integers(1, max_degree + 1,
                                            size=dimension)]
    polys = []
    for i, d in enumerate(degrees):
        terms = [(_unit_coefficient(rng), Monomial((i,), (d,))),
                 (_unit_coefficient(rng), Monomial((), ()))]
        if d > 1:
            seen = set()
            attempts = 0
            while len(seen) < extra_terms and attempts < 50:
                attempts += 1
                total = int(rng.integers(1, d))
                mono = _lower_degree_monomial(rng, dimension, total)
                key = (mono.positions, mono.exponents)
                if key in seen:
                    continue
                seen.add(key)
                terms.append((_unit_coefficient(rng), mono))
        polys.append(Polynomial(terms))
    return PolynomialSystem(polys, dimension=dimension)


def irregular_degree_system(dimension: int,
                            seed: Optional[int] = 7) -> PolynomialSystem:
    """A deterministic family with per-row degrees cycling 1, 2, 3.

    Row ``i`` has degree ``d = (i mod 3) + 1`` with a diagonal leading term
    ``x_i^d``, a cyclic coupling ``x_{(i+1) mod n}^{d-1}`` when ``d > 1``, a
    mixed bilinear monomial when ``d >= 3``, and a constant (coefficients
    random unit-modulus from ``seed``).  Rows differ in degree, monomial
    count, and support size, so ``regularity()`` is ``None`` and the GPU
    evaluator must take the padded/unpacked layout.  The diagonal leading
    terms keep all solutions finite: the exact root count is the Bezout
    product ``prod(d_i)``.
    """
    if dimension < 2:
        raise ConfigurationError("dimension must be at least 2")
    rng = np.random.default_rng(seed)
    polys = []
    for i in range(dimension):
        d = (i % 3) + 1
        terms = [(_unit_coefficient(rng), Monomial((i,), (d,)))]
        if d > 1:
            terms.append((_unit_coefficient(rng),
                          Monomial(((i + 1) % dimension,), (d - 1,))))
        if d >= 3:
            j = (i + 2) % dimension
            if j != i:
                lo, hi = sorted((i, j))
                terms.append((_unit_coefficient(rng),
                              Monomial((lo, hi), (1, 1))))
        terms.append((_unit_coefficient(rng), Monomial((), ())))
        polys.append(Polynomial(terms))
    return PolynomialSystem(polys, dimension=dimension)


def _triangular_diagonal_degrees(dimension: int) -> List[int]:
    """The diagonal degree pattern of :func:`triangular_sparse_system`."""
    return [2 - (i % 2) for i in range(dimension)]


def triangular_root_count(dimension: int) -> int:
    """Exact root count of triangular-``n``: the diagonal product.

    The system is triangular (row ``i`` only involves ``x_0 .. x_i``), so
    back-substitution solves it one univariate at a time: row ``i``
    contributes exactly ``e_i`` choices, for ``prod(e_i)`` finite roots in
    total -- strictly fewer than the Bezout product of the row *total*
    degrees, which the dominating cross terms inflate.
    """
    if dimension < 2:
        raise ConfigurationError("dimension must be at least 2")
    count = 1
    for e in _triangular_diagonal_degrees(dimension):
        count *= e
    return count


def triangular_sparse_system(dimension: int,
                             seed: Optional[int] = 13) -> PolynomialSystem:
    """A triangular family whose Bezout bound overshoots the root count.

    Row ``0`` is ``a x_0^{e_0} + c``; row ``i >= 1`` couples a diagonal
    term ``a_i x_i^{e_i}`` with a *higher-degree* cross term
    ``b_i x_{i-1}^{e_i + 1}`` in the previous variable plus a constant
    (coefficients random unit-modulus from ``seed``), with diagonal degrees
    ``e_i`` cycling 2, 1.  Because row ``i`` only involves ``x_0 .. x_i``
    and every non-diagonal monomial has degree 0 in ``x_i``, the system is
    solvable by back-substitution and has exactly ``prod(e_i)`` finite
    roots, while the cross terms push the row total degrees -- and hence
    the Bezout number -- to ``e_0 * prod_{i>=1}(e_i + 1)``.  A total-degree
    start therefore wastes paths on solutions at infinity, whereas the
    binomial diagonal start tracks exactly the ``prod(e_i)`` finite ones:
    this is the registry's canonical "diagonal start beats Bezout" shape.
    Rows differ in degree and monomial count, so instances are irregular.
    """
    if dimension < 2:
        raise ConfigurationError("dimension must be at least 2")
    rng = np.random.default_rng(seed)
    degrees = _triangular_diagonal_degrees(dimension)
    polys = []
    for i, e in enumerate(degrees):
        terms = [(_unit_coefficient(rng), Monomial((i,), (e,)))]
        if i >= 1:
            terms.append((_unit_coefficient(rng),
                          Monomial((i - 1,), (e + 1,))))
        terms.append((_unit_coefficient(rng), Monomial((), ())))
        polys.append(Polynomial(terms))
    return PolynomialSystem(polys, dimension=dimension)


def perturb_coefficients(system: PolynomialSystem, scale: float = 1e-2,
                         seed: Optional[int] = 0) -> PolynomialSystem:
    """A nearby member of ``system``'s coefficient family.

    Every coefficient ``c`` is replaced by ``c * (1 + scale * u)`` with
    ``u`` a random complex number of modulus at most 1, keeping the
    monomial support -- the *schema* -- identical.  This is how the tests
    and benches manufacture parameter-homotopy families: same structure,
    different generic coefficients, so a solved member's solutions are
    valid start points for every other member.
    """
    if scale < 0:
        raise ConfigurationError("perturbation scale must be non-negative")
    rng = np.random.default_rng(seed)
    polys = []
    for poly in system.polynomials:
        terms = []
        for coefficient, monomial in poly.terms:
            radius = float(rng.uniform(0.0, 1.0))
            wobble = radius * _unit_coefficient(rng)
            terms.append((coefficient * (1 + scale * wobble), monomial))
        polys.append(Polynomial(terms))
    return PolynomialSystem(polys, dimension=system.dimension)


def _monomials_per_polynomial(total_monomials: int, dimension: int) -> int:
    if total_monomials % dimension:
        raise ConfigurationError(
            f"total monomial count {total_monomials} is not divisible by the "
            f"dimension {dimension}"
        )
    return total_monomials // dimension


def table1_system(total_monomials: int = 1024,
                  seed: Optional[int] = 20120102) -> PolynomialSystem:
    """A system with the structure of the paper's Table 1.

    Dimension 32; ``total_monomials`` in {704, 1024, 1536}; each monomial has
    9 variables occurring with nonzero power of at most 2.
    """
    m = _monomials_per_polynomial(total_monomials, TABLE_DIMENSION)
    return random_regular_system(
        dimension=TABLE_DIMENSION,
        monomials_per_polynomial=m,
        variables_per_monomial=9,
        max_variable_degree=2,
        seed=seed,
    )


def table2_system(total_monomials: int = 1024,
                  seed: Optional[int] = 20120102) -> PolynomialSystem:
    """A system with the structure of the paper's Table 2.

    Dimension 32; each monomial has 16 variables occurring with nonzero power
    of at most 10.
    """
    m = _monomials_per_polynomial(total_monomials, TABLE_DIMENSION)
    return random_regular_system(
        dimension=TABLE_DIMENSION,
        monomials_per_polynomial=m,
        variables_per_monomial=16,
        max_variable_degree=10,
        seed=seed,
    )
