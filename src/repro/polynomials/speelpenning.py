"""The Speelpenning product and its algorithmic differentiation.

The product of variables ``x_{i1} x_{i2} ... x_{ik}`` is the classic example
(due to Speelpenning, popularised by Griewank & Walther [12]) showing that the
gradient of a function can be computed at a small constant multiple of the
cost of the function itself.  Section 3.2 of the paper evaluates the product
and *all* ``k`` partial derivatives in ``3k - 6`` multiplications with a
forward/backward sweep; this module provides that algorithm as an ordinary
(CPU) routine, with explicit operation counting, so the simulated kernel 2 can
be validated against it and so the ``5k - 4`` claim can be checked exactly.

The code follows the paper's storage discipline: the forward products go into
locations ``L2 .. Lk`` (0-indexed here), a single register ``Q`` carries the
backward product, and the derivative with respect to ``x_{i1}`` lands in
``L1``.  The functions below work for any scalar type (complex, ComplexDD,
ComplexQD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = [
    "OperationCount",
    "speelpenning_gradient",
    "speelpenning_value",
    "naive_gradient",
    "expected_gradient_multiplications",
]


@dataclass
class OperationCount:
    """A tally of arithmetic operations performed by an algorithm."""

    multiplications: int = 0
    additions: int = 0

    def add(self, other: "OperationCount") -> "OperationCount":
        return OperationCount(self.multiplications + other.multiplications,
                              self.additions + other.additions)

    def __iadd__(self, other: "OperationCount") -> "OperationCount":
        self.multiplications += other.multiplications
        self.additions += other.additions
        return self


def expected_gradient_multiplications(k: int) -> int:
    """The paper's count of multiplications to obtain all partial derivatives
    of a Speelpenning product of ``k`` variables: ``3k - 6`` for ``k >= 3``.

    For ``k = 1`` the single derivative is the constant 1 (0 multiplications)
    and for ``k = 2`` the two derivatives are the other variable (also 0).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k <= 2:
        return 0
    return 3 * k - 6


def speelpenning_value(factors: Sequence) -> Tuple[object, OperationCount]:
    """The plain product of the ``k`` factors (``k - 1`` multiplications)."""
    count = OperationCount()
    if not factors:
        return 1.0, count
    acc = factors[0]
    for x in factors[1:]:
        acc = acc * x
        count.multiplications += 1
    return acc, count


def speelpenning_gradient(factors: Sequence) -> Tuple[List, OperationCount]:
    """All partial derivatives of ``prod_j factors[j]`` by forward/backward sweep.

    Parameters
    ----------
    factors:
        The values ``x_{i1}, ..., x_{ik}`` (any scalar type supporting ``*``).

    Returns
    -------
    (gradient, count):
        ``gradient[j]`` is the derivative with respect to ``factors[j]``,
        i.e. the product of all the *other* factors; ``count`` records the
        multiplications, which equal ``3k - 6`` for ``k >= 3`` as claimed in
        the paper (0 for ``k <= 2``).

    Notes
    -----
    The implementation mirrors the kernel description verbatim:

    1. Store ``x_{i1}`` in ``L[1]`` and build forward products
       ``x_{i1}...x_{ir+1}`` into ``L[r+1]`` for ``r = 1 .. k-2``
       (``k - 2`` multiplications).  ``L[k-1]`` then already holds the
       derivative with respect to ``x_{ik}``.
    2. Initialise the backward product ``Q = x_{ik}``; multiply it into
       ``L[k-2]`` to finish the derivative with respect to ``x_{ik-1}``
       (1 multiplication).
    3. For ``r = 1 .. k-3``: update ``Q *= x_{ik-r}`` and set
       ``L[k-r-2] *= Q`` (2 multiplications per step).
    4. The derivative with respect to ``x_{i1}`` is ``Q * x_{i2}``
       (1 multiplication), stored in ``L[0]``.
    """
    k = len(factors)
    count = OperationCount()

    if k == 0:
        return [], count
    if k == 1:
        return [1.0], count
    if k == 2:
        # Each derivative is just the other factor; no multiplications.
        return [factors[1], factors[0]], count

    # L[j] for j = 1 .. k-1 will hold forward products; L[j] for j <= k-2 is
    # later completed with the backward product.  Use a dense Python list as
    # the stand-in for the k+1 shared-memory locations of the kernel.
    L: List = [None] * k

    # Stage 1: forward products L[r+1] = (x_{i1} ... x_{ir}) * x_{ir+1},
    # writing L[2] .. L[k-1] with k - 2 multiplications.
    L[1] = factors[0]
    for r in range(1, k - 1):
        L[r + 1] = L[r] * factors[r]
        count.multiplications += 1

    # L[k-1] now holds x_{i1}...x_{ik-1}: the derivative w.r.t. x_{ik}.
    gradient: List = [None] * k
    gradient[k - 1] = L[k - 1]

    # Stage 2: initialise the backward product Q with x_{ik} and finish the
    # derivative with respect to x_{ik-1}.
    Q = factors[k - 1]
    gradient[k - 2] = L[k - 2] * Q
    count.multiplications += 1

    # Stage 3: sweep backwards, two multiplications per remaining derivative.
    for r in range(1, k - 2):
        Q = Q * factors[k - 1 - r]
        count.multiplications += 1
        gradient[k - 2 - r] = L[k - 2 - r] * Q
        count.multiplications += 1

    # Stage 4: derivative with respect to x_{i1}.
    Q = Q * factors[1]
    count.multiplications += 1
    gradient[0] = Q

    return gradient, count


def naive_gradient(factors: Sequence) -> Tuple[List, OperationCount]:
    """Reference gradient: derivative ``j`` as the product of all other factors.

    Costs ``k (k - 2)`` multiplications; used only to validate
    :func:`speelpenning_gradient` in tests and to quantify the advantage of
    the ``3k - 6`` scheme in the operation-count benchmarks.
    """
    k = len(factors)
    count = OperationCount()
    gradient: List = []
    for j in range(k):
        others = [factors[i] for i in range(k) if i != j]
        if not others:
            gradient.append(1.0)
            continue
        acc = others[0]
        for x in others[1:]:
            acc = acc * x
            count.multiplications += 1
        gradient.append(acc)
    return gradient, count
