"""Newton's method driven by a system-plus-Jacobian evaluator.

The motivation of the paper is that the evaluation of the system and its
Jacobian dominates the cost of Newton's corrector inside path trackers; the
GPU pipeline exists to accelerate exactly this loop.  :class:`NewtonCorrector`
implements the loop against the *evaluator interface* shared by
:class:`~repro.core.evaluator.GPUEvaluator`,
:class:`~repro.core.cpu_reference.CPUReferenceEvaluator` and
:class:`~repro.tracking.homotopy.Homotopy`: anything with an
``evaluate(point)`` returning an object with ``values`` and ``jacobian``
attributes, in any of the supported arithmetics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError
from ..multiprec.backend import ComplexBatchBackend, masked_lane_errstate
from ..multiprec.numeric import DOUBLE, NumericContext
from .batch_linsolve import batched_solve
from .linsolve import solve, vector_norm

__all__ = [
    "NewtonStep",
    "NewtonResult",
    "NewtonCorrector",
    "BatchNewtonResult",
    "BatchNewtonCorrector",
    "residual_accepted_after_update",
]


def residual_accepted_after_update(residual, tolerance: float):
    """The relaxed residual acceptance used after a tiny Newton update.

    When the update norm already dropped below tolerance the iteration is
    declared converged if the residual at the evaluated point is within two
    orders of magnitude of the target.  Shared by the scalar corrector and
    (per lane, on the immediate re-evaluation of small-update lanes) by the
    batched corrector; operates element-wise on arrays.
    """
    return residual <= 1e2 * tolerance


@dataclass(frozen=True)
class NewtonStep:
    """Diagnostics of one Newton iteration."""

    iteration: int
    residual_norm: float
    update_norm: float


@dataclass
class NewtonResult:
    """Outcome of a Newton run."""

    solution: List
    converged: bool
    iterations: int
    residual_norm: float
    update_norm: float
    history: List[NewtonStep] = field(default_factory=list)


class NewtonCorrector:
    """Damped-free Newton iteration ``x <- x - J(x)^{-1} f(x)``.

    Parameters
    ----------
    evaluator:
        Object with ``evaluate(point)`` returning ``values`` and ``jacobian``.
    context:
        Numeric context the evaluator works in.
    tolerance:
        Convergence threshold on the infinity norm of the residual ``f(x)``.
    max_iterations:
        Iteration cap; exceeding it with ``raise_on_failure=True`` raises
        :class:`~repro.errors.ConvergenceError`, otherwise the best iterate is
        returned with ``converged=False``.
    """

    def __init__(self, evaluator, *,
                 context: NumericContext = DOUBLE,
                 tolerance: float = 1e-12,
                 max_iterations: int = 20,
                 raise_on_failure: bool = False):
        self.evaluator = evaluator
        self.context = context
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.raise_on_failure = bool(raise_on_failure)

    def _convert_point(self, point: Sequence) -> List:
        ctx = self.context
        return [ctx.from_complex(complex(x)) if isinstance(x, (int, float, complex)) else x
                for x in point]

    def correct(self, point: Sequence) -> NewtonResult:
        """Run Newton's method from ``point``."""
        ctx = self.context
        x = self._convert_point(point)
        history: List[NewtonStep] = []
        residual = float("inf")
        update = float("inf")

        for iteration in range(1, self.max_iterations + 1):
            evaluation = self.evaluator.evaluate(x)
            values = evaluation.values
            jacobian = evaluation.jacobian
            residual = vector_norm(values, ctx)
            if residual <= self.tolerance:
                history.append(NewtonStep(iteration, residual, 0.0))
                return NewtonResult(solution=x, converged=True, iterations=iteration,
                                    residual_norm=residual, update_norm=0.0,
                                    history=history)

            rhs = [-v for v in values]
            dx = solve(jacobian, rhs, ctx)
            update = vector_norm(dx, ctx)
            x = [xi + di for xi, di in zip(x, dx)]
            history.append(NewtonStep(iteration, residual, update))

            if update <= self.tolerance:
                # One last residual check at the updated point.
                final_eval = self.evaluator.evaluate(x)
                residual = vector_norm(final_eval.values, ctx)
                converged = residual_accepted_after_update(residual, self.tolerance)
                return NewtonResult(solution=x, converged=converged,
                                    iterations=iteration, residual_norm=residual,
                                    update_norm=update, history=history)

        if self.raise_on_failure:
            raise ConvergenceError(
                f"Newton's method did not reach tolerance {self.tolerance:g} in "
                f"{self.max_iterations} iterations (last residual {residual:.3e})"
            )
        return NewtonResult(solution=x, converged=False, iterations=self.max_iterations,
                            residual_norm=residual, update_norm=update, history=history)


# ----------------------------------------------------------------------
# the batched corrector: one Newton loop, B paths in lock step
# ----------------------------------------------------------------------
@dataclass
class BatchNewtonResult:
    """Per-lane outcome of a batched Newton run.

    ``solution`` is the updated ``(n, B)`` batch array; the remaining fields
    are ``(B,)`` NumPy arrays.  Lanes that were inactive on entry keep their
    input point and report ``converged=False`` with zero iterations.
    """

    solution: object
    converged: np.ndarray
    iterations: np.ndarray
    residual_norm: np.ndarray


class BatchNewtonCorrector:
    """Newton's iteration over a lane batch with per-lane retirement.

    The loop mirrors :class:`NewtonCorrector` -- evaluate, test the residual,
    solve, update -- but on ``(n, B)`` batch arrays.  Lanes whose residual
    passes the tolerance are masked out of further updates (they *retire*)
    while the rest keep iterating; lanes with a singular Jacobian retire as
    failures with an infinite residual, matching how the scalar tracker
    converts :class:`~repro.errors.SingularMatrixError` into non-convergence.

    Parameters
    ----------
    evaluator:
        Object with ``evaluate(points)`` accepting an ``(n, B)`` batch array
        and returning per-lane ``values``/``jacobian`` rows (for example
        :meth:`repro.tracking.homotopy.BatchHomotopy.at`, which by default
        executes the compiled :class:`~repro.core.evalplan.HomotopyPlan`
        schedule -- the corrector is oblivious to which path produced the
        rows, since both are value-identical).
    backend:
        The batch array backend.
    tolerance / max_iterations:
        Same meaning as in the scalar corrector.
    evaluation_log:
        Optional list; every evaluator call appends the number of lanes it
        covered.  The throughput benchmark prices one batched kernel launch
        per entry from this log.
    """

    def __init__(self, evaluator, backend: ComplexBatchBackend, *,
                 tolerance: float = 1e-12,
                 max_iterations: int = 20,
                 evaluation_log: Optional[list] = None):
        self.evaluator = evaluator
        self.backend = backend
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.evaluation_log = evaluation_log

    def _residuals(self, values) -> np.ndarray:
        """Per-lane infinity norm over the value rows, double-rounded."""
        backend = self.backend
        norms = backend.magnitude(values[0])
        for row in values[1:]:
            norms = np.maximum(norms, backend.magnitude(row))
        return norms

    def correct(self, points, active: Optional[np.ndarray] = None) -> BatchNewtonResult:
        """Run the lock-step Newton loop from the batch ``points``.

        Each iteration *compresses* to the still-working lanes before
        evaluating (the evaluator receives the matching lane indices, see
        :meth:`repro.tracking.homotopy.BatchHomotopy._Frozen.evaluate`), so
        retired lanes cost no arithmetic and the ``evaluation_log`` counts
        exactly the lanes a batched kernel launch would cover.

        Lanes whose Newton update drops below tolerance take the scalar
        corrector's small-update exit *within the same iteration*: the
        updated point is re-evaluated immediately (one extra compressed
        evaluation, exactly the scalar loop's final residual check) and the
        lane retires -- converged when the relaxed residual test passes,
        failed otherwise.  Either way it stops iterating, matching
        :meth:`NewtonCorrector.correct`.
        """
        backend = self.backend
        lanes = points.shape[-1]
        working = (np.ones(lanes, dtype=bool) if active is None
                   else np.array(active, dtype=bool))
        converged = np.zeros(lanes, dtype=bool)
        iterations = np.zeros(lanes, dtype=np.int64)
        residuals = np.full(lanes, np.inf)
        x = backend.copy(points)

        # Diverging lanes carry inf/NaN through the batch arithmetic until
        # the residual test retires them; run the whole loop in the
        # masked-lane errstate scope so they stay silent.
        with masked_lane_errstate():
            for _ in range(self.max_iterations):
                if not working.any():
                    break
                idx = np.flatnonzero(working)
                x_live = x[:, idx]
                if self.evaluation_log is not None:
                    self.evaluation_log.append(len(idx))
                evaluation = self.evaluator.evaluate(x_live, lanes=idx)
                norms = self._residuals(evaluation.values)
                residuals[idx] = norms
                iterations[idx] += 1

                done = norms <= self.tolerance
                converged[idx[done]] = True
                working[idx[done]] = False
                if done.all():
                    continue

                rhs = [-value for value in evaluation.values]
                # The evaluation is rebuilt from scratch next iteration, so
                # the solver may consume (mutate) its Jacobian and our rhs.
                dx, singular = batched_solve(evaluation.jacobian, rhs, backend,
                                             active=~done, copy=False)
                failed = singular & ~done
                residuals[idx[failed]] = np.inf
                working[idx[failed]] = False

                advance = ~done & ~singular
                update_norms = self._residuals(dx)
                # x_live is a fresh gather of the live lanes, so the masked
                # Newton update may fold into it in place.
                x_live = backend.iadd_masked(x_live, backend.stack(dx), advance)
                x[:, idx] = x_live

                # The scalar small-update exit, lane-wise and in this
                # iteration: re-evaluate the freshly updated small-update
                # lanes and settle them for good (the iteration counter does
                # not advance for this final check, matching the scalar
                # corrector).
                small = advance & (update_norms <= self.tolerance)
                if small.any():
                    small_idx = idx[small]
                    if self.evaluation_log is not None:
                        self.evaluation_log.append(len(small_idx))
                    final = self.evaluator.evaluate(x[:, small_idx], lanes=small_idx)
                    final_norms = self._residuals(final.values)
                    residuals[small_idx] = final_norms
                    converged[small_idx] = residual_accepted_after_update(
                        final_norms, self.tolerance)
                    working[small_idx] = False

        return BatchNewtonResult(solution=x, converged=converged,
                                 iterations=iterations, residual_norm=residuals)
