"""Newton's method driven by a system-plus-Jacobian evaluator.

The motivation of the paper is that the evaluation of the system and its
Jacobian dominates the cost of Newton's corrector inside path trackers; the
GPU pipeline exists to accelerate exactly this loop.  :class:`NewtonCorrector`
implements the loop against the *evaluator interface* shared by
:class:`~repro.core.evaluator.GPUEvaluator`,
:class:`~repro.core.cpu_reference.CPUReferenceEvaluator` and
:class:`~repro.tracking.homotopy.Homotopy`: anything with an
``evaluate(point)`` returning an object with ``values`` and ``jacobian``
attributes, in any of the supported arithmetics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConvergenceError
from ..multiprec.numeric import DOUBLE, NumericContext
from .linsolve import solve, vector_norm

__all__ = ["NewtonStep", "NewtonResult", "NewtonCorrector"]


@dataclass(frozen=True)
class NewtonStep:
    """Diagnostics of one Newton iteration."""

    iteration: int
    residual_norm: float
    update_norm: float


@dataclass
class NewtonResult:
    """Outcome of a Newton run."""

    solution: List
    converged: bool
    iterations: int
    residual_norm: float
    update_norm: float
    history: List[NewtonStep] = field(default_factory=list)


class NewtonCorrector:
    """Damped-free Newton iteration ``x <- x - J(x)^{-1} f(x)``.

    Parameters
    ----------
    evaluator:
        Object with ``evaluate(point)`` returning ``values`` and ``jacobian``.
    context:
        Numeric context the evaluator works in.
    tolerance:
        Convergence threshold on the infinity norm of the residual ``f(x)``.
    max_iterations:
        Iteration cap; exceeding it with ``raise_on_failure=True`` raises
        :class:`~repro.errors.ConvergenceError`, otherwise the best iterate is
        returned with ``converged=False``.
    """

    def __init__(self, evaluator, *,
                 context: NumericContext = DOUBLE,
                 tolerance: float = 1e-12,
                 max_iterations: int = 20,
                 raise_on_failure: bool = False):
        self.evaluator = evaluator
        self.context = context
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.raise_on_failure = bool(raise_on_failure)

    def _convert_point(self, point: Sequence) -> List:
        ctx = self.context
        return [ctx.from_complex(complex(x)) if isinstance(x, (int, float, complex)) else x
                for x in point]

    def correct(self, point: Sequence) -> NewtonResult:
        """Run Newton's method from ``point``."""
        ctx = self.context
        x = self._convert_point(point)
        history: List[NewtonStep] = []
        residual = float("inf")
        update = float("inf")

        for iteration in range(1, self.max_iterations + 1):
            evaluation = self.evaluator.evaluate(x)
            values = evaluation.values
            jacobian = evaluation.jacobian
            residual = vector_norm(values, ctx)
            if residual <= self.tolerance:
                history.append(NewtonStep(iteration, residual, 0.0))
                return NewtonResult(solution=x, converged=True, iterations=iteration,
                                    residual_norm=residual, update_norm=0.0,
                                    history=history)

            rhs = [-v for v in values]
            dx = solve(jacobian, rhs, ctx)
            update = vector_norm(dx, ctx)
            x = [xi + di for xi, di in zip(x, dx)]
            history.append(NewtonStep(iteration, residual, update))

            if update <= self.tolerance:
                # One last residual check at the updated point.
                final_eval = self.evaluator.evaluate(x)
                residual = vector_norm(final_eval.values, ctx)
                converged = residual <= max(self.tolerance, 1e2 * self.tolerance)
                return NewtonResult(solution=x, converged=converged,
                                    iterations=iteration, residual_norm=residual,
                                    update_norm=update, history=history)

        if self.raise_on_failure:
            raise ConvergenceError(
                f"Newton's method did not reach tolerance {self.tolerance:g} in "
                f"{self.max_iterations} iterations (last residual {residual:.3e})"
            )
        return NewtonResult(solution=x, converged=False, iterations=self.max_iterations,
                            residual_norm=residual, update_norm=update, history=history)
