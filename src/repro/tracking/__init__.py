"""Homotopy continuation substrate: Newton, homotopies, path tracking.

The paper's kernels exist to feed Newton's corrector inside a polynomial
homotopy path tracker.  This subpackage provides that application layer so
the evaluators can be exercised end to end:

* :mod:`~repro.tracking.linsolve` -- generic dense LU over any scalar type;
* :mod:`~repro.tracking.newton` -- the corrector;
* :mod:`~repro.tracking.start_systems` -- start strategies: total-degree,
  diagonal binomial, generic-member seeding;
* :mod:`~repro.tracking.parameter` -- parameter homotopy families served
  from one solved generic member;
* :mod:`~repro.tracking.homotopy` -- the gamma-trick convex homotopy;
* :mod:`~repro.tracking.predictor` / :mod:`~repro.tracking.tracker` -- the
  adaptive predictor-corrector loop;
* :mod:`~repro.tracking.quality_up` -- the precision-for-parallelism
  accounting of the paper's introduction.
"""

from .batch_linsolve import batched_solve
from .batch_tracker import (
    BatchTracker,
    BatchTrackResult,
    LaneCheckpoint,
    PathBatch,
    PathStatus,
)
from .homotopy import BatchHomotopy, BatchHomotopyEvaluation, Homotopy, HomotopyEvaluation
from .linsolve import lu_factor, lu_solve, residual_norm, solve, vector_norm
from .newton import (
    BatchNewtonCorrector,
    BatchNewtonResult,
    NewtonCorrector,
    NewtonResult,
    NewtonStep,
)
from .predictor import (
    BatchSecantPredictor,
    BatchTangentPredictor,
    SecantPredictor,
    TangentPredictor,
)
from .quality_up import (
    QualityUpEntry,
    affordable_precision,
    measured_overhead_factor,
    offset_factor,
    quality_up_table,
)
from .parameter import ParameterFamily
from .solver import EscalationPolicy, Solution, SolveReport, solve_system
from .start_systems import (
    DiagonalStart,
    GenericMemberStart,
    StartPlan,
    StartStrategy,
    TotalDegreeStart,
    sample_start_solutions,
    start_solutions,
    total_degree,
    total_degree_start_system,
)
from .tracker import PathPoint, PathResult, PathTracker, StepControl, TrackerOptions

__all__ = [
    "BatchHomotopy",
    "BatchHomotopyEvaluation",
    "BatchNewtonCorrector",
    "BatchNewtonResult",
    "BatchSecantPredictor",
    "BatchTangentPredictor",
    "BatchTracker",
    "BatchTrackResult",
    "Homotopy",
    "HomotopyEvaluation",
    "LaneCheckpoint",
    "PathBatch",
    "PathStatus",
    "StepControl",
    "batched_solve",
    "DiagonalStart",
    "EscalationPolicy",
    "GenericMemberStart",
    "ParameterFamily",
    "StartPlan",
    "StartStrategy",
    "TotalDegreeStart",
    "NewtonCorrector",
    "NewtonResult",
    "NewtonStep",
    "PathPoint",
    "PathResult",
    "PathTracker",
    "QualityUpEntry",
    "SecantPredictor",
    "Solution",
    "SolveReport",
    "TangentPredictor",
    "TrackerOptions",
    "solve_system",
    "affordable_precision",
    "lu_factor",
    "lu_solve",
    "measured_overhead_factor",
    "offset_factor",
    "quality_up_table",
    "residual_norm",
    "sample_start_solutions",
    "solve",
    "start_solutions",
    "total_degree",
    "total_degree_start_system",
    "vector_norm",
]
