"""Batched many-path tracking: a structure of arrays over the whole batch.

The paper accelerates evaluation and differentiation in double-double
arithmetic precisely so that *many* homotopy paths can be processed on
massively parallel hardware.  The scalar :class:`~repro.tracking.tracker.
PathTracker` walks one path at a time; this module drives ``B`` paths in
lock step:

* :class:`PathBatch` holds the state of all paths as columns (*lanes*) of
  ``(n, B)`` batch arrays -- a structure of arrays over
  :class:`~repro.multiprec.ddarray.ComplexDDArray` (or ``complex128``), the
  layout a device would keep resident between kernel launches;
* :class:`BatchTracker` runs the predictor -> Newton-corrector -> step
  control loop for the whole batch at once.  Every lane carries its own
  continuation parameter ``t`` and step ``dt``; per-lane boolean masks let
  converged, failed and finished paths *retire* without stalling the rest,
  and each round the live lanes are compressed so retired lanes cost
  nothing;
* one batched homotopy evaluation replaces ``B`` scalar evaluations, which
  is what lets the cost model price one kernel launch per batch instead of
  one per path (see
  :meth:`repro.gpusim.costmodel.GPUCostModel.batched_kernel_time`);
* every lane's final state is exportable as a :class:`LaneCheckpoint` -- the
  last accepted ``(x, t)``, the step size, the consecutive-success counter
  and the failure cause -- and :meth:`BatchTracker.track_batches` accepts
  ``resume_from=`` checkpoints so a batch can start *mid-path*.  Checkpoints
  convert between arithmetics through the backend registry
  (:func:`repro.multiprec.backend.convert_batch`), which is what lets the
  escalation pipeline warm-restart a failed path one precision rung wider
  instead of re-tracking it from ``t = 0``.

The tracker reports plain :class:`~repro.tracking.tracker.PathResult`
objects, so callers (and the differential tests) can compare its roots
directly with the scalar engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..multiprec.backend import (
    ComplexBatchBackend,
    backend_for_context,
    convert_batch,
    masked_lane_errstate,
    registered_backends,
)
from ..multiprec.complex_dd import ComplexDD
from ..multiprec.double_double import DoubleDouble
from ..multiprec.numeric import DOUBLE, ComplexQD, NumericContext
from ..multiprec.quad_double import QuadDouble
from .homotopy import BatchHomotopy
from .newton import BatchNewtonCorrector
from .predictor import BatchSecantPredictor, BatchTangentPredictor
from .tracker import PathResult, StepControl, TrackerOptions

__all__ = ["PathStatus", "LaneCheckpoint", "PathBatch", "BatchTrackResult",
           "BatchTracker", "scalar_to_planes", "scalar_from_planes"]


# ----------------------------------------------------------------------
# portable scalar encoding: context scalars <-> flat float64 components
# ----------------------------------------------------------------------
#: Flat float components of one complex scalar per context: ``d`` stores
#: ``(re, im)``, ``dd`` the four ``(re.hi, re.lo, im.hi, im.lo)`` planes,
#: ``qd`` all eight quad-double components.  The planes ARE the scalar's
#: in-memory representation, so the round trip is bit-for-bit (inf, NaN
#: and signed zeros included).
_PLANES_PER_SCALAR = {"d": 2, "dd": 4, "qd": 8}


def scalar_to_planes(x, context_name: str) -> List[float]:
    """Flatten one scalar of a ``d``/``dd``/``qd`` context to plain floats.

    The floats are exactly the scalar's component planes -- no rounding --
    so :func:`scalar_from_planes` reconstructs the scalar bit-for-bit.
    This is the element step of the portable checkpoint format (see
    :meth:`LaneCheckpoint.to_portable`).

    Raises
    ------
    ConfigurationError
        For contexts without a known plane decomposition.
    """
    if context_name == "d":
        z = complex(x)
        return [z.real, z.imag]
    if context_name == "dd":
        if not isinstance(x, ComplexDD):
            x = ComplexDD(DoubleDouble(complex(x).real),
                          DoubleDouble(complex(x).imag))
        return [x.real.hi, x.real.lo, x.imag.hi, x.imag.lo]
    if context_name == "qd":
        if not isinstance(x, ComplexQD):
            x = ComplexQD(complex(x))
        return [*x.real.c, *x.imag.c]
    raise ConfigurationError(
        f"no portable plane encoding for numeric context {context_name!r}; "
        f"supported: {sorted(_PLANES_PER_SCALAR)}"
    )


def scalar_from_planes(planes: Sequence[float], context_name: str):
    """Rebuild a context scalar from :func:`scalar_to_planes` output."""
    values = [float(v) for v in planes]
    expected = _PLANES_PER_SCALAR.get(context_name)
    if expected is None:
        raise ConfigurationError(
            f"no portable plane encoding for numeric context {context_name!r}; "
            f"supported: {sorted(_PLANES_PER_SCALAR)}"
        )
    if len(values) != expected:
        raise ConfigurationError(
            f"a {context_name!r} scalar needs {expected} plane components, "
            f"got {len(values)}"
        )
    if context_name == "d":
        return complex(values[0], values[1])
    if context_name == "dd":
        # _raw skips the constructor's two_sum renormalisation: the planes
        # already are a valid decomposition, and renormalising would poison
        # non-finite lanes (inf + nan -> nan).
        return ComplexDD(DoubleDouble._raw(values[0], values[1]),
                         DoubleDouble._raw(values[2], values[3]))
    return ComplexQD(QuadDouble._raw(tuple(values[:4])),
                     QuadDouble._raw(tuple(values[4:])))


class PathStatus(IntEnum):
    """Per-lane life cycle of a batched path."""

    TRACKING = 0
    SUCCESS = 1
    START_FAILED = 2
    STEP_UNDERFLOW = 3
    MAX_STEPS = 4
    ENDGAME_FAILED = 5


_FAILURE_REASONS = {
    PathStatus.START_FAILED: "start point does not satisfy the start system",
    PathStatus.STEP_UNDERFLOW: "step size underflow",
    PathStatus.MAX_STEPS: "maximum number of steps exceeded",
    PathStatus.ENDGAME_FAILED: "end game did not converge",
}


@dataclass(frozen=True)
class LaneCheckpoint:
    """The exportable state of one lane of a :class:`PathBatch`.

    A checkpoint captures everything the tracker needs to continue the path
    from where the lane retired: the last *accepted* point and its
    continuation parameter (on a failed step the batch never moves, so
    ``point`` is always on the path to working accuracy), the predictor
    history, the adaptive step state and the retirement cause.  Checkpoints
    are plain scalar data -- ``point``/``prev_point`` hold scalars of the
    capturing arithmetic (``context_name``) -- so they survive the batch
    they came from and can seed a new batch in a *different* arithmetic:
    :meth:`PathBatch.from_checkpoints` widens them through the backend
    registry (:func:`repro.multiprec.backend.convert_batch`).

    Attributes
    ----------
    context_name:
        Name of the numeric context the checkpoint was captured in
        (``"d"``, ``"dd"``, ``"qd"``, or any registered backend's).
    point / t:
        The last accepted solution ``x`` (tuple of context scalars) and its
        continuation parameter.
    prev_point / prev_t / has_prev:
        The secant predictor's memory: the previously accepted point, or a
        copy of ``point`` with ``has_prev=False`` when no step was accepted.
    dt:
        The adaptive step size at retirement.
    residual:
        The last measured per-lane residual norm (double-rounded).
    status:
        The lane's :class:`PathStatus` at capture -- the failure cause for
        retired lanes, ``TRACKING`` for lanes interrupted mid-path.
    steps_accepted / steps_rejected / newton_iterations:
        The lane's work counters, carried into the resumed batch so path
        results accumulate across rungs.
    consecutive_successes:
        Accepted steps since the last rejection.  Diagnostic state: the
        current :class:`~repro.tracking.tracker.StepControl` grows the step
        on every acceptance, so nothing reads the streak yet, but it is
        maintained and checkpointed so a streak-gated growth policy (the
        classic "grow only after N consecutive successes") can resume
        without losing its state.
    """

    context_name: str
    point: tuple
    t: float
    prev_point: tuple
    prev_t: float
    has_prev: bool
    dt: float
    residual: float
    status: PathStatus
    steps_accepted: int
    steps_rejected: int
    newton_iterations: int
    consecutive_successes: int

    @property
    def failed(self) -> bool:
        """Whether the lane retired with a failure cause."""
        return self.status not in (PathStatus.SUCCESS, PathStatus.TRACKING)

    @property
    def failure_reason(self) -> Optional[str]:
        """Human-readable failure cause, ``None`` for healthy lanes."""
        return _FAILURE_REASONS.get(self.status)

    @property
    def resumes_mid_path(self) -> bool:
        """Whether resuming this checkpoint reuses tracked progress
        (``t > 0``) rather than restarting the path from scratch."""
        return self.t > 0.0

    # ------------------------------------------------------------------
    # portable state: plain floats/ints, exact across d/dd/qd
    # ------------------------------------------------------------------
    def to_portable(self) -> Dict[str, object]:
        """This checkpoint as a dict of plain floats, ints and bools.

        ``point``/``prev_point`` hold context scalars (:class:`~repro.
        multiprec.complex_dd.ComplexDD`, :class:`~repro.multiprec.numeric.
        ComplexQD`, ...), which no generic store can persist.  The portable
        form flattens every scalar to its float64 component planes
        (:func:`scalar_to_planes`), so the whole state is JSON/npz-friendly
        while :meth:`from_portable` reconstructs the checkpoint bit-for-bit
        -- inf/NaN lanes and signed zeros included.  This is the wire and
        storage format of the sharded solve service
        (:mod:`repro.service.store`).
        """
        name = self.context_name
        return {
            "context": name,
            "point": [scalar_to_planes(x, name) for x in self.point],
            "t": float(self.t),
            "prev_point": [scalar_to_planes(x, name) for x in self.prev_point],
            "prev_t": float(self.prev_t),
            "has_prev": bool(self.has_prev),
            "dt": float(self.dt),
            "residual": float(self.residual),
            "status": int(self.status),
            "steps_accepted": int(self.steps_accepted),
            "steps_rejected": int(self.steps_rejected),
            "newton_iterations": int(self.newton_iterations),
            "consecutive_successes": int(self.consecutive_successes),
        }

    @classmethod
    def from_portable(cls, state: Dict[str, object]) -> "LaneCheckpoint":
        """Rebuild a checkpoint from :meth:`to_portable` output.

        Raises
        ------
        ConfigurationError
            When the state names a context without a plane encoding or the
            plane counts are inconsistent.
        """
        name = str(state["context"])
        return cls(
            context_name=name,
            point=tuple(scalar_from_planes(planes, name)
                        for planes in state["point"]),
            t=float(state["t"]),
            prev_point=tuple(scalar_from_planes(planes, name)
                             for planes in state["prev_point"]),
            prev_t=float(state["prev_t"]),
            has_prev=bool(state["has_prev"]),
            dt=float(state["dt"]),
            residual=float(state["residual"]),
            status=PathStatus(int(state["status"])),
            steps_accepted=int(state["steps_accepted"]),
            steps_rejected=int(state["steps_rejected"]),
            newton_iterations=int(state["newton_iterations"]),
            consecutive_successes=int(state["consecutive_successes"]),
        )


@dataclass
class PathBatch:
    """Structure-of-arrays state of ``B`` homotopy paths.

    ``points`` and ``prev_points`` are ``(n, B)`` batch arrays; every other
    field is a ``(B,)`` NumPy array.  Lane ``b`` of every array belongs to
    path ``b``, so selecting a lane subset is one fancy-indexing operation
    per array -- no per-path objects are ever materialised.

    A batch is constructed either fresh at ``t = 0``
    (:meth:`from_start_solutions`) or mid-path from per-lane
    :class:`LaneCheckpoint` state (:meth:`from_checkpoints`), and every lane
    can be exported back out as a checkpoint (:meth:`checkpoint` /
    :meth:`checkpoints`) -- the round trip behind warm-restarted precision
    escalation.
    """

    backend: ComplexBatchBackend
    points: object
    prev_points: object
    t: np.ndarray
    prev_t: np.ndarray
    dt: np.ndarray
    has_prev: np.ndarray
    active: np.ndarray
    status: np.ndarray
    residual: np.ndarray
    steps_accepted: np.ndarray
    steps_rejected: np.ndarray
    newton_iterations: np.ndarray
    consecutive_successes: np.ndarray

    @classmethod
    def from_start_solutions(cls, backend: ComplexBatchBackend,
                             starts: Sequence[Sequence],
                             initial_step: float) -> "PathBatch":
        """Pack start solutions into a fresh batch at ``t = 0``.

        Parameters
        ----------
        backend:
            The batch array backend holding the lane arrays.
        starts:
            ``B`` start solutions (sequences of scalars the backend accepts).
        initial_step:
            The step size every lane begins with.

        Raises
        ------
        ConfigurationError
            When ``starts`` is empty.
        """
        if not starts:
            raise ConfigurationError("a path batch needs at least one start solution")
        points = backend.from_points(starts)
        lanes = len(starts)
        return cls(
            backend=backend,
            points=points,
            prev_points=backend.copy(points),
            t=np.zeros(lanes),
            prev_t=np.zeros(lanes),
            dt=np.full(lanes, float(initial_step)),
            has_prev=np.zeros(lanes, dtype=bool),
            active=np.ones(lanes, dtype=bool),
            status=np.full(lanes, int(PathStatus.TRACKING), dtype=np.int8),
            residual=np.full(lanes, np.inf),
            steps_accepted=np.zeros(lanes, dtype=np.int64),
            steps_rejected=np.zeros(lanes, dtype=np.int64),
            newton_iterations=np.zeros(lanes, dtype=np.int64),
            consecutive_successes=np.zeros(lanes, dtype=np.int64),
        )

    @classmethod
    def from_checkpoints(cls, backend: ComplexBatchBackend,
                         checkpoints: Sequence[LaneCheckpoint],
                         initial_step: float) -> "PathBatch":
        """Rebuild a batch mid-path from per-lane checkpoints.

        Checkpoint points are converted into ``backend``'s arithmetic
        through the backend registry: lanes are grouped by their capturing
        context and each group moves as one structure-of-arrays
        :func:`~repro.multiprec.backend.convert_batch` call, so the common
        case -- a whole residue escalating one rung wider -- costs a handful
        of NumPy plane copies.  Widening (``d -> dd -> qd``) preserves every
        checkpointed value bit-for-bit.

        The resumed lane state follows the checkpoint exactly, with two
        policy exceptions:

        * all lanes restart as ``TRACKING`` (resuming *is* the retry), and
        * a lane that retired by ``STEP_UNDERFLOW`` gets a fresh
          ``initial_step`` -- its recorded ``dt`` had collapsed below the
          giving-up threshold under the old arithmetic, which would cripple
          the retry; every other lane keeps its earned step size so a
          same-arithmetic resume continues the cold run bit-for-bit.

        Lanes checkpointed at ``t >= 1`` are created inactive: they skip the
        predictor-corrector loop entirely and go straight to the endgame.

        Parameters
        ----------
        backend:
            The batch array backend of the *resuming* batch (its arithmetic
            may be wider than any checkpoint's).
        checkpoints:
            One :class:`LaneCheckpoint` per lane to resume.
        initial_step:
            Replacement step size for step-underflow lanes.

        Raises
        ------
        ConfigurationError
            When ``checkpoints`` is empty or the checkpoint dimensions
            disagree.
        """
        if not checkpoints:
            raise ConfigurationError("a path batch needs at least one checkpoint")
        n = len(checkpoints[0].point)
        if any(len(cp.point) != n for cp in checkpoints):
            raise ConfigurationError("all checkpoints must share a dimension")
        lanes = len(checkpoints)

        # Convert lane points per capturing context, whole groups at a time.
        points = backend.zeros((n, lanes))
        prev_points = backend.zeros((n, lanes))
        registry = registered_backends()
        by_context: Dict[str, List[int]] = {}
        for lane, cp in enumerate(checkpoints):
            by_context.setdefault(cp.context_name, []).append(lane)
        for name, group in by_context.items():
            source = registry.get(name)
            group_points = [checkpoints[lane].point for lane in group]
            group_prev = [checkpoints[lane].prev_point for lane in group]
            if source is None:
                # Unregistered capturing arithmetic: let the target backend
                # coerce the scalars itself.
                converted = backend.from_points(group_points)
                converted_prev = backend.from_points(group_prev)
            else:
                converted = convert_batch(source.from_points(group_points),
                                          source, backend)
                converted_prev = convert_batch(source.from_points(group_prev),
                                               source, backend)
            idx = (slice(None), np.asarray(group, dtype=np.intp))
            points[idx] = converted
            prev_points[idx] = converted_prev

        t = np.array([cp.t for cp in checkpoints], dtype=np.float64)
        dt = StepControl.resumed(
            np.array([cp.dt for cp in checkpoints], dtype=np.float64),
            np.array([cp.status is PathStatus.STEP_UNDERFLOW
                      for cp in checkpoints], dtype=bool),
            float(initial_step))
        return cls(
            backend=backend,
            points=points,
            prev_points=prev_points,
            t=t,
            prev_t=np.array([cp.prev_t for cp in checkpoints], dtype=np.float64),
            dt=dt,
            has_prev=np.array([cp.has_prev for cp in checkpoints], dtype=bool),
            active=t < 1.0,
            status=np.full(lanes, int(PathStatus.TRACKING), dtype=np.int8),
            residual=np.array([cp.residual for cp in checkpoints], dtype=np.float64),
            steps_accepted=np.array([cp.steps_accepted for cp in checkpoints],
                                    dtype=np.int64),
            steps_rejected=np.array([cp.steps_rejected for cp in checkpoints],
                                    dtype=np.int64),
            newton_iterations=np.array([cp.newton_iterations for cp in checkpoints],
                                       dtype=np.int64),
            consecutive_successes=np.array([cp.consecutive_successes
                                            for cp in checkpoints], dtype=np.int64),
        )

    @property
    def n_paths(self) -> int:
        return int(self.t.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[0])

    def select(self, lanes: np.ndarray) -> "PathBatch":
        """A compressed copy holding only the given lanes."""
        idx = (slice(None), lanes)
        return PathBatch(
            backend=self.backend,
            points=self.points[idx],
            prev_points=self.prev_points[idx],
            t=self.t[lanes].copy(),
            prev_t=self.prev_t[lanes].copy(),
            dt=self.dt[lanes].copy(),
            has_prev=self.has_prev[lanes].copy(),
            active=self.active[lanes].copy(),
            status=self.status[lanes].copy(),
            residual=self.residual[lanes].copy(),
            steps_accepted=self.steps_accepted[lanes].copy(),
            steps_rejected=self.steps_rejected[lanes].copy(),
            newton_iterations=self.newton_iterations[lanes].copy(),
            consecutive_successes=self.consecutive_successes[lanes].copy(),
        )

    def scatter(self, lanes: np.ndarray, sub: "PathBatch") -> None:
        """Write a compressed sub-batch back into the given lanes."""
        idx = (slice(None), lanes)
        self.points[idx] = sub.points
        self.prev_points[idx] = sub.prev_points
        self.t[lanes] = sub.t
        self.prev_t[lanes] = sub.prev_t
        self.dt[lanes] = sub.dt
        self.has_prev[lanes] = sub.has_prev
        self.active[lanes] = sub.active
        self.status[lanes] = sub.status
        self.residual[lanes] = sub.residual
        self.steps_accepted[lanes] = sub.steps_accepted
        self.steps_rejected[lanes] = sub.steps_rejected
        self.newton_iterations[lanes] = sub.newton_iterations
        self.consecutive_successes[lanes] = sub.consecutive_successes

    def retire(self, mask: np.ndarray, status: PathStatus) -> None:
        """Mark lanes under ``mask`` finished with the given status."""
        mask = np.asarray(mask, dtype=bool)
        self.status[mask] = int(status)
        self.active &= ~mask

    def status_counts(self) -> dict:
        """Histogram of lane statuses (for reporting)."""
        return {PathStatus(code).name.lower(): int(count)
                for code, count in zip(*np.unique(self.status, return_counts=True))}

    def checkpoint(self, lane: int) -> LaneCheckpoint:
        """Export one lane's state as a :class:`LaneCheckpoint`.

        Retired lanes are never touched again by the tracker (the advance
        loop compresses to active lanes and the endgame only sharpens
        pending ones), so a checkpoint taken after tracking finished is
        exactly the lane's state at retirement: the last accepted point, the
        step size the step control had earned, and the failure cause.
        """
        return LaneCheckpoint(
            context_name=self.backend.context.name,
            point=tuple(self.backend.lane_scalars(self.points, lane)),
            t=float(self.t[lane]),
            prev_point=tuple(self.backend.lane_scalars(self.prev_points, lane)),
            prev_t=float(self.prev_t[lane]),
            has_prev=bool(self.has_prev[lane]),
            dt=float(self.dt[lane]),
            residual=float(self.residual[lane]),
            status=PathStatus(int(self.status[lane])),
            steps_accepted=int(self.steps_accepted[lane]),
            steps_rejected=int(self.steps_rejected[lane]),
            newton_iterations=int(self.newton_iterations[lane]),
            consecutive_successes=int(self.consecutive_successes[lane]),
        )

    def checkpoints(self) -> List[LaneCheckpoint]:
        """One :class:`LaneCheckpoint` per lane, in lane order."""
        return [self.checkpoint(lane) for lane in range(self.n_paths)]


@dataclass
class BatchTrackResult:
    """Outcome of a tracking run, per-lane and aggregate.

    ``batches`` holds one :class:`PathBatch` per chunk the start set was
    split into; ``results``, ``rounds`` and ``evaluation_log`` aggregate
    over all of them.
    """

    batches: List[PathBatch]
    results: List[PathResult]
    evaluation_log: List[int] = field(default_factory=list)
    rounds: int = 0
    #: resumed lanes whose checkpointed residual already certified the
    #: endgame tolerance, so their endgame re-entry round was skipped
    #: (only nonzero under ``skip_certified_endgame``).
    endgame_reentries_skipped: int = 0

    @property
    def paths_converged(self) -> int:
        return sum(1 for r in self.results if r.success)

    def status_counts(self) -> dict:
        """Histogram of lane statuses across every tracked batch."""
        counts: dict = {}
        for batch in self.batches:
            for name, count in batch.status_counts().items():
                counts[name] = counts.get(name, 0) + count
        return counts

    @property
    def batched_evaluations(self) -> int:
        """Number of batched homotopy evaluations performed."""
        return len(self.evaluation_log)

    @property
    def lane_evaluations(self) -> int:
        """Total per-lane evaluations (what a scalar tracker would pay)."""
        return int(sum(self.evaluation_log))

    def checkpoints(self) -> List[LaneCheckpoint]:
        """Per-path checkpoints across every tracked batch, aligned with
        ``results`` -- ``checkpoints()[i]`` is the final lane state of the
        path behind ``results[i]``."""
        out: List[LaneCheckpoint] = []
        for batch in self.batches:
            out.extend(batch.checkpoints())
        return out


class BatchTracker:
    """Track many homotopy paths in lock step with per-lane retirement.

    Parameters
    ----------
    start_system / target_system:
        The systems of the gamma-trick homotopy (evaluated with the
        structure-of-arrays evaluator; regularity is not required).
    context:
        Scalar arithmetic; ``d`` and ``dd`` have batch backends.
    options:
        The same :class:`~repro.tracking.tracker.TrackerOptions` the scalar
        tracker takes -- both engines share the step-control policy.
    batch_size:
        Maximum lanes per batch; larger start sets are chunked.  ``None``
        tracks all paths in one batch.
    gamma:
        Accessibility constant, defaulted like the scalar homotopy.
    skip_certified_endgame:
        Residual-aware resume policy (off by default, so same-arithmetic
        resumes stay bit-for-bit with the cold run): when resuming from
        checkpoints, a lane checkpointed at ``t >= 1`` whose stored
        residual already satisfies ``end_tolerance`` retires as a success
        immediately instead of re-entering the endgame corrector -- its
        residual was *measured* at that point by the capturing run, so the
        re-entry round would only re-derive a certificate the checkpoint
        already carries.  Certificates exist for lanes that converged (or
        are resumed under a looser tolerance than they were captured with);
        endgame *failures* carry residuals above the tolerance by
        construction and always re-enter, so the skip is conservative.  The
        payoff case is resuming a full checkpoint set -- replaying or
        continuing an interrupted run -- where the converged lanes would
        otherwise each pay a pointless endgame evaluation round.  Skipped
        re-entries are counted in
        :attr:`BatchTrackResult.endgame_reentries_skipped`.
    """

    def __init__(self, start_system, target_system, *,
                 context: NumericContext = DOUBLE,
                 options: Optional[TrackerOptions] = None,
                 batch_size: Optional[int] = None,
                 gamma: Optional[complex] = None,
                 skip_certified_endgame: bool = False):
        self.context = context
        self.options = options or TrackerOptions()
        self.skip_certified_endgame = bool(skip_certified_endgame)
        self.backend = backend_for_context(context)
        self.homotopy = BatchHomotopy(start_system, target_system,
                                      gamma=gamma, context=context,
                                      backend=self.backend)
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        self.batch_size = batch_size
        self._step_control = StepControl.from_options(self.options)
        #: lane counts of every batched homotopy evaluation of the last run
        #: (corrector and tangent-predictor evaluations alike)
        self.evaluation_log: List[int] = []
        if self.options.predictor == "tangent":
            self._predictor = BatchTangentPredictor(
                self.backend, evaluation_log=self.evaluation_log)
        else:
            self._predictor = BatchSecantPredictor(self.backend)

    # ------------------------------------------------------------------
    def track_many(self, start_solutions: Optional[Sequence[Sequence]] = None, *,
                   resume_from: Optional[Sequence[LaneCheckpoint]] = None
                   ) -> List[PathResult]:
        """Track paths from scratch or resume them from checkpoints.

        Parameters
        ----------
        start_solutions:
            Start solutions to track from ``t = 0``.
        resume_from:
            :class:`LaneCheckpoint` list to continue mid-path instead;
            mutually exclusive with ``start_solutions``.  Checkpoints
            captured in a different arithmetic are converted through the
            backend registry on entry.

        Returns
        -------
        list of PathResult
            One result per start solution or checkpoint, in order.  Resumed
            results *accumulate*: step and Newton counters include the work
            recorded in the checkpoint.

        Raises
        ------
        ConfigurationError
            When both or neither of ``start_solutions`` / ``resume_from``
            are given.
        """
        return self.track_batches(start_solutions,
                                  resume_from=resume_from).results

    def track_batches(self, start_solutions: Optional[Sequence[Sequence]] = None, *,
                      resume_from: Optional[Sequence[LaneCheckpoint]] = None
                      ) -> BatchTrackResult:
        """Like :meth:`track_many` but returning the full
        :class:`BatchTrackResult` diagnostics (batches, evaluation log,
        per-path checkpoints)."""
        if (start_solutions is None) == (resume_from is None):
            raise ConfigurationError(
                "pass exactly one of start_solutions or resume_from"
            )
        checkpoints = None if resume_from is None else list(resume_from)
        items = list(start_solutions) if checkpoints is None else checkpoints
        if not items:
            return BatchTrackResult(batches=[], results=[], evaluation_log=[])
        # clear() rather than rebinding: the predictor and correctors hold
        # a reference to this very list.
        self.evaluation_log.clear()
        chunk = self.batch_size or len(items)
        results: List[PathResult] = []
        batches: List[PathBatch] = []
        rounds = 0
        for offset in range(0, len(items), chunk):
            piece = items[offset:offset + chunk]
            if checkpoints is None:
                batch = self._track_one_batch(piece)
            else:
                batch = self._track_one_batch(checkpoints=piece)
            rounds += batch_rounds_of(batch)
            results.extend(self._lane_results(batch))
            batches.append(batch)
        return BatchTrackResult(batches=batches, results=results,
                                evaluation_log=list(self.evaluation_log),
                                rounds=rounds,
                                endgame_reentries_skipped=sum(
                                    getattr(b, "endgame_skipped", 0)
                                    for b in batches))

    # ------------------------------------------------------------------
    @property
    def plan_execution_stats(self):
        """Arena-executor counters of the homotopy's compiled plan
        (executions, plane builds, power entries, step-cache hits/misses).
        Compiles the plan on first access; counters accumulate across
        runs."""
        return self.homotopy.plan.exec_stats

    # ------------------------------------------------------------------
    def _corrector(self, t: np.ndarray, tolerance: float,
                   iterations: int) -> BatchNewtonCorrector:
        return BatchNewtonCorrector(self.homotopy.at(t), self.backend,
                                    tolerance=tolerance,
                                    max_iterations=iterations,
                                    evaluation_log=self.evaluation_log)

    def _track_one_batch(self, starts: Optional[Sequence[Sequence]] = None,
                         checkpoints: Optional[Sequence[LaneCheckpoint]] = None
                         ) -> PathBatch:
        # Lanes that diverge or retire carry inf/NaN through the masked
        # batch arithmetic (predictor, corrector, endgame); the errstate
        # scope keeps them from spraying RuntimeWarnings while the status
        # masks report the failures.  The plan step scope lets the tangent
        # predictor reuse the corrector's power ladders at the accepted
        # point (a no-op when plans or arenas are off).
        with masked_lane_errstate(), self.homotopy.plan_step_scope():
            return self._track_one_batch_inner(starts, checkpoints)

    def _track_one_batch_inner(self,
                               starts: Optional[Sequence[Sequence]] = None,
                               checkpoints: Optional[Sequence[LaneCheckpoint]] = None
                               ) -> PathBatch:
        opts = self.options
        backend = self.backend
        if checkpoints is not None:
            batch = PathBatch.from_checkpoints(backend, checkpoints,
                                               opts.initial_step)
            batch.rounds = 0  # dynamic attribute: lock-step rounds of this batch
            # Checkpointed lanes already sit on the path at their t -- a cold
            # run corrected them there -- so re-correcting would both waste
            # evaluations and break bit-for-bit same-arithmetic resumes.
            # The exception is a lane whose *start correction* failed: its
            # point is the raw start solution, so retry the correction (in
            # this batch's possibly wider arithmetic).
            needs_start = np.array([cp.status is PathStatus.START_FAILED
                                    for cp in checkpoints], dtype=bool)
            if needs_start.any():
                start_corrector = self._corrector(batch.t, opts.corrector_tolerance,
                                                  opts.end_iterations)
                started = start_corrector.correct(batch.points, needs_start)
                batch.newton_iterations += started.iterations
                batch.residual = np.where(needs_start, started.residual_norm,
                                          batch.residual)
                batch.points = backend.where(started.converged, started.solution,
                                             batch.points)
                batch.retire(needs_start & ~started.converged,
                             PathStatus.START_FAILED)
            if self.skip_certified_endgame:
                # Residual-aware resume: lanes parked at t >= 1 whose
                # checkpointed residual already certifies the endgame
                # tolerance retire as successes without the re-entry round.
                certified = ((batch.t >= 1.0)
                             & (batch.status == int(PathStatus.TRACKING))
                             & (batch.residual <= opts.end_tolerance))
                if certified.any():
                    batch.retire(certified, PathStatus.SUCCESS)
                    batch.endgame_skipped = int(certified.sum())
        else:
            batch = PathBatch.from_start_solutions(backend, starts,
                                                   opts.initial_step)
            batch.rounds = 0  # dynamic attribute: lock-step rounds of this batch

            # Make sure the start points actually lie on the path at t = 0.
            start_corrector = self._corrector(batch.t, opts.corrector_tolerance,
                                              opts.end_iterations)
            started = start_corrector.correct(batch.points, batch.active)
            batch.newton_iterations += started.iterations
            batch.residual = started.residual_norm
            batch.points = backend.where(started.converged, started.solution,
                                         batch.points)
            batch.retire(batch.active & ~started.converged, PathStatus.START_FAILED)

        while batch.active.any() and batch.rounds < opts.max_steps:
            batch.rounds += 1
            lanes = np.flatnonzero(batch.active)
            sub = batch.select(lanes)
            self._advance(sub)
            batch.scatter(lanes, sub)

        batch.retire(batch.active, PathStatus.MAX_STEPS)
        self._endgame(batch)
        return batch

    def _advance(self, sub: PathBatch) -> None:
        """One predictor-corrector-stepcontrol round on live lanes only."""
        opts = self.options
        backend = self.backend
        control = self._step_control

        next_t = np.minimum(1.0, sub.t + sub.dt)
        predicted = self._predictor.predict(
            self.homotopy, sub.points, sub.prev_points,
            sub.t, sub.prev_t, next_t - sub.t, sub.has_prev)

        corrector = self._corrector(next_t, opts.corrector_tolerance,
                                    opts.corrector_iterations)
        corrected = corrector.correct(predicted, sub.active)
        sub.newton_iterations += corrected.iterations
        sub.residual = np.where(sub.active, corrected.residual_norm, sub.residual)

        accepted = sub.active & corrected.converged
        rejected = sub.active & ~corrected.converged

        if accepted.any():
            # The scalar tracker remembers the pre-step point for the secant
            # predictor before moving; do the same lane-wise.
            sub.prev_points = backend.where(accepted, sub.points, sub.prev_points)
            sub.prev_t = np.where(accepted, sub.t, sub.prev_t)
            sub.has_prev |= accepted
            sub.points = backend.where(accepted, corrected.solution, sub.points)
            sub.t = np.where(accepted, next_t, sub.t)
            sub.steps_accepted += accepted
            sub.consecutive_successes += accepted
            sub.dt = np.where(accepted, control.grown(sub.dt, sub.t), sub.dt)
            # Lanes that reached t = 1 leave the main loop; the endgame
            # sharpens them together afterwards.
            finished = accepted & (sub.t >= 1.0)
            sub.active &= ~finished

        if rejected.any():
            sub.steps_rejected += rejected
            sub.consecutive_successes[rejected] = 0
            sub.dt = np.where(rejected, control.shrunk(sub.dt), sub.dt)
            sub.retire(rejected & control.underflowed(sub.dt),
                       PathStatus.STEP_UNDERFLOW)

    def _endgame(self, batch: PathBatch) -> None:
        """Sharpen every lane that reached t = 1 with a batched end Newton."""
        opts = self.options
        backend = self.backend
        pending = (batch.status == int(PathStatus.TRACKING)) & (batch.t >= 1.0)
        if not pending.any():
            return
        lanes = np.flatnonzero(pending)
        sub = batch.select(lanes)
        corrector = self._corrector(np.ones(sub.n_paths), opts.end_tolerance,
                                    opts.end_iterations)
        final = corrector.correct(sub.points, np.ones(sub.n_paths, dtype=bool))
        sub.newton_iterations += final.iterations
        sub.residual = final.residual_norm
        sub.points = backend.where(final.converged, final.solution, sub.points)
        sub.status = np.where(final.converged, int(PathStatus.SUCCESS),
                              int(PathStatus.ENDGAME_FAILED)).astype(np.int8)
        batch.scatter(lanes, sub)

    # ------------------------------------------------------------------
    def _lane_results(self, batch: PathBatch) -> List[PathResult]:
        results = []
        for lane in range(batch.n_paths):
            status = PathStatus(int(batch.status[lane]))
            results.append(PathResult(
                success=status is PathStatus.SUCCESS,
                solution=self.backend.lane_scalars(batch.points, lane),
                residual=float(batch.residual[lane]),
                steps_accepted=int(batch.steps_accepted[lane]),
                steps_rejected=int(batch.steps_rejected[lane]),
                newton_iterations=int(batch.newton_iterations[lane]),
                failure_reason=_FAILURE_REASONS.get(status),
            ))
        return results


def batch_rounds_of(batch: PathBatch) -> int:
    """Lock-step rounds a batch ran (tolerant of hand-built batches)."""
    return int(getattr(batch, "rounds", 0))
