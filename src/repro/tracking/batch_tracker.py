"""Batched many-path tracking: a structure of arrays over the whole batch.

The paper accelerates evaluation and differentiation in double-double
arithmetic precisely so that *many* homotopy paths can be processed on
massively parallel hardware.  The scalar :class:`~repro.tracking.tracker.
PathTracker` walks one path at a time; this module drives ``B`` paths in
lock step:

* :class:`PathBatch` holds the state of all paths as columns (*lanes*) of
  ``(n, B)`` batch arrays -- a structure of arrays over
  :class:`~repro.multiprec.ddarray.ComplexDDArray` (or ``complex128``), the
  layout a device would keep resident between kernel launches;
* :class:`BatchTracker` runs the predictor -> Newton-corrector -> step
  control loop for the whole batch at once.  Every lane carries its own
  continuation parameter ``t`` and step ``dt``; per-lane boolean masks let
  converged, failed and finished paths *retire* without stalling the rest,
  and each round the live lanes are compressed so retired lanes cost
  nothing;
* one batched homotopy evaluation replaces ``B`` scalar evaluations, which
  is what lets the cost model price one kernel launch per batch instead of
  one per path (see
  :meth:`repro.gpusim.costmodel.GPUCostModel.batched_kernel_time`).

The tracker reports plain :class:`~repro.tracking.tracker.PathResult`
objects, so callers (and the differential tests) can compare its roots
directly with the scalar engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..multiprec.backend import ComplexBatchBackend, backend_for_context
from ..multiprec.numeric import DOUBLE, NumericContext
from .homotopy import BatchHomotopy
from .newton import BatchNewtonCorrector
from .predictor import BatchSecantPredictor, BatchTangentPredictor
from .tracker import PathResult, StepControl, TrackerOptions

__all__ = ["PathStatus", "PathBatch", "BatchTrackResult", "BatchTracker"]


class PathStatus(IntEnum):
    """Per-lane life cycle of a batched path."""

    TRACKING = 0
    SUCCESS = 1
    START_FAILED = 2
    STEP_UNDERFLOW = 3
    MAX_STEPS = 4
    ENDGAME_FAILED = 5


_FAILURE_REASONS = {
    PathStatus.START_FAILED: "start point does not satisfy the start system",
    PathStatus.STEP_UNDERFLOW: "step size underflow",
    PathStatus.MAX_STEPS: "maximum number of steps exceeded",
    PathStatus.ENDGAME_FAILED: "end game did not converge",
}


@dataclass
class PathBatch:
    """Structure-of-arrays state of ``B`` homotopy paths.

    ``points`` and ``prev_points`` are ``(n, B)`` batch arrays; every other
    field is a ``(B,)`` NumPy array.  Lane ``b`` of every array belongs to
    path ``b``, so selecting a lane subset is one fancy-indexing operation
    per array -- no per-path objects are ever materialised.
    """

    backend: ComplexBatchBackend
    points: object
    prev_points: object
    t: np.ndarray
    prev_t: np.ndarray
    dt: np.ndarray
    has_prev: np.ndarray
    active: np.ndarray
    status: np.ndarray
    residual: np.ndarray
    steps_accepted: np.ndarray
    steps_rejected: np.ndarray
    newton_iterations: np.ndarray

    @classmethod
    def from_start_solutions(cls, backend: ComplexBatchBackend,
                             starts: Sequence[Sequence],
                             initial_step: float) -> "PathBatch":
        """Pack start solutions into a fresh batch at ``t = 0``."""
        if not starts:
            raise ConfigurationError("a path batch needs at least one start solution")
        points = backend.from_points(starts)
        lanes = len(starts)
        return cls(
            backend=backend,
            points=points,
            prev_points=backend.copy(points),
            t=np.zeros(lanes),
            prev_t=np.zeros(lanes),
            dt=np.full(lanes, float(initial_step)),
            has_prev=np.zeros(lanes, dtype=bool),
            active=np.ones(lanes, dtype=bool),
            status=np.full(lanes, int(PathStatus.TRACKING), dtype=np.int8),
            residual=np.full(lanes, np.inf),
            steps_accepted=np.zeros(lanes, dtype=np.int64),
            steps_rejected=np.zeros(lanes, dtype=np.int64),
            newton_iterations=np.zeros(lanes, dtype=np.int64),
        )

    @property
    def n_paths(self) -> int:
        return int(self.t.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[0])

    def select(self, lanes: np.ndarray) -> "PathBatch":
        """A compressed copy holding only the given lanes."""
        idx = (slice(None), lanes)
        return PathBatch(
            backend=self.backend,
            points=self.points[idx],
            prev_points=self.prev_points[idx],
            t=self.t[lanes].copy(),
            prev_t=self.prev_t[lanes].copy(),
            dt=self.dt[lanes].copy(),
            has_prev=self.has_prev[lanes].copy(),
            active=self.active[lanes].copy(),
            status=self.status[lanes].copy(),
            residual=self.residual[lanes].copy(),
            steps_accepted=self.steps_accepted[lanes].copy(),
            steps_rejected=self.steps_rejected[lanes].copy(),
            newton_iterations=self.newton_iterations[lanes].copy(),
        )

    def scatter(self, lanes: np.ndarray, sub: "PathBatch") -> None:
        """Write a compressed sub-batch back into the given lanes."""
        idx = (slice(None), lanes)
        self.points[idx] = sub.points
        self.prev_points[idx] = sub.prev_points
        self.t[lanes] = sub.t
        self.prev_t[lanes] = sub.prev_t
        self.dt[lanes] = sub.dt
        self.has_prev[lanes] = sub.has_prev
        self.active[lanes] = sub.active
        self.status[lanes] = sub.status
        self.residual[lanes] = sub.residual
        self.steps_accepted[lanes] = sub.steps_accepted
        self.steps_rejected[lanes] = sub.steps_rejected
        self.newton_iterations[lanes] = sub.newton_iterations

    def retire(self, mask: np.ndarray, status: PathStatus) -> None:
        """Mark lanes under ``mask`` finished with the given status."""
        mask = np.asarray(mask, dtype=bool)
        self.status[mask] = int(status)
        self.active &= ~mask

    def status_counts(self) -> dict:
        """Histogram of lane statuses (for reporting)."""
        return {PathStatus(code).name.lower(): int(count)
                for code, count in zip(*np.unique(self.status, return_counts=True))}


@dataclass
class BatchTrackResult:
    """Outcome of a tracking run, per-lane and aggregate.

    ``batches`` holds one :class:`PathBatch` per chunk the start set was
    split into; ``results``, ``rounds`` and ``evaluation_log`` aggregate
    over all of them.
    """

    batches: List[PathBatch]
    results: List[PathResult]
    evaluation_log: List[int] = field(default_factory=list)
    rounds: int = 0

    @property
    def paths_converged(self) -> int:
        return sum(1 for r in self.results if r.success)

    def status_counts(self) -> dict:
        """Histogram of lane statuses across every tracked batch."""
        counts: dict = {}
        for batch in self.batches:
            for name, count in batch.status_counts().items():
                counts[name] = counts.get(name, 0) + count
        return counts

    @property
    def batched_evaluations(self) -> int:
        """Number of batched homotopy evaluations performed."""
        return len(self.evaluation_log)

    @property
    def lane_evaluations(self) -> int:
        """Total per-lane evaluations (what a scalar tracker would pay)."""
        return int(sum(self.evaluation_log))


class BatchTracker:
    """Track many homotopy paths in lock step with per-lane retirement.

    Parameters
    ----------
    start_system / target_system:
        The systems of the gamma-trick homotopy (evaluated with the
        structure-of-arrays evaluator; regularity is not required).
    context:
        Scalar arithmetic; ``d`` and ``dd`` have batch backends.
    options:
        The same :class:`~repro.tracking.tracker.TrackerOptions` the scalar
        tracker takes -- both engines share the step-control policy.
    batch_size:
        Maximum lanes per batch; larger start sets are chunked.  ``None``
        tracks all paths in one batch.
    gamma:
        Accessibility constant, defaulted like the scalar homotopy.
    """

    def __init__(self, start_system, target_system, *,
                 context: NumericContext = DOUBLE,
                 options: Optional[TrackerOptions] = None,
                 batch_size: Optional[int] = None,
                 gamma: Optional[complex] = None):
        self.context = context
        self.options = options or TrackerOptions()
        self.backend = backend_for_context(context)
        self.homotopy = BatchHomotopy(start_system, target_system,
                                      gamma=gamma, context=context,
                                      backend=self.backend)
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        self.batch_size = batch_size
        self._step_control = StepControl.from_options(self.options)
        #: lane counts of every batched homotopy evaluation of the last run
        #: (corrector and tangent-predictor evaluations alike)
        self.evaluation_log: List[int] = []
        if self.options.predictor == "tangent":
            self._predictor = BatchTangentPredictor(
                self.backend, evaluation_log=self.evaluation_log)
        else:
            self._predictor = BatchSecantPredictor(self.backend)

    # ------------------------------------------------------------------
    def track_many(self, start_solutions: Sequence[Sequence]) -> List[PathResult]:
        """Track every start solution; returns one PathResult per path."""
        return self.track_batches(start_solutions).results

    def track_batches(self, start_solutions: Sequence[Sequence]) -> BatchTrackResult:
        """Track all paths, chunked by ``batch_size``, with diagnostics."""
        starts = list(start_solutions)
        if not starts:
            return BatchTrackResult(batches=[], results=[], evaluation_log=[])
        # clear() rather than rebinding: the predictor and correctors hold
        # a reference to this very list.
        self.evaluation_log.clear()
        chunk = self.batch_size or len(starts)
        results: List[PathResult] = []
        batches: List[PathBatch] = []
        rounds = 0
        for offset in range(0, len(starts), chunk):
            batch = self._track_one_batch(starts[offset:offset + chunk])
            rounds += batch_rounds_of(batch)
            results.extend(self._lane_results(batch))
            batches.append(batch)
        return BatchTrackResult(batches=batches, results=results,
                                evaluation_log=list(self.evaluation_log),
                                rounds=rounds)

    # ------------------------------------------------------------------
    def _corrector(self, t: np.ndarray, tolerance: float,
                   iterations: int) -> BatchNewtonCorrector:
        return BatchNewtonCorrector(self.homotopy.at(t), self.backend,
                                    tolerance=tolerance,
                                    max_iterations=iterations,
                                    evaluation_log=self.evaluation_log)

    def _track_one_batch(self, starts: Sequence[Sequence]) -> PathBatch:
        opts = self.options
        backend = self.backend
        batch = PathBatch.from_start_solutions(backend, starts, opts.initial_step)
        batch.rounds = 0  # dynamic attribute: lock-step rounds of this batch

        # Make sure the start points actually lie on the path at t = 0.
        start_corrector = self._corrector(batch.t, opts.corrector_tolerance,
                                          opts.end_iterations)
        started = start_corrector.correct(batch.points, batch.active)
        batch.newton_iterations += started.iterations
        batch.residual = started.residual_norm
        batch.points = backend.where(started.converged, started.solution, batch.points)
        batch.retire(batch.active & ~started.converged, PathStatus.START_FAILED)

        while batch.active.any() and batch.rounds < opts.max_steps:
            batch.rounds += 1
            lanes = np.flatnonzero(batch.active)
            sub = batch.select(lanes)
            self._advance(sub)
            batch.scatter(lanes, sub)

        batch.retire(batch.active, PathStatus.MAX_STEPS)
        self._endgame(batch)
        return batch

    def _advance(self, sub: PathBatch) -> None:
        """One predictor-corrector-stepcontrol round on live lanes only."""
        opts = self.options
        backend = self.backend
        control = self._step_control

        next_t = np.minimum(1.0, sub.t + sub.dt)
        predicted = self._predictor.predict(
            self.homotopy, sub.points, sub.prev_points,
            sub.t, sub.prev_t, next_t - sub.t, sub.has_prev)

        corrector = self._corrector(next_t, opts.corrector_tolerance,
                                    opts.corrector_iterations)
        corrected = corrector.correct(predicted, sub.active)
        sub.newton_iterations += corrected.iterations
        sub.residual = np.where(sub.active, corrected.residual_norm, sub.residual)

        accepted = sub.active & corrected.converged
        rejected = sub.active & ~corrected.converged

        if accepted.any():
            # The scalar tracker remembers the pre-step point for the secant
            # predictor before moving; do the same lane-wise.
            sub.prev_points = backend.where(accepted, sub.points, sub.prev_points)
            sub.prev_t = np.where(accepted, sub.t, sub.prev_t)
            sub.has_prev |= accepted
            sub.points = backend.where(accepted, corrected.solution, sub.points)
            sub.t = np.where(accepted, next_t, sub.t)
            sub.steps_accepted += accepted
            sub.dt = np.where(accepted, control.grown(sub.dt, sub.t), sub.dt)
            # Lanes that reached t = 1 leave the main loop; the endgame
            # sharpens them together afterwards.
            finished = accepted & (sub.t >= 1.0)
            sub.active &= ~finished

        if rejected.any():
            sub.steps_rejected += rejected
            sub.dt = np.where(rejected, control.shrunk(sub.dt), sub.dt)
            sub.retire(rejected & control.underflowed(sub.dt),
                       PathStatus.STEP_UNDERFLOW)

    def _endgame(self, batch: PathBatch) -> None:
        """Sharpen every lane that reached t = 1 with a batched end Newton."""
        opts = self.options
        backend = self.backend
        pending = (batch.status == int(PathStatus.TRACKING)) & (batch.t >= 1.0)
        if not pending.any():
            return
        lanes = np.flatnonzero(pending)
        sub = batch.select(lanes)
        corrector = self._corrector(np.ones(sub.n_paths), opts.end_tolerance,
                                    opts.end_iterations)
        final = corrector.correct(sub.points, np.ones(sub.n_paths, dtype=bool))
        sub.newton_iterations += final.iterations
        sub.residual = final.residual_norm
        sub.points = backend.where(final.converged, final.solution, sub.points)
        sub.status = np.where(final.converged, int(PathStatus.SUCCESS),
                              int(PathStatus.ENDGAME_FAILED)).astype(np.int8)
        batch.scatter(lanes, sub)

    # ------------------------------------------------------------------
    def _lane_results(self, batch: PathBatch) -> List[PathResult]:
        results = []
        for lane in range(batch.n_paths):
            status = PathStatus(int(batch.status[lane]))
            results.append(PathResult(
                success=status is PathStatus.SUCCESS,
                solution=self.backend.lane_scalars(batch.points, lane),
                residual=float(batch.residual[lane]),
                steps_accepted=int(batch.steps_accepted[lane]),
                steps_rejected=int(batch.steps_rejected[lane]),
                newton_iterations=int(batch.newton_iterations[lane]),
                failure_reason=_FAILURE_REASONS.get(status),
            ))
        return results


def batch_rounds_of(batch: PathBatch) -> int:
    """Lock-step rounds a batch ran (tolerant of hand-built batches)."""
    return int(getattr(batch, "rounds", 0))
