"""The escalation rung loop shared by the solver and the sharded service.

:func:`repro.tracking.solver.solve_system` and
:func:`repro.service.sharded.solve_system_sharded` walk the same ladder:
track every pending path at the current rung, fold the outcomes into the
per-context accounting (``paths_by_context`` / ``converged_by_context`` /
resume statistics / endgame skips), move failures to the next rung with
their checkpoints, and count recoveries.  Only *how a rung is run* differs
-- in process versus fanned out over a shard pool with crash retries -- so
that part stays with the caller as a callback and everything else lives
here, once.

The bookkeeping is deliberately order-preserving: pending paths are kept
in ascending path-index order and rung names are inserted in ladder order,
so a report built from :class:`LadderState` is bit-for-bit what the two
previously duplicated inline loops produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["LadderState", "RungOutcome", "run_escalation_ladder"]


@dataclass
class RungOutcome:
    """What one rung run hands back to the shared ladder loop.

    ``results`` is aligned with the pending list the callback received;
    ``checkpoints`` likewise, or ``None`` when the route taken cannot
    produce checkpoints (the scalar fallback).  ``resumed_mid_ts`` carries
    the resume ``t`` of every warm-resumed mid-path lane when the rung ran
    from checkpoints, and is ``None`` for a cold rung -- the distinction
    the restarted/resumed accounting is built on.
    """

    results: List[object]
    checkpoints: Optional[List[object]] = None
    endgame_skips: int = 0
    resumed_mid_ts: Optional[List[float]] = None


@dataclass
class LadderState:
    """Accumulated accounting of a full ladder walk.

    The field names mirror the :class:`~repro.tracking.solver.SolveReport`
    fields they populate.
    """

    solved: Dict[int, object] = field(default_factory=dict)
    still_failing: Dict[int, object] = field(default_factory=dict)
    checkpoints_by_index: Dict[int, object] = field(default_factory=dict)
    paths_by_context: Dict[str, int] = field(default_factory=dict)
    converged_by_context: Dict[str, int] = field(default_factory=dict)
    resumed_by_context: Dict[str, int] = field(default_factory=dict)
    restarted_by_context: Dict[str, int] = field(default_factory=dict)
    resume_t_by_context: Dict[str, List[float]] = field(default_factory=dict)
    endgame_skips_by_context: Dict[str, int] = field(default_factory=dict)
    recovered: int = 0

    def converged_results(self) -> List[object]:
        """Successful path results in ascending path-index order."""
        return [self.solved[i] for i in sorted(self.solved)]

    def failed_results(self) -> List[object]:
        """Still-failing path results in ascending path-index order."""
        return [self.still_failing[i] for i in sorted(self.still_failing)]


def run_escalation_ladder(
    ladder: Sequence[object],
    starts: Sequence[object],
    run_rung: Callable[[int, object, List[Tuple[int, object]],
                        Dict[int, object]], RungOutcome],
) -> LadderState:
    """Walk the precision ladder over ``starts``, sharing the accounting.

    ``run_rung(level, rung, pending, checkpoints_by_index)`` tracks the
    pending ``(path_index, start)`` pairs at ``rung`` however the caller
    likes (in process, sharded, with or without warm resume -- the
    checkpoint map holds every path's last known checkpoint for it to
    draw on) and returns a :class:`RungOutcome` aligned with ``pending``.
    The loop folds each outcome into a :class:`LadderState`: per-rung path
    and convergence counts, resumed/restarted splits, checkpoint rollover,
    and the solved/failing partition that decides what the next rung sees.
    """
    state = LadderState()
    pending: List[Tuple[int, object]] = list(enumerate(starts))
    for level, rung in enumerate(ladder):
        if not pending:
            break
        outcome = run_rung(level, rung, pending, state.checkpoints_by_index)
        name = rung.name
        state.paths_by_context[name] = len(pending)
        state.converged_by_context[name] = sum(
            1 for r in outcome.results if r.success)
        state.endgame_skips_by_context[name] = outcome.endgame_skips
        if outcome.resumed_mid_ts is not None:
            mid_path = list(outcome.resumed_mid_ts)
            state.resumed_by_context[name] = len(mid_path)
            state.restarted_by_context[name] = len(pending) - len(mid_path)
            state.resume_t_by_context[name] = mid_path
        else:
            state.resumed_by_context[name] = 0
            state.restarted_by_context[name] = len(pending)
            state.resume_t_by_context[name] = []
        next_pending: List[Tuple[int, object]] = []
        for position, ((index, start), result) in enumerate(
                zip(pending, outcome.results)):
            if outcome.checkpoints is not None:
                state.checkpoints_by_index[index] = \
                    outcome.checkpoints[position]
            if result.success:
                state.solved[index] = result
                if level > 0:
                    state.recovered += 1
                    state.still_failing.pop(index, None)
            else:
                state.still_failing[index] = result
                next_pending.append((index, start))
        pending = next_pending
    return state
