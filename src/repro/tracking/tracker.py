"""Adaptive-step predictor-corrector path tracking.

This is the application layer the paper's kernels are meant to accelerate:
track a solution of the start system ``g(x) = 0`` along the homotopy
``h(x, t) = gamma (1-t) g(x) + t f(x)`` to a solution of the target system at
``t = 1``.  The loop is the standard one used by PHCpack-style trackers:

1. predict the solution at ``t + dt`` (secant or tangent predictor);
2. correct with a few Newton iterations at the new ``t``;
3. accept and possibly enlarge the step on success, or shrink the step and
   retry on failure;
4. finish with a sharpened Newton run at ``t = 1``.

Everything is generic over the numeric context, so the same tracker runs in
hardware doubles, double-doubles or quad-doubles -- which is what the
quality-up analysis compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, PathTrackingError, SingularMatrixError
from ..multiprec.numeric import DOUBLE, NumericContext
from .homotopy import Homotopy
from .newton import NewtonCorrector, NewtonResult
from .predictor import SecantPredictor, TangentPredictor

__all__ = ["TrackerOptions", "StepControl", "PathPoint", "PathResult", "PathTracker"]


@dataclass(frozen=True)
class TrackerOptions:
    """Tuning knobs of the tracker (defaults follow common practice)."""

    initial_step: float = 0.1
    min_step: float = 1e-6
    max_step: float = 0.25
    step_expansion: float = 1.5
    step_reduction: float = 0.5
    corrector_tolerance: float = 1e-10
    corrector_iterations: int = 4
    end_tolerance: float = 1e-12
    end_iterations: int = 10
    max_steps: int = 500
    predictor: str = "secant"   # "secant" | "tangent"


@dataclass(frozen=True)
class StepControl:
    """The adaptive step-size policy, shared by the scalar and batch engines.

    All three rules operate equally on Python floats and on per-lane NumPy
    arrays, so the batched tracker makes exactly the decisions the scalar
    loop would make for each path individually.
    """

    min_step: float
    max_step: float
    expansion: float
    reduction: float

    @classmethod
    def from_options(cls, options: "TrackerOptions") -> "StepControl":
        return cls(min_step=options.min_step, max_step=options.max_step,
                   expansion=options.step_expansion,
                   reduction=options.step_reduction)

    def grown(self, dt, t):
        """Step after an accepted point at ``t`` (clipped to reach 1.0)."""
        return np.minimum(np.minimum(self.max_step, dt * self.expansion),
                          1.0 - t + 1e-16)

    def shrunk(self, dt):
        """Step after a rejected point."""
        return dt * self.reduction

    def underflowed(self, dt):
        """Whether the step fell below the giving-up threshold."""
        return dt < self.min_step

    @staticmethod
    def resumed(dt, collapsed, initial_step):
        """Step a lane restarts with when resumed from a checkpoint.

        A lane keeps the step size it had earned -- that is what makes a
        same-arithmetic resume continue the interrupted run bit-for-bit --
        *except* lanes whose step had collapsed (retired by step
        underflow): their recorded ``dt`` sits below the giving-up
        threshold of the previous arithmetic and would cripple the retry,
        so they restart with a fresh ``initial_step``.  Operates equally on
        floats and per-lane arrays, like the other step rules.
        """
        return np.where(collapsed, initial_step, dt)


@dataclass(frozen=True)
class PathPoint:
    """One accepted point along a path."""

    t: float
    point: tuple
    residual: float
    corrector_iterations: int


@dataclass
class PathResult:
    """Outcome of tracking one path."""

    success: bool
    solution: List
    residual: float
    steps_accepted: int
    steps_rejected: int
    newton_iterations: int
    path: List[PathPoint] = field(default_factory=list)
    failure_reason: Optional[str] = None


class PathTracker:
    """Track one solution path of a homotopy from ``t = 0`` to ``t = 1``."""

    def __init__(self, homotopy: Homotopy, *,
                 context: NumericContext = DOUBLE,
                 options: Optional[TrackerOptions] = None):
        self.homotopy = homotopy
        self.context = context
        self.options = options or TrackerOptions()
        self._step_control = StepControl.from_options(self.options)
        if self.options.predictor == "tangent":
            self._predictor = TangentPredictor(context)
        else:
            self._predictor = SecantPredictor(context)

    @staticmethod
    def _correct_safely(corrector: NewtonCorrector, point: Sequence) -> NewtonResult:
        """Run a corrector, turning a singular Jacobian into non-convergence."""
        try:
            return corrector.correct(point)
        except SingularMatrixError:
            return NewtonResult(solution=list(point), converged=False, iterations=1,
                                residual_norm=float("inf"), update_norm=float("inf"))

    def track(self, start_solution: Sequence) -> PathResult:
        """Track the path starting at a solution of the start system."""
        ctx = self.context
        opts = self.options
        point = [ctx.from_complex(complex(x)) if isinstance(x, (int, float, complex)) else x
                 for x in start_solution]

        self._predictor.reset()
        t = 0.0
        dt = opts.initial_step
        accepted = 0
        rejected = 0
        newton_total = 0
        path: List[PathPoint] = []

        # Make sure the start point is actually on the path at t = 0.
        corrector = NewtonCorrector(self.homotopy.at(0.0), context=ctx,
                                    tolerance=opts.corrector_tolerance,
                                    max_iterations=opts.end_iterations)
        start_result = self._correct_safely(corrector, point)
        newton_total += start_result.iterations
        if not start_result.converged:
            return PathResult(success=False, solution=point,
                              residual=start_result.residual_norm,
                              steps_accepted=0, steps_rejected=0,
                              newton_iterations=newton_total,
                              failure_reason="start point does not satisfy the start system")
        point = start_result.solution
        self._predictor.remember(point, t)

        steps = 0
        while t < 1.0 and steps < opts.max_steps:
            steps += 1
            next_t = min(1.0, t + dt)
            predicted = self._predictor.predict(self.homotopy, point, t, next_t - t)
            corrector = NewtonCorrector(self.homotopy.at(next_t), context=ctx,
                                        tolerance=opts.corrector_tolerance,
                                        max_iterations=opts.corrector_iterations)
            result = self._correct_safely(corrector, predicted)
            newton_total += result.iterations

            if result.converged:
                self._predictor.remember(point, t)
                point = result.solution
                t = next_t
                accepted += 1
                path.append(PathPoint(t=t, point=tuple(point),
                                      residual=result.residual_norm,
                                      corrector_iterations=result.iterations))
                dt = float(self._step_control.grown(dt, t))
            else:
                rejected += 1
                dt = self._step_control.shrunk(dt)
                if self._step_control.underflowed(dt):
                    return PathResult(success=False, solution=point,
                                      residual=result.residual_norm,
                                      steps_accepted=accepted, steps_rejected=rejected,
                                      newton_iterations=newton_total, path=path,
                                      failure_reason="step size underflow")

        if t < 1.0:
            return PathResult(success=False, solution=point, residual=float("inf"),
                              steps_accepted=accepted, steps_rejected=rejected,
                              newton_iterations=newton_total, path=path,
                              failure_reason="maximum number of steps exceeded")

        # Sharpen the solution of the target system at t = 1.
        end_corrector = NewtonCorrector(self.homotopy.at(1.0), context=ctx,
                                        tolerance=opts.end_tolerance,
                                        max_iterations=opts.end_iterations)
        final = self._correct_safely(end_corrector, point)
        newton_total += final.iterations
        return PathResult(success=final.converged, solution=final.solution,
                          residual=final.residual_norm,
                          steps_accepted=accepted, steps_rejected=rejected,
                          newton_iterations=newton_total, path=path,
                          failure_reason=None if final.converged else "end game did not converge")

    def track_many(self, start_solutions: Sequence[Sequence], *,
                   batch_size: Optional[int] = None) -> List[PathResult]:
        """Track several paths.

        Without ``batch_size`` the paths run sequentially (the per-path jobs
        the manager/worker parallel trackers of the paper's introduction
        distribute).  With ``batch_size`` the work is delegated to the
        structure-of-arrays :class:`~repro.tracking.batch_tracker.
        BatchTracker`, which requires the homotopy's evaluators to expose
        their underlying :class:`~repro.polynomials.system.PolynomialSystem`
        (the CPU reference and GPU evaluators both do).  Batched results
        carry end points, residuals and counters but no per-step
        :class:`PathPoint` trace: ``PathResult.path`` is empty, as the
        structure-of-arrays engine does not materialise per-path histories.
        """
        if batch_size is None:
            return [self.track(s) for s in start_solutions]

        from .batch_tracker import BatchTracker  # local import: cycle

        start_system = getattr(self.homotopy.start_evaluator, "system", None)
        target_system = getattr(self.homotopy.target_evaluator, "system", None)
        if start_system is None or target_system is None:
            raise ConfigurationError(
                "batched tracking needs evaluators that expose their "
                "polynomial system; track sequentially instead"
            )
        batch_tracker = BatchTracker(start_system, target_system,
                                     context=self.context, options=self.options,
                                     batch_size=batch_size,
                                     gamma=self.homotopy.gamma)
        return batch_tracker.track_many(start_solutions)
