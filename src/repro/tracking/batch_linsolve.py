"""Batched dense linear solves: one small system per lane, vectorised.

Newton's corrector inside the batched tracker must solve ``J_b dx_b = -f_b``
for every path ``b`` of the batch, where every lane has its *own* Jacobian.
The batch stores the ``B`` matrices entry-wise: ``matrix[i][j]`` is a ``(B,)``
batch array holding entry ``(i, j)`` of all lanes at once (the structure of
arrays the simulated device would hold in global memory).

The algorithm is Gaussian elimination with per-lane partial pivoting:

* pivot *selection* works on double-rounded magnitudes, exactly like the
  scalar solver in :mod:`repro.tracking.linsolve` -- a control decision that
  may differ per lane;
* the per-lane row swaps are realised as masked selects
  (:meth:`~repro.multiprec.backend.ComplexBatchBackend.where`), so no data is
  gathered or scattered between lanes;
* lanes whose pivot is zero *or too tiny to divide by* (``|pivot|^2``
  underflows, which is exactly when the complex double-double division
  would raise :class:`~repro.errors.DivisionByZeroError`) are flagged
  *singular* and their pivot is replaced by one so the remaining lanes keep
  eliminating undisturbed -- the batched analogue of
  :class:`~repro.errors.SingularMatrixError`, reported as a mask instead of
  an exception so one bad path cannot stall its batch.

NaN lanes are left alone: NaN magnitudes never win a comparison, so a
poisoned lane keeps its NaNs and is caught by the corrector's convergence
test, while the healthy lanes are unaffected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..multiprec.backend import ComplexBatchBackend, masked_lane_errstate

__all__ = ["batched_solve"]


def batched_solve(matrix: Sequence[Sequence], rhs: Sequence,
                  backend: ComplexBatchBackend,
                  active: Optional[np.ndarray] = None,
                  copy: bool = True
                  ) -> Tuple[List, np.ndarray]:
    """Solve ``A_b x_b = rhs_b`` for every lane ``b``.

    Parameters
    ----------
    matrix:
        ``n x n`` nested sequence of ``(B,)`` batch arrays (consumed, not
        modified: the function works on a copy unless ``copy=False``).
    rhs:
        Length-``n`` sequence of ``(B,)`` batch arrays.
    backend:
        The batch array backend of the entries.
    active:
        Optional ``(B,)`` bool mask; inactive lanes are never reported
        singular and their (meaningless) results should be discarded.
    copy:
        The elimination updates rows in place through the backend
        (:meth:`~repro.multiprec.backend.ComplexBatchBackend.isub_mul`), so
        by default every entry is deep-copied up front.  Callers that pass
        freshly built, never-reused matrices (the batched corrector and the
        tangent predictor) set ``copy=False`` and donate their entries.

    Returns
    -------
    (solution, singular):
        ``solution`` is a length-``n`` list of ``(B,)`` batch arrays;
        ``singular`` a ``(B,)`` bool mask of lanes that met a zero pivot.
    """
    n = len(matrix)
    if any(len(row) != n for row in matrix) or len(rhs) != n:
        raise ValueError("batched_solve expects a square matrix and matching rhs")

    # Dead lanes legitimately carry inf/NaN through the arithmetic, so the
    # whole solve runs inside the masked-lane errstate scope instead of
    # spraying RuntimeWarnings.
    with masked_lane_errstate():
        if copy:
            a = [[backend.copy(entry) for entry in row] for row in matrix]
            b = [backend.copy(entry) for entry in rhs]
        else:
            a = [list(row) for row in matrix]
            b = list(rhs)
        lanes = np.shape(backend.magnitude(b[0]))[0] if n else 0
        singular = np.zeros(lanes, dtype=bool)
        considered = np.ones(lanes, dtype=bool) if active is None \
            else np.asarray(active, dtype=bool)
        ones = backend.ones((lanes,))

        for col in range(n):
            # Per-lane partial pivoting on double-rounded magnitudes.
            magnitudes = np.stack([backend.magnitude(a[r][col]) for r in range(col, n)])
            choice = np.argmax(magnitudes, axis=0)  # (B,) offset of the pivot row

            # Realise the per-lane swap of rows `col` and `col + choice` as one
            # masked select per candidate row: each lane is touched exactly once.
            for r in range(col + 1, n):
                swap = choice == (r - col)
                if not swap.any():
                    continue
                for j in range(n):
                    upper, lower = a[col][j], a[r][j]
                    a[col][j] = backend.where(swap, lower, upper)
                    a[r][j] = backend.where(swap, upper, lower)
                upper, lower = b[col], b[r]
                b[col] = backend.where(swap, lower, upper)
                b[r] = backend.where(swap, upper, lower)

            pivot = a[col][col]
            dead = _undividable(backend.magnitude(pivot))
            singular |= dead & considered
            safe_pivot = backend.where(dead, ones, pivot)

            for row in range(col + 1, n):
                factor = a[row][col] / safe_pivot
                for j in range(col + 1, n):
                    a[row][j] = backend.isub_mul(a[row][j], factor, a[col][j])
                b[row] = backend.isub_mul(b[row], factor, b[col])

        # Back substitution with the (sanitised) upper factor.
        x: List = [None] * n
        for i in reversed(range(n)):
            acc = b[i]
            for j in range(i + 1, n):
                acc = backend.isub_mul(acc, a[i][j], x[j])
            diagonal = a[i][i]
            dead = _undividable(backend.magnitude(diagonal))
            singular |= dead & considered
            x[i] = acc / backend.where(dead, ones, diagonal)
    return x, singular


def _undividable(magnitudes: np.ndarray) -> np.ndarray:
    """Lanes whose pivot cannot safely be divided by.

    Complex division computes ``|pivot|^2`` as its denominator.  The
    double-double array type squares the real and imaginary components
    *separately*, so any pivot whose squared magnitude is not a normal
    double risks an exact-zero denominator there (``hypot`` rounds once,
    the component squares underflow earlier) -- and
    :class:`~repro.errors.DivisionByZeroError` out of one lane would abort
    the whole batch.  Such pivots (|p| below ~1.5e-154) are numerically
    singular for any tracking purpose, so the whole underflow region is
    flagged.  NaN magnitudes compare false and stay unflagged: the NaN
    propagates within its own lane only.
    """
    return magnitudes * magnitudes < np.finfo(np.float64).tiny
