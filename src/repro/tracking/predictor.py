"""Predictors for the path-tracking predictor-corrector loop.

Two standard predictors are provided:

* :class:`SecantPredictor` -- extrapolates linearly through the two most
  recent accepted points on the path (falls back to the identity prediction
  when only one point is known);
* :class:`TangentPredictor` -- Euler prediction along the tangent of the
  path, obtained by solving ``H_x dx = -H_t dt`` with the same generic LU
  solver used by Newton's corrector (one extra linear solve per step but a
  better prediction, allowing larger steps).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..multiprec.numeric import DOUBLE, NumericContext
from .homotopy import Homotopy
from .linsolve import solve

__all__ = ["SecantPredictor", "TangentPredictor"]


class SecantPredictor:
    """Linear extrapolation through the last two accepted path points."""

    def __init__(self, context: NumericContext = DOUBLE):
        self.context = context
        self._previous_point: Optional[List] = None
        self._previous_t: Optional[float] = None

    def reset(self) -> None:
        self._previous_point = None
        self._previous_t = None

    def remember(self, point: Sequence, t: float) -> None:
        """Record an accepted path point for the next extrapolation."""
        self._previous_point = list(point)
        self._previous_t = float(t)

    def predict(self, homotopy: Homotopy, point: Sequence, t: float, dt: float) -> List:
        """Predict the solution at ``t + dt`` from the point at ``t``."""
        if self._previous_point is None or self._previous_t is None or self._previous_t >= t:
            return list(point)
        ctx = self.context
        span = t - self._previous_t
        ratio = ctx.from_complex(complex(dt / span))
        return [
            current + (current - previous) * ratio
            for current, previous in zip(point, self._previous_point)
        ]


class TangentPredictor:
    """Euler step along the path tangent ``dx/dt = -H_x^{-1} H_t``."""

    def __init__(self, context: NumericContext = DOUBLE):
        self.context = context

    def reset(self) -> None:  # tangent prediction is stateless
        return None

    def remember(self, point: Sequence, t: float) -> None:
        return None

    def predict(self, homotopy: Homotopy, point: Sequence, t: float, dt: float) -> List:
        ctx = self.context
        evaluation = homotopy.evaluate_at(point, t)
        rhs = [-v for v in evaluation.t_derivative]
        tangent = solve(evaluation.jacobian, rhs, ctx)
        step = ctx.from_complex(complex(dt))
        return [x + dx * step for x, dx in zip(point, tangent)]
