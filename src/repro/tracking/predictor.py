"""Predictors for the path-tracking predictor-corrector loop.

Two standard predictors are provided:

* :class:`SecantPredictor` -- extrapolates linearly through the two most
  recent accepted points on the path (falls back to the identity prediction
  when only one point is known);
* :class:`TangentPredictor` -- Euler prediction along the tangent of the
  path, obtained by solving ``H_x dx = -H_t dt`` with the same generic LU
  solver used by Newton's corrector (one extra linear solve per step but a
  better prediction, allowing larger steps).

The batched variants at the bottom apply the same formulas to ``(n, B)``
lane batches: :class:`BatchSecantPredictor` keeps the previous accepted
points as a second structure-of-arrays and extrapolates every lane with its
own step ratio; :class:`BatchTangentPredictor` obtains all tangents from one
batched linear solve.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..multiprec.backend import ComplexBatchBackend
from ..multiprec.numeric import DOUBLE, NumericContext
from .batch_linsolve import batched_solve
from .homotopy import Homotopy
from .linsolve import solve

__all__ = [
    "SecantPredictor",
    "TangentPredictor",
    "BatchSecantPredictor",
    "BatchTangentPredictor",
]


class SecantPredictor:
    """Linear extrapolation through the last two accepted path points."""

    def __init__(self, context: NumericContext = DOUBLE):
        self.context = context
        self._previous_point: Optional[List] = None
        self._previous_t: Optional[float] = None

    def reset(self) -> None:
        self._previous_point = None
        self._previous_t = None

    def remember(self, point: Sequence, t: float) -> None:
        """Record an accepted path point for the next extrapolation."""
        self._previous_point = list(point)
        self._previous_t = float(t)

    def predict(self, homotopy: Homotopy, point: Sequence, t: float, dt: float) -> List:
        """Predict the solution at ``t + dt`` from the point at ``t``."""
        if self._previous_point is None or self._previous_t is None or self._previous_t >= t:
            return list(point)
        ctx = self.context
        span = t - self._previous_t
        ratio = ctx.from_complex(complex(dt / span))
        return [
            current + (current - previous) * ratio
            for current, previous in zip(point, self._previous_point)
        ]


class TangentPredictor:
    """Euler step along the path tangent ``dx/dt = -H_x^{-1} H_t``."""

    def __init__(self, context: NumericContext = DOUBLE):
        self.context = context

    def reset(self) -> None:  # tangent prediction is stateless
        return None

    def remember(self, point: Sequence, t: float) -> None:
        return None

    def predict(self, homotopy: Homotopy, point: Sequence, t: float, dt: float) -> List:
        ctx = self.context
        evaluation = homotopy.evaluate_at(point, t)
        rhs = [-v for v in evaluation.t_derivative]
        tangent = solve(evaluation.jacobian, rhs, ctx)
        step = ctx.from_complex(complex(dt))
        return [x + dx * step for x, dx in zip(point, tangent)]


# ----------------------------------------------------------------------
# batched predictors over (n, B) lane arrays
# ----------------------------------------------------------------------
class BatchSecantPredictor:
    """Per-lane linear extrapolation through the last two accepted points.

    The history lives in the :class:`~repro.tracking.batch_tracker.PathBatch`
    itself (``prev_points`` / ``prev_t`` / ``has_prev``); this class only
    applies the formula, so it is stateless and safe to share.
    """

    def __init__(self, backend: ComplexBatchBackend):
        self.backend = backend

    def predict(self, batch_homotopy, points, prev_points, t: np.ndarray,
                prev_t: np.ndarray, dt: np.ndarray,
                has_prev: np.ndarray):
        """Extrapolate each lane to ``t + dt``; identity without history."""
        span = t - prev_t
        usable = np.asarray(has_prev, dtype=bool) & (span > 0.0)
        ratio = np.divide(dt, span, out=np.zeros_like(dt), where=usable)
        # Lanes without usable history get ratio 0: the prediction collapses
        # to the identity, matching the scalar predictor's fallback.
        return points + (points - prev_points) * ratio


class BatchTangentPredictor:
    """Euler step along each lane's tangent ``dx/dt = -H_x^{-1} H_t``.

    One batched linear solve produces every lane's tangent at once; lanes
    with a singular Jacobian fall back to the identity prediction (the
    corrector will reject and shrink their step).  The extra batched
    homotopy evaluation per prediction is recorded in ``evaluation_log``
    (when given) so the cost-model pricing covers predictor work too.
    The ``evaluate_batch`` call dispatches to the homotopy's compiled
    :class:`~repro.core.evalplan.HomotopyPlan` when plans are enabled;
    the predictor needs no knowledge of which schedule ran.
    """

    def __init__(self, backend: ComplexBatchBackend, *,
                 evaluation_log=None):
        self.backend = backend
        self.evaluation_log = evaluation_log

    def predict(self, batch_homotopy, points, prev_points, t: np.ndarray,
                prev_t: np.ndarray, dt: np.ndarray,
                has_prev: np.ndarray):
        backend = self.backend
        if self.evaluation_log is not None:
            self.evaluation_log.append(int(points.shape[-1]))
        evaluation = batch_homotopy.evaluate_batch(points, t)
        rhs = [-v for v in evaluation.t_derivative]
        # The evaluation is local to this prediction, so the solver may
        # consume (mutate) its Jacobian and our negated derivative rows.
        tangent, singular = batched_solve(evaluation.jacobian, rhs, backend,
                                          copy=False)
        step = backend.stack(tangent) * dt.astype(np.complex128)
        predicted = points + step
        if singular.any():
            predicted = backend.where(singular, points, predicted)
        return predicted
