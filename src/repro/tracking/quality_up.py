"""Quality-up analysis: trading parallelism for precision.

The introduction of the paper frames the goal as *quality up* (after Akl):
given ``p`` processors (or a GPU), how much extra working precision can be
afforded in roughly the same wall-clock time as a sequential double-precision
run?  The measured ingredients are

* the overhead factor of the software arithmetic (about 8 for double-double,
  about 40 for quad-double relative to hardware doubles -- the paper's [40]
  measured ~8 on their workstation), and
* the speedup the parallel evaluation achieves (the Tables' 7.6 .. 19.6).

This module packages that arithmetic so the benchmarks and examples can print
quality-up tables: :func:`offset_factor` answers "how much of the overhead is
paid for", and :func:`affordable_precision` picks the widest arithmetic whose
overhead is covered by a given speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..multiprec.numeric import CONTEXTS, DOUBLE, NumericContext
from ..polynomials.speelpenning import OperationCount
from ..gpusim.costmodel import CPUCostModel, GPUCostModel

__all__ = ["QualityUpEntry", "offset_factor", "affordable_precision", "quality_up_table"]


@dataclass(frozen=True)
class QualityUpEntry:
    """One row of a quality-up table."""

    context_name: str
    description: str
    overhead_factor: float
    speedup: float
    offset: float
    affordable: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "arithmetic": self.context_name,
            "description": self.description,
            "overhead_factor": self.overhead_factor,
            "speedup": self.speedup,
            "offset_factor": self.offset,
            "affordable_in_sequential_double_time": self.affordable,
        }


def offset_factor(speedup: float, overhead_factor: float) -> float:
    """How much faster than a sequential double run the accelerated
    extended-precision run is: ``speedup / overhead``.

    A value of at least 1.0 means the extra precision is free in wall-clock
    terms -- the quality-up criterion.
    """
    if overhead_factor <= 0:
        raise ValueError("overhead_factor must be positive")
    return speedup / overhead_factor


def _overhead_of(context: NumericContext,
                 cost_model: Optional[CPUCostModel]) -> float:
    """The overhead factor of ``context``: the cost model's calibrated
    software cost factor when a model is given, else the context's nominal
    ``mul_cost_factor``."""
    if cost_model is not None:
        return cost_model.arithmetic_cost_factor(context)
    return context.mul_cost_factor


def affordable_precision(speedup: float,
                         contexts: Optional[Sequence[NumericContext]] = None,
                         cost_model: Optional[CPUCostModel] = None
                         ) -> NumericContext:
    """The widest arithmetic whose overhead the given speedup covers.

    This is what :meth:`repro.tracking.solver.EscalationPolicy.from_speedup`
    consults to pick the starting rung of the d -> dd -> qd ladder.  Pass a
    :class:`~repro.gpusim.costmodel.CPUCostModel` to use its calibrated
    software cost factors instead of the contexts' nominal ones.
    """
    candidates = list(contexts) if contexts is not None else list(CONTEXTS.values())
    best = DOUBLE
    for ctx in sorted(candidates, key=lambda c: _overhead_of(c, cost_model)):
        if offset_factor(speedup, _overhead_of(ctx, cost_model)) >= 1.0:
            best = ctx
    return best


def quality_up_table(speedup: float,
                     contexts: Optional[Sequence[NumericContext]] = None,
                     cost_model: Optional[CPUCostModel] = None
                     ) -> List[QualityUpEntry]:
    """Quality-up rows for every arithmetic at a given parallel speedup."""
    candidates = list(contexts) if contexts is not None else list(CONTEXTS.values())
    rows = []
    for ctx in sorted(candidates, key=lambda c: _overhead_of(c, cost_model)):
        overhead = _overhead_of(ctx, cost_model)
        off = offset_factor(speedup, overhead)
        rows.append(QualityUpEntry(
            context_name=ctx.name,
            description=ctx.description,
            overhead_factor=overhead,
            speedup=speedup,
            offset=off,
            affordable=off >= 1.0,
        ))
    return rows


def measured_overhead_factor(operations: OperationCount,
                             context: NumericContext,
                             cost_model: Optional[CPUCostModel] = None) -> float:
    """Predicted CPU overhead of ``context`` relative to hardware doubles for
    the given operation tally (the paper's 'cost factor ... around 8')."""
    model = cost_model or CPUCostModel()
    base = model.evaluation_time(operations, DOUBLE)
    extended = model.evaluation_time(operations, context)
    if base == 0:
        return float("inf")
    return extended / base
