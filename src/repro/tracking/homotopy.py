"""Homotopies between a start system and a target system.

The convex linear homotopy with the "gamma trick"

.. math::  h(x, t) = \\gamma (1 - t)\\, g(x) + t\\, f(x), \\qquad t: 0 \\to 1,

deforms the start system ``g`` into the target ``f``; for a random complex
``gamma`` the solution paths are smooth with probability one.  The
:class:`Homotopy` class composes two *evaluators* (anything with
``evaluate(point)`` returning ``values``/``jacobian``) so that either the
simulated-GPU pipeline or a CPU reference can supply the expensive
evaluations, exactly the role the paper intends for its kernels inside
PHCpack's trackers.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..multiprec.numeric import DOUBLE, NumericContext

__all__ = ["HomotopyEvaluation", "Homotopy"]


@dataclass
class HomotopyEvaluation:
    """Values, Jacobian and t-derivative of the homotopy at ``(x, t)``."""

    values: List
    jacobian: List[List]
    t_derivative: List


class Homotopy:
    """Convex linear homotopy ``gamma (1-t) g(x) + t f(x)``.

    Parameters
    ----------
    start_evaluator / target_evaluator:
        Evaluators of ``g`` and ``f`` (same dimension, same numeric context).
    gamma:
        The random accessibility constant; a unit-modulus complex number.
        When None a fixed pseudo-random value is used so runs reproduce.
    context:
        The numeric context shared with the evaluators.
    """

    def __init__(self, start_evaluator, target_evaluator, *,
                 gamma: Optional[complex] = None,
                 context: NumericContext = DOUBLE,
                 dimension: Optional[int] = None):
        self.start_evaluator = start_evaluator
        self.target_evaluator = target_evaluator
        self.context = context
        if gamma is None:
            gamma = cmath.exp(1j * 0.84719633)  # fixed unit-modulus constant
        if abs(abs(gamma) - 1.0) > 1e-8:
            raise ConfigurationError("gamma should be a unit-modulus complex number")
        self.gamma = complex(gamma)
        self.dimension = dimension

    # ------------------------------------------------------------------
    def evaluate_at(self, point: Sequence, t: float) -> HomotopyEvaluation:
        """Evaluate ``h``, its Jacobian in ``x`` and its derivative in ``t``."""
        if not (0.0 <= t <= 1.0):
            raise ConfigurationError(f"the continuation parameter t={t} must lie in [0, 1]")
        ctx = self.context
        g = self.start_evaluator.evaluate(point)
        f = self.target_evaluator.evaluate(point)

        weight_g = ctx.from_complex(self.gamma * (1.0 - t))
        weight_f = ctx.from_complex(complex(t))
        minus_gamma = ctx.from_complex(-self.gamma)

        n = len(g.values)
        values = [g.values[i] * weight_g + f.values[i] * weight_f for i in range(n)]
        jacobian = [
            [g.jacobian[i][j] * weight_g + f.jacobian[i][j] * weight_f for j in range(n)]
            for i in range(n)
        ]
        # dh/dt = f(x) - gamma g(x)
        t_derivative = [f.values[i] + g.values[i] * minus_gamma for i in range(n)]
        return HomotopyEvaluation(values=values, jacobian=jacobian,
                                  t_derivative=t_derivative)

    # ------------------------------------------------------------------
    class _Frozen:
        """Adapter exposing the evaluator interface for a fixed ``t``."""

        def __init__(self, homotopy: "Homotopy", t: float):
            self._homotopy = homotopy
            self._t = t

        def evaluate(self, point: Sequence) -> HomotopyEvaluation:
            return self._homotopy.evaluate_at(point, self._t)

    def at(self, t: float) -> "Homotopy._Frozen":
        """Freeze ``t``: the result satisfies the evaluator interface used by
        :class:`~repro.tracking.newton.NewtonCorrector`."""
        return Homotopy._Frozen(self, t)
