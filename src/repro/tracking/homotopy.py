"""Homotopies between a start system and a target system.

The convex linear homotopy with the "gamma trick"

.. math::  h(x, t) = \\gamma (1 - t)\\, g(x) + t\\, f(x), \\qquad t: 0 \\to 1,

deforms the start system ``g`` into the target ``f``; for a random complex
``gamma`` the solution paths are smooth with probability one.  The
:class:`Homotopy` class composes two *evaluators* (anything with
``evaluate(point)`` returning ``values``/``jacobian``) so that either the
simulated-GPU pipeline or a CPU reference can supply the expensive
evaluations, exactly the role the paper intends for its kernels inside
PHCpack's trackers.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..multiprec.backend import ComplexBatchBackend, backend_for_context
from ..multiprec.numeric import DOUBLE, NumericContext

__all__ = ["HomotopyEvaluation", "Homotopy", "BatchHomotopyEvaluation", "BatchHomotopy"]


def _checked_gamma(gamma: Optional[complex]) -> complex:
    """Validate (or default) the accessibility constant ``gamma``."""
    if gamma is None:
        gamma = cmath.exp(1j * 0.84719633)  # fixed unit-modulus constant
    if abs(abs(gamma) - 1.0) > 1e-8:
        raise ConfigurationError("gamma should be a unit-modulus complex number")
    return complex(gamma)


@dataclass
class HomotopyEvaluation:
    """Values, Jacobian and t-derivative of the homotopy at ``(x, t)``."""

    values: List
    jacobian: List[List]
    t_derivative: List


class Homotopy:
    """Convex linear homotopy ``gamma (1-t) g(x) + t f(x)``.

    Parameters
    ----------
    start_evaluator / target_evaluator:
        Evaluators of ``g`` and ``f`` (same dimension, same numeric context).
    gamma:
        The random accessibility constant; a unit-modulus complex number.
        When None a fixed pseudo-random value is used so runs reproduce.
    context:
        The numeric context shared with the evaluators.
    """

    def __init__(self, start_evaluator, target_evaluator, *,
                 gamma: Optional[complex] = None,
                 context: NumericContext = DOUBLE,
                 dimension: Optional[int] = None):
        self.start_evaluator = start_evaluator
        self.target_evaluator = target_evaluator
        self.context = context
        self.gamma = _checked_gamma(gamma)
        self.dimension = dimension

    # ------------------------------------------------------------------
    def evaluate_at(self, point: Sequence, t: float) -> HomotopyEvaluation:
        """Evaluate ``h``, its Jacobian in ``x`` and its derivative in ``t``."""
        if not (0.0 <= t <= 1.0):
            raise ConfigurationError(f"the continuation parameter t={t} must lie in [0, 1]")
        ctx = self.context
        g = self.start_evaluator.evaluate(point)
        f = self.target_evaluator.evaluate(point)

        weight_g = ctx.from_complex(self.gamma * (1.0 - t))
        weight_f = ctx.from_complex(complex(t))
        minus_gamma = ctx.from_complex(-self.gamma)

        n = len(g.values)
        values = [g.values[i] * weight_g + f.values[i] * weight_f for i in range(n)]
        jacobian = [
            [g.jacobian[i][j] * weight_g + f.jacobian[i][j] * weight_f for j in range(n)]
            for i in range(n)
        ]
        # dh/dt = f(x) - gamma g(x)
        t_derivative = [f.values[i] + g.values[i] * minus_gamma for i in range(n)]
        return HomotopyEvaluation(values=values, jacobian=jacobian,
                                  t_derivative=t_derivative)

    # ------------------------------------------------------------------
    class _Frozen:
        """Adapter exposing the evaluator interface for a fixed ``t``."""

        def __init__(self, homotopy: "Homotopy", t: float):
            self._homotopy = homotopy
            self._t = t

        def evaluate(self, point: Sequence) -> HomotopyEvaluation:
            return self._homotopy.evaluate_at(point, self._t)

    def at(self, t: float) -> "Homotopy._Frozen":
        """Freeze ``t``: the result satisfies the evaluator interface used by
        :class:`~repro.tracking.newton.NewtonCorrector`."""
        return Homotopy._Frozen(self, t)


# ----------------------------------------------------------------------
# lane-batched homotopy: every path carries its own continuation parameter
# ----------------------------------------------------------------------
@dataclass
class BatchHomotopyEvaluation:
    """Per-lane values, Jacobian and t-derivative of the batched homotopy.

    ``values[i]`` and ``t_derivative[i]`` are ``(B,)`` batch arrays,
    ``jacobian[i][j]`` likewise.
    """

    values: List
    jacobian: List[List]
    t_derivative: List


class BatchHomotopy:
    """The gamma-trick homotopy over an ``(n, B)`` lane batch of points.

    Unlike the scalar :class:`Homotopy`, which composes two evaluator
    *objects*, the batched variant is built from the two *systems* directly:
    it instantiates a
    :class:`~repro.core.batch.VectorisedBatchEvaluator` for each, so both
    the start and the target system are evaluated for the whole batch with
    structure-of-arrays arithmetic.  Every lane carries its own ``t`` (the
    batch tracker advances paths at independent rates), so the convex
    weights ``gamma (1 - t)`` and ``t`` are per-lane complex vectors that
    broadcast across the value and Jacobian rows.
    """

    def __init__(self, start_system, target_system, *,
                 gamma: Optional[complex] = None,
                 context: NumericContext = DOUBLE,
                 backend: Optional[ComplexBatchBackend] = None,
                 use_plan: Optional[bool] = None):
        # Imported here: repro.core.batch already imports repro.multiprec,
        # and pulling it at module load would cycle through repro.tracking.
        from ..core.batch import VectorisedBatchEvaluator

        self.context = context
        self.backend = backend or backend_for_context(context)
        self.gamma = _checked_gamma(gamma)
        # The sub-evaluators drive the walk path only; the plan path runs
        # the pair through one fused HomotopyPlan instead.  They are built
        # with use_plan=False so the walk reference stays a pure walk even
        # while plans are globally enabled.
        self.start_evaluator = VectorisedBatchEvaluator(start_system, backend=self.backend,
                                                        use_plan=False)
        self.target_evaluator = VectorisedBatchEvaluator(target_system, backend=self.backend,
                                                         use_plan=False)
        if start_system.dimension != target_system.dimension:
            raise ConfigurationError("start and target systems must share a dimension")
        self.dimension = target_system.dimension
        self.use_plan = use_plan
        self._plan = None
        self._systems = (start_system, target_system)

    @property
    def plan(self):
        """The fused :class:`~repro.core.evalplan.HomotopyPlan` of the
        start+target pair (compiled on first use, cached)."""
        if self._plan is None:
            from ..core.evalplan import HomotopyPlan  # local import: cycle

            self._plan = HomotopyPlan(self._systems[0], self._systems[1],
                                      gamma=self.gamma, backend=self.backend)
        return self._plan

    def evaluate_batch(self, points, t: np.ndarray) -> BatchHomotopyEvaluation:
        """Evaluate ``h``, ``dh/dx`` and ``dh/dt`` at per-lane parameters.

        With evaluation plans enabled (the default, see
        :func:`repro.core.evalplan.use_eval_plans`) the whole evaluation --
        both system passes, the convex blend and ``dh/dt`` -- runs from the
        compiled :class:`~repro.core.evalplan.HomotopyPlan`: supports and
        power tables are shared across the two systems and the blend lands
        in-place over the sparse Jacobian union instead of materialising
        ``n^2 + 2n`` blended temporaries.
        """
        t = np.asarray(t, dtype=np.float64)
        if np.any((t < 0.0) | (t > 1.0)):
            raise ConfigurationError("all continuation parameters must lie in [0, 1]")
        enabled = self.use_plan if self.use_plan is not None else self._plans_enabled()
        if enabled:
            values, jacobian, t_derivative = self.plan.execute(points, t)
            return BatchHomotopyEvaluation(values=values, jacobian=jacobian,
                                           t_derivative=t_derivative)
        g = self.start_evaluator.evaluate(points)
        f = self.target_evaluator.evaluate(points)

        weight_g = self.gamma * (1.0 - t).astype(np.complex128)
        weight_f = t.astype(np.complex128)

        n = self.dimension
        values = [g.values[i] * weight_g + f.values[i] * weight_f for i in range(n)]
        jacobian = [
            [g.jacobian[i][j] * weight_g + f.jacobian[i][j] * weight_f
             for j in range(n)]
            for i in range(n)
        ]
        # dh/dt = f(x) - gamma g(x), independent of t.
        t_derivative = [f.values[i] - g.values[i] * self.gamma for i in range(n)]
        return BatchHomotopyEvaluation(values=values, jacobian=jacobian,
                                       t_derivative=t_derivative)

    @staticmethod
    def _plans_enabled() -> bool:
        from ..core.evalplan import eval_plans_enabled  # local import: cycle

        return eval_plans_enabled()

    def plan_step_scope(self):
        """A step scope over the compiled plan, or a no-op context.

        The tracker opens this around each batch-tracking run so
        consecutive plan executions at bit-identical points -- the Newton
        corrector's accepted evaluation followed by the tangent predictor's
        -- reuse the already-built power ladders and term planes.  Falls
        back to a null context when the walk path or the arena executor is
        disabled (the allocating paths have no cross-call cache).
        """
        from contextlib import nullcontext

        from ..core.evalplan import plan_arenas_enabled  # local import: cycle

        enabled = self.use_plan if self.use_plan is not None \
            else self._plans_enabled()
        if enabled and plan_arenas_enabled():
            return self.plan.step_scope()
        return nullcontext()

    class _Frozen:
        """Adapter exposing a batched evaluator interface for fixed ``t``."""

        def __init__(self, homotopy: "BatchHomotopy", t: np.ndarray):
            self._homotopy = homotopy
            self._t = np.asarray(t, dtype=np.float64)

        def evaluate(self, points, lanes=None) -> BatchHomotopyEvaluation:
            """Evaluate ``points``; ``lanes`` selects the matching subset of
            the frozen per-lane parameters when the caller compressed the
            batch (the Newton corrector retiring converged lanes)."""
            t = self._t if lanes is None else self._t[lanes]
            return self._homotopy.evaluate_batch(points, t)

    def at(self, t: np.ndarray) -> "BatchHomotopy._Frozen":
        """Freeze the per-lane parameters for the batched Newton corrector."""
        return BatchHomotopy._Frozen(self, t)
