"""Dense linear algebra generic over the scalar arithmetic.

Newton's corrector needs to solve ``J dx = -f`` with the Jacobian produced by
the evaluators, in whatever arithmetic the evaluation used (complex double,
complex double-double, complex quad-double).  NumPy cannot hold the extended
types, so this module provides a small, fully generic LU solver with partial
pivoting that only requires ``+``, ``-``, ``*``, ``/`` on the scalars.

Pivot *selection* uses magnitudes rounded to hardware doubles -- pivot choice
is a control decision, not part of the computed result, so this does not
affect the achievable precision -- while all eliminations and substitutions
stay in the working arithmetic.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SingularMatrixError
from ..multiprec.numeric import DOUBLE, NumericContext

__all__ = ["lu_factor", "lu_solve", "solve", "residual_norm", "vector_norm"]


def _magnitude(value, context: NumericContext) -> float:
    """A double-precision magnitude usable for pivoting and norms."""
    if isinstance(value, (int, float, complex)):
        return abs(complex(value))
    return abs(context.to_complex(value))


def lu_factor(matrix: Sequence[Sequence], context: NumericContext = DOUBLE
              ) -> Tuple[List[List], List[int]]:
    """LU factorisation with partial pivoting, in place on a copy.

    Returns ``(LU, pivots)`` where ``LU`` packs the unit-lower and upper
    factors and ``pivots[i]`` is the row swapped into position ``i``.
    Raises :class:`~repro.errors.SingularMatrixError` on a zero pivot.
    """
    n = len(matrix)
    lu = [list(row) for row in matrix]
    if any(len(row) != n for row in lu):
        raise ValueError("lu_factor expects a square matrix")
    pivots = list(range(n))

    for col in range(n):
        # Partial pivoting on double-rounded magnitudes.
        pivot_row = max(range(col, n), key=lambda r: _magnitude(lu[r][col], context))
        if _magnitude(lu[pivot_row][col], context) == 0.0:
            raise SingularMatrixError(
                f"matrix is singular to working precision at column {col}"
            )
        if pivot_row != col:
            lu[col], lu[pivot_row] = lu[pivot_row], lu[col]
            pivots[col], pivots[pivot_row] = pivots[pivot_row], pivots[col]

        pivot = lu[col][col]
        for row in range(col + 1, n):
            factor = lu[row][col] / pivot
            lu[row][col] = factor
            for j in range(col + 1, n):
                lu[row][j] = lu[row][j] - factor * lu[col][j]
    return lu, pivots


def lu_solve(lu: Sequence[Sequence], pivots: Sequence[int], rhs: Sequence,
             context: NumericContext = DOUBLE) -> List:
    """Solve ``A x = rhs`` given the packed LU factors of ``A``."""
    n = len(lu)
    if len(rhs) != n:
        raise ValueError("right-hand side length does not match the matrix")
    # Apply the row permutation to the right-hand side.
    b = [rhs[p] for p in pivots]

    # Forward substitution with the unit lower factor.
    y: List = [None] * n
    for i in range(n):
        value = b[i]
        for j in range(i):
            value = value - lu[i][j] * y[j]
        y[i] = value

    # Backward substitution with the upper factor.
    x: List = [None] * n
    for i in reversed(range(n)):
        value = y[i]
        for j in range(i + 1, n):
            value = value - lu[i][j] * x[j]
        x[i] = value / lu[i][i]
    return x


def solve(matrix: Sequence[Sequence], rhs: Sequence,
          context: NumericContext = DOUBLE) -> List:
    """Convenience: factor and solve in one call."""
    lu, pivots = lu_factor(matrix, context)
    return lu_solve(lu, pivots, rhs, context)


def vector_norm(vector: Sequence, context: NumericContext = DOUBLE) -> float:
    """Infinity norm of a vector of generic scalars (double-rounded)."""
    return max((_magnitude(v, context) for v in vector), default=0.0)


def residual_norm(matrix: Sequence[Sequence], solution: Sequence, rhs: Sequence,
                  context: NumericContext = DOUBLE) -> float:
    """Infinity norm of ``A x - b`` (double-rounded), for verification."""
    n = len(matrix)
    worst = 0.0
    for i in range(n):
        acc = None
        for j in range(n):
            term = matrix[i][j] * solution[j]
            acc = term if acc is None else acc + term
        diff = acc - rhs[i] if acc is not None else -rhs[i]
        worst = max(worst, _magnitude(diff, context))
    return worst
