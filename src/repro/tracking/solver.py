"""Blackbox solver: find all isolated solutions of a square polynomial system.

This is the top of the application stack the paper's introduction describes:
homotopy continuation methods "have led to efficient numerical solvers of
polynomial systems" and the evaluation/differentiation kernels are the
computational engine inside them.  :func:`solve_system` wires the pieces of
:mod:`repro.tracking` together the way PHCpack-style blackbox solvers do:

1. prepare a start system with known solutions through a pluggable
   :class:`~repro.tracking.start_systems.StartStrategy` (the classical
   total-degree construction by default; diagonal binomial and
   generic-member parameter-homotopy starts track fewer paths on the
   targets that support them);
2. construct the gamma-trick homotopy from the start system to the target;
3. track every path (optionally only a sample of them) -- through the
   structure-of-arrays :class:`~repro.tracking.batch_tracker.BatchTracker`
   whenever the evaluator factory exposes its underlying
   :class:`~repro.polynomials.system.PolynomialSystem` and the context has a
   registered batch backend, falling back to the sequential scalar tracker
   otherwise;
4. optionally *escalate*: re-track the failed-path residue at the next wider
   arithmetic of an :class:`EscalationPolicy` ladder (d -> dd -> qd), the
   operational form of the paper's quality-up argument -- parallel batching
   pays for the software-arithmetic overhead, so precision is raised only
   where double precision actually fails;
5. sharpen the end points with Newton's method and de-duplicate the results.

Any evaluator factory can be supplied, so the paths can be driven by the
sequential CPU reference (default) or by the simulated-GPU pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.cpu_reference import CPUReferenceEvaluator
from ..errors import ConfigurationError
from ..multiprec.backend import backend_for_context
from ..multiprec.numeric import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE, NumericContext
from ..polynomials.system import PolynomialSystem
from .escalation import RungOutcome, run_escalation_ladder
from .homotopy import Homotopy
from .quality_up import affordable_precision
from .start_systems import (StartStrategy, TotalDegreeStart, total_degree)
from .tracker import PathResult, PathTracker, TrackerOptions

__all__ = ["EscalationPolicy", "Solution", "SolveReport",
           "batched_route_available", "solve_system"]

#: The canonical precision ladder: hardware doubles, then the two software
#: arithmetics of the QD library the paper builds on.
DEFAULT_LADDER: Tuple[NumericContext, ...] = (DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE)


@dataclass(frozen=True)
class EscalationPolicy:
    """How :func:`solve_system` widens the arithmetic for failed paths.

    The ladder is walked front to back: all paths start in ``ladder[0]``;
    whatever fails there is re-tracked in ``ladder[1]``, and so on.  The
    entries must be ordered from cheapest to widest arithmetic.

    With ``warm_restart`` (the default) a failed path is *resumed* at the
    wider rung from its :class:`~repro.tracking.batch_tracker.LaneCheckpoint`
    -- the last accepted ``(x, t)`` of the cheaper run, converted into the
    wider arithmetic through the backend registry -- instead of being
    re-tracked from ``t = 0``.  Failed lanes typically fail near ``t = 1``
    (a tightening endgame or a final sharpening that double precision cannot
    certify), so the warm restart reuses almost all of the cheap-rung work.
    Set ``warm_restart=False`` to restart failed paths from scratch (the
    pre-checkpoint behaviour, kept for comparison benchmarks).

    ``residual_aware`` (default on) makes warm restarts *residual-aware*:
    a resumed lane checkpointed at ``t >= 1`` whose stored residual already
    certifies the endgame tolerance skips the endgame re-entry round
    entirely -- the wider rung would only re-measure a certificate the
    checkpoint carries.  Skipped re-entries are reported per rung in
    :attr:`SolveReport.endgame_skips_by_context`.  Note the certificate is
    conservative: a lane that *failed* the endgame carries a residual above
    the tolerance by construction, so in the usual failed-residue
    escalation (one shared tolerance across rungs) the counter stays 0 and
    the skip acts purely as a guard; it pays off when checkpoint sets that
    include certified lanes are resumed -- replaying an interrupted run, or
    a ladder whose resumed rung runs with a looser ``end_tolerance``.

    Use :meth:`from_speedup` to let the quality-up analysis pick the starting
    rung: with enough parallel speedup the wider arithmetic is free in
    wall-clock terms, so the ladder starts there and only the residue pays
    for anything wider.

    Raises
    ------
    ConfigurationError
        When the ladder is empty or not ordered from cheapest to widest.
    """

    ladder: Tuple[NumericContext, ...] = DEFAULT_LADDER
    warm_restart: bool = True
    residual_aware: bool = True

    def __post_init__(self):
        ladder = tuple(self.ladder)
        if not ladder:
            raise ConfigurationError("an escalation ladder needs at least one context")
        factors = [ctx.mul_cost_factor for ctx in ladder]
        if factors != sorted(factors):
            raise ConfigurationError(
                "escalation ladder must be ordered from cheapest to widest "
                f"arithmetic, got {[ctx.name for ctx in ladder]}"
            )
        object.__setattr__(self, "ladder", ladder)

    @property
    def start_context(self) -> NumericContext:
        return self.ladder[0]

    @classmethod
    def from_speedup(cls, speedup: float,
                     ladder: Optional[Sequence[NumericContext]] = None,
                     *, warm_restart: bool = True) -> "EscalationPolicy":
        """Start the ladder at the widest arithmetic the speedup pays for.

        Parameters
        ----------
        speedup:
            The parallel speedup over a sequential double run (the Tables'
            7.6 .. 19.6);
            :func:`~repro.tracking.quality_up.affordable_precision` turns it
            into the widest context whose overhead it covers.  Contexts
            cheaper than that starting rung are dropped -- they are strictly
            worse: same wall-clock budget, less precision.
        ladder:
            Candidate rungs, cheapest first; :data:`DEFAULT_LADDER` if
            omitted.
        warm_restart:
            Forwarded to the policy (see the class docstring).

        Returns
        -------
        EscalationPolicy
            A policy whose first rung is the affordable arithmetic.
        """
        rungs = tuple(ladder) if ladder is not None else DEFAULT_LADDER
        start = affordable_precision(speedup, rungs)
        names = [ctx.name for ctx in rungs]
        index = names.index(start.name) if start.name in names else 0
        return cls(ladder=rungs[index:], warm_restart=warm_restart)


@dataclass(frozen=True)
class Solution:
    """One isolated solution found by the solver."""

    point: tuple
    residual: float
    multiplicity: int = 1

    def as_complex(self, context: NumericContext = DOUBLE) -> List[complex]:
        return [context.to_complex(x) if not isinstance(x, (int, float, complex))
                else complex(x) for x in self.point]


@dataclass
class SolveReport:
    """Everything :func:`solve_system` found out about a system.

    ``paths_tracked`` counts distinct start solutions; escalated re-tracks of
    the same path are visible in ``paths_by_context`` (paths *attempted* per
    arithmetic) and ``converged_by_context`` (how many of those succeeded).
    ``recovered_by_escalation`` counts paths that failed at the starting
    arithmetic but converged at a wider one.

    The warm-restart accounting splits every escalated rung's attempts into
    ``resumed_by_context`` (paths continued mid-path from a cheaper rung's
    checkpoint, i.e. with ``t > 0`` of tracked progress reused) and
    ``restarted_by_context`` (paths tracked from ``t = 0``: the first rung,
    cold restarts under ``warm_restart=False``, start-correction failures,
    and scalar-fallback rungs that produce no checkpoints).
    ``resume_t_by_context`` records, per rung, the continuation parameter
    each resumed path continued from -- on typical workloads these cluster
    at ``t = 1.0``, which is exactly why warm restarts win: the wide
    arithmetic only replays the endgame.  ``endgame_skips_by_context``
    counts, per rung, the resumed lanes whose checkpointed residual already
    certified the endgame tolerance, so even that replay was skipped (the
    residual-aware policy, see :class:`EscalationPolicy`).

    ``degradations`` lists, human-readably, every place the solve silently
    did something weaker than asked -- today that is a warm restart that
    had to fall back to a cold re-track (a rung without the batched route,
    or missing checkpoints after such a rung).  An empty list means the
    solve ran exactly as configured.

    The sharded solve service (:func:`repro.service.sharded.
    solve_system_sharded`) fills the per-shard accounting: ``shards`` is
    the number of worker-process shards the path batch was partitioned
    into (1 for a single-process solve), ``worker_retries`` how many
    shard-rung tasks had to be rescheduled after a worker crash or
    timeout, and ``resumed_after_crash`` how many of those reschedules
    continued from persisted checkpoints instead of cold-restarting.
    The supervised runtime adds its verdicts: ``quarantined_shards``
    (shard tasks isolated after repeated worker kills -- their lanes are
    reported failed, the rest of the solve completes), ``hangs_detected``
    (workers killed for missed heartbeats), ``deadline_cancels``
    (cooperative per-job deadline cancellations sent),
    ``cold_restarts_after_corruption`` (resumes abandoned because the
    persisted checkpoints failed to decode or read), and
    ``inprocess_fallbacks`` (shard tasks run inline on the coordinator
    because no worker could be spawned).  Every one of those verdicts is
    also described in ``degradations``.

    ``start_strategy`` names the :class:`~repro.tracking.start_systems.
    StartStrategy` that produced the start system -- ``"total-degree"``
    unless a ``start=`` was passed -- so serving logs show which start a
    result (and its ``paths_tracked``) came from.
    """

    system: PolynomialSystem
    bezout_number: int
    paths_tracked: int
    paths_converged: int
    solutions: List[Solution] = field(default_factory=list)
    failures: List[PathResult] = field(default_factory=list)
    paths_by_context: Dict[str, int] = field(default_factory=dict)
    converged_by_context: Dict[str, int] = field(default_factory=dict)
    recovered_by_escalation: int = 0
    resumed_by_context: Dict[str, int] = field(default_factory=dict)
    restarted_by_context: Dict[str, int] = field(default_factory=dict)
    resume_t_by_context: Dict[str, List[float]] = field(default_factory=dict)
    endgame_skips_by_context: Dict[str, int] = field(default_factory=dict)
    degradations: List[str] = field(default_factory=list)
    shards: int = 1
    worker_retries: int = 0
    resumed_after_crash: int = 0
    quarantined_shards: List[int] = field(default_factory=list)
    hangs_detected: int = 0
    deadline_cancels: int = 0
    cold_restarts_after_corruption: int = 0
    inprocess_fallbacks: int = 0
    start_strategy: str = "total-degree"

    @property
    def success_rate(self) -> float:
        if self.paths_tracked == 0:
            return 0.0
        return self.paths_converged / self.paths_tracked

    @property
    def contexts_used(self) -> List[str]:
        """Names of the arithmetics that actually tracked paths, in order."""
        return list(self.paths_by_context)

    def distinct_solutions(self) -> List[Solution]:
        return list(self.solutions)


# ----------------------------------------------------------------------
# de-duplication: bucket on a rounded-coordinate key, scan within buckets
# ----------------------------------------------------------------------
#: Above this many candidate probe keys the dedup falls back to a full scan
#: for that one point (only reachable when many coordinates sit on cell
#: boundaries simultaneously).
_MAX_PROBES = 64


def _roundings(value: float, cell: float) -> List[int]:
    """Grid cell(s) of ``value``: its own, plus the neighbour when within a
    quarter cell of the boundary (two in-tolerance points differ by at most
    an eighth of a cell, so matching points always share a candidate)."""
    quotient = value / cell
    nearest = round(quotient)
    candidates = [nearest]
    fraction = quotient - nearest
    if fraction > 0.25:
        candidates.append(nearest + 1)
    elif fraction < -0.25:
        candidates.append(nearest - 1)
    return candidates


def _coordinate_candidates(z: complex, tolerance: float) -> List[tuple]:
    """Bucket-key candidates of one coordinate: (band, re cell, im cell).

    The cell size is ``8 * tolerance * 2^band`` with ``band`` the
    power-of-two magnitude band of ``max(1, |z|)``, mirroring the relative
    ``tolerance * max(1, |b|)`` matching rule.  Near band or cell
    boundaries the neighbouring band/cell is included, so two points within
    tolerance of each other are guaranteed to share at least one candidate
    (the first candidate is the *primary* key a cluster registers under).
    """
    scale = max(1.0, abs(z))
    if not math.isfinite(scale):
        return [("inf",)]
    mantissa, band = math.frexp(scale)
    bands = [band]
    if mantissa > 0.75:
        bands.append(band + 1)
    elif mantissa < 0.625 and band > 1:
        bands.append(band - 1)
    out = []
    for b in bands:
        cell = 8.0 * tolerance * math.ldexp(1.0, b)
        for re_cell in _roundings(z.real, cell):
            for im_cell in _roundings(z.imag, cell):
                out.append((b, re_cell, im_cell))
    return out


def _probe_keys(point: Sequence[complex], tolerance: float) -> List[tuple]:
    """All candidate bucket keys of a point, primary key first.

    Returns an empty list when the candidate product explodes (many
    coordinates on boundaries at once); the caller then scans every cluster
    for that point.
    """
    per_coordinate = [_coordinate_candidates(z, tolerance) for z in point]
    total = 1
    for candidates in per_coordinate:
        total *= len(candidates)
        if total > _MAX_PROBES:
            return []
    keys = [()]
    for candidates in per_coordinate:
        keys = [key + (c,) for key in keys for c in candidates]
    return keys


def _deduplicate(solutions: Sequence[PathResult], context: NumericContext,
                 tolerance: float) -> List[Solution]:
    """Cluster path end points that agree to ``tolerance`` in every coordinate.

    Clusters register under the primary rounded-coordinate key of their
    representative; a new end point probes its candidate keys and runs the
    exact tolerance scan only against the clusters found there -- O(1)
    probes per path instead of the former O(paths) scan per path.
    """
    found: List[Solution] = []
    rounded: List[List[complex]] = []
    buckets: Dict[tuple, List[int]] = {}
    # Clusters whose representative produced no probe keys (degenerate
    # boundary pile-ups): not reachable through any bucket, so every point
    # additionally scans these few.
    unbucketed: List[int] = []

    def matches(point, existing) -> bool:
        return all(abs(a - b) <= tolerance * max(1.0, abs(b))
                   for a, b in zip(point, existing))

    for result in solutions:
        point = [context.to_complex(x) if not isinstance(x, (int, float, complex))
                 else complex(x) for x in result.solution]
        keys = _probe_keys(point, tolerance)
        match = None
        if keys:
            seen_clusters = set(unbucketed)
            candidates = list(unbucketed)
            for key in keys:
                for index in buckets.get(key, ()):
                    if index not in seen_clusters:
                        seen_clusters.add(index)
                        candidates.append(index)
        else:  # degenerate point: exact full scan
            candidates = range(len(rounded))
        for index in candidates:
            if matches(point, rounded[index]):
                match = index
                break
        if match is None:
            if keys:
                buckets.setdefault(keys[0], []).append(len(found))
            else:
                unbucketed.append(len(found))
            rounded.append(point)
            found.append(Solution(point=tuple(result.solution), residual=result.residual))
        else:
            old = found[match]
            found[match] = Solution(point=old.point,
                                    residual=min(old.residual, result.residual),
                                    multiplicity=old.multiplicity + 1)
    return found


# ----------------------------------------------------------------------
# tracking one rung of the ladder
# ----------------------------------------------------------------------
def _has_backend(context: NumericContext) -> bool:
    try:
        backend_for_context(context)
    except ConfigurationError:
        return False
    return True


def _track_paths(start_system: PolynomialSystem, system: PolynomialSystem,
                 starts: Sequence[Sequence], context: NumericContext,
                 evaluators: Optional[Tuple[object, object]],
                 exposed: Optional[Tuple[PolynomialSystem, PolynomialSystem]],
                 options: Optional[TrackerOptions], gamma: Optional[complex],
                 batch_size: Optional[int],
                 resume_from: Optional[Sequence] = None,
                 skip_certified_endgame: bool = False
                 ) -> Tuple[List[PathResult], Optional[List], int]:
    """Track ``starts`` in one arithmetic, batched when possible.

    The batched engine needs the polynomial systems themselves (it builds
    structure-of-arrays evaluators); it is used when the factory's
    evaluators exposed them (``exposed``, probed once by the caller) and the
    context has a registered batch backend.  Otherwise the scalar
    predictor-corrector loop runs path by path -- with the factory's
    probe-time ``evaluators`` when given, else with fresh CPU reference
    evaluators in this rung's arithmetic.

    Returns ``(results, checkpoints, endgame_skips)``: the per-path
    outcomes plus, on the batched route, one
    :class:`~repro.tracking.batch_tracker.LaneCheckpoint` per path (the
    state a wider rung can warm-restart from) and the number of resumed
    lanes whose endgame re-entry was skipped by the residual-aware policy.
    The scalar route returns ``checkpoints=None`` -- its failures can only
    be restarted cold.  ``resume_from`` (checkpoints aligned with
    ``starts``) makes the batched route continue each path mid-track
    instead of from ``t = 0``.

    Raises
    ------
    ConfigurationError
        When ``resume_from`` (or ``skip_certified_endgame``, which only
        means anything on a resumed batch) is passed but the scalar
        fallback route is taken: the scalar tracker cannot honour
        checkpoints, and silently re-tracking cold would misreport a warm
        restart as having happened.  Callers that can tolerate the
        degradation decide it *explicitly* -- :func:`solve_system` probes
        :func:`batched_route_available` first and records the degradation
        in :attr:`SolveReport.degradations` instead of passing
        ``resume_from`` down an unable route.
    """
    if exposed is not None and _has_backend(context):
        from .batch_tracker import BatchTracker  # local import: cycle

        tracker = BatchTracker(exposed[0], exposed[1], context=context,
                               options=options, batch_size=batch_size,
                               gamma=gamma,
                               skip_certified_endgame=skip_certified_endgame)
        if resume_from is not None:
            outcome = tracker.track_batches(resume_from=resume_from)
        else:
            outcome = tracker.track_batches(starts)
        return (outcome.results, outcome.checkpoints(),
                outcome.endgame_reentries_skipped)

    if resume_from is not None or skip_certified_endgame:
        reasons = []
        if exposed is None:
            reasons.append("the evaluator factory hides its polynomial "
                           "systems")
        if not _has_backend(context):
            reasons.append(f"context {context.name!r} has no registered "
                           "batch backend")
        raise ConfigurationError(
            "resume_from/skip_certified_endgame need the batched tracking "
            "route, but the scalar fallback would be taken ("
            + "; ".join(reasons) +
            "); the scalar tracker cannot honour checkpoints, so a warm "
            "restart would silently degrade to a cold re-track -- drop "
            "resume_from or make the batched route available"
        )
    if evaluators is None:
        evaluators = (CPUReferenceEvaluator(start_system, context=context),
                      CPUReferenceEvaluator(system, context=context))
    homotopy = Homotopy(evaluators[0], evaluators[1],
                        gamma=gamma, context=context)
    scalar = PathTracker(homotopy, context=context, options=options)
    return [scalar.track(s) for s in starts], None, 0


def batched_route_available(context: NumericContext,
                            exposed: Optional[Tuple[PolynomialSystem,
                                                    PolynomialSystem]]) -> bool:
    """Whether :func:`_track_paths` would take the batched engine.

    The batched route -- the only one that can produce and honour
    :class:`~repro.tracking.batch_tracker.LaneCheckpoint` state -- needs
    the polynomial systems themselves (``exposed``) and a registered batch
    backend for the context.  The solver and the sharded service probe this
    before deciding to pass ``resume_from``.
    """
    return exposed is not None and _has_backend(context)


def solve_system(system: PolynomialSystem, *,
                 context: NumericContext = DOUBLE,
                 evaluator_factory: Optional[Callable[[PolynomialSystem], object]] = None,
                 options: Optional[TrackerOptions] = None,
                 max_paths: Optional[int] = None,
                 gamma: Optional[complex] = None,
                 deduplication_tolerance: float = 1e-6,
                 seed: Optional[int] = 0,
                 batch_size: Optional[int] = None,
                 escalation: Optional[EscalationPolicy] = None,
                 start: Optional[StartStrategy] = None) -> SolveReport:
    """Find isolated solutions of ``system`` by homotopy continuation.

    Parameters
    ----------
    system:
        The square target system ``f(x) = 0``.
    start:
        The :class:`~repro.tracking.start_systems.StartStrategy` that
        builds the start system and its solutions.  Default
        :class:`~repro.tracking.start_systems.TotalDegreeStart` -- the
        classical Bezout construction, bit-for-bit the historical
        behaviour.  :class:`~repro.tracking.start_systems.DiagonalStart`
        tracks only the diagonal-degree product on targets with dominant
        diagonal terms;
        :class:`~repro.tracking.start_systems.GenericMemberStart` seeds
        from a solved family member (see
        :class:`~repro.tracking.parameter.ParameterFamily`).  The chosen
        strategy is recorded in :attr:`SolveReport.start_strategy`.
    context:
        Working arithmetic for evaluation, linear algebra and tracking.
        Ignored when ``escalation`` is given (the ladder's first rung is the
        starting arithmetic then).
    evaluator_factory:
        Called on the start system and on the target system to produce the
        evaluators used inside the homotopy; defaults to the sequential
        :class:`~repro.core.cpu_reference.CPUReferenceEvaluator`.  When both
        produced evaluators expose their underlying polynomial system (the
        CPU reference and GPU evaluators both do) the paths are tracked by
        the batched structure-of-arrays engine; otherwise each path runs
        through the scalar tracker driven by the factory's evaluators.  With
        ``escalation``, a custom factory is only consulted for those exposed
        systems -- the per-rung arithmetic is applied by the batched engine;
        a factory that hides its systems is rejected when the ladder has
        more than one rung (its evaluators are stuck in one arithmetic).
    options:
        Tracker options; sensible defaults otherwise.
    max_paths:
        Track only a random sample of this many start solutions (the Bezout
        number grows fast); ``None`` tracks every path.
    gamma:
        The homotopy's accessibility constant; random-but-fixed by default.
    deduplication_tolerance:
        Relative tolerance under which two path end points count as the same
        solution.
    seed:
        Seed for the start-solution sampling when ``max_paths`` is given.
    batch_size:
        Maximum lanes per batch for the batched engine; ``None`` tracks all
        paths in one batch.
    escalation:
        Optional :class:`EscalationPolicy`.  Paths that fail at one rung of
        the ladder are re-tracked at the next wider arithmetic -- by default
        *warm-restarted* from their last accepted ``(x, t)`` checkpoint
        rather than from ``t = 0`` (see the policy's ``warm_restart`` flag).
        The report's ``paths_by_context`` / ``converged_by_context`` /
        ``recovered_by_escalation`` fields record the outcome per rung, and
        ``resumed_by_context`` / ``restarted_by_context`` /
        ``resume_t_by_context`` record how much cheap-rung progress each
        wider rung reused.

    Returns
    -------
    SolveReport
        Distinct solutions with residuals and multiplicities, plus failures
        and the per-arithmetic path accounting.
    """
    strategy = start if start is not None else TotalDegreeStart()
    plan = strategy.prepare(system)
    start_system = plan.start_system
    bezout = total_degree(system)

    if max_paths is not None and max_paths < plan.path_count:
        starts = plan.sample_solutions(max_paths, seed=seed)
    else:
        starts = list(plan.solutions())

    ladder = list(escalation.ladder) if escalation is not None else [context]

    # Probe the factory once: the exposed systems are rung-independent, so
    # there is no point rebuilding (possibly expensive) evaluators per rung
    # just to read their ``system`` attribute.
    probe_evaluators: Optional[Tuple[object, object]] = None
    exposed: Optional[Tuple[PolynomialSystem, PolynomialSystem]] = None
    if evaluator_factory is not None:
        probe_evaluators = (evaluator_factory(start_system),
                            evaluator_factory(system))
        exposed_start = getattr(probe_evaluators[0], "system", None)
        exposed_target = getattr(probe_evaluators[1], "system", None)
        if exposed_start is not None and exposed_target is not None:
            exposed = (exposed_start, exposed_target)
        elif len(ladder) > 1:
            # The opaque evaluators were built in one fixed arithmetic; the
            # wider rungs could not actually widen the precision, so the
            # escalated report would be a lie.  Refuse instead.
            raise ConfigurationError(
                "precision escalation needs evaluators that expose their "
                "polynomial system (so each rung can rebuild them in its "
                "arithmetic); the supplied evaluator_factory hides it -- "
                "drop the escalation policy or expose a `system` attribute"
            )
    else:
        exposed = (start_system, system)

    degradations: List[str] = []
    warm = escalation is not None and escalation.warm_restart

    # The factory's evaluators are built in one fixed arithmetic, so the
    # scalar fallback may only reuse them when there is a single rung; a
    # multi-rung fallback rebuilds CPU reference evaluators per rung.
    fallback_evaluators = probe_evaluators if len(ladder) == 1 else None

    def run_rung(level: int, rung: NumericContext,
                 pending: List[Tuple[int, Sequence]],
                 checkpoints_by_index: Dict[int, object]) -> RungOutcome:
        # Warm-restart the residue from its checkpoints when the rung can
        # take the batched route AND every pending path has a checkpoint
        # (a scalar-fallback rung leaves none).  When either leg fails the
        # rung degrades to a cold re-track -- recorded in the report, never
        # silent, and resume_from is withheld so _track_paths cannot be
        # asked for something its route would ignore.
        resume = None
        if warm and level > 0:
            have_all = all(index in checkpoints_by_index
                           for index, _ in pending)
            if not batched_route_available(rung, exposed):
                degradations.append(
                    f"{rung.name}: warm restart degraded to a cold re-track "
                    f"of {len(pending)} path(s) -- the scalar fallback route "
                    f"cannot honour checkpoints")
            elif not have_all:
                degradations.append(
                    f"{rung.name}: warm restart degraded to a cold re-track "
                    f"of {len(pending)} path(s) -- a previous scalar-fallback "
                    f"rung left no checkpoints to resume from")
            else:
                resume = [checkpoints_by_index[index] for index, _ in pending]
        results, checkpoints, endgame_skips = _track_paths(
            start_system, system, [s for _, s in pending], rung,
            fallback_evaluators, exposed, options, gamma, batch_size,
            resume_from=resume,
            skip_certified_endgame=(resume is not None
                                    and escalation.residual_aware))
        # resume is only ever passed down the batched route (which always
        # returns checkpoints), so the resumed accounting follows the route
        # actually taken.
        resumed_mid_ts = None
        if resume is not None and checkpoints is not None:
            resumed_mid_ts = [cp.t for cp in resume if cp.resumes_mid_path]
        return RungOutcome(results=results, checkpoints=checkpoints,
                           endgame_skips=endgame_skips,
                           resumed_mid_ts=resumed_mid_ts)

    state = run_escalation_ladder(ladder, starts, run_rung)

    converged = state.converged_results()
    failures = state.failed_results()

    final_context = ladder[-1] if escalation is not None else context
    solutions = _deduplicate(converged, final_context, deduplication_tolerance)
    return SolveReport(
        system=system,
        bezout_number=bezout,
        paths_tracked=len(starts),
        paths_converged=len(converged),
        solutions=solutions,
        failures=failures,
        paths_by_context=state.paths_by_context,
        converged_by_context=state.converged_by_context,
        recovered_by_escalation=state.recovered,
        resumed_by_context=state.resumed_by_context,
        restarted_by_context=state.restarted_by_context,
        resume_t_by_context=state.resume_t_by_context,
        endgame_skips_by_context=state.endgame_skips_by_context,
        degradations=degradations,
        start_strategy=plan.strategy,
    )
