"""Blackbox solver: find all isolated solutions of a square polynomial system.

This is the top of the application stack the paper's introduction describes:
homotopy continuation methods "have led to efficient numerical solvers of
polynomial systems" and the evaluation/differentiation kernels are the
computational engine inside them.  :func:`solve_system` wires the pieces of
:mod:`repro.tracking` together the way PHCpack-style blackbox solvers do:

1. build the total-degree start system and its known solutions;
2. construct the gamma-trick homotopy from the start system to the target;
3. track every path (optionally only a sample of them) with the adaptive
   predictor-corrector tracker;
4. sharpen the end points with Newton's method and de-duplicate the results.

Any evaluator factory can be supplied, so the paths can be driven by the
sequential CPU reference (default) or by the simulated-GPU pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.cpu_reference import CPUReferenceEvaluator
from ..multiprec.numeric import DOUBLE, NumericContext
from ..polynomials.system import PolynomialSystem
from .homotopy import Homotopy
from .start_systems import sample_start_solutions, start_solutions, total_degree, total_degree_start_system
from .tracker import PathResult, PathTracker, TrackerOptions

__all__ = ["Solution", "SolveReport", "solve_system"]


@dataclass(frozen=True)
class Solution:
    """One isolated solution found by the solver."""

    point: tuple
    residual: float
    multiplicity: int = 1

    def as_complex(self, context: NumericContext = DOUBLE) -> List[complex]:
        return [context.to_complex(x) if not isinstance(x, (int, float, complex))
                else complex(x) for x in self.point]


@dataclass
class SolveReport:
    """Everything :func:`solve_system` found out about a system."""

    system: PolynomialSystem
    bezout_number: int
    paths_tracked: int
    paths_converged: int
    solutions: List[Solution] = field(default_factory=list)
    failures: List[PathResult] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if self.paths_tracked == 0:
            return 0.0
        return self.paths_converged / self.paths_tracked

    def distinct_solutions(self) -> List[Solution]:
        return list(self.solutions)


def _deduplicate(solutions: Sequence[PathResult], context: NumericContext,
                 tolerance: float) -> List[Solution]:
    """Cluster path end points that agree to ``tolerance`` in every coordinate."""
    found: List[Solution] = []
    rounded: List[List[complex]] = []
    for result in solutions:
        point = [context.to_complex(x) if not isinstance(x, (int, float, complex))
                 else complex(x) for x in result.solution]
        match = None
        for index, existing in enumerate(rounded):
            if all(abs(a - b) <= tolerance * max(1.0, abs(b)) for a, b in zip(point, existing)):
                match = index
                break
        if match is None:
            rounded.append(point)
            found.append(Solution(point=tuple(result.solution), residual=result.residual))
        else:
            old = found[match]
            found[match] = Solution(point=old.point,
                                    residual=min(old.residual, result.residual),
                                    multiplicity=old.multiplicity + 1)
    return found


def solve_system(system: PolynomialSystem, *,
                 context: NumericContext = DOUBLE,
                 evaluator_factory: Optional[Callable[[PolynomialSystem], object]] = None,
                 options: Optional[TrackerOptions] = None,
                 max_paths: Optional[int] = None,
                 gamma: Optional[complex] = None,
                 deduplication_tolerance: float = 1e-6,
                 seed: Optional[int] = 0) -> SolveReport:
    """Find isolated solutions of ``system`` by total-degree homotopy continuation.

    Parameters
    ----------
    system:
        The square target system ``f(x) = 0``.
    context:
        Working arithmetic for evaluation, linear algebra and tracking.
    evaluator_factory:
        Called on the start system and on the target system to produce the
        evaluators used inside the homotopy; defaults to the sequential
        :class:`~repro.core.cpu_reference.CPUReferenceEvaluator`.  Pass
        ``lambda s: GPUEvaluator(s, ...)`` to drive the paths with the
        simulated device (the target system must then be regular).
    options:
        Tracker options; sensible defaults otherwise.
    max_paths:
        Track only a random sample of this many start solutions (the Bezout
        number grows fast); ``None`` tracks every path.
    gamma:
        The homotopy's accessibility constant; random-but-fixed by default.
    deduplication_tolerance:
        Relative tolerance under which two path end points count as the same
        solution.
    seed:
        Seed for the start-solution sampling when ``max_paths`` is given.

    Returns
    -------
    SolveReport
        Distinct solutions with residuals and multiplicities, plus failures.
    """
    if evaluator_factory is None:
        evaluator_factory = lambda s: CPUReferenceEvaluator(s, context=context)

    start_system = total_degree_start_system(system)
    bezout = total_degree(system)

    if max_paths is not None and max_paths < bezout:
        starts = sample_start_solutions(system, max_paths, seed=seed)
    else:
        starts = list(start_solutions(system))

    homotopy = Homotopy(evaluator_factory(start_system), evaluator_factory(system),
                        gamma=gamma, context=context)
    tracker = PathTracker(homotopy, context=context, options=options)

    converged: List[PathResult] = []
    failures: List[PathResult] = []
    for start in starts:
        result = tracker.track(start)
        if result.success:
            converged.append(result)
        else:
            failures.append(result)

    solutions = _deduplicate(converged, context, deduplication_tolerance)
    return SolveReport(
        system=system,
        bezout_number=bezout,
        paths_tracked=len(starts),
        paths_converged=len(converged),
        solutions=solutions,
        failures=failures,
    )
