"""Parameter homotopy over a coefficient family: solve once, serve many.

Systems that differ only in coefficients -- one calibration run per sensor,
one tuning of a model per data set -- share their monomial support and
(generically) their finite root count.  Solving each one from a fresh
total-degree start re-tracks the full Bezout bound every time; the
parameter homotopy of the source paper instead solves **one generic
member** of the family cold, then deforms that member's coefficients into
each subsequent target, tracking only ``#roots(member)`` short paths.

:class:`ParameterFamily` packages that protocol around
:func:`~repro.tracking.solver.solve_system`:

* the first :meth:`solve` call runs cold (default start strategy) and
  adopts the target as the family's generic member;
* every later call is served warm through a
  :class:`~repro.tracking.start_systems.GenericMemberStart` seeded from
  the member's solutions;
* the member's compiled homotopy artifacts are reused across queries by
  the structural compile cache in :mod:`repro.core.evalplan` (the member
  system is the start half of every warm plan's cache key).

The family is safe to share between the solve-service worker threads:
adoption is serialised under a lock, warm serves run concurrently.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from ..polynomials.system import PolynomialSystem
from .solver import SolveReport, solve_system
from .start_systems import GenericMemberStart

__all__ = ["ParameterFamily"]


def _support_rows(system: PolynomialSystem):
    """Per-row monomial support, coefficient-blind: the family signature."""
    return [frozenset((m.positions, m.exponents) for _, m in poly.terms)
            for poly in system]


class ParameterFamily:
    """Serve a coefficient family of systems from one generic member.

    Parameters
    ----------
    name:
        Label for logs and service routing.
    solver:
        The solve callable, ``solver(system, **kwargs) -> SolveReport``;
        :func:`~repro.tracking.solver.solve_system` by default.  Warm
        serves pass ``start=`` to it, so any solver taking the solver's
        keyword surface works (the sharded service's does).
    **defaults:
        Keyword arguments merged under every solve's overrides -- e.g. a
        shared ``escalation=`` or ``deduplication_tolerance=``.
    """

    def __init__(self, name: str = "family",
                 solver: Optional[Callable[..., SolveReport]] = None,
                 **defaults):
        self.name = name
        self._solver = solver if solver is not None else solve_system
        self._defaults = dict(defaults)
        self._lock = threading.Lock()
        self._member_report: Optional[SolveReport] = None
        self._member_start: Optional[GenericMemberStart] = None
        self._member_support = None
        self._cold_solves = 0
        self._warm_serves = 0

    # -- observability ---------------------------------------------------
    @property
    def member(self) -> Optional[SolveReport]:
        """The adopted generic member's report; ``None`` before first solve."""
        with self._lock:
            return self._member_report

    def stats(self) -> Dict[str, int]:
        """``{"cold_solves": ..., "warm_serves": ...}`` so far."""
        with self._lock:
            return {"cold_solves": self._cold_solves,
                    "warm_serves": self._warm_serves}

    # -- the serving protocol --------------------------------------------
    def _check_member_covers(self, target: PolynomialSystem) -> None:
        """A warm serve is only sound when the member is generic for the
        target: same dimension, and every target monomial already present
        in the member (a member blind to a target term is not a generic
        family point -- its root count may undercount the target's)."""
        member = self._member_report.system
        if target.dimension != member.dimension:
            raise ConfigurationError(
                f"family {self.name!r} has dimension {member.dimension}, "
                f"target has {target.dimension}")
        for row, (member_row, target_row) in enumerate(
                zip(self._member_support, _support_rows(target))):
            extra = target_row - member_row
            if extra:
                raise ConfigurationError(
                    f"target row {row} carries {len(extra)} monomial(s) "
                    f"absent from family {self.name!r}'s generic member; "
                    "solve it cold (it is outside this coefficient family)")

    def solve(self, target: PolynomialSystem, **overrides) -> SolveReport:
        """Solve ``target``: cold on first call, member-seeded after.

        The first call runs the injected solver with its default start
        strategy and adopts the target as the generic member (only if it
        produced at least one solution -- a rootless cold solve is not a
        usable seed, and the next call retries cold).  Later calls check
        the target against the member's support and serve it through a
        :class:`~repro.tracking.start_systems.GenericMemberStart`.
        """
        kwargs = {**self._defaults, **overrides}
        with self._lock:
            if self._member_report is None:
                report = self._solver(target, **kwargs)
                self._cold_solves += 1
                if report.solutions:
                    self._member_report = report
                    self._member_start = GenericMemberStart.from_report(report)
                    self._member_support = _support_rows(report.system)
                return report
            start = self._member_start
        self._check_member_covers(target)
        report = self._solver(target, start=start, **kwargs)
        with self._lock:
            self._warm_serves += 1
        return report
