"""Total-degree start systems for polynomial homotopies.

Homotopy continuation deforms an easy *start system* ``g(x) = 0`` whose
solutions are known into the *target system* ``f(x) = 0``.  The classical
choice is the total-degree start system

.. math::  g_i(x) = x_i^{d_i} - 1, \\qquad d_i = \\deg f_i,

whose solutions are all combinations of the ``d_i``-th roots of unity.  This
module builds that system in the sparse representation used everywhere else
and enumerates (or samples) its solutions, which seed the path tracker in the
examples and the Newton/tracking benchmarks.
"""

from __future__ import annotations

import cmath
import itertools
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..polynomials.monomial import Monomial
from ..polynomials.polynomial import Polynomial
from ..polynomials.system import PolynomialSystem

__all__ = [
    "total_degree_start_system",
    "start_solutions",
    "sample_start_solutions",
    "total_degree",
]


def total_degree(system: PolynomialSystem) -> int:
    """The Bezout number: product of the degrees of the polynomials."""
    product = 1
    for poly in system:
        product *= max(poly.total_degree, 1)
    return product


def total_degree_start_system(system: PolynomialSystem) -> PolynomialSystem:
    """The start system ``x_i^{d_i} - 1 = 0`` matching the target's degrees."""
    n = system.dimension
    polys: List[Polynomial] = []
    for i, poly in enumerate(system):
        degree = max(poly.total_degree, 1)
        lead = Monomial((i,), (degree,))
        constant = Monomial((), ())
        polys.append(Polynomial([(1 + 0j, lead), (-1 + 0j, constant)]))
    return PolynomialSystem(polys, dimension=n)


def start_solutions(system: PolynomialSystem) -> Iterator[List[complex]]:
    """Enumerate all solutions of the total-degree start system.

    There are ``prod d_i`` of them; each is a vector of roots of unity.  For
    large systems use :func:`sample_start_solutions` instead.
    """
    degrees = [max(poly.total_degree, 1) for poly in system]
    roots_per_variable = [
        [cmath.exp(2j * cmath.pi * j / d) for j in range(d)] for d in degrees
    ]
    for combination in itertools.product(*roots_per_variable):
        yield list(combination)


def sample_start_solutions(system: PolynomialSystem, count: int,
                           seed: Optional[int] = None) -> List[List[complex]]:
    """Draw ``count`` distinct start solutions without enumerating all of them."""
    if count < 1:
        raise ConfigurationError("count must be at least 1")
    degrees = [max(poly.total_degree, 1) for poly in system]
    bezout = 1
    for d in degrees:
        bezout *= d
    count = min(count, bezout)
    rng = np.random.default_rng(seed)

    chosen = set()
    solutions: List[List[complex]] = []
    while len(solutions) < count:
        indices = tuple(int(rng.integers(0, d)) for d in degrees)
        if indices in chosen:
            continue
        chosen.add(indices)
        solutions.append([
            cmath.exp(2j * cmath.pi * j / d) for j, d in zip(indices, degrees)
        ])
    return solutions
