"""Start-system strategies for polynomial homotopies.

Homotopy continuation deforms an easy *start system* ``g(x) = 0`` whose
solutions are known into the *target system* ``f(x) = 0``.  The classical
choice is the total-degree start system

.. math::  g_i(x) = x_i^{d_i} - 1, \\qquad d_i = \\deg f_i,

whose solutions are all combinations of the ``d_i``-th roots of unity.
Since the paper's cost model is "work = paths tracked x cost per path",
the start system *is* the path-count knob, so the solve pipeline accepts a
pluggable :class:`StartStrategy`:

* :class:`TotalDegreeStart` -- the Bezout bound, bit-for-bit the classical
  construction this module has always built (and the default everywhere);
* :class:`DiagonalStart` -- random binomial rows ``c_i x_i^{e_i} - b_i``
  matched to the target's diagonal structure; on triangular-dominated
  targets the path count ``prod e_i`` undershoots the Bezout product;
* :class:`GenericMemberStart` -- seed from a previously solved member of
  the same coefficient family (the parameter-homotopy serving mode of
  :mod:`repro.tracking.parameter`).

A strategy's :meth:`~StartStrategy.prepare` returns a :class:`StartPlan`
carrying the start system, the declared path count, and the solution
enumerator/sampler the solver draws from.  The original module-level
functions remain for the total-degree case and the benchmarks built on it.
"""

from __future__ import annotations

import cmath
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..polynomials.monomial import Monomial
from ..polynomials.polynomial import Polynomial
from ..polynomials.system import PolynomialSystem

__all__ = [
    "DiagonalStart",
    "GenericMemberStart",
    "StartPlan",
    "StartStrategy",
    "TotalDegreeStart",
    "total_degree_start_system",
    "start_solutions",
    "sample_start_solutions",
    "total_degree",
]

#: Bezout numbers up to this bound are drawn without replacement via
#: mixed-radix index decoding; beyond it the sampler falls back to
#: rejection (whose expected re-roll count is harmless when the requested
#: ``count`` is a vanishing fraction of the index space).
_ENUMERABLE_LIMIT = 1 << 20


def total_degree(system: PolynomialSystem) -> int:
    """The Bezout number: product of the degrees of the polynomials."""
    product = 1
    for poly in system:
        product *= max(poly.total_degree, 1)
    return product


def total_degree_start_system(system: PolynomialSystem) -> PolynomialSystem:
    """The start system ``x_i^{d_i} - 1 = 0`` matching the target's degrees."""
    n = system.dimension
    polys: List[Polynomial] = []
    for i, poly in enumerate(system):
        degree = max(poly.total_degree, 1)
        lead = Monomial((i,), (degree,))
        constant = Monomial((), ())
        polys.append(Polynomial([(1 + 0j, lead), (-1 + 0j, constant)]))
    return PolynomialSystem(polys, dimension=n)


def start_solutions(system: PolynomialSystem) -> Iterator[List[complex]]:
    """Enumerate all solutions of the total-degree start system.

    There are ``prod d_i`` of them; each is a vector of roots of unity.  For
    large systems use :func:`sample_start_solutions` instead.
    """
    degrees = [max(poly.total_degree, 1) for poly in system]
    roots_per_variable = [
        [cmath.exp(2j * cmath.pi * j / d) for j in range(d)] for d in degrees
    ]
    for combination in itertools.product(*roots_per_variable):
        yield list(combination)


def _mixed_radix(index: int, degrees: Sequence[int]) -> tuple:
    """Decode a flat index into per-variable digits (last digit fastest)."""
    digits = []
    for d in reversed(degrees):
        digits.append(index % d)
        index //= d
    return tuple(reversed(digits))


def _sample_indices(degrees: Sequence[int], bezout: int, count: int,
                    rng: np.random.Generator) -> List[tuple]:
    """``count`` distinct mixed-radix index tuples over ``degrees``.

    Small index spaces are drawn without replacement in one shot -- the
    rejection loop degenerates as ``count`` approaches the Bezout number
    (a near-full draw re-rolls already-chosen tuples almost every try, and
    ``count == bezout`` needs a coupon-collector ``O(B log B)`` rolls).
    Only the huge case, where enumeration is off the table and collisions
    are vanishingly rare, keeps rejection sampling.
    """
    if bezout <= _ENUMERABLE_LIMIT:
        picks = rng.choice(bezout, size=count, replace=False)
        return [_mixed_radix(int(p), degrees) for p in picks]
    chosen = set()
    indices: List[tuple] = []
    while len(indices) < count:
        candidate = tuple(int(rng.integers(0, d)) for d in degrees)
        if candidate in chosen:
            continue
        chosen.add(candidate)
        indices.append(candidate)
    return indices


def sample_start_solutions(system: PolynomialSystem, count: int,
                           seed: Optional[int] = None) -> List[List[complex]]:
    """Draw ``count`` distinct start solutions without enumerating all of them."""
    if count < 1:
        raise ConfigurationError("count must be at least 1")
    degrees = [max(poly.total_degree, 1) for poly in system]
    bezout = 1
    for d in degrees:
        bezout *= d
    count = min(count, bezout)
    rng = np.random.default_rng(seed)
    return [
        [cmath.exp(2j * cmath.pi * j / d) for j, d in zip(indices, degrees)]
        for indices in _sample_indices(degrees, bezout, count, rng)
    ]


@dataclass(frozen=True)
class StartPlan:
    """A prepared start configuration for one target system.

    What a :class:`StartStrategy` hands the solver: the start system ``g``,
    the number of paths the homotopy will track, and callables producing
    the start solutions (all of them, or a seeded distinct sample).
    """

    strategy: str
    start_system: PolynomialSystem
    path_count: int
    enumerator: Callable[[], Iterator[List[complex]]] = field(repr=False)
    sampler: Callable[[int, Optional[int]], List[List[complex]]] = \
        field(repr=False)

    def solutions(self) -> Iterator[List[complex]]:
        """Iterate over every start solution (``path_count`` of them)."""
        return self.enumerator()

    def sample_solutions(self, count: int,
                         seed: Optional[int] = None) -> List[List[complex]]:
        """``min(count, path_count)`` distinct start solutions."""
        if count < 1:
            raise ConfigurationError("count must be at least 1")
        return self.sampler(count, seed)


class StartStrategy:
    """Protocol for pluggable start systems.

    A strategy inspects the target and returns a :class:`StartPlan`; it
    must raise :class:`~repro.errors.ConfigurationError` when the target's
    structure does not support it (the solver does not second-guess a
    prepared plan).  ``name`` is recorded in the
    :class:`~repro.tracking.solver.SolveReport` so serving logs show which
    start produced a result.
    """

    name: str = "abstract"

    def prepare(self, target: PolynomialSystem) -> StartPlan:
        raise NotImplementedError


class TotalDegreeStart(StartStrategy):
    """The classical Bezout start ``x_i^{d_i} - 1`` (the default).

    Reproduces :func:`total_degree_start_system` / :func:`start_solutions`
    exactly -- same construction, same enumeration order -- so a solve
    without ``start=`` is bit-for-bit the historical pipeline.
    """

    name = "total-degree"

    def prepare(self, target: PolynomialSystem) -> StartPlan:
        return StartPlan(
            strategy=self.name,
            start_system=total_degree_start_system(target),
            path_count=total_degree(target),
            enumerator=lambda: start_solutions(target),
            sampler=lambda count, seed=None:
                sample_start_solutions(target, count, seed),
        )


def _roots_of(value: complex, degree: int) -> List[complex]:
    """All ``degree``-th roots of ``value`` (principal root times unity)."""
    base = value ** (1.0 / degree) if degree > 1 else value
    return [base * cmath.exp(2j * cmath.pi * k / degree)
            for k in range(degree)]


def _binomial_start_plan(name: str, degrees: Sequence[int],
                         lead_coefficients: Sequence[complex],
                         constants: Sequence[complex],
                         dimension: int) -> StartPlan:
    """A :class:`StartPlan` for the binomial rows ``c_i x_i^{e_i} - b_i``."""
    polys = []
    for i, (e, c, b) in enumerate(zip(degrees, lead_coefficients, constants)):
        polys.append(Polynomial([(c, Monomial((i,), (e,))),
                                 (-b, Monomial((), ()))]))
    start_system = PolynomialSystem(polys, dimension=dimension)
    roots_per_variable = [
        _roots_of(b / c, e)
        for e, c, b in zip(degrees, lead_coefficients, constants)
    ]
    path_count = 1
    for e in degrees:
        path_count *= e

    def enumerate_solutions() -> Iterator[List[complex]]:
        for combination in itertools.product(*roots_per_variable):
            yield list(combination)

    def sample(count: int, seed: Optional[int] = None) -> List[List[complex]]:
        count = min(count, path_count)
        rng = np.random.default_rng(seed)
        return [
            [roots[j] for j, roots in zip(indices, roots_per_variable)]
            for indices in _sample_indices(degrees, path_count, count, rng)
        ]

    return StartPlan(strategy=name, start_system=start_system,
                     path_count=path_count, enumerator=enumerate_solutions,
                     sampler=sample)


def _diagonal_degrees(target: PolynomialSystem) -> List[int]:
    """The per-row diagonal degrees ``e_i``, or raise when unsound.

    Row ``i`` must contain the pure monomial ``x_i^{e_i}`` with ``e_i``
    the row's maximal ``x_i``-degree (so the binomial homotopy keeps a
    non-vanishing ``x_i^{e_i}`` leading coefficient for every ``t``), and
    the rows must *jointly* guarantee that no finite root escapes the
    ``prod e_i`` count.  Two shapes do:

    * **dense-dominated** -- in every row the diagonal term is the unique
      monomial of top total degree (then ``e_i = deg f_i``, the top-degree
      part of the homotopy only vanishes at the origin, and the count is
      exactly the Bezout product); or
    * **triangular-dominated** -- every row ``i`` only involves variables
      ``x_0 .. x_i`` (then back-substitution makes each row a univariate
      of degree exactly ``e_i`` at every ``t``, for ``prod e_i`` finite
      solutions along the whole homotopy, *below* the Bezout product when
      cross terms in earlier variables carry higher degree).

    Mixing the two row shapes is rejected: a dense row referencing later
    variables breaks the back-substitution argument, and then paths can
    enter from infinity at ``t > 0`` and finite roots may be missed.
    """
    degrees: List[int] = []
    dense = True
    triangular = True
    for i, poly in enumerate(target):
        pure_exponent = 0
        others_x_i = 0
        others_top = 0
        for _, mono in poly.terms:
            if mono.positions == (i,):
                pure_exponent = max(pure_exponent, mono.exponents[0])
                continue
            for position, exponent in zip(mono.positions, mono.exponents):
                if position == i:
                    others_x_i = max(others_x_i, exponent)
                if position > i:
                    triangular = False
            others_top = max(others_top, mono.total_degree)
        if pure_exponent < 1 or pure_exponent <= others_x_i:
            raise ConfigurationError(
                f"diagonal start needs row {i} to carry a pure monomial "
                f"x_{i}^e strictly dominating the row's x_{i}-degree; got "
                f"pure degree {pure_exponent} against x_{i}-degree "
                f"{others_x_i} elsewhere in the row")
        if pure_exponent <= others_top:
            dense = False
        degrees.append(pure_exponent)
    if not (dense or triangular):
        raise ConfigurationError(
            "diagonal start is only sound when every row's diagonal term is "
            "its unique top-total-degree monomial, or the system is "
            "triangular (row i only involves x_0 .. x_i); this target is "
            "neither, and a binomial homotopy could miss finite roots")
    return degrees


class DiagonalStart(StartStrategy):
    """Binomial start ``c_i x_i^{e_i} - b_i`` from diagonal leading terms.

    ``e_i`` is the target's diagonal degree (see the soundness contract on
    the structure check) and ``c_i, b_i`` are seeded random unit-modulus
    coefficients, so the start solutions -- scaled roots of unity -- are
    generic.  The path count ``prod e_i`` equals the Bezout product on
    dense-dominated targets (the random-sparse/irregular generators) and
    genuinely undershoots it on triangular-dominated ones (the
    ``triangular_sparse_system`` family), which is the whole point: fewer
    paths, same deduplicated solution set.
    """

    name = "diagonal"

    def __init__(self, seed: int = 17):
        self.seed = seed

    def prepare(self, target: PolynomialSystem) -> StartPlan:
        degrees = _diagonal_degrees(target)
        rng = np.random.default_rng(self.seed)
        angles = rng.uniform(0.0, 2.0 * math.pi, size=2 * target.dimension)
        lead = [cmath.exp(1j * a) for a in angles[:target.dimension]]
        constants = [cmath.exp(1j * a) for a in angles[target.dimension:]]
        return _binomial_start_plan(self.name, degrees, lead, constants,
                                    target.dimension)


class GenericMemberStart(StartStrategy):
    """Seed from the solved generic member of a coefficient family.

    Parameter homotopy: when ``target`` shares its monomial support with a
    previously solved ``member``, the member's solutions are valid start
    points and the path count is the member's *root* count -- usually far
    below the Bezout bound, with short paths on top (the deformation only
    has to move the coefficients, not collapse roots of unity onto the
    variety).  Built either directly from a solution list or from a
    finished report via :meth:`from_report`.
    """

    name = "generic-member"

    def __init__(self, member: PolynomialSystem,
                 solutions: Sequence[Sequence[complex]]):
        if not solutions:
            raise ConfigurationError(
                "a generic-member start needs at least one member solution")
        points = [list(complex(x) for x in point) for point in solutions]
        for point in points:
            if len(point) != member.dimension:
                raise ConfigurationError(
                    f"member solution of length {len(point)} does not match "
                    f"the member system dimension {member.dimension}")
        self.member = member
        self.member_solutions = points

    @classmethod
    def from_report(cls, report) -> "GenericMemberStart":
        """Build from a :class:`~repro.tracking.solver.SolveReport`."""
        return cls(report.system,
                   [list(s.point) for s in report.solutions])

    def prepare(self, target: PolynomialSystem) -> StartPlan:
        if target.dimension != self.member.dimension:
            raise ConfigurationError(
                f"family member has dimension {self.member.dimension}, "
                f"target has {target.dimension}")
        points = self.member_solutions

        def enumerate_solutions() -> Iterator[List[complex]]:
            for point in points:
                yield list(point)

        def sample(count: int, seed: Optional[int] = None) -> List[List[complex]]:
            count = min(count, len(points))
            rng = np.random.default_rng(seed)
            picks = rng.choice(len(points), size=count, replace=False)
            return [list(points[int(p)]) for p in picks]

        return StartPlan(strategy=self.name, start_system=self.member,
                         path_count=len(points),
                         enumerator=enumerate_solutions, sampler=sample)
