"""Multiprecision arithmetic substrate (double-double / quad-double).

This subpackage replaces the QD 2.3.9 library the paper links against.  It
provides:

* :mod:`~repro.multiprec.eft` -- error-free transformations (TwoSum, TwoProd,
  Dekker splitting) shared by everything else;
* :class:`~repro.multiprec.double_double.DoubleDouble` and
  :class:`~repro.multiprec.quad_double.QuadDouble` -- scalar extended
  precision reals;
* :class:`~repro.multiprec.complex_dd.ComplexDD` and
  :class:`~repro.multiprec.numeric.ComplexQD` -- complex variants used by the
  polynomial evaluators;
* :class:`~repro.multiprec.ddarray.DDArray` /
  :class:`~repro.multiprec.ddarray.ComplexDDArray` and
  :class:`~repro.multiprec.qdarray.QDArray` /
  :class:`~repro.multiprec.qdarray.ComplexQDArray` -- vectorised NumPy-backed
  double-double and quad-double arrays for the bulk benchmarks and the
  batched path tracker;
* :class:`~repro.multiprec.numeric.NumericContext` -- the arithmetic
  abstraction that makes the kernels generic over precision and feeds the
  cost model the relative multiplication cost (the paper's "factor of 8").
"""

from .bufferpool import plane_stack, use_fused_kernels
from .complex_dd import ComplexDD, cdd
from .ddarray import ComplexDDArray, DDArray
from .double_double import DoubleDouble, dd
from .eft import quick_two_sum, split, two_diff, two_prod, two_sqr, two_sum
from .numeric import (
    CONTEXTS,
    DOUBLE,
    DOUBLE_DOUBLE,
    QUAD_DOUBLE,
    ComplexQD,
    NumericContext,
    get_context,
)
from .qdarray import ComplexQDArray, QDArray
from .quad_double import QuadDouble, qd

__all__ = [
    "ComplexDD",
    "ComplexDDArray",
    "ComplexQD",
    "ComplexQDArray",
    "CONTEXTS",
    "DDArray",
    "DOUBLE",
    "DOUBLE_DOUBLE",
    "DoubleDouble",
    "NumericContext",
    "QDArray",
    "QUAD_DOUBLE",
    "QuadDouble",
    "cdd",
    "dd",
    "get_context",
    "plane_stack",
    "qd",
    "quick_two_sum",
    "use_fused_kernels",
    "split",
    "two_diff",
    "two_prod",
    "two_sqr",
    "two_sum",
]
