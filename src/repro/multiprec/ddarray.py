"""Vectorised double-double arrays.

The scalar classes in :mod:`repro.multiprec.double_double` are convenient but
slow in pure Python.  For the cost-factor experiments (the paper's "overhead
of double double arithmetic is around 8" observation) and for the multicore
CPU baseline we need bulk double-double arithmetic on NumPy arrays.

:class:`DDArray` stores an array of double-doubles as a pair of ``float64``
arrays ``(hi, lo)`` and implements element-wise arithmetic with exactly the
same operation sequences as the scalar class, so results are bit-for-bit equal
to looping over :class:`~repro.multiprec.double_double.DoubleDouble` scalars.

:class:`ComplexDDArray` pairs two :class:`DDArray` instances as the real and
imaginary parts, mirroring :class:`repro.multiprec.complex_dd.ComplexDD`.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

from ..errors import DivisionByZeroError
from .bufferpool import (
    fused_addsub_enabled,
    fused_kernels_enabled,
    needs_reference_split,
    op_shape,
    plane_stack,
    result_planes,
    zero_plane,
)
from .complex_dd import ComplexDD
from .double_double import DoubleDouble
from .eft import (
    SPLIT_THRESHOLD,
    quick_two_sum,
    quick_two_sum_into,
    split_into,
    two_diff,
    two_diff_into,
    two_prod,
    two_sum,
    two_sum_into,
)

__all__ = ["DDArray", "ComplexDDArray"]


# ----------------------------------------------------------------------
# fused, allocation-light kernels (bit-for-bit with the reference path)
# ----------------------------------------------------------------------
# Same design as the quad-double kernels in repro.multiprec.qdarray: the
# exact floating-point sequences of the operators below, with scratch
# planes drawn from the thread's PlaneStack, ``out=`` threaded through
# every ufunc, and one Dekker split per input plane.  ``out`` may alias
# the input planes -- the final quick_two_sum runs after every read.

def _dd_add_planes_fused(x, y, out=None):
    st = plane_stack()
    shape = op_shape(x, y)
    fb, mark = st.take(shape, 7)
    try:
        t, s1, s2, t1, t2, u, v = fb
        two_sum_into(x[0], y[0], s1, s2, t)
        two_sum_into(x[1], y[1], t1, t2, t)
        np.add(s2, t1, out=s2)
        quick_two_sum_into(s1, s2, u, v)
        np.add(v, t2, out=v)
        hi, lo = out = result_planes(shape, out, 2)
        quick_two_sum_into(u, v, hi, lo)
        return out
    finally:
        st.release(mark)


def _dd_sub_planes_fused(x, y, out=None):
    st = plane_stack()
    shape = op_shape(x, y)
    fb, mark = st.take(shape, 7)
    try:
        t, s1, s2, t1, t2, u, v = fb
        two_diff_into(x[0], y[0], s1, s2, t)
        two_diff_into(x[1], y[1], t1, t2, t)
        np.add(s2, t1, out=s2)
        quick_two_sum_into(s1, s2, u, v)
        np.add(v, t2, out=v)
        hi, lo = out = result_planes(shape, out, 2)
        quick_two_sum_into(u, v, hi, lo)
        return out
    finally:
        st.release(mark)


def _dd_mul_planes_ref(x, y):
    p1, p2 = two_prod(x[0], y[0])
    p2 = p2 + (x[0] * y[1] + x[1] * y[0])
    p1, p2 = quick_two_sum(p1, p2)
    return p1, p2


def _dd_mul_planes_fused(x, y, out=None):
    st = plane_stack()
    shape = op_shape(x, y)
    fb, mark = st.take(shape, 8)
    bb, bmark = st.take(shape, 1, np.bool_)
    try:
        t = fb[0]
        mb = bb[0]
        if (needs_reference_split(x[0], t, mb)
                or needs_reference_split(y[0], t, mb)):
            planes = _dd_mul_planes_ref(x, y)
            if out is None:
                return planes
            np.copyto(out[0], planes[0])
            np.copyto(out[1], planes[1])
            return out

        p1, p2, ah, al, bh, bl, v = fb[1:8]
        np.multiply(x[0], y[0], out=p1)
        split_into(x[0], ah, al, t)
        split_into(y[0], bh, bl, t)
        # two_prod error: ((ah*bh - p) + ah*bl + al*bh) + al*bl
        np.multiply(ah, bh, out=p2)
        np.subtract(p2, p1, out=p2)
        np.multiply(ah, bl, out=t)
        np.add(p2, t, out=p2)
        np.multiply(al, bh, out=t)
        np.add(p2, t, out=p2)
        np.multiply(al, bl, out=t)
        np.add(p2, t, out=p2)
        # p2 += (x.hi * y.lo + x.lo * y.hi)
        np.multiply(x[0], y[1], out=v)
        np.multiply(x[1], y[0], out=t)
        np.add(v, t, out=v)
        np.add(p2, v, out=p2)
        hi, lo = out = result_planes(shape, out, 2)
        quick_two_sum_into(p1, p2, hi, lo)
        return out
    finally:
        st.release(mark)
        st.release(bmark)


def _dd_div_planes_fused(x, y, out=None):
    st = plane_stack()
    shape = op_shape(x, y)
    fb, mark = st.take(shape, 11)
    try:
        q1, q2, q3, s, e = fb[0:5]
        prod = fb[5:7]
        ra = fb[7:9]
        rb = fb[9:11]
        zp = zero_plane(shape)

        np.divide(x[0], y[0], out=q1)
        _dd_mul_planes_fused(y, (q1, zp), out=prod)
        _dd_sub_planes_fused(x, prod, out=ra)
        np.divide(ra[0], y[0], out=q2)
        _dd_mul_planes_fused(y, (q2, zp), out=prod)
        _dd_sub_planes_fused(ra, prod, out=rb)
        np.divide(rb[0], y[0], out=q3)
        quick_two_sum_into(q1, q2, s, e)
        return _dd_add_planes_fused((s, e), (q3, zp), out=out)
    finally:
        st.release(mark)


# ----------------------------------------------------------------------
# into-variants: the operator dispatch (gates included), landed in caller
# planes.  These exist for the plan-arena executor of
# :mod:`repro.core.evalplan`: results go into persistent arena planes
# instead of fresh allocations, with the exact same floating-point
# sequences the ``+ - *`` operators would execute.
# ----------------------------------------------------------------------
def _dd_add_into(x, y, out) -> None:
    """``out := x + y`` on (hi, lo) plane pairs, replaying ``__add__``."""
    if fused_addsub_enabled(max(x[0].size, y[0].size)):
        _dd_add_planes_fused(x, y, out=out)
        return
    s1, s2 = two_sum(x[0], y[0])
    t1, t2 = two_sum(x[1], y[1])
    s2 = s2 + t1
    s1, s2 = quick_two_sum(s1, s2)
    s2 = s2 + t2
    s1, s2 = quick_two_sum(s1, s2)
    np.copyto(out[0], s1)
    np.copyto(out[1], s2)


def _dd_sub_into(x, y, out) -> None:
    """``out := x - y`` on (hi, lo) plane pairs, replaying ``__sub__``."""
    if fused_addsub_enabled(max(x[0].size, y[0].size)):
        _dd_sub_planes_fused(x, y, out=out)
        return
    s1, s2 = two_diff(x[0], y[0])
    t1, t2 = two_diff(x[1], y[1])
    s2 = s2 + t1
    s1, s2 = quick_two_sum(s1, s2)
    s2 = s2 + t2
    s1, s2 = quick_two_sum(s1, s2)
    np.copyto(out[0], s1)
    np.copyto(out[1], s2)


def _dd_mul_into(x, y, out) -> None:
    """``out := x * y`` on (hi, lo) plane pairs, replaying ``__mul__``."""
    if fused_kernels_enabled():
        _dd_mul_planes_fused(x, y, out=out)
        return
    p1, p2 = _dd_mul_planes_ref(x, y)
    np.copyto(out[0], p1)
    np.copyto(out[1], p2)


def complex_dd_raw(real: "DDArray", imag: "DDArray") -> "ComplexDDArray":
    """Wrap two DDArrays without the constructor's shape validation."""
    out = object.__new__(ComplexDDArray)
    out.real = real
    out.imag = imag
    return out


def complex_dd_from_planes(planes) -> "ComplexDDArray":
    """View four planes ``(re_hi, re_lo, im_hi, im_lo)`` as a ComplexDDArray."""
    return complex_dd_raw(_raw(planes[0], planes[1]),
                          _raw(planes[2], planes[3]))


def dd_mul_operand(x: "ComplexDDArray", other) -> "ComplexDDArray":
    """The coerced right operand of ``x * other``, allocation-free for
    Python scalars.

    Bit-for-bit with :meth:`ComplexDDArray._coerce`: a Python scalar there
    becomes ``np.full`` planes renormalised through ``two_sum(v, 0)`` by
    ``DDArray.__init__``; here the same two_sum runs once on 0-d values and
    the results broadcast as read-only views -- every element carries the
    identical bits, and the multiply kernels only read operand planes.
    """
    if isinstance(other, ComplexDDArray):
        return other
    if isinstance(other, (int, float, complex)) and not isinstance(other, bool):
        z = complex(other)
        shape = x.shape
        re_hi, re_lo = two_sum(np.float64(z.real), np.float64(0.0))
        im_hi, im_lo = two_sum(np.float64(z.imag), np.float64(0.0))
        return complex_dd_raw(
            _raw(np.broadcast_to(re_hi, shape), np.broadcast_to(re_lo, shape)),
            _raw(np.broadcast_to(im_hi, shape), np.broadcast_to(im_lo, shape)))
    return x._coerce(other)


def _complex_dd_div_fused(a: "DDArray", b: "DDArray", c: "DDArray",
                          d: "DDArray") -> "ComplexDDArray":
    """``(a + ib) / (c + id)`` with every intermediate in pooled scratch.

    Replays the allocating expression ``((a*c + b*d) / denom,
    (b*c - a*d) / denom)`` kernel for kernel -- same products, same
    additions, same iterated-correction divisions, so the landed bits are
    identical -- without materialising the six intermediate ``DDArray``
    wrappers and their planes.
    """
    st = plane_stack()
    shape = a.hi.shape
    fb, mark = st.take(shape, 8)
    try:
        t1, t2 = fb[0:2], fb[2:4]
        denom, num = fb[4:6], fb[6:8]
        _dd_mul_planes_fused((c.hi, c.lo), (c.hi, c.lo), out=t1)
        _dd_mul_planes_fused((d.hi, d.lo), (d.hi, d.lo), out=t2)
        _dd_add_planes_fused(t1, t2, out=denom)
        # Mirror the scalar ComplexDD check: |z|^2 == 0 means the divisor
        # is an exact zero (or underflowed to one).
        if np.any(denom[0] == 0.0):
            raise DivisionByZeroError(
                f"ComplexDDArray division by zero in "
                f"{int(np.count_nonzero(denom[0] == 0.0))} element(s)"
            )
        _dd_mul_planes_fused((a.hi, a.lo), (c.hi, c.lo), out=t1)
        _dd_mul_planes_fused((b.hi, b.lo), (d.hi, d.lo), out=t2)
        _dd_add_planes_fused(t1, t2, out=num)
        real = _raw(*_dd_div_planes_fused(num, denom))
        _dd_mul_planes_fused((b.hi, b.lo), (c.hi, c.lo), out=t1)
        _dd_mul_planes_fused((a.hi, a.lo), (d.hi, d.lo), out=t2)
        _dd_sub_planes_fused(t1, t2, out=num)
        imag = _raw(*_dd_div_planes_fused(num, denom))
        return ComplexDDArray(real, imag)
    finally:
        st.release(mark)


def complex_dd_mul_into(out: "ComplexDDArray", x: "ComplexDDArray",
                        y: "ComplexDDArray") -> "ComplexDDArray":
    """``out := x * y``, bit-for-bit with ``ComplexDDArray.__mul__``.

    All four real products land in scratch *before* the first write to
    ``out``'s planes, so ``out`` may alias either operand.
    """
    a = (x.real.hi, x.real.lo)
    b = (x.imag.hi, x.imag.lo)
    c = (y.real.hi, y.real.lo)
    d = (y.imag.hi, y.imag.lo)
    st = plane_stack()
    shape = op_shape(a, c)
    fb, mark = st.take(shape, 8)
    try:
        ac = fb[0:2]
        bd = fb[2:4]
        ad = fb[4:6]
        bc = fb[6:8]
        _dd_mul_into(a, c, ac)
        _dd_mul_into(b, d, bd)
        _dd_mul_into(a, d, ad)
        _dd_mul_into(b, c, bc)
        _dd_sub_into(ac, bd, (out.real.hi, out.real.lo))
        _dd_add_into(ad, bc, (out.imag.hi, out.imag.lo))
        return out
    finally:
        st.release(mark)


class DDArray:
    """An n-dimensional array of double-double reals stored as (hi, lo).

    Parameters
    ----------
    hi / lo:
        Component planes (``lo`` defaults to zeros).  The constructor
        renormalises element-wise (one ``two_sum``) so the double-double
        invariant ``|lo| <= ulp(hi)/2`` holds; use the arithmetic results
        directly to stay bit-for-bit with the scalar
        :class:`~repro.multiprec.double_double.DoubleDouble` loops.

    Raises
    ------
    ValueError
        When the two planes disagree in shape.
    """

    __slots__ = ("hi", "lo")

    def __init__(self, hi: np.ndarray, lo: Union[np.ndarray, None] = None):
        hi = np.asarray(hi, dtype=np.float64)
        if lo is None:
            lo = np.zeros_like(hi)
        else:
            lo = np.asarray(lo, dtype=np.float64)
        if hi.shape != lo.shape:
            raise ValueError(f"hi/lo shape mismatch: {hi.shape} vs {lo.shape}")
        # Normalise so the component invariant holds element-wise.
        s, e = two_sum(hi, lo)
        self.hi = s
        self.lo = e

    # ------------------------------------------------------------------
    # constructors / conversions
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, shape) -> "DDArray":
        return cls(np.zeros(shape), np.zeros(shape))

    @classmethod
    def ones(cls, shape) -> "DDArray":
        return cls(np.ones(shape), np.zeros(shape))

    @classmethod
    def from_float64(cls, values: np.ndarray) -> "DDArray":
        """Exact embedding of double-precision values."""
        values = np.asarray(values, dtype=np.float64)
        return cls(values.copy(), np.zeros_like(values))

    @classmethod
    def from_scalars(cls, values: Iterable[DoubleDouble]) -> "DDArray":
        values = list(values)
        hi = np.array([v.hi for v in values])
        lo = np.array([v.lo for v in values])
        return cls(hi, lo)

    def to_scalars(self) -> list:
        """Flatten to a list of :class:`DoubleDouble` scalars."""
        flat_hi = self.hi.ravel()
        flat_lo = self.lo.ravel()
        return [DoubleDouble(h, l) for h, l in zip(flat_hi, flat_lo)]

    def to_float64(self) -> np.ndarray:
        """Round each element to a hardware double."""
        return self.hi.copy()

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.hi.shape

    @property
    def size(self) -> int:
        return self.hi.size

    def __len__(self) -> int:
        return len(self.hi)

    def copy(self) -> "DDArray":
        out = object.__new__(DDArray)
        out.hi = self.hi.copy()
        out.lo = self.lo.copy()
        return out

    def __getitem__(self, idx) -> Union["DDArray", DoubleDouble]:
        hi = self.hi[idx]
        lo = self.lo[idx]
        if np.isscalar(hi) or hi.ndim == 0:
            return DoubleDouble(float(hi), float(lo))
        out = object.__new__(DDArray)
        out.hi = hi
        out.lo = lo
        return out

    def __setitem__(self, idx, value) -> None:
        value = _coerce(value, like=self.hi[idx])
        self.hi[idx] = value.hi
        self.lo[idx] = value.lo

    def __repr__(self) -> str:
        return f"DDArray(shape={self.shape})"

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __neg__(self) -> "DDArray":
        out = object.__new__(DDArray)
        out.hi = -self.hi
        out.lo = -self.lo
        return out

    def __add__(self, other) -> "DDArray":
        o = _coerce(other, like=self.hi)
        # Gate on the larger operand: a broadcast result is at least that big.
        if fused_addsub_enabled(max(self.hi.size, o.hi.size)):
            return _raw(*_dd_add_planes_fused((self.hi, self.lo), (o.hi, o.lo)))
        s1, s2 = two_sum(self.hi, o.hi)
        t1, t2 = two_sum(self.lo, o.lo)
        s2 = s2 + t1
        s1, s2 = quick_two_sum(s1, s2)
        s2 = s2 + t2
        s1, s2 = quick_two_sum(s1, s2)
        return _raw(s1, s2)

    __radd__ = __add__

    def __sub__(self, other) -> "DDArray":
        o = _coerce(other, like=self.hi)
        if fused_addsub_enabled(max(self.hi.size, o.hi.size)):
            return _raw(*_dd_sub_planes_fused((self.hi, self.lo), (o.hi, o.lo)))
        s1, s2 = two_diff(self.hi, o.hi)
        t1, t2 = two_diff(self.lo, o.lo)
        s2 = s2 + t1
        s1, s2 = quick_two_sum(s1, s2)
        s2 = s2 + t2
        s1, s2 = quick_two_sum(s1, s2)
        return _raw(s1, s2)

    def __rsub__(self, other) -> "DDArray":
        o = _coerce(other, like=self.hi)
        return o - self

    def __mul__(self, other) -> "DDArray":
        o = _coerce(other, like=self.hi)
        if fused_kernels_enabled():
            return _raw(*_dd_mul_planes_fused((self.hi, self.lo), (o.hi, o.lo)))
        return _raw(*_dd_mul_planes_ref((self.hi, self.lo), (o.hi, o.lo)))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "DDArray":
        o = _coerce(other, like=self.hi)
        # A normalised double-double is zero exactly when its hi component is
        # zero; dividing would silently fill the lane with inf/NaN.  NaN
        # denominators are *not* trapped: a NaN operand propagates
        # element-wise, poisoning only its own lane.
        if np.any(o.hi == 0.0):
            raise DivisionByZeroError(
                f"DDArray division by zero in "
                f"{int(np.count_nonzero(o.hi == 0.0))} element(s)"
            )
        if fused_kernels_enabled():
            return _raw(*_dd_div_planes_fused((self.hi, self.lo), (o.hi, o.lo)))
        q1 = self.hi / o.hi
        r = self - o * _raw(q1, np.zeros_like(q1))
        q2 = r.hi / o.hi
        r = r - o * _raw(q2, np.zeros_like(q2))
        q3 = r.hi / o.hi
        s, e = quick_two_sum(q1, q2)
        return _raw(s, e) + _raw(q3, np.zeros_like(q3))

    def __rtruediv__(self, other) -> "DDArray":
        o = _coerce(other, like=self.hi)
        return o / self

    def __pow__(self, exponent: int) -> "DDArray":
        if not isinstance(exponent, int) or exponent < 0:
            raise TypeError("DDArray only supports non-negative integer powers")
        result = DDArray.ones(self.shape)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    # ------------------------------------------------------------------
    # in-place updates (see QDArray: bit-for-bit with the operators, with
    # the fused path writing this array's planes directly)
    # ------------------------------------------------------------------
    def _assign_planes(self, planes, mask=None) -> "DDArray":
        np.copyto(self.hi, planes[0], where=True if mask is None else mask)
        np.copyto(self.lo, planes[1], where=True if mask is None else mask)
        return self

    def iadd_(self, other) -> "DDArray":
        """In-place ``self += other`` (bit-for-bit with ``self + other``)."""
        o = _coerce(other, like=self.hi)
        if fused_addsub_enabled(self.hi.size):
            _dd_add_planes_fused((self.hi, self.lo), (o.hi, o.lo),
                                 out=(self.hi, self.lo))
            return self
        result = self + o
        return self._assign_planes((result.hi, result.lo))

    def isub_(self, other) -> "DDArray":
        """In-place ``self -= other`` (bit-for-bit with ``self - other``)."""
        o = _coerce(other, like=self.hi)
        if fused_addsub_enabled(self.hi.size):
            _dd_sub_planes_fused((self.hi, self.lo), (o.hi, o.lo),
                                 out=(self.hi, self.lo))
            return self
        result = self - o
        return self._assign_planes((result.hi, result.lo))

    def iadd_where_(self, other, mask) -> "DDArray":
        """Masked in-place add: ``self = where(mask, self + other, self)``."""
        o = _coerce(other, like=self.hi)
        mask = np.asarray(mask, dtype=bool)
        if fused_addsub_enabled(self.hi.size):
            st = plane_stack()
            buf, mark = st.take(self.hi.shape, 2)
            _dd_add_planes_fused((self.hi, self.lo), (o.hi, o.lo),
                                 out=(buf[0], buf[1]))
            self._assign_planes(buf, mask=mask)
            st.release(mark)
            return self
        result = self + o
        return self._assign_planes((result.hi, result.lo), mask=mask)

    # ------------------------------------------------------------------
    # masked selection (the primitive behind per-path retirement in the
    # batched tracker: lanes are switched on and off without data movement)
    # ------------------------------------------------------------------
    @staticmethod
    def where(mask, a, b) -> "DDArray":
        """Element-wise select: ``a`` where ``mask`` is true, else ``b``.

        ``mask`` broadcasts against the operands (NumPy rules), so a per-lane
        mask of shape ``(B,)`` selects whole columns of ``(n, B)`` arrays.
        Scalars (:class:`DoubleDouble`, floats) broadcast like NumPy scalars.
        """
        mask = np.asarray(mask, dtype=bool)
        a_hi, a_lo = _components(a)
        b_hi, b_lo = _components(b)
        return _raw(np.where(mask, a_hi, b_hi), np.where(mask, a_lo, b_lo))

    def masked_fill(self, mask, value) -> "DDArray":
        """Copy with elements under ``mask`` replaced by ``value``."""
        return DDArray.where(mask, value, self)

    # ------------------------------------------------------------------
    # reductions and element-wise helpers
    # ------------------------------------------------------------------
    def sum(self, axis=None) -> Union["DDArray", DoubleDouble]:
        """Double-double accurate sum along ``axis`` (sequential pairing)."""
        if axis is None:
            total = DoubleDouble(0.0)
            for h, l in zip(self.hi.ravel(), self.lo.ravel()):
                total = total + DoubleDouble(h, l)
            return total
        moved_hi = np.moveaxis(self.hi, axis, 0)
        moved_lo = np.moveaxis(self.lo, axis, 0)
        acc = _raw(np.zeros(moved_hi.shape[1:]), np.zeros(moved_hi.shape[1:]))
        for i in range(moved_hi.shape[0]):
            acc = acc + _raw(moved_hi[i], moved_lo[i])
        return acc

    def abs(self) -> "DDArray":
        negative = (self.hi < 0) | ((self.hi == 0) & (self.lo < 0))
        out = object.__new__(DDArray)
        out.hi = np.where(negative, -self.hi, self.hi)
        out.lo = np.where(negative, -self.lo, self.lo)
        return out

    def abs_double(self) -> np.ndarray:
        """Per-element magnitude rounded to a hardware double."""
        return np.abs(self.hi + self.lo)

    def max_abs(self, axis=None) -> Union[float, np.ndarray]:
        """Largest magnitude, rounded to double (used for norms/tolerances).

        With ``axis`` the reduction runs along that axis and returns a float
        array -- the per-path infinity norms of a batch stored column-wise.
        """
        if axis is None:
            return float(np.max(self.abs_double())) if self.size else 0.0
        return np.max(self.abs_double(), axis=axis, initial=0.0)

    def allclose(self, other: "DDArray", tol: float = 1e-30) -> bool:
        diff = (self - other).abs()
        scale = max(self.max_abs(), other.max_abs(), 1.0)
        return diff.max_abs() <= tol * scale


def _raw(hi: np.ndarray, lo: np.ndarray) -> DDArray:
    out = object.__new__(DDArray)
    out.hi = hi
    out.lo = lo
    return out


def _components(value) -> Tuple[np.ndarray, np.ndarray]:
    """The (hi, lo) pair of anything coercible, without forcing a shape."""
    if isinstance(value, DDArray):
        return value.hi, value.lo
    if isinstance(value, DoubleDouble):
        return np.float64(value.hi), np.float64(value.lo)
    arr = np.asarray(value, dtype=np.float64)
    return arr, np.zeros_like(arr)


def _coerce(value, like) -> DDArray:
    """Coerce scalars/arrays to a DDArray broadcastable against ``like``."""
    if isinstance(value, DDArray):
        return value
    if isinstance(value, DoubleDouble):
        shape = np.shape(like)
        return _raw(np.full(shape, value.hi), np.full(shape, value.lo))
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape == ():
        shape = np.shape(like)
        return _raw(np.full(shape, float(arr)), np.zeros(shape))
    return DDArray.from_float64(arr)


class ComplexDDArray:
    """An array of complex double-doubles: a (real, imag) pair of DDArrays."""

    __slots__ = ("real", "imag")

    def __init__(self, real: DDArray, imag: Union[DDArray, None] = None):
        if not isinstance(real, DDArray):
            real = DDArray.from_float64(np.asarray(real, dtype=np.float64))
        if imag is None:
            imag = DDArray.zeros(real.shape)
        elif not isinstance(imag, DDArray):
            imag = DDArray.from_float64(np.asarray(imag, dtype=np.float64))
        if real.shape != imag.shape:
            raise ValueError("real/imag shape mismatch")
        self.real = real
        self.imag = imag

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, shape) -> "ComplexDDArray":
        return cls(DDArray.zeros(shape), DDArray.zeros(shape))

    @classmethod
    def from_complex128(cls, values: np.ndarray) -> "ComplexDDArray":
        values = np.asarray(values, dtype=np.complex128)
        return cls(DDArray.from_float64(values.real), DDArray.from_float64(values.imag))

    @classmethod
    def from_scalars(cls, values: Iterable[ComplexDD]) -> "ComplexDDArray":
        values = list(values)
        real = DDArray.from_scalars([v.real for v in values])
        imag = DDArray.from_scalars([v.imag for v in values])
        return cls(real, imag)

    def to_scalars(self) -> list:
        reals = self.real.to_scalars()
        imags = self.imag.to_scalars()
        return [ComplexDD(r, i) for r, i in zip(reals, imags)]

    def to_complex128(self) -> np.ndarray:
        return self.real.to_float64() + 1j * self.imag.to_float64()

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.real.shape

    @property
    def size(self) -> int:
        return self.real.size

    def __len__(self) -> int:
        return len(self.real)

    def copy(self) -> "ComplexDDArray":
        return ComplexDDArray(self.real.copy(), self.imag.copy())

    def __getitem__(self, idx):
        r = self.real[idx]
        i = self.imag[idx]
        if isinstance(r, DoubleDouble):
            return ComplexDD(r, i)
        return ComplexDDArray(r, i)

    def __setitem__(self, idx, value) -> None:
        if isinstance(value, ComplexDD):
            self.real[idx] = value.real
            self.imag[idx] = value.imag
            return
        if isinstance(value, ComplexDDArray):
            self.real[idx] = value.real
            self.imag[idx] = value.imag
            return
        z = np.asarray(value, dtype=np.complex128)
        self.real[idx] = DDArray.from_float64(z.real) if z.ndim else DoubleDouble(float(z.real))
        self.imag[idx] = DDArray.from_float64(z.imag) if z.ndim else DoubleDouble(float(z.imag))

    def __repr__(self) -> str:
        return f"ComplexDDArray(shape={self.shape})"

    # ------------------------------------------------------------------
    def _coerce(self, other) -> "ComplexDDArray":
        if isinstance(other, ComplexDDArray):
            return other
        if isinstance(other, ComplexDD):
            shape = self.shape
            real = DDArray(np.full(shape, other.real.hi), np.full(shape, other.real.lo))
            imag = DDArray(np.full(shape, other.imag.hi), np.full(shape, other.imag.lo))
            return ComplexDDArray(real, imag)
        arr = np.asarray(other, dtype=np.complex128)
        if arr.shape == ():
            arr = np.full(self.shape, complex(arr))
        return ComplexDDArray.from_complex128(arr)

    def __neg__(self) -> "ComplexDDArray":
        return ComplexDDArray(-self.real, -self.imag)

    def __add__(self, other) -> "ComplexDDArray":
        o = self._coerce(other)
        return ComplexDDArray(self.real + o.real, self.imag + o.imag)

    __radd__ = __add__

    def __sub__(self, other) -> "ComplexDDArray":
        o = self._coerce(other)
        return ComplexDDArray(self.real - o.real, self.imag - o.imag)

    def __rsub__(self, other) -> "ComplexDDArray":
        o = self._coerce(other)
        return ComplexDDArray(o.real - self.real, o.imag - self.imag)

    def __mul__(self, other) -> "ComplexDDArray":
        o = self._coerce(other)
        a, b, c, d = self.real, self.imag, o.real, o.imag
        return ComplexDDArray(a * c - b * d, a * d + b * c)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "ComplexDDArray":
        o = self._coerce(other)
        a, b, c, d = self.real, self.imag, o.real, o.imag
        if fused_kernels_enabled() and a.hi.shape == c.hi.shape:
            return _complex_dd_div_fused(a, b, c, d)
        denom = c * c + d * d
        # Mirror the scalar ComplexDD check: |z|^2 == 0 means the divisor is
        # an exact zero (or underflowed to one), which would otherwise fill
        # the lane with silent NaN.  NaN divisors propagate instead of
        # raising, exactly as in the element-wise real case.
        if np.any(denom.hi == 0.0):
            raise DivisionByZeroError(
                f"ComplexDDArray division by zero in "
                f"{int(np.count_nonzero(denom.hi == 0.0))} element(s)"
            )
        return ComplexDDArray((a * c + b * d) / denom, (b * c - a * d) / denom)

    def __rtruediv__(self, other) -> "ComplexDDArray":
        return self._coerce(other) / self

    def __pow__(self, exponent: int) -> "ComplexDDArray":
        if not isinstance(exponent, int) or exponent < 0:
            raise TypeError("ComplexDDArray only supports non-negative integer powers")
        result = ComplexDDArray(DDArray.ones(self.shape), DDArray.zeros(self.shape))
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    # ------------------------------------------------------------------
    # in-place updates (see ComplexQDArray; bit-for-bit with the operators)
    # ------------------------------------------------------------------
    def iadd_(self, other) -> "ComplexDDArray":
        """In-place ``self += other``."""
        o = self._coerce(other)
        self.real.iadd_(o.real)
        self.imag.iadd_(o.imag)
        return self

    def isub_(self, other) -> "ComplexDDArray":
        """In-place ``self -= other``."""
        o = self._coerce(other)
        self.real.isub_(o.real)
        self.imag.isub_(o.imag)
        return self

    def isub_mul_(self, factor, value) -> "ComplexDDArray":
        """In-place ``self -= factor * value`` (elimination inner loop)."""
        prod = self._coerce(factor) * value
        return self.isub_(prod)

    def iadd_where_(self, other, mask) -> "ComplexDDArray":
        """Masked in-place add: ``self = where(mask, self + other, self)``."""
        o = self._coerce(other)
        mask = np.asarray(mask, dtype=bool)
        self.real.iadd_where_(o.real, mask)
        self.imag.iadd_where_(o.imag, mask)
        return self

    def sum(self, axis=None):
        """Sum of elements; returns :class:`ComplexDD` when ``axis is None``."""
        r = self.real.sum(axis=axis)
        i = self.imag.sum(axis=axis)
        if isinstance(r, DoubleDouble):
            return ComplexDD(r, i)
        return ComplexDDArray(r, i)

    @staticmethod
    def where(mask, a, b) -> "ComplexDDArray":
        """Element-wise select, broadcasting like :meth:`DDArray.where`."""
        a_re, a_im = _complex_parts(a)
        b_re, b_im = _complex_parts(b)
        return ComplexDDArray(DDArray.where(mask, a_re, b_re),
                              DDArray.where(mask, a_im, b_im))

    def masked_fill(self, mask, value) -> "ComplexDDArray":
        """Copy with elements under ``mask`` replaced by ``value``."""
        return ComplexDDArray.where(mask, value, self)

    def conjugate(self) -> "ComplexDDArray":
        return ComplexDDArray(self.real, -self.imag)

    def abs2(self) -> DDArray:
        return self.real * self.real + self.imag * self.imag

    def abs_double(self) -> np.ndarray:
        """Per-element magnitude rounded to a hardware double."""
        return np.abs(self.to_complex128())

    def max_abs(self, axis=None) -> Union[float, np.ndarray]:
        if axis is None:
            if self.size == 0:
                return 0.0
            return float(np.max(np.sqrt((self.abs2()).to_float64())))
        return np.max(np.sqrt(np.maximum((self.abs2()).to_float64(), 0.0)),
                      axis=axis, initial=0.0)

    def allclose(self, other: "ComplexDDArray", tol: float = 1e-30) -> bool:
        diff = self - other
        scale = max(self.max_abs(), other.max_abs(), 1.0)
        return diff.max_abs() <= tol * scale


def _complex_parts(value) -> Tuple[Union[DDArray, DoubleDouble], Union[DDArray, DoubleDouble]]:
    """Split anything coercible into (real, imag) usable by DDArray.where."""
    if isinstance(value, ComplexDDArray):
        return value.real, value.imag
    if isinstance(value, ComplexDD):
        return value.real, value.imag
    if isinstance(value, DDArray):
        return value, np.zeros_like(value.hi)
    if isinstance(value, DoubleDouble):
        return value, 0.0
    arr = np.asarray(value, dtype=np.complex128)
    return arr.real, arr.imag
