"""Scalar double-double arithmetic.

A :class:`DoubleDouble` represents a real number as an unevaluated sum of two
IEEE doubles ``hi + lo`` with ``|lo| <= 0.5 ulp(hi)``, giving roughly 32
significant decimal digits (106 bits of significand).  The algorithms follow
the QD 2.3.9 library of Hida, Li & Bailey that the paper uses for its
multiprecision path tracking, built on the error-free transformations in
:mod:`repro.multiprec.eft`.

The class implements the full Python numeric protocol so that generic code --
the Jacobian evaluators, the LU solver in :mod:`repro.tracking.linsolve`,
Newton's method -- can be written once and instantiated with ``float``,
``complex``, :class:`DoubleDouble` or
:class:`repro.multiprec.complex_dd.ComplexDD` coefficients.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Tuple, Union

from ..errors import DivisionByZeroError
from .eft import quick_two_sum, two_diff, two_prod, two_sqr, two_sum

__all__ = ["DoubleDouble", "dd"]

_EPS = 4.93038065763132e-32  # 2**-104, the relative rounding unit of dd


class DoubleDouble:
    """An immutable double-double number.

    Parameters
    ----------
    hi:
        Leading component (a float, int, or another DoubleDouble to copy).
    lo:
        Trailing component; must satisfy ``hi + lo == hi`` in exact
        arithmetic rounding terms.  When constructing from arbitrary values
        use :meth:`from_sum` or :func:`dd`, which renormalise.

    Notes
    -----
    Instances are hashable and immutable; all arithmetic returns new objects.
    """

    __slots__ = ("hi", "lo")

    #: Relative rounding unit of the double-double format (2**-104).
    eps = _EPS

    def __init__(self, hi: Union[float, int, "DoubleDouble"] = 0.0, lo: float = 0.0):
        if isinstance(hi, DoubleDouble):
            object.__setattr__(self, "hi", hi.hi)
            object.__setattr__(self, "lo", hi.lo)
            return
        h = float(hi)
        l = float(lo)
        # Renormalise so that the invariant |lo| <= 0.5 ulp(hi) holds even if
        # the caller passed two arbitrary doubles.
        s, e = two_sum(h, l)
        object.__setattr__(self, "hi", s)
        object.__setattr__(self, "lo", e)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("DoubleDouble instances are immutable")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, hi: float, lo: float) -> "DoubleDouble":
        """Adopt two components verbatim, skipping renormalisation.

        For rebuilding a value whose components are *already* a valid
        double-double decomposition (e.g. the portable checkpoint planes):
        ``two_sum`` renormalisation would poison non-finite values --
        ``inf + nan`` is ``nan`` -- whereas a stored ``(inf, nan)`` pair
        must come back exactly as it was captured.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "hi", hi)
        object.__setattr__(obj, "lo", lo)
        return obj

    @classmethod
    def from_float(cls, x: float) -> "DoubleDouble":
        """Exact embedding of a double into double-double."""
        return cls(float(x), 0.0)

    @classmethod
    def from_int(cls, n: int) -> "DoubleDouble":
        """Exact embedding of an integer with up to ~106 bits."""
        hi = float(n)
        lo = float(n - int(hi))
        return cls(hi, lo)

    @classmethod
    def from_sum(cls, a: float, b: float) -> "DoubleDouble":
        """The double-double equal to the exact sum of two doubles."""
        s, e = two_sum(float(a), float(b))
        return cls(s, e)

    @classmethod
    def from_product(cls, a: float, b: float) -> "DoubleDouble":
        """The double-double equal to the exact product of two doubles."""
        p, e = two_prod(float(a), float(b))
        return cls(p, e)

    @classmethod
    def from_string(cls, s: str) -> "DoubleDouble":
        """Parse a decimal string to full double-double precision."""
        frac = Fraction(s)
        return cls.from_fraction(frac)

    @classmethod
    def from_fraction(cls, frac: Fraction) -> "DoubleDouble":
        """Round a :class:`fractions.Fraction` to double-double."""
        hi = float(frac)
        lo = float(frac - Fraction(hi))
        return cls(hi, lo)

    # ------------------------------------------------------------------
    # conversions / inspection
    # ------------------------------------------------------------------
    def to_float(self) -> float:
        """Round to the nearest double (simply the ``hi`` component)."""
        return self.hi

    def to_fraction(self) -> Fraction:
        """Exact rational value of the pair ``hi + lo``."""
        return Fraction(self.hi) + Fraction(self.lo)

    def components(self) -> Tuple[float, float]:
        """Return ``(hi, lo)``."""
        return self.hi, self.lo

    def is_zero(self) -> bool:
        return self.hi == 0.0 and self.lo == 0.0

    def is_negative(self) -> bool:
        return self.hi < 0.0 or (self.hi == 0.0 and self.lo < 0.0)

    def is_positive(self) -> bool:
        return self.hi > 0.0 or (self.hi == 0.0 and self.lo > 0.0)

    def is_finite(self) -> bool:
        return math.isfinite(self.hi) and math.isfinite(self.lo)

    def is_nan(self) -> bool:
        return math.isnan(self.hi) or math.isnan(self.lo)

    def __float__(self) -> float:
        return self.hi

    def __int__(self) -> int:
        return int(self.to_fraction())

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __repr__(self) -> str:
        return f"DoubleDouble({self.hi!r}, {self.lo!r})"

    def __str__(self) -> str:
        return self.to_decimal_string(32)

    def to_decimal_string(self, digits: int = 32) -> str:
        """Render ``digits`` significant decimal digits of the exact value."""
        frac = self.to_fraction()
        if frac == 0:
            return "0." + "0" * (digits - 1) + "e+00"
        sign = "-" if frac < 0 else ""
        frac = abs(frac)
        exponent = 0
        while frac >= 10:
            frac /= 10
            exponent += 1
        while frac < 1:
            frac *= 10
            exponent -= 1
        scaled = frac * Fraction(10) ** (digits - 1)
        digits_int = int(scaled + Fraction(1, 2))
        mantissa = str(digits_int)
        if len(mantissa) > digits:  # rounding carried over, e.g. 9.99 -> 10.0
            mantissa = mantissa[:digits]
            exponent += 1
        return f"{sign}{mantissa[0]}.{mantissa[1:]}e{exponent:+03d}"

    def __hash__(self) -> int:
        return hash((self.hi, self.lo))

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "DoubleDouble":
        if isinstance(other, DoubleDouble):
            return other
        if isinstance(other, (int, float)):
            return DoubleDouble(float(other), 0.0)
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other) -> bool:
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self.hi == o.hi and self.lo == o.lo

    def __ne__(self, other) -> bool:
        res = self.__eq__(other)
        if res is NotImplemented:
            return res
        return not res

    def __lt__(self, other) -> bool:
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self.hi < o.hi or (self.hi == o.hi and self.lo < o.lo)

    def __le__(self, other) -> bool:
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self.hi < o.hi or (self.hi == o.hi and self.lo <= o.lo)

    def __gt__(self, other) -> bool:
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self.hi > o.hi or (self.hi == o.hi and self.lo > o.lo)

    def __ge__(self, other) -> bool:
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self.hi > o.hi or (self.hi == o.hi and self.lo >= o.lo)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __neg__(self) -> "DoubleDouble":
        return DoubleDouble(-self.hi, -self.lo)

    def __pos__(self) -> "DoubleDouble":
        return self

    def __abs__(self) -> "DoubleDouble":
        return -self if self.is_negative() else self

    def __add__(self, other) -> "DoubleDouble":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return _add(self, o)

    __radd__ = __add__

    def __sub__(self, other) -> "DoubleDouble":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return _sub(self, o)

    def __rsub__(self, other) -> "DoubleDouble":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return _sub(o, self)

    def __mul__(self, other) -> "DoubleDouble":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return _mul(self, o)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "DoubleDouble":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return _div(self, o)

    def __rtruediv__(self, other) -> "DoubleDouble":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return _div(o, self)

    def __pow__(self, exponent: int) -> "DoubleDouble":
        if not isinstance(exponent, int):
            return NotImplemented
        return self.power(exponent)

    def power(self, exponent: int) -> "DoubleDouble":
        """Integer power by binary exponentiation."""
        if exponent == 0:
            if self.is_zero():
                raise ZeroDivisionError("0 ** 0 is undefined for DoubleDouble")
            return DoubleDouble(1.0)
        negative = exponent < 0
        e = abs(exponent)
        result = DoubleDouble(1.0)
        base = self
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        if negative:
            return DoubleDouble(1.0) / result
        return result

    def sqrt(self) -> "DoubleDouble":
        """Square root by Karp's method (one Newton step on 1/sqrt)."""
        if self.is_zero():
            return DoubleDouble(0.0)
        if self.is_negative():
            raise ValueError("square root of a negative DoubleDouble")
        x = 1.0 / math.sqrt(self.hi)
        ax = self.hi * x
        ax_dd = DoubleDouble(ax)
        err = self - ax_dd * ax_dd
        return ax_dd + DoubleDouble(err.hi * (x * 0.5))

    def recip(self) -> "DoubleDouble":
        """Multiplicative inverse."""
        return DoubleDouble(1.0) / self

    # Convenience used by generic algorithms (mirrors numpy scalar API).
    def conjugate(self) -> "DoubleDouble":
        return self


def _add(a: DoubleDouble, b: DoubleDouble) -> DoubleDouble:
    """IEEE-style accurate addition (QD's ``ieee_add``)."""
    s1, s2 = two_sum(a.hi, b.hi)
    t1, t2 = two_sum(a.lo, b.lo)
    s2 += t1
    s1, s2 = quick_two_sum(s1, s2)
    s2 += t2
    s1, s2 = quick_two_sum(s1, s2)
    return DoubleDouble(s1, s2)


def _sub(a: DoubleDouble, b: DoubleDouble) -> DoubleDouble:
    s1, s2 = two_diff(a.hi, b.hi)
    t1, t2 = two_diff(a.lo, b.lo)
    s2 += t1
    s1, s2 = quick_two_sum(s1, s2)
    s2 += t2
    s1, s2 = quick_two_sum(s1, s2)
    return DoubleDouble(s1, s2)


def _mul(a: DoubleDouble, b: DoubleDouble) -> DoubleDouble:
    p1, p2 = two_prod(a.hi, b.hi)
    p2 += a.hi * b.lo + a.lo * b.hi
    p1, p2 = quick_two_sum(p1, p2)
    return DoubleDouble(p1, p2)


def _div(a: DoubleDouble, b: DoubleDouble) -> DoubleDouble:
    """Accurate division: three quotient corrections (QD's ``accurate_div``)."""
    if b.hi == 0.0 and b.lo == 0.0:
        raise DivisionByZeroError("DoubleDouble division by zero")
    q1 = a.hi / b.hi
    r = _sub(a, _mul(DoubleDouble(q1), b))
    q2 = r.hi / b.hi
    r = _sub(r, _mul(DoubleDouble(q2), b))
    q3 = r.hi / b.hi
    s, e = quick_two_sum(q1, q2)
    result = _add(DoubleDouble(s, e), DoubleDouble(q3))
    return result


def dd(value: Union[int, float, str, Fraction, DoubleDouble]) -> DoubleDouble:
    """Convenience constructor accepting ints, floats, decimal strings,
    fractions, or existing :class:`DoubleDouble` values."""
    if isinstance(value, DoubleDouble):
        return value
    if isinstance(value, str):
        return DoubleDouble.from_string(value)
    if isinstance(value, Fraction):
        return DoubleDouble.from_fraction(value)
    if isinstance(value, int):
        return DoubleDouble.from_int(value)
    return DoubleDouble.from_float(float(value))
