"""Numeric contexts: a small abstraction over the scalar arithmetic in use.

The paper's kernels are described once and instantiated for "complex double"
and "complex double double" (and the authors plan quad double).  In the
reproduction the evaluation kernels, the CPU references and the path tracker
are all written against a :class:`NumericContext` that supplies:

* construction of scalars from Python complex numbers,
* the additive and multiplicative identities,
* conversion back to ``complex`` for comparison and reporting,
* the *cost factor* of one multiplication relative to a hardware complex
  double multiplication.  The paper's motivating observation ([40]) is that
  this factor is about 8 for double-double; the cost model uses it to predict
  how the GPU offsets the software-arithmetic overhead ("quality up").

Three ready-made contexts are exported: :data:`DOUBLE` (hardware ``complex``),
:data:`DOUBLE_DOUBLE` (:class:`~repro.multiprec.complex_dd.ComplexDD`) and
:data:`QUAD_DOUBLE` (Cartesian pair of
:class:`~repro.multiprec.quad_double.QuadDouble`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..errors import DivisionByZeroError
from .complex_dd import ComplexDD
from .double_double import DoubleDouble
from .quad_double import QuadDouble

__all__ = [
    "NumericContext",
    "ComplexQD",
    "DOUBLE",
    "DOUBLE_DOUBLE",
    "QUAD_DOUBLE",
    "CONTEXTS",
    "get_context",
]


class ComplexQD:
    """Minimal complex quad-double scalar (Cartesian pair of QuadDouble).

    Only the operations needed by the evaluators and the linear solver are
    provided: +, -, *, /, negation, conjugation and conversion.
    """

    __slots__ = ("real", "imag")

    def __init__(self, real=0.0, imag=0.0):
        if isinstance(real, ComplexQD):
            self.real, self.imag = real.real, real.imag
            return
        if isinstance(real, complex):
            self.real = QuadDouble.from_float(real.real)
            self.imag = QuadDouble.from_float(real.imag)
            return
        self.real = real if isinstance(real, QuadDouble) else QuadDouble.from_float(float(real))
        self.imag = imag if isinstance(imag, QuadDouble) else QuadDouble.from_float(float(imag))

    def _coerce(self, other) -> "ComplexQD":
        if isinstance(other, ComplexQD):
            return other
        if isinstance(other, (int, float, complex, QuadDouble)):
            return ComplexQD(other) if not isinstance(other, complex) else ComplexQD(other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ComplexQD(self.real + o.real, self.imag + o.imag)

    __radd__ = __add__

    def __sub__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ComplexQD(self.real - o.real, self.imag - o.imag)

    def __rsub__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ComplexQD(o.real - self.real, o.imag - self.imag)

    def __mul__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        a, b, c, d = self.real, self.imag, o.real, o.imag
        return ComplexQD(a * c - b * d, a * d + b * c)

    __rmul__ = __mul__

    def __truediv__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        a, b, c, d = self.real, self.imag, o.real, o.imag
        denom = c * c + d * d
        if denom.is_zero():
            raise DivisionByZeroError("ComplexQD division by zero")
        return ComplexQD((a * c + b * d) / denom, (b * c - a * d) / denom)

    def __rtruediv__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o / self

    def __neg__(self):
        return ComplexQD(-self.real, -self.imag)

    def __eq__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self.real == o.real and self.imag == o.imag

    def __hash__(self):
        return hash((self.real, self.imag))

    def conjugate(self) -> "ComplexQD":
        return ComplexQD(self.real, -self.imag)

    def abs2(self) -> QuadDouble:
        return self.real * self.real + self.imag * self.imag

    def __abs__(self) -> QuadDouble:
        return self.abs2().sqrt()

    def to_complex(self) -> complex:
        return complex(self.real.to_float(), self.imag.to_float())

    def __complex__(self) -> complex:
        return self.to_complex()

    def __repr__(self) -> str:
        return f"ComplexQD({self.to_complex()!r})"


@dataclass(frozen=True)
class NumericContext:
    """Description of a scalar arithmetic usable by the evaluators.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"d"``, ``"dd"``, ``"qd"``.
    description:
        Human-readable name used in reports.
    from_complex:
        Callable converting a Python ``complex`` into the scalar type.
    to_complex:
        Callable converting a scalar back to ``complex`` (rounding).
    zero / one:
        Callables producing the additive and multiplicative identities.
    mul_cost_factor:
        Cost of one multiplication in this arithmetic relative to a hardware
        complex-double multiplication.  Double-double ~8, quad-double ~40
        (software arithmetic; the values follow the paper's discussion and
        the measurements in [40]).
    working_precision:
        Approximate unit roundoff of the arithmetic.
    bytes_per_real:
        Storage size of one real component (8 for double, 16 for double
        double, 32 for quad double); feeds shared-memory budget checks.
    """

    name: str
    description: str
    from_complex: Callable[[complex], Any]
    to_complex: Callable[[Any], complex]
    zero: Callable[[], Any]
    one: Callable[[], Any]
    mul_cost_factor: float
    working_precision: float
    bytes_per_real: int

    def vector(self, values) -> list:
        """Convert an iterable of complex numbers to a list of scalars."""
        return [self.from_complex(complex(v)) for v in values]

    def to_complex_vector(self, values) -> list:
        return [self.to_complex(v) for v in values]


DOUBLE = NumericContext(
    name="d",
    description="hardware complex double (IEEE binary64 pairs)",
    from_complex=lambda z: complex(z),
    to_complex=lambda z: complex(z),
    zero=lambda: 0j,
    one=lambda: 1 + 0j,
    mul_cost_factor=1.0,
    working_precision=2.220446049250313e-16,
    bytes_per_real=8,
)

DOUBLE_DOUBLE = NumericContext(
    name="dd",
    description="complex double double (QD-style software arithmetic)",
    from_complex=lambda z: ComplexDD.from_complex(complex(z)),
    to_complex=lambda z: z.to_complex(),
    zero=lambda: ComplexDD(0.0),
    one=lambda: ComplexDD(1.0),
    mul_cost_factor=8.0,
    working_precision=DoubleDouble.eps,
    bytes_per_real=16,
)

QUAD_DOUBLE = NumericContext(
    name="qd",
    description="complex quad double (QD-style software arithmetic)",
    from_complex=lambda z: ComplexQD(complex(z)),
    to_complex=lambda z: z.to_complex(),
    zero=lambda: ComplexQD(0.0),
    one=lambda: ComplexQD(1.0),
    mul_cost_factor=40.0,
    working_precision=QuadDouble.eps,
    bytes_per_real=32,
)

CONTEXTS: Dict[str, NumericContext] = {
    ctx.name: ctx for ctx in (DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE)
}


def get_context(name: str) -> NumericContext:
    """Look up a numeric context by its short name (``d``, ``dd``, ``qd``)."""
    try:
        return CONTEXTS[name]
    except KeyError:
        raise KeyError(
            f"unknown numeric context {name!r}; available: {sorted(CONTEXTS)}"
        ) from None
