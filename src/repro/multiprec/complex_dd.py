"""Complex double-double arithmetic.

The paper evaluates polynomial systems over the complex numbers (homotopy
continuation works over C), and the kernels manipulate "complex double" and
"complex double double" values.  :class:`ComplexDD` is the straightforward
Cartesian pairing of two :class:`~repro.multiprec.double_double.DoubleDouble`
components with the textbook complex arithmetic rules -- the same four-real-
multiplication complex product the CUDA kernels would perform.

A complex multiplication costs 4 real multiplications and 2 additions; this
constant feeds the GPU and CPU cost models so that the operation counts quoted
in the paper (``5k-4`` *complex* multiplications per thread of kernel 2)
translate consistently into predicted cycle counts.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..errors import DivisionByZeroError
from .double_double import DoubleDouble, dd

__all__ = ["ComplexDD", "cdd"]

_Scalar = Union[int, float, complex, DoubleDouble, "ComplexDD"]


class ComplexDD:
    """A complex number with double-double real and imaginary parts."""

    __slots__ = ("real", "imag")

    def __init__(self,
                 real: Union[int, float, complex, DoubleDouble, "ComplexDD"] = 0.0,
                 imag: Union[int, float, DoubleDouble, None] = None):
        if isinstance(real, ComplexDD):
            object.__setattr__(self, "real", real.real)
            object.__setattr__(self, "imag", real.imag if imag is None else dd(imag))
            return
        if isinstance(real, complex):
            if imag is not None:
                raise TypeError("cannot pass both a complex value and an imag part")
            object.__setattr__(self, "real", DoubleDouble.from_float(real.real))
            object.__setattr__(self, "imag", DoubleDouble.from_float(real.imag))
            return
        object.__setattr__(self, "real", dd(real))
        object.__setattr__(self, "imag", dd(0.0 if imag is None else imag))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("ComplexDD instances are immutable")

    # ------------------------------------------------------------------
    # constructors / conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_complex(cls, z: complex) -> "ComplexDD":
        return cls(complex(z))

    def to_complex(self) -> complex:
        """Round both components to hardware doubles."""
        return complex(self.real.hi, self.imag.hi)

    def components(self) -> Tuple[float, float, float, float]:
        """Return ``(re.hi, re.lo, im.hi, im.lo)``."""
        return self.real.hi, self.real.lo, self.imag.hi, self.imag.lo

    def is_zero(self) -> bool:
        return self.real.is_zero() and self.imag.is_zero()

    def __complex__(self) -> complex:
        return self.to_complex()

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __repr__(self) -> str:
        return f"ComplexDD({self.real!r}, {self.imag!r})"

    def __hash__(self) -> int:
        return hash((self.real, self.imag))

    # ------------------------------------------------------------------
    # comparisons (equality only; complex numbers are unordered)
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "ComplexDD":
        if isinstance(other, ComplexDD):
            return other
        if isinstance(other, (int, float, DoubleDouble)):
            return ComplexDD(other)
        if isinstance(other, complex):
            return ComplexDD.from_complex(other)
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other) -> bool:
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self.real == o.real and self.imag == o.imag

    def __ne__(self, other) -> bool:
        res = self.__eq__(other)
        if res is NotImplemented:
            return res
        return not res

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __neg__(self) -> "ComplexDD":
        return ComplexDD(-self.real, -self.imag)

    def __pos__(self) -> "ComplexDD":
        return self

    def __add__(self, other) -> "ComplexDD":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ComplexDD(self.real + o.real, self.imag + o.imag)

    __radd__ = __add__

    def __sub__(self, other) -> "ComplexDD":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ComplexDD(self.real - o.real, self.imag - o.imag)

    def __rsub__(self, other) -> "ComplexDD":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ComplexDD(o.real - self.real, o.imag - self.imag)

    def __mul__(self, other) -> "ComplexDD":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        # (a+bi)(c+di) = (ac - bd) + (ad + bc) i : 4 real multiplications.
        a, b, c, d = self.real, self.imag, o.real, o.imag
        return ComplexDD(a * c - b * d, a * d + b * c)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "ComplexDD":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        a, b, c, d = self.real, self.imag, o.real, o.imag
        denom = c * c + d * d
        if denom.is_zero():
            raise DivisionByZeroError("ComplexDD division by zero")
        return ComplexDD((a * c + b * d) / denom, (b * c - a * d) / denom)

    def __rtruediv__(self, other) -> "ComplexDD":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o / self

    def __pow__(self, exponent: int) -> "ComplexDD":
        if not isinstance(exponent, int):
            return NotImplemented
        return self.power(exponent)

    def power(self, exponent: int) -> "ComplexDD":
        """Integer power by binary exponentiation."""
        if exponent == 0:
            if self.is_zero():
                raise ZeroDivisionError("0 ** 0 is undefined for ComplexDD")
            return ComplexDD(1.0)
        negative = exponent < 0
        e = abs(exponent)
        result = ComplexDD(1.0)
        base = self
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        if negative:
            return ComplexDD(1.0) / result
        return result

    def conjugate(self) -> "ComplexDD":
        return ComplexDD(self.real, -self.imag)

    def abs2(self) -> DoubleDouble:
        """Squared modulus as a :class:`DoubleDouble`."""
        return self.real * self.real + self.imag * self.imag

    def __abs__(self) -> DoubleDouble:
        return self.abs2().sqrt()


def cdd(real: _Scalar, imag: Union[int, float, DoubleDouble, None] = None) -> ComplexDD:
    """Convenience constructor for :class:`ComplexDD`."""
    if isinstance(real, ComplexDD) and imag is None:
        return real
    if isinstance(real, complex) and imag is None:
        return ComplexDD.from_complex(real)
    return ComplexDD(real, imag)
