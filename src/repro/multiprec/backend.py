"""Batch array backends: one arithmetic, many solution paths side by side.

The batched path-tracking engine stores the state of ``B`` paths of an
``n``-dimensional homotopy as a single ``(n, B)`` array -- a structure of
arrays with one *lane* (column) per path.  This module abstracts the three
array types that can hold such a batch:

* hardware ``complex128`` NumPy arrays (the ``d`` context),
* :class:`~repro.multiprec.ddarray.ComplexDDArray` (the ``dd`` context), and
* :class:`~repro.multiprec.qdarray.ComplexQDArray` (the ``qd`` context),

whose element-wise operation sequences are bit-for-bit identical to the
scalar :class:`~repro.multiprec.complex_dd.ComplexDD` /
:class:`~repro.multiprec.numeric.ComplexQD` loops.

All support ``+ - * /``, unary minus, NumPy-style indexing and broadcasting
against ``(B,)`` weight vectors, so the batched evaluator, linear solver and
tracker are written once against this small :class:`ComplexBatchBackend`
interface.  Backends live in a registry keyed by the context name:
:func:`register_backend` admits new arithmetics without touching the engine,
and :func:`backend_for_context` raises
:class:`~repro.errors.ConfigurationError` for contexts with no registered
vectorised array type.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from .bufferpool import plane_stack
from .complex_dd import ComplexDD
from .ddarray import (
    ComplexDDArray,
    DDArray,
    complex_dd_from_planes,
    complex_dd_mul_into,
    dd_mul_operand,
)
from .double_double import DoubleDouble
from .numeric import DOUBLE, DOUBLE_DOUBLE, QUAD_DOUBLE, ComplexQD, NumericContext
from .qdarray import (
    ComplexQDArray,
    QDArray,
    complex_qd_from_planes,
    complex_qd_mul_into,
    qd_mul_operand,
)
from .quad_double import QuadDouble

__all__ = [
    "ComplexBatchBackend",
    "Complex128Backend",
    "ComplexDDBackend",
    "ComplexQDBackend",
    "COMPLEX128_BACKEND",
    "COMPLEX_DD_BACKEND",
    "COMPLEX_QD_BACKEND",
    "backend_for_context",
    "convert_batch",
    "masked_lane_errstate",
    "register_backend",
    "registered_backends",
]

BatchArray = Union[np.ndarray, ComplexDDArray, ComplexQDArray]


def masked_lane_errstate():
    """An ``np.errstate`` scope for arithmetic over masked lane batches.

    The batched engine keeps retired and diverging lanes *in* the arrays and
    masks them out of control decisions, so dead lanes legitimately carry
    inf/NaN through the arithmetic (``inf - inf``, overflowing ``|pivot|^2``
    magnitudes, ...).  NumPy would emit a RuntimeWarning per ufunc for
    those lanes; every masked-batch hot loop (the batched corrector, linear
    solver and tracker rounds) runs inside this scope so dead lanes stay
    silent while the per-lane masks -- not warnings -- report failures.
    """
    return np.errstate(divide="ignore", invalid="ignore",
                       over="ignore", under="ignore")


class ComplexBatchBackend:
    """Interface of a batch array backend (see module docstring).

    Concrete backends provide construction, masked selection, double-rounded
    magnitudes (for pivoting and norms -- control decisions, not results),
    stacking of rows, and conversion back to the context's scalar type.
    """

    name: str = "?"
    context: NumericContext

    # -- construction ---------------------------------------------------
    def from_points(self, points: Sequence[Sequence]) -> BatchArray:
        """Pack ``B`` solution vectors into an ``(n, B)`` lane array.

        Each point is a sequence of scalars; scalars of a *narrower*
        arithmetic (``complex`` into ``dd``/``qd``, ``ComplexDD`` into
        ``qd``) embed exactly, scalars of a wider one are rounded.

        Raises
        ------
        ConfigurationError
            When the points do not all share one dimension.
        """
        raise NotImplementedError

    def zeros(self, shape) -> BatchArray:
        """An all-zeros batch array of the given shape."""
        raise NotImplementedError

    def ones(self, shape) -> BatchArray:
        """An all-ones batch array of the given shape."""
        raise NotImplementedError

    def full(self, shape, value: complex) -> BatchArray:
        """A batch array with every element set to ``value``."""
        raise NotImplementedError

    # -- structure ------------------------------------------------------
    def stack(self, rows: Sequence[BatchArray]) -> BatchArray:
        """Stack ``n`` lane vectors of shape ``(B,)`` into ``(n, B)``."""
        raise NotImplementedError

    def copy(self, array: BatchArray) -> BatchArray:
        """An independent deep copy of a batch array."""
        raise NotImplementedError

    # -- masked selection ----------------------------------------------
    def where(self, mask: np.ndarray, a, b) -> BatchArray:
        """``a`` where ``mask`` else ``b`` (mask broadcasts NumPy-style)."""
        raise NotImplementedError

    # -- in-place accumulation ------------------------------------------
    # The inner loops of the batched evaluator, linear solver and corrector
    # rebind their accumulators (``acc = backend.iadd(acc, v)``), so these
    # defaults -- correct for any backend -- may return a fresh array.  The
    # built-in backends override them with true in-place updates that are
    # bit-for-bit identical to the out-of-place expressions but free of
    # wrapper and plane churn.  ``acc`` must be exclusively owned by the
    # caller (never a shared or caller-visible input).

    def iadd(self, acc: BatchArray, value) -> BatchArray:
        """``acc + value``, overwriting ``acc`` when the backend can."""
        return acc + value

    def isub_mul(self, acc: BatchArray, factor, value) -> BatchArray:
        """``acc - factor * value``, overwriting ``acc`` when possible."""
        return acc - factor * value

    def iadd_mul(self, acc: BatchArray, a, b) -> BatchArray:
        """``acc + a * b``, overwriting ``acc`` when the backend can.

        The weighted accumulate of the compiled evaluation plans
        (:mod:`repro.core.evalplan`): ``a`` and ``b`` may each be a batch
        array or a scalar weight, and the product is formed exactly as the
        expression ``a * b`` would (same operand order), so the in-place
        landing stays bit-for-bit with ``acc + a * b``.
        """
        return self.iadd(acc, a * b)

    def iadd_masked(self, acc: BatchArray, value, mask) -> BatchArray:
        """``where(mask, acc + value, acc)``, overwriting ``acc`` if possible."""
        return self.where(np.asarray(mask, dtype=bool), acc + value, acc)

    # -- into-operations (plan-arena executor) --------------------------
    # The arena executor of :mod:`repro.core.evalplan` lands results in
    # persistent caller-owned arrays instead of fresh allocations.  Every
    # ``*_into`` computes exactly the floating-point sequence of the
    # corresponding out-of-place expression, then writes ``out``'s storage;
    # callers always use the *returned* array, so these generic defaults --
    # which ignore ``out`` and allocate -- stay correct for third-party
    # backends that never override them.

    def mul_into(self, out: BatchArray, a, b) -> BatchArray:
        """``a * b`` landed in ``out`` (same operand order as ``a * b``).

        ``out`` may alias either operand; at most one of ``a``/``b`` may be
        a scalar weight.
        """
        return a * b

    def copy_into(self, out: BatchArray, src: BatchArray) -> BatchArray:
        """``src`` copied into ``out`` (bit-for-bit with :meth:`copy`)."""
        return self.copy(src)

    def full_into(self, out: BatchArray, value: complex) -> BatchArray:
        """``out`` filled with ``value`` (bit-for-bit with :meth:`full`)."""
        return self.full(out.shape, value)

    def zero_into(self, out: BatchArray) -> BatchArray:
        """``out`` zeroed (bit-for-bit with :meth:`zeros`)."""
        return self.zeros(out.shape)

    def component_planes(self, array: BatchArray):
        """The float planes of a batch array, for exact fingerprinting.

        Returns a tuple of ndarrays whose concatenated bytes identify the
        array's values bit-for-bit, or ``None`` when the backend has no
        lossless plane decomposition (callers must then skip fingerprint
        caching).
        """
        return None

    def embed_complex128(self, values: np.ndarray):
        """A ``complex128`` weight vector embedded in this arithmetic.

        Bit-for-bit with what the backend's arrays coerce such an operand
        to; the default passthrough is correct wherever the arithmetic
        multiplies ndarray weights directly.
        """
        return values

    # -- rounding / inspection ------------------------------------------
    def magnitude(self, array: BatchArray) -> np.ndarray:
        """Element-wise ``|z|`` rounded to hardware doubles.

        Used for pivot selection and convergence norms: following
        :mod:`repro.tracking.linsolve`, control decisions are taken on
        double-rounded magnitudes while the data stays in the working
        arithmetic.
        """
        raise NotImplementedError

    def to_complex128(self, array: BatchArray) -> np.ndarray:
        """The whole batch rounded to a hardware ``complex128`` ndarray."""
        raise NotImplementedError

    def lane_scalars(self, array: BatchArray, lane: int) -> List:
        """Column ``lane`` of an ``(n, B)`` array as context scalars.

        The returned scalars round-trip: feeding them back through
        :meth:`from_points` reproduces the lane bit-for-bit.  This is the
        export path of :meth:`repro.tracking.batch_tracker.PathBatch.
        checkpoint`.
        """
        raise NotImplementedError


class Complex128Backend(ComplexBatchBackend):
    """Hardware complex doubles: plain ``complex128`` ndarrays."""

    name = "d"
    context = DOUBLE

    def from_points(self, points: Sequence[Sequence]) -> np.ndarray:
        columns = [[complex(x) for x in point] for point in points]
        return np.array(columns, dtype=np.complex128).T

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=np.complex128)

    def ones(self, shape) -> np.ndarray:
        return np.ones(shape, dtype=np.complex128)

    def full(self, shape, value: complex) -> np.ndarray:
        return np.full(shape, complex(value), dtype=np.complex128)

    def stack(self, rows: Sequence[np.ndarray]) -> np.ndarray:
        return np.stack([np.asarray(r, dtype=np.complex128) for r in rows])

    def copy(self, array: np.ndarray) -> np.ndarray:
        return np.array(array, dtype=np.complex128, copy=True)

    def where(self, mask, a, b) -> np.ndarray:
        return np.where(np.asarray(mask, dtype=bool), a, b)

    def iadd(self, acc: np.ndarray, value) -> np.ndarray:
        np.add(acc, value, out=acc)
        return acc

    def isub_mul(self, acc: np.ndarray, factor, value) -> np.ndarray:
        acc -= factor * value
        return acc

    def iadd_mul(self, acc: np.ndarray, a, b) -> np.ndarray:
        acc += a * b
        return acc

    def iadd_masked(self, acc: np.ndarray, value, mask) -> np.ndarray:
        np.copyto(acc, acc + value, where=np.asarray(mask, dtype=bool))
        return acc

    def mul_into(self, out: np.ndarray, a, b) -> np.ndarray:
        np.multiply(a, b, out=out)
        return out

    def copy_into(self, out: np.ndarray, src: np.ndarray) -> np.ndarray:
        np.copyto(out, src)
        return out

    def full_into(self, out: np.ndarray, value: complex) -> np.ndarray:
        out[...] = complex(value)
        return out

    def zero_into(self, out: np.ndarray) -> np.ndarray:
        out[...] = 0.0
        return out

    def component_planes(self, array: np.ndarray):
        return (array,)

    def magnitude(self, array: np.ndarray) -> np.ndarray:
        return np.abs(array)

    def to_complex128(self, array: np.ndarray) -> np.ndarray:
        return np.asarray(array, dtype=np.complex128)

    def lane_scalars(self, array: np.ndarray, lane: int) -> List[complex]:
        return [complex(z) for z in array[:, lane]]


class ComplexDDBackend(ComplexBatchBackend):
    """Complex double-doubles stored as four float64 planes (SoA)."""

    name = "dd"
    context = DOUBLE_DOUBLE

    def from_points(self, points: Sequence[Sequence]) -> ComplexDDArray:
        n = len(points[0]) if points else 0
        b = len(points)
        re_hi = np.zeros((n, b))
        re_lo = np.zeros((n, b))
        im_hi = np.zeros((n, b))
        im_lo = np.zeros((n, b))
        for lane, point in enumerate(points):
            if len(point) != n:
                raise ConfigurationError("all start solutions must have the same dimension")
            for i, x in enumerate(point):
                if isinstance(x, ComplexDD):
                    re_hi[i, lane], re_lo[i, lane] = x.real.hi, x.real.lo
                    im_hi[i, lane], im_lo[i, lane] = x.imag.hi, x.imag.lo
                elif isinstance(x, DoubleDouble):
                    re_hi[i, lane], re_lo[i, lane] = x.hi, x.lo
                else:
                    z = complex(x)
                    re_hi[i, lane], im_hi[i, lane] = z.real, z.imag
        return ComplexDDArray(DDArray(re_hi, re_lo), DDArray(im_hi, im_lo))

    def zeros(self, shape) -> ComplexDDArray:
        return ComplexDDArray.zeros(shape)

    def ones(self, shape) -> ComplexDDArray:
        return ComplexDDArray(DDArray.ones(shape), DDArray.zeros(shape))

    def full(self, shape, value: complex) -> ComplexDDArray:
        value = complex(value)
        return ComplexDDArray(DDArray(np.full(shape, value.real)),
                              DDArray(np.full(shape, value.imag)))

    def stack(self, rows: Sequence[ComplexDDArray]) -> ComplexDDArray:
        rows = [r if isinstance(r, ComplexDDArray)
                else ComplexDDArray.from_complex128(np.asarray(r, dtype=np.complex128))
                for r in rows]
        real = DDArray(np.stack([r.real.hi for r in rows]),
                       np.stack([r.real.lo for r in rows]))
        imag = DDArray(np.stack([r.imag.hi for r in rows]),
                       np.stack([r.imag.lo for r in rows]))
        return ComplexDDArray(real, imag)

    def copy(self, array: ComplexDDArray) -> ComplexDDArray:
        return array.copy()

    def where(self, mask, a, b) -> ComplexDDArray:
        return ComplexDDArray.where(mask, a, b)

    def iadd(self, acc: ComplexDDArray, value) -> ComplexDDArray:
        return acc.iadd_(value)

    def isub_mul(self, acc: ComplexDDArray, factor, value) -> ComplexDDArray:
        # ``acc -= factor * value`` with the product formed in stack scratch
        # instead of fresh wrapper allocations; the product's bits are
        # exactly ``acc._coerce(factor) * value``'s (the walk expression).
        if isinstance(factor, ComplexDDArray):
            x, y = factor, dd_mul_operand(factor, value)
        elif isinstance(value, ComplexDDArray):
            x, y = dd_mul_operand(acc, factor), value
        else:
            return acc.isub_mul_(factor, value)
        st = plane_stack()
        shape = np.broadcast_shapes(x.shape, y.shape)
        fb, mark = st.take(shape, 4)
        try:
            prod = complex_dd_from_planes(fb)
            complex_dd_mul_into(prod, x, y)
            return acc.isub_(prod)
        finally:
            st.release(mark)

    def iadd_mul(self, acc: ComplexDDArray, a, b) -> ComplexDDArray:
        if isinstance(a, ComplexDDArray):
            x, y = a, dd_mul_operand(a, b)
        elif isinstance(b, ComplexDDArray):
            x, y = b, dd_mul_operand(b, a)
        else:
            return acc.iadd_(a * b)
        st = plane_stack()
        shape = np.broadcast_shapes(x.shape, y.shape)
        fb, mark = st.take(shape, 4)
        try:
            prod = complex_dd_from_planes(fb)
            complex_dd_mul_into(prod, x, y)
            return acc.iadd_(prod)
        finally:
            st.release(mark)

    def iadd_masked(self, acc: ComplexDDArray, value, mask) -> ComplexDDArray:
        return acc.iadd_where_(value, mask)

    def mul_into(self, out: ComplexDDArray, a, b) -> ComplexDDArray:
        if isinstance(a, ComplexDDArray):
            return complex_dd_mul_into(out, a, dd_mul_operand(a, b))
        return complex_dd_mul_into(out, b, dd_mul_operand(b, a))

    def copy_into(self, out: ComplexDDArray, src: ComplexDDArray
                  ) -> ComplexDDArray:
        np.copyto(out.real.hi, src.real.hi)
        np.copyto(out.real.lo, src.real.lo)
        np.copyto(out.imag.hi, src.imag.hi)
        np.copyto(out.imag.lo, src.imag.lo)
        return out

    def full_into(self, out: ComplexDDArray, value: complex) -> ComplexDDArray:
        # Replay full()'s constructor renormalisation on one element, then
        # broadcast the resulting components (renorm is element-wise).
        value = complex(value)
        re = DDArray(np.full((1,), value.real))
        im = DDArray(np.full((1,), value.imag))
        out.real.hi[...] = re.hi[0]
        out.real.lo[...] = re.lo[0]
        out.imag.hi[...] = im.hi[0]
        out.imag.lo[...] = im.lo[0]
        return out

    def zero_into(self, out: ComplexDDArray) -> ComplexDDArray:
        for plane in (out.real.hi, out.real.lo, out.imag.hi, out.imag.lo):
            plane[...] = 0.0
        return out

    def component_planes(self, array: ComplexDDArray):
        return (array.real.hi, array.real.lo, array.imag.hi, array.imag.lo)

    def embed_complex128(self, values: np.ndarray) -> ComplexDDArray:
        # What ComplexDDArray._coerce does with an ndarray operand.
        return ComplexDDArray.from_complex128(
            np.asarray(values, dtype=np.complex128))

    def magnitude(self, array: ComplexDDArray) -> np.ndarray:
        return array.abs_double()

    def to_complex128(self, array: ComplexDDArray) -> np.ndarray:
        return array.to_complex128()

    def lane_scalars(self, array: ComplexDDArray, lane: int) -> List[ComplexDD]:
        re_hi = array.real.hi[:, lane]
        re_lo = array.real.lo[:, lane]
        im_hi = array.imag.hi[:, lane]
        im_lo = array.imag.lo[:, lane]
        return [ComplexDD(DoubleDouble(float(rh), float(rl)),
                          DoubleDouble(float(ih), float(il)))
                for rh, rl, ih, il in zip(re_hi, re_lo, im_hi, im_lo)]


class ComplexQDBackend(ComplexBatchBackend):
    """Complex quad-doubles stored as eight float64 planes (SoA)."""

    name = "qd"
    context = QUAD_DOUBLE

    def from_points(self, points: Sequence[Sequence]) -> ComplexQDArray:
        n = len(points[0]) if points else 0
        b = len(points)
        re = [np.zeros((n, b)) for _ in range(4)]
        im = [np.zeros((n, b)) for _ in range(4)]
        for lane, point in enumerate(points):
            if len(point) != n:
                raise ConfigurationError("all start solutions must have the same dimension")
            for i, x in enumerate(point):
                if isinstance(x, ComplexDD):
                    x = ComplexQD(QuadDouble.from_double_double(x.real),
                                  QuadDouble.from_double_double(x.imag))
                elif isinstance(x, (DoubleDouble, QuadDouble)):
                    x = ComplexQD(QuadDouble(x))
                elif not isinstance(x, ComplexQD):
                    x = ComplexQD(complex(x))
                for c, plane in enumerate(re):
                    plane[i, lane] = x.real.c[c]
                for c, plane in enumerate(im):
                    plane[i, lane] = x.imag.c[c]
        return ComplexQDArray(QDArray(*re), QDArray(*im))

    def zeros(self, shape) -> ComplexQDArray:
        return ComplexQDArray.zeros(shape)

    def ones(self, shape) -> ComplexQDArray:
        return ComplexQDArray(QDArray.ones(shape), QDArray.zeros(shape))

    def full(self, shape, value: complex) -> ComplexQDArray:
        value = complex(value)
        return ComplexQDArray(QDArray(np.full(shape, value.real)),
                              QDArray(np.full(shape, value.imag)))

    def stack(self, rows: Sequence[ComplexQDArray]) -> ComplexQDArray:
        rows = [r if isinstance(r, ComplexQDArray)
                else ComplexQDArray.from_complex128(np.asarray(r, dtype=np.complex128))
                for r in rows]
        real = QDArray(*(np.stack([getattr(r.real, f"c{c}") for r in rows])
                         for c in range(4)))
        imag = QDArray(*(np.stack([getattr(r.imag, f"c{c}") for r in rows])
                         for c in range(4)))
        return ComplexQDArray(real, imag)

    def copy(self, array: ComplexQDArray) -> ComplexQDArray:
        return array.copy()

    def where(self, mask, a, b) -> ComplexQDArray:
        return ComplexQDArray.where(mask, a, b)

    def iadd(self, acc: ComplexQDArray, value) -> ComplexQDArray:
        return acc.iadd_(value)

    def isub_mul(self, acc: ComplexQDArray, factor, value) -> ComplexQDArray:
        if isinstance(factor, ComplexQDArray):
            x, y = factor, qd_mul_operand(factor, value)
        elif isinstance(value, ComplexQDArray):
            x, y = qd_mul_operand(acc, factor), value
        else:
            return acc.isub_mul_(factor, value)
        st = plane_stack()
        shape = np.broadcast_shapes(x.shape, y.shape)
        fb, mark = st.take(shape, 8)
        try:
            prod = complex_qd_from_planes(fb)
            complex_qd_mul_into(prod, x, y)
            return acc.isub_(prod)
        finally:
            st.release(mark)

    def iadd_mul(self, acc: ComplexQDArray, a, b) -> ComplexQDArray:
        if isinstance(a, ComplexQDArray):
            x, y = a, qd_mul_operand(a, b)
        elif isinstance(b, ComplexQDArray):
            x, y = b, qd_mul_operand(b, a)
        else:
            return acc.iadd_(a * b)
        st = plane_stack()
        shape = np.broadcast_shapes(x.shape, y.shape)
        fb, mark = st.take(shape, 8)
        try:
            prod = complex_qd_from_planes(fb)
            complex_qd_mul_into(prod, x, y)
            return acc.iadd_(prod)
        finally:
            st.release(mark)

    def iadd_masked(self, acc: ComplexQDArray, value, mask) -> ComplexQDArray:
        return acc.iadd_where_(value, mask)

    def mul_into(self, out: ComplexQDArray, a, b) -> ComplexQDArray:
        if isinstance(a, ComplexQDArray):
            return complex_qd_mul_into(out, a, qd_mul_operand(a, b))
        return complex_qd_mul_into(out, b, qd_mul_operand(b, a))

    def copy_into(self, out: ComplexQDArray, src: ComplexQDArray
                  ) -> ComplexQDArray:
        for dst, plane in zip(out.real._components(), src.real._components()):
            np.copyto(dst, plane)
        for dst, plane in zip(out.imag._components(), src.imag._components()):
            np.copyto(dst, plane)
        return out

    def full_into(self, out: ComplexQDArray, value: complex) -> ComplexQDArray:
        # Replay full()'s constructor renormalisation on one element, then
        # broadcast the resulting components (renorm is element-wise).
        value = complex(value)
        re = QDArray(np.full((1,), value.real))
        im = QDArray(np.full((1,), value.imag))
        for dst, plane in zip(out.real._components(), re._components()):
            dst[...] = plane[0]
        for dst, plane in zip(out.imag._components(), im._components()):
            dst[...] = plane[0]
        return out

    def zero_into(self, out: ComplexQDArray) -> ComplexQDArray:
        for plane in out.real._components() + out.imag._components():
            plane[...] = 0.0
        return out

    def component_planes(self, array: ComplexQDArray):
        return array.real._components() + array.imag._components()

    def embed_complex128(self, values: np.ndarray) -> ComplexQDArray:
        # What ComplexQDArray._coerce does with an ndarray operand.
        return ComplexQDArray.from_complex128(
            np.asarray(values, dtype=np.complex128))

    def magnitude(self, array: ComplexQDArray) -> np.ndarray:
        return array.abs_double()

    def to_complex128(self, array: ComplexQDArray) -> np.ndarray:
        return array.to_complex128()

    def lane_scalars(self, array: ComplexQDArray, lane: int) -> List[ComplexQD]:
        re = [getattr(array.real, f"c{c}")[:, lane] for c in range(4)]
        im = [getattr(array.imag, f"c{c}")[:, lane] for c in range(4)]
        return [ComplexQD(QuadDouble._raw(tuple(float(p[i]) for p in re)),
                          QuadDouble._raw(tuple(float(p[i]) for p in im)))
                for i in range(len(re[0]))]


COMPLEX128_BACKEND = Complex128Backend()
COMPLEX_DD_BACKEND = ComplexDDBackend()
COMPLEX_QD_BACKEND = ComplexQDBackend()

_BACKENDS: Dict[str, ComplexBatchBackend] = {}


def register_backend(backend: ComplexBatchBackend) -> ComplexBatchBackend:
    """Register a batch backend under its context name (last one wins).

    The registry is what makes the batch stack precision-generic: the
    evaluator, linear solver and tracker only ever ask
    :func:`backend_for_context`, so a new arithmetic participates in batched
    tracking by registering its backend here.
    """
    _BACKENDS[backend.context.name] = backend
    return backend


def registered_backends() -> Dict[str, ComplexBatchBackend]:
    """A snapshot of the registry (context name -> backend)."""
    return dict(_BACKENDS)


for _backend in (COMPLEX128_BACKEND, COMPLEX_DD_BACKEND, COMPLEX_QD_BACKEND):
    register_backend(_backend)


#: Exact plane-widening conversions between the built-in batch arrays,
#: keyed by (source context name, target context name).  Widening embeds
#: every element bit-for-bit: d -> dd/qd zero-extends the float64 planes,
#: dd -> qd promotes the (hi, lo) pair to the two leading quad-double
#: components (the vectorised ``QuadDouble.from_double_double``).
_WIDENINGS = {
    ("d", "dd"): ComplexDDArray.from_complex128,
    ("d", "qd"): ComplexQDArray.from_complex128,
    ("dd", "qd"): ComplexQDArray.from_complex_dd,
}


def convert_batch(array: BatchArray, source: ComplexBatchBackend,
                  target: ComplexBatchBackend) -> BatchArray:
    """Convert a batch array between two registered backends.

    This is how a :class:`~repro.tracking.batch_tracker.LaneCheckpoint`
    captured at one rung of the escalation ladder becomes the starting state
    of the next rung: the whole ``(n, B)`` structure of arrays moves between
    arithmetics in a handful of NumPy plane operations, no per-element loop.

    Parameters
    ----------
    array:
        A batch array produced by ``source`` (e.g. ``(n, B)`` lane points).
    source / target:
        The backends the array belongs to and should be converted into.

    Returns
    -------
    BatchArray
        A fresh array owned by ``target``.  Widening conversions (``d -> dd
        -> qd``) are exact plane embeddings -- every element is preserved
        bit-for-bit, which is what makes warm-restarted escalation resume
        from precisely the state the cheaper rung left behind.  Narrowing
        conversions truncate each element to its leading component planes,
        like any precision demotion.
    """
    if source.context.name == target.context.name:
        return target.copy(array)
    widen = _WIDENINGS.get((source.context.name, target.context.name))
    if widen is not None:
        return widen(array)
    if (source.context.name, target.context.name) == ("qd", "dd"):
        return ComplexDDArray(DDArray(array.real.c0, array.real.c1),
                              DDArray(array.imag.c0, array.imag.c1))
    if target.context.name == "d":
        return source.to_complex128(array)
    # Generic (and slow) fallback for third-party registered backends:
    # round-trip through the source's lane scalars; target.from_points
    # performs whatever coercion it supports.
    lanes = array.shape[-1]
    return target.from_points([source.lane_scalars(array, lane)
                               for lane in range(lanes)])


def backend_for_context(context: NumericContext) -> ComplexBatchBackend:
    """The batch backend matching a scalar numeric context.

    Raises
    ------
    ConfigurationError
        For contexts without a registered vectorised array type.
    """
    backend = _BACKENDS.get(context.name)
    if backend is None:
        raise ConfigurationError(
            f"no batch array backend for numeric context {context.name!r}; "
            f"available: {sorted(_BACKENDS)} (register one with "
            f"repro.multiprec.backend.register_backend)"
        )
    return backend
