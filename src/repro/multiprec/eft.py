"""Error-free transformations (EFTs) for IEEE double precision.

These are the primitives from which double-double and quad-double arithmetic
are assembled (Dekker 1971; Knuth TAOCP vol. 2; Hida, Li & Bailey 2001 -- the
QD 2.3.9 library cited by the paper).  Every function returns a pair
``(result, error)`` such that the exact real-number result of the operation
equals ``result + error`` and ``result`` is the correctly rounded double
closest to it.

All functions also operate element-wise on NumPy arrays: the expressions use
only ``+``, ``-`` and ``*`` so broadcasting applies unchanged.  That is what
the vectorised :mod:`repro.multiprec.ddarray` module builds on.

Notes
-----
The implementations deliberately avoid ``math.fma`` so that the operation
sequence matches what the paper's CUDA kernels would execute on hardware
without relying on a fused multiply-add, and so that the arithmetic is
bit-for-bit reproducible across the scalar and vectorised code paths.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

__all__ = [
    "SPLITTER",
    "SPLIT_THRESHOLD",
    "two_sum",
    "quick_two_sum",
    "two_diff",
    "quick_two_diff",
    "split",
    "two_prod",
    "two_sqr",
    "two_sum_into",
    "quick_two_sum_into",
    "two_diff_into",
    "split_into",
]

#: Dekker's splitting constant, :math:`2^{27} + 1`.  Multiplying by this and
#: subtracting recovers the high 26 bits of a double's significand.
SPLITTER: float = 134217729.0  # 2**27 + 1

#: Magnitudes above this threshold must be scaled before splitting to avoid
#: overflow in ``SPLITTER * a`` (QD uses 2^996).
SPLIT_THRESHOLD: float = 6.69692879491417e299  # 2**996

Number = Union[float, np.ndarray]


def two_sum(a: Number, b: Number) -> Tuple[Number, Number]:
    """Knuth's TwoSum: ``s + e == a + b`` exactly, with ``s = fl(a + b)``.

    Works for any ordering of the magnitudes of ``a`` and ``b`` at the cost of
    6 floating-point operations.
    """
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def quick_two_sum(a: Number, b: Number) -> Tuple[Number, Number]:
    """Dekker's FastTwoSum: requires ``|a| >= |b|`` (or a == 0).

    3 floating-point operations.  Used in renormalisation steps where the
    ordering is known.
    """
    s = a + b
    e = b - (s - a)
    return s, e


def two_diff(a: Number, b: Number) -> Tuple[Number, Number]:
    """TwoDiff: ``s + e == a - b`` exactly with ``s = fl(a - b)``."""
    s = a - b
    bb = s - a
    e = (a - (s - bb)) - (b + bb)
    return s, e


def quick_two_diff(a: Number, b: Number) -> Tuple[Number, Number]:
    """FastTwoDiff: requires ``|a| >= |b|``."""
    s = a - b
    e = (a - s) - b
    return s, e


def split(a: Number) -> Tuple[Number, Number]:
    """Dekker's Split: ``a == hi + lo`` with both halves representable in 26
    bits of significand, so that products of halves are exact.

    Handles the overflow-prone case ``|a| > SPLIT_THRESHOLD`` by pre-scaling,
    as the QD library does.
    """
    if isinstance(a, np.ndarray):
        big = np.abs(a) > SPLIT_THRESHOLD
        scaled = np.where(big, a * 3.7252902984619140625e-09, a)  # 2**-28
        temp = SPLITTER * scaled
        hi = temp - (temp - scaled)
        lo = scaled - hi
        hi = np.where(big, hi * 268435456.0, hi)  # 2**28
        lo = np.where(big, lo * 268435456.0, lo)
        return hi, lo
    if abs(a) > SPLIT_THRESHOLD:
        a *= 3.7252902984619140625e-09  # 2**-28
        temp = SPLITTER * a
        hi = temp - (temp - a)
        lo = a - hi
        return hi * 268435456.0, lo * 268435456.0  # 2**28
    temp = SPLITTER * a
    hi = temp - (temp - a)
    lo = a - hi
    return hi, lo


def two_prod(a: Number, b: Number) -> Tuple[Number, Number]:
    """TwoProd: ``p + e == a * b`` exactly with ``p = fl(a * b)``.

    Uses Dekker splitting (17 flops) rather than an FMA so that the result is
    identical on hardware without fused multiply-add, matching the
    reproducibility goal stated in the module docstring.
    """
    p = a * b
    a_hi, a_lo = split(a)
    b_hi, b_lo = split(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


# ----------------------------------------------------------------------
# out=-threaded array variants for the fused batch kernels
# ----------------------------------------------------------------------
# Each *_into function executes exactly the floating-point sequence of its
# allocating sibling above, but writes every intermediate into caller-provided
# buffers (typically borrowed from repro.multiprec.bufferpool).  Contracts:
# output/scratch buffers must be distinct arrays, and none of them may alias
# an input -- the sequences read their inputs after the first write.

def two_sum_into(a, b, s: np.ndarray, e: np.ndarray, t: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """TwoSum into buffers: ``s, e`` outputs, ``t`` scratch."""
    np.add(a, b, out=s)
    np.subtract(s, a, out=t)        # bb
    np.subtract(s, t, out=e)        # s - bb
    np.subtract(a, e, out=e)        # a - (s - bb)
    np.subtract(b, t, out=t)        # b - bb
    np.add(e, t, out=e)
    return s, e


def quick_two_sum_into(a, b, s: np.ndarray, e: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """FastTwoSum into buffers (requires ``|a| >= |b|`` element-wise)."""
    np.add(a, b, out=s)
    np.subtract(s, a, out=e)        # s - a
    np.subtract(b, e, out=e)        # b - (s - a)
    return s, e


def two_diff_into(a, b, s: np.ndarray, e: np.ndarray, t: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """TwoDiff into buffers: ``s, e`` outputs, ``t`` scratch."""
    np.subtract(a, b, out=s)
    np.subtract(s, a, out=t)        # bb
    np.subtract(s, t, out=e)        # s - bb
    np.subtract(a, e, out=e)        # a - (s - bb)
    np.add(b, t, out=t)             # b + bb
    np.subtract(e, t, out=e)
    return s, e


def split_into(a, hi: np.ndarray, lo: np.ndarray, t: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Dekker split into buffers -- the *unscaled* branch only.

    The caller must guarantee no element of ``a`` exceeds
    :data:`SPLIT_THRESHOLD` in magnitude (NaN elements are fine: they follow
    the unscaled sequence in :func:`split` too, producing the same NaNs).
    The fused kernels check their operands' leading planes once per
    operation and fall back to :func:`split` when the guard fails.
    """
    np.multiply(SPLITTER, a, out=t)
    np.subtract(t, a, out=hi)       # temp - a
    np.subtract(t, hi, out=hi)      # temp - (temp - a)
    np.subtract(a, hi, out=lo)
    return hi, lo


def two_sqr(a: Number) -> Tuple[Number, Number]:
    """TwoSqr: ``p + e == a * a`` exactly; cheaper than ``two_prod(a, a)``."""
    p = a * a
    hi, lo = split(a)
    e = ((hi * hi - p) + 2.0 * hi * lo) + lo * lo
    return p, e
